#!/usr/bin/env python3
"""Incomplete-information updates in a diagnosis setting.

A small network-operations knowledge base: three hosts, a switch, and a
power feed.  What the operator knows is *incomplete* -- the database is a
set of possible worlds -- and what arrives over time is a mix of monotone
observations (``assert``), corrections that override old beliefs
(``insert`` / ``delete``), sensor resets (``clear``), and conditional
repairs (``where``).  Certain/possible queries drive the diagnosis.

This is the kind of workload the paper's introduction motivates: updates
to a database that *represents* many alternative states of the world.

Run:  python examples/fault_diagnosis.py
"""

from repro.hlu import IncompleteDatabase, delete, insert


LETTERS = [
    "PowerOK",      # the power feed is healthy
    "SwitchOK",     # the switch is healthy
    "H1Up", "H2Up", "H3Up",   # hosts respond to ping
    "AlertSent",    # paging system fired
]

RULES = [
    # Domain knowledge as integrity-like assertions (kept in the state,
    # not enforced as constraints: the operator may later learn they were
    # wrong and insert over them).
    "~PowerOK -> ~SwitchOK",           # no power, no switch
    "~SwitchOK -> (~H1Up & ~H2Up & ~H3Up)",  # hosts hang off the switch
]


def show(db: IncompleteDatabase, label: str) -> None:
    worlds = db.worlds()
    print(f"\n--- {label} ---")
    print(f"possible worlds: {len(worlds)}")
    certain = sorted(
        lit for lit in worlds.certain_literals()
    )
    print("certain:", ", ".join(certain) if certain else "(nothing)")


def main() -> None:
    db = IncompleteDatabase.over(LETTERS)
    db.assert_(*RULES)
    show(db, "initial knowledge (just the wiring rules)")

    # Observation: host 1 is down, host 3 is up.
    db.assert_("~H1Up", "H3Up")
    show(db, "after observations ~H1Up, H3Up")

    # H3 is up, so (contrapositively) the switch and power must be fine.
    print("SwitchOK certain?", db.is_certain("SwitchOK"))
    print("PowerOK certain?", db.is_certain("PowerOK"))
    print("diagnosis: host-1-local fault certain?",
          db.is_certain("SwitchOK & ~H1Up"))

    # A field tech reboots host 1; whatever we believed about H1 is stale.
    db.clear("H1Up")
    show(db, "after clearing H1Up (reboot in progress)")
    print("H1Up possible?", db.is_possible("H1Up"))

    # Conditional policy: wherever H1 is still down, an alert must be sent.
    db.where("~H1Up", insert("AlertSent"))
    print("\n~H1Up -> AlertSent certain?", db.is_certain("~H1Up -> AlertSent"))
    print("AlertSent certain outright?", db.is_certain("AlertSent"))

    # Correction: the power feed was actually cut during maintenance.
    # This *overrides* the earlier conclusion PowerOK -- an insert, not an
    # assert (asserting ~PowerOK would leave no possible world at all).
    db.insert("~PowerOK")
    show(db, "after inserting ~PowerOK (maintenance cut)")
    print("still consistent?", db.is_consistent())

    # Note what insert forgot: the wiring rule "~PowerOK -> ~SwitchOK"
    # mentioned PowerOK, so it was masked away with it.  Re-assert the
    # rules after a corrective insert if they still apply:
    db.assert_(*RULES)
    print("with rules re-asserted, ~SwitchOK certain?",
          db.is_certain("~SwitchOK"))
    print("all hosts certainly down?",
          db.is_certain("~H1Up & ~H2Up & ~H3Up"))

    # Repair sequence: power restored, then a conditional where-else:
    # where the switch recovered, hosts may come back (mask them);
    # where it did not, declare hosts down.
    db.insert("PowerOK")
    db.where(
        "SwitchOK",
        delete("AlertSent"),          # recovered: stand the page down
        insert("AlertSent"),          # still dark: page again
    )
    show(db, "after power restore and conditional paging")
    print("AlertSent <-> ~SwitchOK certain?",
          db.is_certain("AlertSent <-> ~SwitchOK"))

    # The full update history is recorded on the session:
    print("\nupdate history:")
    for i, update in enumerate(db.history, 1):
        print(f"  {i:2}. {update}")


if __name__ == "__main__":
    main()
