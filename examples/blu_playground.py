#!/usr/bin/env python3
"""Working directly in BLU, the paper's five-primitive core language.

HLU is sugar; everything reduces to BLU programs (Section 3).  This
example writes raw BLU programs as s-expressions, runs them in both
implementations (possible worlds and clauses), checks the canonical
emulation, and replays the where-macro expansion of Section 3.2 step by
step.

Run:  python examples/blu_playground.py
"""

from repro.blu import (
    ClausalImplementation,
    InstanceImplementation,
    canonical_emulation,
    parse_program,
)
from repro.db import WorldSet
from repro.hlu import HLU_INSERT, IDENTITY, where1, where2
from repro.logic import ClauseSet, Vocabulary


def main() -> None:
    vocabulary = Vocabulary.standard(4)
    clausal = ClausalImplementation(vocabulary)
    instance = InstanceImplementation(vocabulary)

    # ------------------------------------------------------------------ #
    # 1. A BLU program is (lambda <varlist> <S-term>), with s0 the        #
    #    system state (Definition 2.1.2).  This one swaps knowledge:      #
    #    wherever s1 held, require s2, and vice versa.                    #
    # ------------------------------------------------------------------ #
    swap = parse_program(
        """
        (lambda (s0 s1 s2)
          (combine (assert (assert s0 s1) s2)
                   (assert (assert s0 (complement s1)) (complement s2))))
        """
    )
    print("program:", swap)

    state = ClauseSet.from_strs(vocabulary, ["A3 | A4"])
    w1 = ClauseSet.from_strs(vocabulary, ["A1"])
    w2 = ClauseSet.from_strs(vocabulary, ["A2"])
    print("clausal run :", clausal.run(swap, state, w1, w2))

    instance_result = instance.run(
        swap,
        WorldSet.from_clause_set(state),
        WorldSet.from_clause_set(w1),
        WorldSet.from_clause_set(w2),
    )
    print("instance run:", instance_result)

    # ------------------------------------------------------------------ #
    # 2. The canonical emulation e_CI: run at the clause level, map down  #
    #    to worlds, and it matches the instance-level run exactly         #
    #    (Theorems 2.3.4/2.3.6/2.3.9 part (a)).                           #
    # ------------------------------------------------------------------ #
    emulation = canonical_emulation(clausal, instance)
    ok = emulation.check_term(
        swap.body, {"s0": state, "s1": w1, "s2": w2}
    )
    print("emulation holds on this run:", ok)

    # ------------------------------------------------------------------ #
    # 3. genmask / mask: the heart of the mask-assert paradigm.           #
    # ------------------------------------------------------------------ #
    payload = ClauseSet.from_strs(vocabulary, ["A1 | A2", "A1 | ~A2"])
    mask = clausal.op_genmask(payload)
    print("\npayload:", payload)
    print("genmask:", sorted(vocabulary.name_of(i) for i in mask),
          " (semantic: the payload is equivalent to just A1)")
    print("mask of {A1, A2 | A3}:",
          clausal.op_mask(
              ClauseSet.from_strs(vocabulary, ["A1", "A2 | A3"]),
              frozenset({0}),
          ))

    # ------------------------------------------------------------------ #
    # 4. Macro expansion, exactly as in Section 3.2: where1 inlines its   #
    #    program argument with renamed parameters (atomappend ".0").      #
    # ------------------------------------------------------------------ #
    print("\nHLU-insert        :", HLU_INSERT)
    print("(where W insert)  :", where1(HLU_INSERT))
    print("(where W ins del) :", where2(HLU_INSERT, IDENTITY))
    nested = where1(where1(HLU_INSERT))
    print("nested where      :", nested.parameters)

    # ------------------------------------------------------------------ #
    # 5. Sort checking refuses ill-formed terms.                          #
    # ------------------------------------------------------------------ #
    from repro.errors import SortError

    for bad in (
        "(lambda (s0) (mask s0 s0))",          # mask wants an M argument
        "(lambda (s0 s1) (assert s0 (genmask s1)))",  # assert wants S
        "(lambda (s1) s1)",                     # must start with s0
    ):
        try:
            parse_program(bad)
        except SortError as error:
            print("rejected:", bad, "--", error)


if __name__ == "__main__":
    main()
