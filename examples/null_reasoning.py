#!/usr/bin/env python3
"""Reasoning with nulls: semantic resolution, the open-clause prover, and
the template model (paper Sections 4 and 5.2).

A small incident-response knowledge base over people and rooms, with
*internal constants* (typed nulls) standing for the values nobody knows
yet.  Shows:

* semantic unification through the constant dictionary;
* refutation proofs over open clauses (the :class:`OpenKB` prover);
* narrowing a null's Boolean category expression as evidence arrives;
* what the Imieliński-Lipski template model can and cannot say about the
  same situation.

Run:  python examples/null_reasoning.py
"""

from repro.baselines.tables import TableVariable, VTable, is_representable
from repro.db.instances import WorldSet
from repro.relational import (
    CategoryExpr,
    OpenAtom,
    OpenClause,
    OpenKB,
    RelationalSchema,
    SignedAtom,
    semantic_resolvent,
    semantic_unify,
)


def main() -> None:
    schema = RelationalSchema.build(
        constants={
            "person": ["Ada", "Ben", "Cy"],
            "room": ["Lab", "Office", "Vault"],
        },
        relations={
            "In": [("N", "person"), ("W", "room")],
            "Suspect": [("N", "person")],
        },
    )
    rooms = schema.algebra.named("room")

    # ------------------------------------------------------------------ #
    # 1. Semantic unification: "the person in SOME room" vs a concrete    #
    #    sighting.  The dictionary intersection is the unifier (§5.2).    #
    # ------------------------------------------------------------------ #
    kb = OpenKB(schema)
    u = kb.new_null(rooms, ee=["Office"])        # Ada is NOT in the office
    ada_somewhere = OpenAtom("In", ("Ada", u))
    ada_in_vault = OpenAtom("In", ("Ada", "Vault"))
    print("unify In(Ada,u) with In(Ada,Vault):",
          semantic_unify(schema.dictionary, ada_somewhere, ada_in_vault))
    ada_in_office = OpenAtom("In", ("Ada", "Office"))
    print("unify In(Ada,u) with In(Ada,Office):",
          semantic_unify(schema.dictionary, ada_somewhere, ada_in_office),
          " (excluded by u's category expression)")

    # A resolution step with a null: ~In(Ada,Vault) clashes with In(Ada,u)
    # exactly when Vault is still a possible value of u.
    positive = SignedAtom(ada_somewhere)
    negative = SignedAtom(ada_in_vault, positive=False)
    resolvent = semantic_resolvent(
        schema.dictionary, OpenClause([positive]), OpenClause([negative]),
        on=(positive, negative),
    )
    print("semantic resolvent:", resolvent, "(the empty clause: a clash)")

    # ------------------------------------------------------------------ #
    # 2. The prover: certain conclusions under every valuation of nulls.  #
    # ------------------------------------------------------------------ #
    kb.add_fact("In", "Ada", u)                  # Ada is somewhere (not Office)
    kb.add_denial("In", "Ada", "Lab")            # the lab was empty
    # Policy: anyone in the vault is a suspect.
    kb.add_clause([(False, "In", ("Ada", "Vault")), (True, "Suspect", ("Ada",))])

    print("\nknowledge base:", kb)
    print("Ada in the Vault, certainly?", kb.entails_fact("In", "Ada", "Vault"))
    print("Ada a suspect, certainly?", kb.entails_fact("Suspect", "Ada"))
    # With Office excluded and Lab denied, only the Vault remains: both
    # conclusions are forced even though no single sighting exists.

    # Narrowing instead: had u merely been "some room", nothing follows.
    fresh = OpenKB(schema)
    v = fresh.new_null(rooms)
    fresh.add_fact("In", "Ada", v)
    fresh.add_clause([(False, "In", ("Ada", "Vault")), (True, "Suspect", ("Ada",))])
    print("without the exclusions, suspect?",
          fresh.entails_fact("Suspect", "Ada"))

    # Evidence arrives: narrow v's category and ask again.
    fresh.dictionary.narrow(v, CategoryExpr(rooms, ee=["Lab", "Office"]))
    print("after narrowing v to the Vault, suspect?",
          fresh.entails_fact("Suspect", "Ada"))

    # ------------------------------------------------------------------ #
    # 3. The template model's take on the same ignorance (§4).            #
    # ------------------------------------------------------------------ #
    loc_schema = RelationalSchema.build(
        constants={"person": ["Ada"], "room": ["Lab", "Vault"]},
        relations={"In": [("N", "person"), ("W", "room")]},
    )
    x = TableVariable("x", loc_schema.algebra.named("room"))
    table = VTable(loc_schema, [("In", ("Ada", x))])
    print("\nV-table", table, "denotes", len(table.world_set()), "worlds")

    # "Ada is in both rooms or neither" is NOT a table:
    vocab = table.grounding.vocabulary
    lab_bit = 1 << vocab.index_of("In.Ada.Lab")
    vault_bit = 1 << vocab.index_of("In.Ada.Vault")
    both_or_neither = WorldSet(vocab, {0, lab_bit | vault_bit})
    print("'both rooms or neither' representable as a table?",
          is_representable(both_or_neither, loc_schema) is not None)


if __name__ == "__main__":
    main()
