#!/usr/bin/env python3
"""Three update strategies on the same script (Section 3.3 of the paper).

Runs an identical update sequence through:

* **Hegner** (this library): mask-assert semantics, eager masking;
* **Wilkins** (Section 3.3.1): linear-time updates via auxiliary history
  letters, deferred masking, degrading queries;
* **minimal change / flock** (Section 3.3.2): keep maximal consistent
  subtheories.

and prints where they agree, where they diverge, and what each costs.

Run:  python examples/update_strategies.py
"""

import time

from repro.baselines import MinimalChangeDatabase, WilkinsDatabase
from repro.hlu import IncompleteDatabase
from repro.logic import Vocabulary


def verdicts(label, hegner, wilkins, flock, queries):
    print(f"\n{label}")
    print(f"{'query':28} {'Hegner':>8} {'Wilkins':>8} {'flock':>8}")
    for query in queries:
        print(
            f"{query:28} {str(hegner.is_certain(query)):>8} "
            f"{str(wilkins.is_certain(query)):>8} "
            f"{str(flock.is_certain(query)):>8}"
        )


def main() -> None:
    vocabulary = Vocabulary.standard(4)

    # ------------------------------------------------------------------ #
    # Scenario 1: a plain corrective insert -- all three mostly agree     #
    # on the new fact, but differ on what survives.                       #
    # ------------------------------------------------------------------ #
    hegner = IncompleteDatabase.over(4).assert_("A1", "A1 -> A2")
    wilkins = WilkinsDatabase(vocabulary)
    wilkins.assert_("A1")
    wilkins.assert_("A1 -> A2")
    flock = MinimalChangeDatabase(vocabulary, ["A1", "A1 -> A2"])

    hegner.insert("~A2")
    wilkins.insert("~A2")
    flock.insert("~A2")

    verdicts(
        "scenario 1: {A1, A1 -> A2}, then insert ~A2",
        hegner,
        wilkins,
        flock,
        ["~A2", "A1", "A1 | ~A1"],
    )
    print(
        "-> Hegner/Wilkins masked A2 and kept A1; the flock cannot keep\n"
        "   both A1 and the implication, so A1 is no longer certain\n"
        "   (it forks into two alternatives)."
    )

    # ------------------------------------------------------------------ #
    # Scenario 2: Remark 1.4.7 -- inserting a tautology.                  #
    # ------------------------------------------------------------------ #
    hegner = IncompleteDatabase.over(4).assert_("A1")
    wilkins = WilkinsDatabase(vocabulary)
    wilkins.assert_("A1")
    flock = MinimalChangeDatabase(vocabulary, ["A1"])

    for database in (hegner, wilkins, flock):
        database.insert("A1 | ~A1")

    verdicts(
        "scenario 2: {A1}, then insert the tautology A1 | ~A1",
        hegner,
        wilkins,
        flock,
        ["A1"],
    )
    print(
        "-> The paper's Remark 1.4.7: Hegner's semantics is *semantic*\n"
        "   (tautology = identity update); Wilkins' is syntactic -- the\n"
        "   tautology masks A1."
    )

    # ------------------------------------------------------------------ #
    # Scenario 3: the §3.3.1 cost trade-off.                              #
    # ------------------------------------------------------------------ #
    print("\nscenario 3: 24 random inserts, then 50 queries (seconds)")
    from random import Random

    from repro.hlu import language
    from repro.workloads.generators import update_stream

    big_vocab = Vocabulary.standard(12)
    payloads = list(update_stream(Random(3), big_vocab, 24, width=2))

    hegner_big = IncompleteDatabase.over(12)
    start = time.perf_counter()
    for payload in payloads:
        hegner_big.apply(language.insert(payload))
    hegner_update = time.perf_counter() - start

    wilkins_big = WilkinsDatabase(big_vocab)
    start = time.perf_counter()
    for payload in payloads:
        wilkins_big.insert(payload)
    wilkins_update = time.perf_counter() - start

    start = time.perf_counter()
    for _ in range(50):
        hegner_big.is_certain("A1 | A2 | A3")
    hegner_query = time.perf_counter() - start

    start = time.perf_counter()
    for _ in range(50):
        wilkins_big.is_certain("A1 | A2 | A3")
    wilkins_query = time.perf_counter() - start

    start = time.perf_counter()
    wilkins_big.cleanup()
    cleanup = time.perf_counter() - start

    print(f"  update stream : Hegner {hegner_update:.4f}  "
          f"Wilkins {wilkins_update:.4f}  (Wilkins defers the mask)")
    print(f"  50 queries    : Hegner {hegner_query:.4f}  "
          f"Wilkins {wilkins_query:.4f}  "
          f"(Wilkins pays over {wilkins_big.aux_count or 48} extra letters)")
    print(f"  cleanup       : Wilkins {cleanup:.4f}  "
          f"(the deferred mask, all at once)")
    print("-> 'her algorithms would not seem to offer a superior "
          "alternative to ours' -- §3.3.1.")


if __name__ == "__main__":
    main()
