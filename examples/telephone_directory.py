#!/usr/bin/env python3
"""The paper's motivating relational scenario (Section 5.1.1):

    "Jones has a new telephone number."

Implicit in the request: the *new* number is not known.  This example runs
the update both ways --

* through the **grounded** propositional route, where the update formula
  is the "enormous disjunction" over every telephone number, and
* through the **compact** internal-constant (null value) representation,
  where it is a single open atom ``R(Jones, D1, u)`` with ``u`` of type
  tau_telno --

and shows they agree on every query while differing wildly in size.

Run:  python examples/telephone_directory.py
"""

from repro.relational import (
    ANY,
    CategoryExpr,
    OpenAtom,
    RelationalDatabase,
    RelationalSchema,
    exists,
    var,
)
from repro.workloads.generators import directory_schema


def main() -> None:
    # ------------------------------------------------------------------ #
    # Schema: R[N D T] with typed attributes and finite domains           #
    # (domain closure makes grounding possible -- Section 1.2).           #
    # ------------------------------------------------------------------ #
    schema = RelationalSchema.build(
        constants={
            "person": ["Jones", "Smith"],
            "dept": ["D1", "D2"],
            "telno": ["T1", "T2", "T3", "T4"],
        },
        relations={"R": [("N", "person"), ("D", "dept"), ("T", "telno")]},
    )
    db = RelationalDatabase(schema)  # with a grounded clausal mirror
    print("grounded vocabulary:", len(db.grounding.vocabulary), "letters")

    db.tell(("R", "Jones", "D1", "T2"))
    db.tell(("R", "Smith", "D2", "T4"))
    print("Jones reachable at T2?", db.certain("R", "Jones", "D1", "T2"))

    # ------------------------------------------------------------------ #
    # The update, in the paper's extended-where form:                     #
    #   (where ((Jones = x) (y in tau_u))                                 #
    #     (insert ((exists w in tau_telno) (R x y w))))                   #
    # Bindings for y come from the database, case by case.                #
    # ------------------------------------------------------------------ #
    telno = schema.algebra.named("telno")
    bindings = db.where_update(
        pattern=("R", "Jones", var("y"), ANY),
        action=("R", "Jones", var("y"), exists(telno)),
    )
    print("\nbindings found (Jones' departments):", bindings)

    print("T2 still certain?", db.certain("R", "Jones", "D1", "T2"))
    print("T2 still possible?", db.possible("R", "Jones", "D1", "T2"))
    print("possible new numbers:",
          sorted(db.possible_values("R", ("Jones", "D1", None), 2)))
    some_number = " | ".join(f"R.Jones.D1.{t}" for t in ("T1", "T2", "T3", "T4"))
    print("*some* number certain?", db.grounded.is_certain(some_number))
    print("Smith's record untouched?", db.certain("R", "Smith", "D2", "T4"))

    # ------------------------------------------------------------------ #
    # The two representations of the same possible worlds.                #
    # ------------------------------------------------------------------ #
    print("\ncompact store:", sorted(map(repr, db.store)))
    print("compact size (symbols):", db.compact_size())
    print("grounded state Length:", db.grounded_size())

    # ------------------------------------------------------------------ #
    # Why grounding alone is impractical (the paper's 5.1.1 point):       #
    # sweep the domain size and watch the update formula grow while the   #
    # open atom stays a single literal.                                   #
    # ------------------------------------------------------------------ #
    print("\nphones | grounded letters | update disjuncts | compact symbols")
    for phone_count in (4, 16, 64, 256):
        big_schema = directory_schema(phone_count)
        big = RelationalDatabase(big_schema, grounded=False)  # compact only
        u = big.unknown(big_schema.algebra.named("telno"))
        atom = big.atom("R", "P1", "D1", u)
        from repro.relational.grounding import Grounding

        grounding = Grounding(big_schema)
        disjuncts = len(grounding.atom_formula(atom).props())
        print(f"{phone_count:6} | {len(grounding.vocabulary):16} | "
              f"{disjuncts:16} | {len(atom.args) + 1:15}")

    # ------------------------------------------------------------------ #
    # Nulls can carry partial knowledge: category expressions.            #
    # "Smith's new number is a telno, but not T4 (that one was retired)." #
    # ------------------------------------------------------------------ #
    u = db.dictionary.activate(CategoryExpr(telno, ee=["T4"]))
    db.tell(OpenAtom("R", ("Smith", "D2", u)))
    print("\nSmith's possible numbers (not T4):",
          sorted(db.dictionary.denotation_of(u)))


if __name__ == "__main__":
    main()
