#!/usr/bin/env python3
"""Quickstart: updating an incomplete-information database with HLU.

Walks the library's main surface -- the :class:`IncompleteDatabase`
session -- through the paper's own running example (Example 3.1.5) and
the basic update vocabulary: assert, insert, delete, clear, modify, where.

Run:  python examples/quickstart.py
"""

from repro.hlu import IncompleteDatabase, insert, language


def main() -> None:
    # ----------------------------------------------------------------- #
    # 1. A database of total ignorance over five proposition letters.    #
    # ----------------------------------------------------------------- #
    db = IncompleteDatabase.over(5)  # clausal (scalable) backend
    print("fresh state:", db.state)

    # ----------------------------------------------------------------- #
    # 2. assert: monotone knowledge gain.  This is the paper's state     #
    #    Phi from Example 3.1.5.                                         #
    # ----------------------------------------------------------------- #
    db.assert_("~A1 | A3", "A1 | A4", "A4 | A5", "~A1 | ~A2 | ~A5")
    print("\nafter assert:", db.state)
    print("is A3 certain?", db.is_certain("A3"))
    print("is A3 possible?", db.is_possible("A3"))

    # ----------------------------------------------------------------- #
    # 3. insert: non-monotone update.  The mask-assert paradigm first    #
    #    *forgets* everything the new fact depends on (A1, A2), then     #
    #    asserts it.  Example 3.1.5 computes the result by hand:         #
    #    {A1 | A2, A4 | A5, A3 | A4}.                                    #
    # ----------------------------------------------------------------- #
    db.insert("A1 | A2")
    print("\nafter insert A1 | A2:", db.state)
    print("A1 | A2 certain?", db.is_certain("A1 | A2"))
    print("old ~A1 | A3 still certain?", db.is_certain("~A1 | A3"),
          " (forgotten: it involved A1)")

    # ----------------------------------------------------------------- #
    # 4. where: conditional update (Example 3.2.5).  On the worlds where #
    #    A5 holds, insert A1 | A2; leave the rest untouched.             #
    # ----------------------------------------------------------------- #
    db2 = IncompleteDatabase.over(5)
    db2.assert_("~A1 | A3", "A1 | A4", "A4 | A5", "~A1 | ~A2 | ~A5")
    db2.where("A5", insert("A1 | A2"))
    print("\nwhere-update result:", db2.state)
    print("A5 -> (A1 | A2) certain?", db2.is_certain("A5 -> (A1 | A2)"))

    # The compiled BLU program is the paper's Example 3.2.5 expansion:
    program, _ = language.where("A5", insert("A1 | A2")).compile()
    print("expanded BLU program:", program)

    # ----------------------------------------------------------------- #
    # 5. delete / clear / modify round out the update language.          #
    # ----------------------------------------------------------------- #
    db3 = IncompleteDatabase.over(3)
    db3.assert_("A1", "A2")
    db3.delete("A1")            # now certainly false
    db3.clear("A2")             # now entirely unknown
    print("\nafter delete A1, clear A2:")
    print("  ~A1 certain?", db3.is_certain("~A1"))
    print("  A2 certain?", db3.is_certain("A2"),
          "| A2 possible?", db3.is_possible("A2"))
    db3.modify("A3", "A1")      # nothing moves: A3 not certain anywhere...
    print("  after modify A3 -> A1, A1 possible?", db3.is_possible("A1"))

    # ----------------------------------------------------------------- #
    # 6. Two interchangeable backends with the same semantics.           #
    # ----------------------------------------------------------------- #
    exact = db2.with_backend("instance")
    print("\nclausal and instance backends agree:",
          exact.worlds() == db2.worlds())
    print("possible worlds:", len(db2.worlds()), "of", 2 ** 5)


if __name__ == "__main__":
    main()
