"""The service's session registry: named sessions, locks, idle eviction.

Sessions are keyed by *scoped* names -- the service prefixes every
client-supplied name with a per-connection scope (``c7/main``), so two
connections using the same name address two different databases.  That
makes client isolation structural: there is no configuration in which
one client can observe another's uncommitted updates, because there is
no shared key to collide on.

Each entry carries an :class:`asyncio.Lock`: the event loop interleaves
connections freely, but operations on *one* session are serialised, so a
client pipelining ``update`` then ``query`` always queries the updated
state, and an update can never begin while another is mid-application.

The registry also owns lifecycle policy: a bound on live sessions, an
idle-eviction sweep (sessions untouched for longer than the timeout are
closed, exactly what a long-lived server needs to survive abandoned
connections), and the ``srv.sessions`` gauge the telemetry feed reports.
"""

from __future__ import annotations

import asyncio
import time
from collections.abc import Callable
from dataclasses import dataclass, field

from repro.errors import EvaluationError
from repro.hlu.session import IncompleteDatabase
from repro.obs import runtime

__all__ = [
    "DEFAULT_IDLE_TIMEOUT",
    "DEFAULT_MAX_SESSIONS",
    "SessionEntry",
    "SessionRegistry",
]

#: Sessions idle for longer than this (seconds) are evicted by the sweep.
DEFAULT_IDLE_TIMEOUT = 300.0

#: Hard bound on concurrently live sessions (a memory guard: each session
#: holds a clause set and its undo snapshots).
DEFAULT_MAX_SESSIONS = 1024


@dataclass
class SessionEntry:
    """One live session: the database plus its lock and bookkeeping."""

    name: str
    db: IncompleteDatabase
    lock: asyncio.Lock = field(default_factory=asyncio.Lock)
    created: float = 0.0
    last_used: float = 0.0
    ops: int = 0


class SessionRegistry:
    """Scoped-name -> :class:`SessionEntry`, with lifecycle policy.

    Single-threaded by design (everything runs on the service's event
    loop), so the mapping needs no lock of its own; the per-entry locks
    exist to serialise *operations*, which await kernel work and can
    therefore interleave.
    """

    def __init__(
        self,
        idle_timeout: float = DEFAULT_IDLE_TIMEOUT,
        max_sessions: int = DEFAULT_MAX_SESSIONS,
        clock: Callable[[], float] = time.monotonic,
    ):
        if idle_timeout <= 0:
            raise ValueError(f"idle_timeout must be > 0, got {idle_timeout}")
        if max_sessions < 1:
            raise ValueError(f"max_sessions must be >= 1, got {max_sessions}")
        self.idle_timeout = idle_timeout
        self.max_sessions = max_sessions
        self._clock = clock
        self._entries: dict[str, SessionEntry] = {}
        self.evicted_total = 0

    # --- mapping ---------------------------------------------------------

    def __len__(self) -> int:
        return len(self._entries)

    def names(self) -> list[str]:
        return sorted(self._entries)

    def get(self, name: str) -> SessionEntry | None:
        return self._entries.get(name)

    def open(self, name: str, db: IncompleteDatabase) -> SessionEntry:
        """Register a fresh session under ``name``.

        Raises :class:`~repro.errors.EvaluationError` when the name is
        taken or the registry is full -- the service maps both onto
        protocol error responses.
        """
        if name in self._entries:
            raise EvaluationError(f"session {name!r} already exists")
        if len(self._entries) >= self.max_sessions:
            raise EvaluationError(
                f"session limit reached ({self.max_sessions} live sessions)"
            )
        now = self._clock()
        entry = SessionEntry(name=name, db=db, created=now, last_used=now)
        self._entries[name] = entry
        self._update_gauge()
        return entry

    def close(self, name: str) -> bool:
        """Drop a session; True when it existed."""
        existed = self._entries.pop(name, None) is not None
        if existed:
            self._update_gauge()
        return existed

    def touch(self, entry: SessionEntry) -> None:
        """Record use (idle eviction measures from the last touch)."""
        entry.last_used = self._clock()
        entry.ops += 1

    # --- lifecycle -------------------------------------------------------

    def evict_idle(self, now: float | None = None) -> list[str]:
        """Close every session idle past the timeout; returns the names.

        Entries whose lock is currently held are skipped -- an operation
        in flight is the opposite of idle, and evicting under a client
        mid-request would turn a slow kernel call into a vanished
        session.
        """
        now = self._clock() if now is None else now
        stale = [
            name
            for name, entry in self._entries.items()
            if now - entry.last_used > self.idle_timeout
            and not entry.lock.locked()
        ]
        for name in stale:
            del self._entries[name]
        if stale:
            self.evicted_total += len(stale)
            runtime.count("srv.sessions_evicted", len(stale))
            self._update_gauge()
        return stale

    def close_scope(self, scope_prefix: str) -> list[str]:
        """Drop every session whose name lives under a connection scope."""
        doomed = [
            name for name in self._entries if name.startswith(scope_prefix)
        ]
        for name in doomed:
            del self._entries[name]
        if doomed:
            self._update_gauge()
        return doomed

    def _update_gauge(self) -> None:
        runtime.set_gauge("srv.sessions", float(len(self._entries)))
