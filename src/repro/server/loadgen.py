"""The load driver: N concurrent clients hammering the update service.

This is the demand side of the throughput story: seeded clients speak
the wire protocol (:mod:`repro.server.protocol`) over a Unix or TCP
socket, each driving its own session with a configurable read/write mix
and scenario built from :mod:`repro.workloads.generators` -- so a load
run is as reproducible as any bench table.

Scenarios:

* ``mixed``   -- the steady-state service shape: queries and small
  inserts interleaved per ``--read-fraction``, with the occasional
  verified ``explain``;
* ``stream``  -- the Section 4 incremental-insert stream: a run of
  width-bounded inserts with a periodic certain-query checkpoint;
* ``repair``  -- updates racing queries with periodic ``undo``, the
  view-update/repair traffic pattern (every client keeps rewinding
  part of its own history).

Every completed round trip lands in a client-side
:class:`~repro.obs.runtime.MetricsRegistry` (``srv.update``,
``srv.query``, ...), which gives the live table and the final report the
same windowed ops/s and log-bucketed latency quantiles the server's own
telemetry uses.  The report becomes the BENCH schema-v4 ``throughput``
block (see :mod:`repro.obs.metrics`); ``--bench-out`` writes a full v4
run record so the baseline tooling can diff load runs like any other
experiment.

``python -m repro.cli loadgen --connect /tmp/repro.sock`` attaches to a
running server; ``--self-host`` spins the service in-process on a
temporary Unix socket for one-command smoke runs.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import random
import sys
import tempfile
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.logic.clauses import clause_to_formula
from repro.logic.propositions import Vocabulary
from repro.obs import live as live_mod
from repro.obs import runtime
from repro.server import protocol
from repro.workloads import generators

__all__ = [
    "SCENARIOS",
    "LoadConfig",
    "run_load",
    "report_to_throughput",
    "write_bench_record",
    "render_report",
    "loadgen_main",
]

SCENARIOS = ("mixed", "stream", "repair")

#: Ops the driver issues and reports on, in table order.
REPORTED_OPS = ("update", "query", "undo", "explain")


@dataclass
class LoadConfig:
    """One load run, fully determined (seeded) by its fields."""

    clients: int = 4
    duration: float = 10.0
    scenario: str = "mixed"
    read_fraction: float = 0.5
    letters: int = 10
    width: int = 2
    backend: str = "clausal"
    seed: int = 0

    def __post_init__(self) -> None:
        if self.clients < 1:
            raise ValueError(f"clients must be >= 1, got {self.clients}")
        if self.duration <= 0:
            raise ValueError(f"duration must be > 0, got {self.duration}")
        if self.scenario not in SCENARIOS:
            raise ValueError(
                f"scenario must be one of {SCENARIOS}, got {self.scenario!r}"
            )
        if not 0.0 <= self.read_fraction <= 1.0:
            raise ValueError(
                f"read_fraction must be in [0, 1], got {self.read_fraction}"
            )
        if self.letters < 2:
            raise ValueError(f"letters must be >= 2, got {self.letters}")
        if not 1 <= self.width <= self.letters:
            raise ValueError(
                f"width must be in [1, letters], got {self.width}"
            )
        if self.backend not in protocol.BACKENDS:
            raise ValueError(
                f"backend must be one of {protocol.BACKENDS}, got {self.backend!r}"
            )


class _WireClient:
    """One connection: write a request line, read the response line."""

    def __init__(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter):
        self._reader = reader
        self._writer = writer
        self._ids = 0

    async def call(self, op: str, **fields: Any) -> dict[str, Any]:
        self._ids += 1
        record = {"id": self._ids, "op": op, **fields}
        self._writer.write(protocol.encode(record))
        await self._writer.drain()
        line = await self._reader.readline()
        if not line:
            raise ConnectionError("server closed the connection")
        response = json.loads(line)
        if not isinstance(response, dict):
            raise ConnectionError(f"malformed response line: {line!r}")
        return response

    async def close(self) -> None:
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (ConnectionError, OSError):
            pass


async def _connect(
    socket_path: str | None, host: str | None, port: int | None
) -> _WireClient:
    if socket_path is not None:
        reader, writer = await asyncio.open_unix_connection(socket_path)
    else:
        assert host is not None and port is not None
        reader, writer = await asyncio.open_connection(host, port)
    return _WireClient(reader, writer)


def _choose_op(rng: random.Random, config: LoadConfig, step: int, undoable: int) -> str:
    """The next op kind for one client, per scenario."""
    if config.scenario == "stream":
        return "query" if step % 10 == 9 else "update"
    roll = rng.random()
    if config.scenario == "repair" and undoable > 0 and roll < 0.15:
        return "undo"
    if roll < 0.02:
        return "explain"
    return "query" if rng.random() < config.read_fraction else "update"


async def _run_client(
    index: int,
    config: LoadConfig,
    deadline: float,
    metrics: runtime.MetricsRegistry,
    socket_path: str | None,
    host: str | None,
    port: int | None,
) -> None:
    """One client: open a session, issue scenario ops until the deadline.

    Each client derives its own :class:`random.Random` from the run seed
    and its index, so N clients explore N distinct-but-reproducible
    trajectories.
    """
    rng = random.Random(config.seed * 1_000_003 + index)
    client = await _connect(socket_path, host, port)
    try:
        hello = await client.call("hello")
        served = hello.get("protocol")
        if served != protocol.PROTOCOL_VERSION:
            raise ConnectionError(
                f"server speaks protocol {served!r}, "
                f"driver speaks {protocol.PROTOCOL_VERSION}"
            )
        opened = await client.call(
            "open", session="load", letters=config.letters, backend=config.backend
        )
        if not opened.get("ok"):
            raise ConnectionError(f"open failed: {opened.get('error')}")
        vocabulary = Vocabulary(opened["letters"])
        undoable = 0
        step = 0
        while time.monotonic() < deadline:
            op = _choose_op(rng, config, step, undoable)
            step += 1
            started = time.perf_counter()
            if op == "update":
                payload = clause_to_formula(
                    vocabulary,
                    generators.random_clause(rng, len(vocabulary), config.width),
                )
                response = await client.call(
                    "update", session="load", program=f"(insert {{{payload}}})"
                )
                if response.get("ok"):
                    undoable += 1
            elif op == "query":
                formula = generators.random_formula(rng, vocabulary, depth=2)
                mode = "certain" if rng.random() < 0.5 else "possible"
                response = await client.call(
                    "query", session="load", mode=mode, formula=str(formula)
                )
            elif op == "undo":
                response = await client.call("undo", session="load")
                if response.get("ok"):
                    undoable -= 1
            else:  # explain
                formula = generators.random_formula(rng, vocabulary, depth=1)
                response = await client.call(
                    "explain", session="load", formula=str(formula)
                )
            elapsed = time.perf_counter() - started
            metrics.record_op(f"srv.{op}", elapsed)
            if not response.get("ok"):
                metrics.count(f"load.{op}.errors")
                metrics.count("load.errors")
    finally:
        await client.close()


async def _live_loop(
    metrics: runtime.MetricsRegistry,
    display: live_mod.LiveDisplay,
    model: live_mod.DashboardModel,
    interval: float,
) -> None:
    view = model.worker("loadgen")
    view.status = "running"
    while True:
        await asyncio.sleep(interval)
        view.snapshot = metrics.snapshot()
        display.update(model)


async def _run_load_async(
    config: LoadConfig,
    socket_path: str | None,
    host: str | None,
    port: int | None,
    live: bool,
    live_interval: float,
) -> dict[str, Any]:
    metrics = runtime.MetricsRegistry(window_seconds=5.0)
    display = live_mod.LiveDisplay(sys.stdout) if live else None
    model = live_mod.DashboardModel(title=f"loadgen {config.scenario}")
    live_task: asyncio.Task[None] | None = None
    if display is not None:
        live_task = asyncio.create_task(
            _live_loop(metrics, display, model, live_interval)
        )
    started = time.monotonic()
    deadline = started + config.duration
    results = await asyncio.gather(
        *(
            _run_client(
                index, config, deadline, metrics, socket_path, host, port
            )
            for index in range(config.clients)
        ),
        return_exceptions=True,
    )
    elapsed = time.monotonic() - started
    if live_task is not None:
        live_task.cancel()
        try:
            await live_task
        except asyncio.CancelledError:
            pass
    if display is not None:
        view = model.worker("loadgen")
        view.snapshot = metrics.snapshot()
        view.status = "done"
        display.close(model)
    failures = [r for r in results if isinstance(r, BaseException)]
    for failure in failures:
        print(f"loadgen: client failed: {failure!r}", file=sys.stderr)
    return _build_report(config, metrics, elapsed, len(failures))


def _build_report(
    config: LoadConfig,
    metrics: runtime.MetricsRegistry,
    elapsed: float,
    client_failures: int,
) -> dict[str, Any]:
    snap = metrics.snapshot()
    counters = snap["counters"]
    operations: dict[str, Any] = {}
    total_ops = 0
    total_errors = int(counters.get("load.errors", 0))
    for op in REPORTED_OPS:
        meter = snap["meters"].get(f"srv.{op}")
        if meter is None:
            continue
        count = int(meter["count"])
        total_ops += count
        hist = snap["histograms"][f"srv.{op}.seconds"]
        operations[op] = {
            "count": count,
            "errors": int(counters.get(f"load.{op}.errors", 0)),
            "ops_per_second": count / elapsed if elapsed > 0 else 0.0,
            "latency_seconds": {
                "mean": float(hist["total"]) / count if count else 0.0,
                "p50": hist["p50"],
                "p90": hist["p90"],
                "p99": hist["p99"],
                "max": hist["max"],
            },
        }
    return {
        "duration_seconds": elapsed,
        "clients": config.clients,
        "scenario": config.scenario,
        "read_fraction": config.read_fraction,
        "seed": config.seed,
        "backend": config.backend,
        "letters": config.letters,
        "total_ops": total_ops,
        "errors": total_errors,
        "client_failures": client_failures,
        "ops_per_second": total_ops / elapsed if elapsed > 0 else 0.0,
        "operations": operations,
    }


def run_load(
    config: LoadConfig,
    socket_path: str | None = None,
    host: str | None = None,
    port: int | None = None,
    self_host: bool = False,
    live: bool = False,
    live_interval: float = 1.0,
) -> dict[str, Any]:
    """Run one load scenario and return the throughput report.

    Either attach to a running service (``socket_path`` or
    ``host``/``port``) or pass ``self_host=True`` to spin an in-process
    :class:`~repro.server.service.UpdateService` on a temporary Unix
    socket for the duration of the run -- the benchmark and smoke-test
    path, where one process is both sides of the socket and the ops/s
    number still exercises the full wire protocol.
    """

    async def _go() -> dict[str, Any]:
        if not self_host:
            return await _run_load_async(
                config, socket_path, host, port, live, live_interval
            )
        from repro.server.service import UpdateService

        with tempfile.TemporaryDirectory(prefix="repro-loadgen-") as tmp:
            path = str(Path(tmp) / "service.sock")
            service = UpdateService()
            await service.start(socket_path=path)
            try:
                return await _run_load_async(
                    config, path, None, None, live, live_interval
                )
            finally:
                await service.stop()

    return asyncio.run(_go())


# ---------------------------------------------------------------------------
# Reporting
# ---------------------------------------------------------------------------


def report_to_throughput(report: dict[str, Any]) -> dict[str, Any]:
    """The report trimmed to the BENCH schema-v4 ``throughput`` block."""
    keep = (
        "duration_seconds",
        "clients",
        "scenario",
        "read_fraction",
        "seed",
        "total_ops",
        "errors",
        "ops_per_second",
        "operations",
    )
    return {key: report[key] for key in keep}


def write_bench_record(report: dict[str, Any], path: str) -> Path:
    """Write a load run as a schema-v4 BENCH run record.

    The run becomes one ``bench_srv_<scenario>`` experiment (wall time,
    op/error counters) plus the top-level ``throughput`` block, so the
    existing baseline tooling (``bench-diff``, ``perf-history``) can
    track load runs alongside the paper experiments.
    """
    from repro.bench.harness import Timing
    from repro.obs import metrics as metrics_mod

    ident = f"bench_srv_{report['scenario']}"
    record = metrics_mod.RunRecord(
        schema_version=metrics_mod.SCHEMA_VERSION,
        created=time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        git_sha=metrics_mod.current_git_sha(),
        fingerprint=metrics_mod.machine_fingerprint(),
        experiments=[
            metrics_mod.ExperimentMetrics(
                ident=ident,
                title=(
                    f"service throughput: {report['clients']} clients, "
                    f"scenario {report['scenario']}"
                ),
                holds=report["client_failures"] == 0,
                seconds=Timing([report["duration_seconds"]]).to_json(),
                counters={
                    "total_ops": report["total_ops"],
                    "errors": report["errors"],
                },
            )
        ],
        throughput=report_to_throughput(report),
    )
    return metrics_mod.write_run_record(record, path)


def render_report(report: dict[str, Any]) -> str:
    """The report as the compact table the CLI prints."""
    lines = [
        f"== loadgen {report['scenario']}: {report['clients']} clients, "
        f"{report['duration_seconds']:.1f}s ==",
        f"{'op':<9}{'count':>8}{'errors':>8}{'ops/s':>10}"
        f"{'p50':>10}{'p90':>10}{'p99':>10}",
    ]

    def _ms(value: float | None) -> str:
        return "-" if value is None else f"{value * 1e3:.2f}ms"

    for op, stats in sorted(report["operations"].items()):
        latency = stats["latency_seconds"]
        lines.append(
            f"{op:<9}{stats['count']:>8}{stats['errors']:>8}"
            f"{stats['ops_per_second']:>10.1f}"
            f"{_ms(latency['p50']):>10}{_ms(latency['p90']):>10}"
            f"{_ms(latency['p99']):>10}"
        )
    lines.append(
        f"{'TOTAL':<9}{report['total_ops']:>8}{report['errors']:>8}"
        f"{report['ops_per_second']:>10.1f}"
    )
    return "\n".join(lines)


def loadgen_main(argv: list[str] | None = None) -> int:
    """``python -m repro.cli loadgen``: drive load at an update service."""
    parser = argparse.ArgumentParser(
        prog="repro-hlu loadgen",
        description="Drive N concurrent seeded clients at the update service.",
    )
    target = parser.add_mutually_exclusive_group(required=True)
    target.add_argument(
        "--connect",
        metavar="SOCKET",
        default=None,
        help="Unix socket path of a running service",
    )
    target.add_argument(
        "--tcp",
        metavar="HOST:PORT",
        default=None,
        help="TCP address of a running service",
    )
    target.add_argument(
        "--self-host",
        action="store_true",
        help="spin the service in-process on a temporary Unix socket",
    )
    parser.add_argument("--clients", type=int, default=4, metavar="N")
    parser.add_argument("--duration", type=float, default=10.0, metavar="SECONDS")
    parser.add_argument(
        "--scenario", choices=SCENARIOS, default="mixed"
    )
    parser.add_argument(
        "--read-fraction",
        type=float,
        default=0.5,
        metavar="F",
        help="fraction of mixed/repair traffic that is queries (default: 0.5)",
    )
    parser.add_argument("--letters", type=int, default=10, metavar="N")
    parser.add_argument(
        "--width",
        type=int,
        default=2,
        metavar="W",
        help="clause width of generated inserts (default: 2)",
    )
    parser.add_argument(
        "--backend", choices=("clausal", "instance"), default="clausal"
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--live",
        action="store_true",
        help="repaint a live throughput table while driving "
        "(headless-safe: one summary line per interval without a TTY)",
    )
    parser.add_argument(
        "--live-interval", type=float, default=1.0, metavar="SECONDS"
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="print the full report as JSON instead of the table",
    )
    parser.add_argument(
        "--bench-out",
        metavar="FILE",
        default=None,
        help="also write a BENCH schema-v4 run record with the "
        "throughput block (diffable via 'python -m repro.cli bench-diff')",
    )
    options = parser.parse_args(argv)

    host = port = None
    if options.tcp is not None:
        address, _, port_text = options.tcp.rpartition(":")
        try:
            port = int(port_text)
        except ValueError:
            parser.error(f"--tcp wants HOST:PORT, got {options.tcp!r}")
        host = address or "127.0.0.1"
    try:
        config = LoadConfig(
            clients=options.clients,
            duration=options.duration,
            scenario=options.scenario,
            read_fraction=options.read_fraction,
            letters=options.letters,
            width=options.width,
            backend=options.backend,
            seed=options.seed,
        )
    except ValueError as error:
        parser.error(str(error))

    try:
        report = run_load(
            config,
            socket_path=options.connect,
            host=host,
            port=port,
            self_host=options.self_host,
            live=options.live,
            live_interval=options.live_interval,
        )
    except (ConnectionError, OSError) as error:
        print(f"loadgen: cannot reach service: {error}", file=sys.stderr)
        return 1

    if options.json:
        print(json.dumps(report, indent=2, sort_keys=True))
    else:
        print(render_report(report))

    if options.bench_out is not None:
        path = write_bench_record(report, options.bench_out)
        print(f"wrote BENCH record to {path}")

    if report["client_failures"]:
        return 1
    if report["total_ops"] == 0:
        print("loadgen: no operations completed", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(loadgen_main())
