"""The concurrent update service: a long-lived server over HLU sessions.

The paper specifies update programs against a single session; the
ROADMAP's north star is a production-scale system serving heavy
concurrent traffic.  This package is the bridge: a long-lived asyncio
front end around :class:`repro.hlu.session.IncompleteDatabase` that
accepts concurrent BLU/HLU update, query, undo, and explain sessions
over a newline-delimited-JSON socket protocol, plus the load driver
that turns the bench suite into a throughput story.

* :mod:`repro.server.protocol` -- the schema-versioned wire protocol
  (request validation, response shapes, error codes);
* :mod:`repro.server.sessions` -- the per-connection session registry
  (per-session locks, idle eviction, live-session gauge);
* :mod:`repro.server.service` -- the asyncio service itself (TCP or
  Unix socket, graceful drain on SIGTERM, live telemetry and audit
  wiring, ``python -m repro.cli serve``);
* :mod:`repro.server.loadgen` -- N concurrent clients with a
  configurable read/write mix and scenario, a live throughput table,
  and schema-v4 ``BENCH`` records with ops/s and latency percentiles
  (``python -m repro.cli loadgen``).
"""

from __future__ import annotations

__all__ = ["protocol", "sessions", "service", "loadgen"]
