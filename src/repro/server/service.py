"""The asyncio update service: concurrent HLU sessions over a socket.

One long-lived process, many concurrent clients: each connection speaks
the newline-delimited JSON protocol (:mod:`repro.server.protocol`),
opens named sessions (scoped per connection, so clients are structurally
isolated), and drives BLU/HLU updates, certain/possible queries, undo,
and verified explain against :class:`~repro.hlu.session.IncompleteDatabase`.

Concurrency model: one event loop, per-session :class:`asyncio.Lock`.
Kernel work (resolution, SAT) runs synchronously on the loop -- the
service's job in this PR is correct concurrent *session* handling and an
honest requests-per-second number; fanning kernel work out of the loop
is exactly the sharding/batching work the ROADMAP sequences next, and
this server is the harness that will measure it.

Operational surface:

* live telemetry through the process-wide :mod:`repro.obs.runtime`
  registry -- per-op rate meters and windowed latency histograms
  (``srv.update``, ``srv.query``, ...), gauges for live sessions and
  connections, streamed to a JSONL feed by a background pump;
* the session audit trail (:mod:`repro.hlu.audit`): with ``--audit-out``
  every session the service opens records its operations, so a drained
  server leaves a trail that ``python -m repro.cli audit --replay``
  can re-run and verify fingerprint-for-fingerprint;
* graceful drain on SIGTERM/SIGINT: stop accepting, let in-flight
  requests finish, answer anything else with a ``draining`` error,
  flush telemetry and audit, exit 0.

``python -m repro.cli serve --socket /tmp/repro.sock`` is the CLI
entry; :class:`UpdateService` plus :meth:`UpdateService.start` is the
embeddable API the tests and the self-hosted benchmark use.
"""

from __future__ import annotations

import argparse
import asyncio
import itertools
import signal
import sys
import time
from typing import Any

from repro.errors import EvaluationError, ParseError, ProtocolError, ReproError
from repro.hlu import audit as audit_mod
from repro.hlu.session import IncompleteDatabase
from repro.obs import runtime
from repro.obs.logging import get_logger
from repro.server import protocol
from repro.server.sessions import (
    DEFAULT_IDLE_TIMEOUT,
    DEFAULT_MAX_SESSIONS,
    SessionEntry,
    SessionRegistry,
)

__all__ = ["UpdateService", "serve_main"]

_LOG = get_logger("repro.server.service")

#: How long a graceful drain waits for in-flight requests (seconds).
DRAIN_GRACE_SECONDS = 5.0


class UpdateService:
    """The server: a session registry plus the connection handler.

    Embed it (tests, benchmarks)::

        service = UpdateService()
        server = await service.start(socket_path="/tmp/repro.sock")
        ...
        await service.stop()   # graceful drain

    or run it as a process via :func:`serve_main`.
    """

    def __init__(
        self,
        idle_timeout: float = DEFAULT_IDLE_TIMEOUT,
        max_sessions: int = DEFAULT_MAX_SESSIONS,
        drain_grace: float = DRAIN_GRACE_SECONDS,
    ):
        self.registry = SessionRegistry(
            idle_timeout=idle_timeout, max_sessions=max_sessions
        )
        self.drain_grace = drain_grace
        self.draining = False
        self.connections = 0
        self.requests_total = 0
        self._conn_ids = itertools.count(1)
        self._inflight = 0
        self._server: asyncio.AbstractServer | None = None
        self._evictor: asyncio.Task[None] | None = None
        self._writers: set[asyncio.StreamWriter] = set()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    async def start(
        self,
        socket_path: str | None = None,
        host: str | None = None,
        port: int | None = None,
        evict_interval: float | None = None,
    ) -> asyncio.AbstractServer:
        """Listen on a Unix socket (``socket_path``) or TCP host/port."""
        limit = protocol.MAX_LINE_BYTES + 2
        if socket_path is not None:
            self._server = await asyncio.start_unix_server(
                self._on_connection, path=socket_path, limit=limit
            )
        elif host is not None and port is not None:
            self._server = await asyncio.start_server(
                self._on_connection, host=host, port=port, limit=limit
            )
        else:
            raise ValueError("need socket_path or host+port")
        interval = (
            evict_interval
            if evict_interval is not None
            else max(0.25, self.registry.idle_timeout / 4.0)
        )
        self._evictor = asyncio.create_task(self._evict_loop(interval))
        return self._server

    async def stop(self) -> None:
        """Graceful drain: stop accepting, finish in-flight work, close.

        New requests arriving on live connections while draining are
        answered with a ``draining`` error rather than silence, so a
        pipelining client sees a clean rejection instead of a hang.
        """
        self.draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if self._evictor is not None:
            self._evictor.cancel()
            try:
                await self._evictor
            except asyncio.CancelledError:
                pass
        deadline = time.monotonic() + self.drain_grace
        while self._inflight and time.monotonic() < deadline:
            await asyncio.sleep(0.01)
        for writer in list(self._writers):
            writer.close()
        for writer in list(self._writers):
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass
        self._writers.clear()

    async def _evict_loop(self, interval: float) -> None:
        while True:
            await asyncio.sleep(interval)
            evicted = self.registry.evict_idle()
            if evicted:
                _LOG.info(
                    "evicted idle sessions",
                    extra={"sessions": evicted, "count": len(evicted)},
                )

    # ------------------------------------------------------------------
    # Connections
    # ------------------------------------------------------------------

    async def _on_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        scope = f"c{next(self._conn_ids)}"
        self.connections += 1
        runtime.set_gauge("srv.connections", float(self.connections))
        self._writers.add(writer)
        try:
            while True:
                try:
                    line = await reader.readline()
                except (asyncio.LimitOverrunError, ValueError):
                    # An over-long line cannot be resynchronised reliably;
                    # answer, then drop this connection only.
                    writer.write(
                        protocol.encode(
                            protocol.error_response(
                                None,
                                "line-too-long",
                                f"request line exceeds "
                                f"{protocol.MAX_LINE_BYTES} bytes",
                            )
                        )
                    )
                    await writer.drain()
                    break
                if not line:
                    break
                if not line.strip():
                    continue
                response = await self._handle_line(line, scope)
                writer.write(protocol.encode(response))
                try:
                    await writer.drain()
                except (ConnectionError, OSError):
                    break
        except (ConnectionError, OSError):
            pass
        finally:
            closed = self.registry.close_scope(f"{scope}/")
            if closed:
                _LOG.info(
                    "connection closed",
                    extra={"scope": scope, "sessions_dropped": len(closed)},
                )
            self.connections -= 1
            runtime.set_gauge("srv.connections", float(self.connections))
            self._writers.discard(writer)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _handle_line(self, line: bytes, scope: str) -> dict[str, Any]:
        try:
            request = protocol.parse_request(line)
        except ProtocolError as error:
            runtime.count("srv.bad_requests")
            return protocol.error_response(
                error.request_id, error.code, str(error)
            )
        self.requests_total += 1
        self._inflight += 1
        started = time.perf_counter()
        try:
            return await self._dispatch(request, scope)
        except ReproError as error:
            # A library-level failure the validator could not foresee
            # (e.g. a constraint set the backend refuses): a clean error
            # response, not a dropped connection.
            runtime.count("srv.errors")
            return protocol.error_response(request.id, "rejected", str(error))
        except Exception as error:  # noqa: BLE001 - the service must survive
            runtime.count("srv.errors")
            _LOG.warning(
                "internal error",
                extra={"op": request.op, "error": repr(error)},
            )
            return protocol.error_response(
                request.id, "internal", f"internal error: {error!r}"
            )
        finally:
            self._inflight -= 1
            runtime.record_op(
                f"srv.{request.op}", time.perf_counter() - started
            )

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------

    async def _dispatch(
        self, request: protocol.Request, scope: str
    ) -> dict[str, Any]:
        op = request.op
        if op == "hello":
            return protocol.ok_response(request.id, **protocol.hello_payload())
        if op == "stats":
            return protocol.ok_response(
                request.id,
                sessions=len(self.registry),
                connections=self.connections,
                draining=self.draining,
                requests_total=self.requests_total,
                telemetry=runtime.registry().snapshot()
                if runtime.is_enabled()
                else None,
            )
        if self.draining:
            return protocol.error_response(
                request.id, "draining", "service is draining; no new work"
            )
        assert request.session is not None  # validator guarantees it
        name = f"{scope}/{request.session}"
        if op == "open":
            return self._do_open(request, name)
        entry = self.registry.get(name)
        if entry is None:
            return protocol.error_response(
                request.id,
                "unknown-session",
                f"no open session named {request.session!r} on this "
                f"connection (send an 'open' first)",
            )
        async with entry.lock:
            self.registry.touch(entry)
            if op == "update":
                return self._do_update(request, entry)
            if op == "query":
                return self._do_query(request, entry)
            if op == "undo":
                return self._do_undo(request, entry)
            if op == "explain":
                return self._do_explain(request, entry)
            if op == "state":
                return self._do_state(request, entry)
            if op == "close":
                self.registry.close(name)
                return protocol.ok_response(request.id, closed=True)
        raise AssertionError(f"unhandled op {op!r}")  # pragma: no cover

    def _do_open(
        self, request: protocol.Request, name: str
    ) -> dict[str, Any]:
        if self.registry.get(name) is not None:
            return protocol.error_response(
                request.id,
                "session-exists",
                f"session {request.session!r} is already open on this "
                f"connection",
            )
        try:
            db = IncompleteDatabase.over(
                request.params["letters"],
                constraints=request.params["constraints"],
                backend=request.params["backend"],
            )
            self.registry.open(name, db)
        except ParseError as error:
            return protocol.error_response(request.id, "parse-error", str(error))
        except EvaluationError as error:
            return protocol.error_response(request.id, "rejected", str(error))
        return protocol.ok_response(
            request.id,
            session=request.session,
            letters=list(db.vocabulary.names),
            backend=db.backend,
        )

    def _do_update(
        self, request: protocol.Request, entry: SessionEntry
    ) -> dict[str, Any]:
        from repro.hlu.surface import parse_updates

        try:
            updates = parse_updates(request.params["program"])
        except ParseError as error:
            return protocol.error_response(request.id, "parse-error", str(error))
        if not updates:
            return protocol.error_response(
                request.id, "bad-request", "program contains no updates"
            )
        applied = 0
        try:
            for update in updates:
                entry.db.apply(update)
                applied += 1
        except ReproError as error:
            return protocol.error_response(
                request.id,
                "rejected",
                f"update {applied + 1}/{len(updates)} rejected: {error} "
                f"({applied} applied and kept; undo to roll back)",
            )
        clauses = entry.db.clauses()
        return protocol.ok_response(
            request.id,
            applied=applied,
            clause_count=len(clauses.clauses),
            inconsistent=clauses.has_empty_clause,
        )

    def _do_query(
        self, request: protocol.Request, entry: SessionEntry
    ) -> dict[str, Any]:
        mode = request.params["mode"]
        try:
            if mode == "certain":
                result = entry.db.is_certain(request.params["formula"])
            else:
                result = entry.db.is_possible(request.params["formula"])
        except ParseError as error:
            return protocol.error_response(request.id, "parse-error", str(error))
        return protocol.ok_response(request.id, mode=mode, result=result)

    def _do_undo(
        self, request: protocol.Request, entry: SessionEntry
    ) -> dict[str, Any]:
        try:
            entry.db.undo()
        except EvaluationError as error:
            return protocol.error_response(request.id, "rejected", str(error))
        return protocol.ok_response(
            request.id,
            clause_count=len(entry.db.clauses().clauses),
            history_length=len(entry.db.history),
        )

    def _do_explain(
        self, request: protocol.Request, entry: SessionEntry
    ) -> dict[str, Any]:
        from repro.logic.clauses import clause_to_str
        from repro.logic.cnf import formula_to_clauses
        from repro.logic.parser import parse_formula
        from repro.obs import provenance

        try:
            formula = parse_formula(request.params["formula"])
        except ParseError as error:
            return protocol.error_response(request.id, "parse-error", str(error))
        clause_set = entry.db.clauses()
        targets = formula_to_clauses(formula, entry.db.vocabulary).sorted_clauses()
        if not targets:
            return protocol.ok_response(
                request.id,
                certain=True,
                verified=True,
                steps=0,
                derivation="(tautology -- nothing to derive)",
            )
        blocks: list[str] = []
        step_count = 0
        verified = True
        for target in targets:
            steps = provenance.explain_entailment(clause_set, target)
            if steps is None:
                rendered = clause_to_str(entry.db.vocabulary, target)
                return protocol.ok_response(
                    request.id,
                    certain=False,
                    verified=True,
                    steps=0,
                    derivation=f"no refutation derives {rendered} "
                    f"(a world violating it is possible)",
                )
            defects = provenance.verify_derivation(
                steps, target=steps[-1].clause, axioms=clause_set.clauses
            )
            verified = verified and not defects
            step_count += len(steps)
            blocks.append(
                provenance.render_derivation(steps, entry.db.vocabulary)
            )
        return protocol.ok_response(
            request.id,
            certain=True,
            verified=verified,
            steps=step_count,
            derivation="\n".join(blocks),
        )

    def _do_state(
        self, request: protocol.Request, entry: SessionEntry
    ) -> dict[str, Any]:
        from repro.logic.clauses import clause_to_str

        clauses = entry.db.clauses()
        return protocol.ok_response(
            request.id,
            backend=entry.db.backend,
            letters=list(entry.db.vocabulary.names),
            clauses=[
                clause_to_str(entry.db.vocabulary, clause)
                for clause in clauses.sorted_clauses()
            ],
            history=[str(update) for update in entry.db.history],
            inconsistent=clauses.has_empty_clause,
        )


# ---------------------------------------------------------------------------
# Process entry point
# ---------------------------------------------------------------------------


async def _serve_until_stopped(
    service: UpdateService,
    stop: asyncio.Event,
    socket_path: str | None,
    host: str | None,
    port: int | None,
) -> None:
    server = await service.start(socket_path=socket_path, host=host, port=port)
    where = socket_path or f"{host}:{port}"
    print(f"repro-hlu service listening on {where}", flush=True)
    loop = asyncio.get_running_loop()
    for signum in (signal.SIGTERM, signal.SIGINT):
        try:
            loop.add_signal_handler(signum, stop.set)
        except (NotImplementedError, RuntimeError):  # pragma: no cover
            pass  # non-POSIX loops: Ctrl-C still lands as KeyboardInterrupt
    try:
        await stop.wait()
    finally:
        print("draining...", flush=True)
        await service.stop()
        server_sockets = getattr(server, "sockets", None)
        del server_sockets


def serve_main(argv: list[str] | None = None) -> int:
    """``python -m repro.cli serve``: run the update service.

    Listens on ``--socket PATH`` (Unix) or ``--host/--port`` (TCP),
    with live telemetry always on (``--telemetry-out`` streams the JSONL
    feed; ``stats`` serves snapshots either way) and the audit trail
    opt-in via ``--audit-out``.  SIGTERM/SIGINT drain gracefully: accept
    nothing new, finish in-flight requests, flush feed and trail, exit 0.
    """
    parser = argparse.ArgumentParser(
        prog="repro-hlu serve",
        description="Serve concurrent HLU update/query sessions over a socket.",
    )
    target = parser.add_mutually_exclusive_group(required=True)
    target.add_argument(
        "--socket", metavar="PATH", default=None, help="Unix socket path"
    )
    target.add_argument(
        "--port", type=int, metavar="PORT", default=None, help="TCP port"
    )
    parser.add_argument(
        "--host",
        default="127.0.0.1",
        help="TCP bind host for --port (default: 127.0.0.1)",
    )
    parser.add_argument(
        "--idle-timeout",
        type=float,
        metavar="SECONDS",
        default=DEFAULT_IDLE_TIMEOUT,
        help=f"evict sessions idle this long (default: {DEFAULT_IDLE_TIMEOUT:g})",
    )
    parser.add_argument(
        "--max-sessions",
        type=int,
        metavar="N",
        default=DEFAULT_MAX_SESSIONS,
        help=f"bound on live sessions (default: {DEFAULT_MAX_SESSIONS})",
    )
    parser.add_argument(
        "--telemetry-out",
        metavar="FILE",
        default=None,
        help="stream the live telemetry feed here as JSONL "
        "(inspect with 'python -m repro.cli telemetry FILE')",
    )
    parser.add_argument(
        "--telemetry-interval",
        type=float,
        metavar="SECONDS",
        default=1.0,
        help="seconds between telemetry snapshots (default: 1.0)",
    )
    parser.add_argument(
        "--audit-out",
        metavar="FILE",
        default=None,
        help="record the session audit trail here as JSONL "
        "(check with 'python -m repro.cli audit FILE --replay')",
    )
    options = parser.parse_args(argv)
    if options.idle_timeout <= 0:
        parser.error(f"--idle-timeout must be > 0, got {options.idle_timeout}")
    if options.max_sessions < 1:
        parser.error(f"--max-sessions must be >= 1, got {options.max_sessions}")
    if options.telemetry_interval <= 0:
        parser.error(
            f"--telemetry-interval must be > 0, got {options.telemetry_interval}"
        )

    runtime.reset()
    runtime.enable()
    writer = None
    pump = None
    if options.telemetry_out is not None:
        try:
            writer = runtime.TelemetryWriter(options.telemetry_out, worker="serve")
        except OSError as exc:
            parser.error(f"cannot write --telemetry-out file: {exc}")
        pump = runtime.TelemetryPump(
            writer, options.telemetry_interval, runtime.ResourceSampler()
        )
        pump.start()
    if options.audit_out is not None:
        try:
            audit_mod.enable(options.audit_out)
        except OSError as exc:
            parser.error(f"cannot write --audit-out file: {exc}")

    service = UpdateService(
        idle_timeout=options.idle_timeout, max_sessions=options.max_sessions
    )
    stop = asyncio.Event()
    try:
        asyncio.run(
            _serve_until_stopped(
                service, stop, options.socket, options.host, options.port
            )
        )
    except KeyboardInterrupt:
        pass
    finally:
        if options.audit_out is not None:
            audit_mod.disable()
        if pump is not None:
            pump.stop(final_snapshot=True)
        if writer is not None:
            writer.close()
        runtime.disable()
    print("service stopped", flush=True)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(serve_main())
