"""The update service's wire protocol: newline-delimited JSON, version 1.

One request per line, one response per line, always in order -- a
deliberately boring framing that every language can speak with a socket
and a JSON library.  Every request carries a client-chosen ``id`` (echoed
verbatim on the response), an ``op``, and -- for session-scoped ops -- a
``session`` name.  Responses are ``{"id": ..., "ok": true, ...payload}``
or ``{"id": ..., "ok": false, "error": {"code": ..., "message": ...}}``.

Requests::

    {"id": 1, "op": "hello"}
    {"id": 2, "op": "open",  "session": "s", "letters": 8,
     "backend": "clausal", "constraints": ["A1 -> A2"]}
    {"id": 3, "op": "update", "session": "s", "program": "(insert {A1 | A2})"}
    {"id": 4, "op": "query",  "session": "s", "mode": "certain",
     "formula": "A1 | A2"}
    {"id": 5, "op": "undo",    "session": "s"}
    {"id": 6, "op": "explain", "session": "s", "formula": "A1 | A2"}
    {"id": 7, "op": "state",   "session": "s"}
    {"id": 8, "op": "stats"}
    {"id": 9, "op": "close",   "session": "s"}

The protocol is schema-versioned (:data:`PROTOCOL_VERSION`, reported by
``hello`` and checkable by clients before they commit to a dialect) and
the validator rejects malformed requests with pointed error codes
*without* dropping the connection -- a load driver must never lose its
pipeline to one bad line.  Session names are scoped per connection by
the service (see :mod:`repro.server.sessions`), so two clients using the
same name never observe each other's state.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any

from repro.errors import ProtocolError
from repro.hlu.session import BACKENDS

__all__ = [
    "PROTOCOL_VERSION",
    "MAX_LINE_BYTES",
    "OPS",
    "SESSION_OPS",
    "QUERY_MODES",
    "ERROR_CODES",
    "Request",
    "parse_request",
    "validate_request",
    "encode",
    "ok_response",
    "error_response",
    "hello_payload",
]

#: Bumped on any incompatible change to request/response shapes; the
#: ``hello`` response carries it so clients can refuse a dialect they
#: would silently mis-speak.
PROTOCOL_VERSION = 1

#: Hard per-line budget (requests and responses).  A newline-delimited
#: protocol must bound its lines or one hostile/buggy client can balloon
#: the server's read buffer.
MAX_LINE_BYTES = 1_000_000

#: Every operation the service understands, in documentation order.
OPS = (
    "hello",
    "open",
    "update",
    "query",
    "undo",
    "explain",
    "state",
    "stats",
    "close",
)

#: Ops that address a named session (and therefore require ``session``).
SESSION_OPS = frozenset(
    {"open", "update", "query", "undo", "explain", "state", "close"}
)

QUERY_MODES = ("certain", "possible")

#: Machine-readable error codes a response's ``error.code`` may carry.
ERROR_CODES = (
    "bad-json",
    "bad-request",
    "unknown-op",
    "unknown-session",
    "session-exists",
    "parse-error",
    "rejected",
    "draining",
    "line-too-long",
    "internal",
)


@dataclass(frozen=True)
class Request:
    """One validated request: id, op, optional session, op parameters."""

    id: Any
    op: str
    session: str | None = None
    params: dict[str, Any] = field(default_factory=dict)


def _fail(message: str, code: str = "bad-request", request_id: Any = None):
    raise ProtocolError(message, code=code, request_id=request_id)


def _extract_id(record: Any) -> Any:
    """Best-effort request id for error correlation (None when absent)."""
    if isinstance(record, dict):
        candidate = record.get("id")
        if isinstance(candidate, (int, str)) and not isinstance(candidate, bool):
            return candidate
    return None


def parse_request(line: str | bytes) -> Request:
    """Parse and validate one request line.

    Raises :class:`~repro.errors.ProtocolError` with a machine-readable
    ``code`` (and the request id when one could be salvaged) on any
    problem -- the service turns that into an error *response*, never a
    dropped connection.
    """
    if isinstance(line, bytes):
        if len(line) > MAX_LINE_BYTES:
            _fail(
                f"request line exceeds {MAX_LINE_BYTES} bytes",
                code="line-too-long",
            )
        try:
            line = line.decode("utf-8")
        except UnicodeDecodeError as exc:
            _fail(f"request line is not UTF-8: {exc}", code="bad-json")
    try:
        record = json.loads(line)
    except json.JSONDecodeError as exc:
        _fail(f"request is not valid JSON: {exc}", code="bad-json")
    return validate_request(record)


def validate_request(record: Any) -> Request:
    """Validate one decoded request object into a :class:`Request`."""
    request_id = _extract_id(record)
    if not isinstance(record, dict):
        _fail("request must be a JSON object", request_id=request_id)
    if "id" not in record:
        _fail("request is missing 'id'", request_id=request_id)
    if request_id is None:
        _fail("request 'id' must be a string or integer", request_id=None)
    op = record.get("op")
    if not isinstance(op, str):
        _fail("request is missing a string 'op'", request_id=request_id)
    if op not in OPS:
        _fail(
            f"unknown op {op!r} (known: {', '.join(OPS)})",
            code="unknown-op",
            request_id=request_id,
        )
    session = record.get("session")
    if op in SESSION_OPS:
        if not isinstance(session, str) or not session:
            _fail(
                f"op {op!r} requires a non-empty string 'session'",
                request_id=request_id,
            )
        if "/" in session:
            _fail(
                "session names must not contain '/'", request_id=request_id
            )
    else:
        session = None

    params: dict[str, Any] = {}
    if op == "open":
        letters = record.get("letters", 8)
        if isinstance(letters, bool) or not (
            (isinstance(letters, int) and letters > 0)
            or (
                isinstance(letters, list)
                and letters
                and all(isinstance(name, str) and name for name in letters)
            )
        ):
            _fail(
                "'letters' must be a positive integer or a non-empty "
                "list of names",
                request_id=request_id,
            )
        backend = record.get("backend", "clausal")
        if backend not in BACKENDS:
            _fail(
                f"'backend' must be one of {BACKENDS}, got {backend!r}",
                request_id=request_id,
            )
        constraints = record.get("constraints", [])
        if not isinstance(constraints, list) or not all(
            isinstance(c, str) for c in constraints
        ):
            _fail(
                "'constraints' must be a list of formula strings",
                request_id=request_id,
            )
        params = {
            "letters": letters,
            "backend": backend,
            "constraints": constraints,
        }
    elif op == "update":
        program = record.get("program")
        if not isinstance(program, str) or not program.strip():
            _fail(
                "op 'update' requires a non-empty string 'program'",
                request_id=request_id,
            )
        params = {"program": program}
    elif op == "query":
        mode = record.get("mode", "certain")
        if mode not in QUERY_MODES:
            _fail(
                f"'mode' must be one of {QUERY_MODES}, got {mode!r}",
                request_id=request_id,
            )
        formula = record.get("formula")
        if not isinstance(formula, str) or not formula.strip():
            _fail(
                "op 'query' requires a non-empty string 'formula'",
                request_id=request_id,
            )
        params = {"mode": mode, "formula": formula}
    elif op == "explain":
        formula = record.get("formula")
        if not isinstance(formula, str) or not formula.strip():
            _fail(
                "op 'explain' requires a non-empty string 'formula'",
                request_id=request_id,
            )
        params = {"formula": formula}
    return Request(id=request_id, op=op, session=session, params=params)


def encode(record: dict[str, Any]) -> bytes:
    """One response (or request) as a single newline-terminated line."""
    return (json.dumps(record, sort_keys=True, default=str) + "\n").encode("utf-8")


def ok_response(request_id: Any, **payload: Any) -> dict[str, Any]:
    """A success response echoing the request id."""
    return {"id": request_id, "ok": True, **payload}


def error_response(
    request_id: Any, code: str, message: str
) -> dict[str, Any]:
    """A failure response; ``code`` is one of :data:`ERROR_CODES`."""
    return {
        "id": request_id,
        "ok": False,
        "error": {"code": code, "message": message},
    }


def hello_payload() -> dict[str, Any]:
    """What ``hello`` answers: the dialect a client is about to speak."""
    return {
        "server": "repro-hlu",
        "protocol": PROTOCOL_VERSION,
        "ops": list(OPS),
        "backends": list(BACKENDS),
    }
