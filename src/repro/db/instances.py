"""Incomplete information databases as explicit world sets -- ``IDB[D]``.

A :class:`WorldSet` is an element of ``IDB[D]`` (Definition 1.2.2): a set
of possible worlds over a vocabulary.  It is the concrete domain of the
**S** sort in the instance-level implementation ``BLU--I`` (Definition
2.2.2), so it carries exactly the operations that implementation needs --
the Boolean algebra (union / intersection / complement), saturation under
a letter set (masking), and the dependency set (genmask) -- plus the
``eta`` embeddings of complete databases (Definition 1.2.4).
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Mapping

from repro.errors import VocabularyMismatchError
from repro.logic.clauses import ClauseSet
from repro.logic.cnf import formula_to_clauses, formulas_to_clauses
from repro.logic.formula import Formula
from repro.logic.parser import parse_formula
from repro.logic.propositions import Vocabulary
from repro.logic.semantics import (
    dependency_indices,
    dependency_names,
    models_of_clauses,
    sat_literals,
)
from repro.logic.structures import (
    World,
    all_worlds,
    satisfies,
    saturate_on,
    world_count,
    world_from_dict,
    world_from_true_set,
    world_str,
    world_to_dict,
)

__all__ = ["WorldSet"]


class WorldSet:
    """An immutable set of possible worlds over a vocabulary.

    >>> vocab = Vocabulary.standard(2)
    >>> ws = WorldSet.from_texts(vocab, ["A1 | A2"])
    >>> len(ws)
    3
    """

    __slots__ = ("_vocabulary", "_worlds", "_hash")

    def __init__(self, vocabulary: Vocabulary, worlds: Iterable[World]):
        world_set = frozenset(worlds)
        limit = world_count(vocabulary)
        for world in world_set:
            if not 0 <= world < limit:
                raise ValueError(
                    f"world {world} out of range for a {len(vocabulary)}-letter vocabulary"
                )
        self._vocabulary = vocabulary
        self._worlds = world_set
        self._hash = hash((vocabulary, world_set))

    # --- constructors (including the eta embeddings of 1.2.4) ---------------

    @classmethod
    def empty(cls, vocabulary: Vocabulary) -> "WorldSet":
        """The empty collection of possible worlds (inconsistent state)."""
        return cls(vocabulary, ())

    @classmethod
    def total(cls, vocabulary: Vocabulary) -> "WorldSet":
        """All of ``DB[D]`` -- the state of complete ignorance."""
        return cls(vocabulary, all_worlds(vocabulary))

    @classmethod
    def singleton(cls, vocabulary: Vocabulary, world: World) -> "WorldSet":
        """``eta``: embed a complete database as a one-world set."""
        return cls(vocabulary, (world,))

    @classmethod
    def from_assignment(cls, vocabulary: Vocabulary, assignment: Mapping[str, bool]) -> "WorldSet":
        """Singleton from an explicit truth assignment."""
        return cls.singleton(vocabulary, world_from_dict(vocabulary, assignment))

    @classmethod
    def from_true_set(cls, vocabulary: Vocabulary, true_names: Iterable[str]) -> "WorldSet":
        """Singleton in which exactly ``true_names`` hold (closed-world reading)."""
        return cls.singleton(vocabulary, world_from_true_set(vocabulary, true_names))

    @classmethod
    def from_formulas(cls, vocabulary: Vocabulary, formulas: Iterable[Formula]) -> "WorldSet":
        """``Mod[Phi]`` as a world set."""
        clause_set = formulas_to_clauses(formulas, vocabulary)
        return cls(vocabulary, models_of_clauses(clause_set))

    @classmethod
    def from_texts(cls, vocabulary: Vocabulary, texts: Iterable[str]) -> "WorldSet":
        """``Mod`` of parsed formula strings."""
        return cls.from_formulas(vocabulary, (parse_formula(t) for t in texts))

    @classmethod
    def from_clause_set(cls, clause_set: ClauseSet) -> "WorldSet":
        """``Mod[Phi]`` -- the canonical emulation map ``e_CI[S]``."""
        return cls(clause_set.vocabulary, models_of_clauses(clause_set))

    # --- accessors -----------------------------------------------------------

    @property
    def vocabulary(self) -> Vocabulary:
        """The vocabulary the worlds range over."""
        return self._vocabulary

    @property
    def worlds(self) -> frozenset[World]:
        """The underlying frozenset of bit-packed worlds."""
        return self._worlds

    def __len__(self) -> int:
        return len(self._worlds)

    def __iter__(self) -> Iterator[World]:
        return iter(self._worlds)

    def __contains__(self, world: object) -> bool:
        return world in self._worlds

    def __bool__(self) -> bool:
        return bool(self._worlds)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, WorldSet):
            return NotImplemented
        return self._vocabulary == other._vocabulary and self._worlds == other._worlds

    def __hash__(self) -> int:
        return self._hash

    def __le__(self, other: "WorldSet") -> bool:
        self._check(other)
        return self._worlds <= other._worlds

    def __repr__(self) -> str:
        return f"WorldSet({len(self._worlds)} worlds over {len(self._vocabulary)} letters)"

    def describe(self, limit: int = 8) -> str:
        """Readable listing of (up to ``limit``) worlds."""
        shown = sorted(self._worlds)[:limit]
        lines = [world_str(self._vocabulary, w) for w in shown]
        if len(self._worlds) > limit:
            lines.append(f"... and {len(self._worlds) - limit} more")
        return "\n".join(lines) if lines else "(no possible worlds)"

    # --- Boolean algebra (combine / assert / complement of BLU--I) ----------

    def union(self, other: "WorldSet") -> "WorldSet":
        """``combine``: set union (Definition 2.2.2(b.i))."""
        self._check(other)
        return WorldSet(self._vocabulary, self._worlds | other._worlds)

    def intersection(self, other: "WorldSet") -> "WorldSet":
        """``assert``: set intersection (Definition 2.2.2(b.ii))."""
        self._check(other)
        return WorldSet(self._vocabulary, self._worlds & other._worlds)

    def complement(self) -> "WorldSet":
        """``complement``: relative to all of ``DB[D]`` (Definition 2.2.2(b.iii))."""
        return WorldSet(
            self._vocabulary,
            frozenset(all_worlds(self._vocabulary)) - self._worlds,
        )

    def difference(self, other: "WorldSet") -> "WorldSet":
        """``S \\ T`` (used by the ``where`` construct, Section 0)."""
        self._check(other)
        return WorldSet(self._vocabulary, self._worlds - other._worlds)

    # --- masking and dependency (mask / genmask of BLU--I) -------------------

    def saturate(self, indices: Iterable[int]) -> "WorldSet":
        """Close under re-assignment of the given letters (simple-mask action)."""
        return WorldSet(self._vocabulary, saturate_on(self._worlds, frozenset(indices)))

    def saturate_names(self, names: Iterable[str]) -> "WorldSet":
        """As :meth:`saturate`, addressing letters by name."""
        return self.saturate(self._vocabulary.index_of(n) for n in names)

    def dependency_indices(self) -> frozenset[int]:
        """``Dep[S]`` as vocabulary indices."""
        return dependency_indices(self._vocabulary, self._worlds)

    def dependency_names(self) -> frozenset[str]:
        """``Dep[S]`` as proposition names."""
        return dependency_names(self._vocabulary, self._worlds)

    # --- queries --------------------------------------------------------------

    def satisfies_everywhere(self, formula: Formula) -> bool:
        """Certain truth: does every possible world satisfy ``formula``?"""
        return all(satisfies(self._vocabulary, w, formula) for w in self._worlds)

    def satisfies_somewhere(self, formula: Formula) -> bool:
        """Possible truth: does some possible world satisfy ``formula``?"""
        return any(satisfies(self._vocabulary, w, formula) for w in self._worlds)

    def certain_literals(self) -> frozenset[str]:
        """Literals true in every possible world (readable ``Sat`` fragment)."""
        return sat_literals(self._vocabulary, self._worlds)

    def restricted_to(self, formula: Formula) -> "WorldSet":
        """Worlds satisfying ``formula`` (``S`` intersect ``Mod[{formula}]``)."""
        return WorldSet(
            self._vocabulary,
            (w for w in self._worlds if satisfies(self._vocabulary, w, formula)),
        )

    def legal(self, schema) -> "WorldSet":
        """Filter to legal worlds of a :class:`repro.db.schema.DbSchema`.

        This is the paper's post-update integrity enforcement: "update each
        possible world individually, and then those which are not legal are
        eliminated" (discussion after Definition 1.3.3).
        """
        if schema.vocabulary != self._vocabulary:
            raise VocabularyMismatchError("schema vocabulary differs from world set")
        return WorldSet(self._vocabulary, self._worlds & schema.legal_worlds())

    def assignments(self) -> Iterator[dict[str, bool]]:
        """Iterate the worlds as explicit truth assignments."""
        for world in sorted(self._worlds):
            yield world_to_dict(self._vocabulary, world)

    def to_clause_set(self) -> ClauseSet:
        """A clause set whose models are exactly these worlds.

        Constructed by CNF-converting the DNF "one conjunct per world";
        small vocabularies only.  (The canonical inverse of ``e_CI[S]`` is
        not unique; this picks a subsumption-reduced representative.)
        """
        from repro.logic.formula import conj, disj, var

        if not self._worlds:
            return ClauseSet.contradiction(self._vocabulary)
        world_formulas = []
        for world in sorted(self._worlds):
            literals = [
                var(name) if world >> i & 1 else ~var(name)
                for i, name in enumerate(self._vocabulary.names)
            ]
            world_formulas.append(conj(literals))
        return formula_to_clauses(disj(world_formulas), self._vocabulary).reduce()

    def _check(self, other: "WorldSet") -> None:
        if self._vocabulary != other._vocabulary:
            raise VocabularyMismatchError("world sets are over different vocabularies")
