"""Propositional database schemata (Definition 1.2.1).

A schema ``D = (Prop[D], Con[D])`` couples a propositional vocabulary with
a set of integrity constraints.  Databases are structures over the
vocabulary; *legal* databases additionally satisfy every constraint.

Per the paper (discussion after Definition 1.3.3), integrity constraints
are not woven into the update morphisms themselves: updates are defined
constraint-free and legality is enforced as a separate filtering step
(:meth:`DbSchema.legal_worlds`, :meth:`repro.db.instances.WorldSet.legal`).
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.errors import SchemaError
from repro.logic.clauses import ClauseSet
from repro.logic.cnf import formulas_to_clauses
from repro.logic.formula import Formula
from repro.logic.parser import parse_formula
from repro.logic.propositions import Vocabulary
from repro.logic.semantics import models_of_formulas
from repro.logic.structures import World, satisfies

__all__ = ["DbSchema"]


class DbSchema:
    """A propositional database schema: vocabulary plus integrity constraints.

    >>> schema = DbSchema.of(3, constraints=["A1 -> A2"])
    >>> len(schema.legal_worlds())
    6
    """

    __slots__ = ("_vocabulary", "_constraints", "_legal_cache")

    def __init__(self, vocabulary: Vocabulary, constraints: Iterable[Formula] = ()):
        constraint_tuple = tuple(constraints)
        for constraint in constraint_tuple:
            unknown = constraint.props() - set(vocabulary.names)
            if unknown:
                raise SchemaError(
                    f"constraint {constraint} mentions unknown letters {sorted(unknown)}"
                )
        self._vocabulary = vocabulary
        self._constraints = constraint_tuple
        self._legal_cache: frozenset[World] | None = None

    @classmethod
    def of(
        cls,
        letters: int | Iterable[str],
        constraints: Iterable[Formula | str] = (),
    ) -> "DbSchema":
        """Convenience constructor.

        ``letters`` is either a count (standard names ``A1..An``) or an
        iterable of names; string constraints are parsed.
        """
        if isinstance(letters, int):
            vocabulary = Vocabulary.standard(letters)
        else:
            vocabulary = Vocabulary(letters)
        parsed = tuple(
            parse_formula(c) if isinstance(c, str) else c for c in constraints
        )
        return cls(vocabulary, parsed)

    @property
    def vocabulary(self) -> Vocabulary:
        """``Prop[D]``."""
        return self._vocabulary

    @property
    def constraints(self) -> tuple[Formula, ...]:
        """``Con[D]``."""
        return self._constraints

    def is_legal(self, world: World) -> bool:
        """Does ``world`` satisfy every integrity constraint?"""
        return all(satisfies(self._vocabulary, world, c) for c in self._constraints)

    def legal_worlds(self) -> frozenset[World]:
        """``LDB[D]`` -- the legal databases (cached)."""
        if self._legal_cache is None:
            self._legal_cache = models_of_formulas(self._vocabulary, self._constraints)
        return self._legal_cache

    def constraint_clauses(self) -> ClauseSet:
        """The constraints as a clause set (for clause-level filtering)."""
        return formulas_to_clauses(self._constraints, self._vocabulary)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DbSchema):
            return NotImplemented
        return (
            self._vocabulary == other._vocabulary
            and self._constraints == other._constraints
        )

    def __hash__(self) -> int:
        return hash((self._vocabulary, self._constraints))

    def __repr__(self) -> str:
        return (
            f"DbSchema({self._vocabulary!r}, "
            f"{len(self._constraints)} constraint(s))"
        )
