"""Deterministic update morphisms (Definitions 1.3.3 and 1.3.4).

These generalise the complete-information notions of insertion, deletion,
and modification to morphisms ``D -> D``:

* ``insert[A]`` forces ``A`` true, leaving everything else alone;
* ``delete[A]`` forces ``A`` false (``= insert[~A]``);
* ``modify[Ai, Aj]`` moves the "tuple" ``Ai`` to ``Aj``: ``Ai`` becomes
  false, ``Aj`` becomes ``Ai | Aj``;
* ``insert[Phi]`` for a consistent literal set forces every listed literal;
* ``modify[Phi1, Phi2]`` is conditional: in worlds where every literal of
  ``Phi1`` holds, the literals of ``Phi1`` are deleted (their negations
  forced) and then those of ``Phi2`` inserted; other worlds are unchanged.

Note on 1.3.4(b): the case table in the available text is corrupted; the
implementation follows the unambiguous prose of Section 1.3 ("if each
literal in Phi1 is true, we delete the literals of Phi1 and then insert
the literals of Phi2").  ``tests/db/test_updates.py`` pins the resulting
truth table.
"""

from __future__ import annotations

import logging as _logging
from collections.abc import Iterable

from repro.db.morphisms import Morphism
from repro.errors import InconsistentLiteralsError, VocabularyError
from repro.obs import runtime
from repro.obs.logging import get_logger
from repro.logic.clauses import (
    Clause,
    ClauseSet,
    Literal,
    literal_index,
    literal_to_formula,
    literals_consistent,
)
from repro.logic.formula import FALSE, TRUE, Formula, Var, conj
from repro.logic.propositions import Vocabulary

__all__ = [
    "insert_atom",
    "delete_atom",
    "modify_atom",
    "insert_literals",
    "modify_literals",
    "clause_delta",
    "apply_clause_delta",
]

#: Structured logger for morphism construction (DEBUG: these run inside
#: every BLU update, so INFO would be noisy); the rejection path logs at
#: WARNING with the offending literal set echoed.
_LOG = get_logger("repro.db.updates")


def _log_built(op: str, **detail: object) -> None:
    if _LOG.isEnabledFor(_logging.DEBUG):
        _LOG.debug("morphism built", extra={"op": op, **detail})


def clause_delta(
    old: ClauseSet, new: ClauseSet
) -> tuple[frozenset[Clause], frozenset[Clause]]:
    """The symmetric difference of two same-vocabulary states, split as
    ``(inserts, deletes)``: ``new == (old - deletes) | inserts``.

    This is the syntactic footprint of an update morphism's application,
    and exactly the frontier the incremental closure engine
    (:mod:`repro.logic.incremental`) replays instead of re-saturating.
    """
    if old.vocabulary != new.vocabulary:
        raise VocabularyError(
            "clause_delta requires states over the same vocabulary"
        )
    inserts = frozenset(new.clauses - old.clauses)
    deletes = frozenset(old.clauses - new.clauses)
    return inserts, deletes


def apply_clause_delta(
    state: ClauseSet,
    inserts: Iterable[Clause],
    deletes: Iterable[Clause],
) -> ClauseSet:
    """Replay a delta produced by :func:`clause_delta` onto ``state``.

    Deltas carry already-normalised clauses (they were members of a
    ``ClauseSet``), so the result is built without re-normalising.
    """
    clauses = (state.clauses - frozenset(deletes)) | frozenset(inserts)
    if clauses == state.clauses:
        return state
    return ClauseSet._trusted(state.vocabulary, frozenset(clauses))


def insert_atom(vocabulary: Vocabulary, name: str) -> Morphism:
    """``insert[Ai]`` (Definition 1.3.3(a)): ``Ai <- 1``."""
    vocabulary.index_of(name)  # validate
    runtime.count("db.updates.insert_atom")
    _log_built("insert_atom", atom=name)
    return Morphism(vocabulary, vocabulary, {name: TRUE})


def delete_atom(vocabulary: Vocabulary, name: str) -> Morphism:
    """``delete[Ai]`` (Definition 1.3.3(b)): ``Ai <- 0``."""
    vocabulary.index_of(name)
    runtime.count("db.updates.delete_atom")
    _log_built("delete_atom", atom=name)
    return Morphism(vocabulary, vocabulary, {name: FALSE})


def modify_atom(vocabulary: Vocabulary, old: str, new: str) -> Morphism:
    """``modify[Ai, Aj]`` (Definition 1.3.3(c)): ``Ai <- 0``, ``Aj <- Ai | Aj``.

    Moving a tuple: the information at ``old`` becomes false regardless,
    and ``new`` becomes true if either it already was or ``old`` was.
    """
    vocabulary.index_of(old)
    vocabulary.index_of(new)
    runtime.count("db.updates.modify_atom")
    _log_built("modify_atom", old=old, new=new)
    if old == new:
        return Morphism.identity(vocabulary)
    return Morphism(
        vocabulary,
        vocabulary,
        {old: FALSE, new: Var(old) | Var(new)},
    )


def _require_consistent(literals: tuple[Literal, ...], label: str) -> None:
    if not literals_consistent(literals):
        if _LOG.isEnabledFor(_logging.WARNING):
            _LOG.warning(
                "morphism rejected",
                extra={"op": label, "literals": sorted(literals, key=abs)},
            )
        raise InconsistentLiteralsError(
            f"{label} contains a complementary literal pair"
        )


def insert_literals(vocabulary: Vocabulary, literals: Iterable[Literal]) -> Morphism:
    """``insert[Phi]`` for a consistent literal set (Definition 1.3.4(a)).

    Positive literals force their letter true, negative ones false;
    unmentioned letters are untouched.
    """
    literal_tuple = tuple(literals)
    _require_consistent(literal_tuple, "insert literal set")
    runtime.count("db.updates.insert_literals")
    _log_built("insert_literals", literals=sorted(literal_tuple, key=abs))
    assignment: dict[str, Formula] = {}
    for literal in literal_tuple:
        name = vocabulary.name_of(literal_index(literal))
        assignment[name] = TRUE if literal > 0 else FALSE
    return Morphism(vocabulary, vocabulary, assignment)


def modify_literals(
    vocabulary: Vocabulary,
    old_literals: Iterable[Literal],
    new_literals: Iterable[Literal],
) -> Morphism:
    """``modify[Phi1, Phi2]`` for consistent literal sets (Definition 1.3.4(b)).

    Worlds satisfying every literal of ``Phi1`` have those literals deleted
    (negations forced) and then the literals of ``Phi2`` inserted -- where
    the two prescriptions clash, the insertion wins, mirroring "delete ...
    and then insert".  Other worlds are unchanged.

    Each letter's image is the conditional formula
    ``(conj(Phi1) & forced_k) | (~conj(Phi1) & A_k)``.
    """
    old_tuple = tuple(old_literals)
    new_tuple = tuple(new_literals)
    _require_consistent(old_tuple, "modify precondition literal set")
    _require_consistent(new_tuple, "modify postcondition literal set")
    runtime.count("db.updates.modify_literals")
    _log_built(
        "modify_literals",
        old=sorted(old_tuple, key=abs),
        new=sorted(new_tuple, key=abs),
    )

    condition = conj(literal_to_formula(vocabulary, lit) for lit in old_tuple)

    # delete Phi1 (force each literal's negation), then insert Phi2 on top.
    forced: dict[str, Formula] = {}
    for literal in old_tuple:
        name = vocabulary.name_of(literal_index(literal))
        forced[name] = FALSE if literal > 0 else TRUE
    for literal in new_tuple:
        name = vocabulary.name_of(literal_index(literal))
        forced[name] = TRUE if literal > 0 else FALSE

    assignment: dict[str, Formula] = {}
    for name, value in forced.items():
        taken = condition & value
        kept = ~condition & Var(name)
        assignment[name] = taken | kept
    return Morphism(vocabulary, vocabulary, assignment)
