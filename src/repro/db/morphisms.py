"""Deterministic database morphisms (Definition 1.3.1).

A morphism ``f : D1 -> D2`` is an assignment ``Prop[D2] -> WF[D1]`` --
note the direction: it tells each *target* letter which *source* formula
computes it.  The induced structure map ``f' : DB[D1] -> DB[D2]`` sends a
source world ``s`` to the target world ``A |-> s-bar(f(A))``, and extends
pointwise to incomplete information databases.

Composition is substitution (Fact 1.3.2: ``(g o f)' = g' o f'`` -- tested,
not assumed).
"""

from __future__ import annotations

from collections.abc import Mapping

from repro.errors import SchemaError, VocabularyMismatchError
from repro.db.instances import WorldSet
from repro.logic.formula import Formula, Var
from repro.logic.propositions import Vocabulary
from repro.logic.structures import World, satisfies

__all__ = ["Morphism"]


class Morphism:
    """A deterministic morphism ``f : source -> target``.

    ``assignment`` maps every *target* letter name to a formula over the
    *source* vocabulary.  Letters omitted from the mapping default to
    themselves (handy for the single-letter updates of Definition 1.3.3,
    which leave almost everything unchanged) -- but only when the letter
    also exists in the source vocabulary.
    """

    __slots__ = ("_source", "_target", "_assignment")

    def __init__(
        self,
        source: Vocabulary,
        target: Vocabulary,
        assignment: Mapping[str, Formula],
    ):
        full: dict[str, Formula] = {}
        for name in target.names:
            if name in assignment:
                image = assignment[name]
                unknown = image.props() - set(source.names)
                if unknown:
                    raise SchemaError(
                        f"image of {name!r} mentions letters {sorted(unknown)} "
                        f"outside the source vocabulary"
                    )
                full[name] = image
            else:
                if name not in source:
                    raise SchemaError(
                        f"no image given for target letter {name!r}, which is "
                        f"not a source letter either"
                    )
                full[name] = Var(name)
        extra = set(assignment) - set(target.names)
        if extra:
            raise SchemaError(f"assignment mentions non-target letters {sorted(extra)}")
        self._source = source
        self._target = target
        self._assignment = full

    @classmethod
    def identity(cls, vocabulary: Vocabulary) -> "Morphism":
        """The identity morphism on a schema."""
        return cls(vocabulary, vocabulary, {})

    @property
    def source(self) -> Vocabulary:
        """``D1`` (worlds flow *from* here under ``f'``)."""
        return self._source

    @property
    def target(self) -> Vocabulary:
        """``D2``."""
        return self._target

    def image_of(self, target_name: str) -> Formula:
        """``f(A)`` for a target letter ``A``."""
        return self._assignment[target_name]

    # --- the bar extension (formulas) and prime extension (structures) ------

    def bar(self, formula: Formula) -> Formula:
        """``f-bar : WF[D2] -> WF[D1]`` by substitution."""
        unknown = formula.props() - set(self._target.names)
        if unknown:
            raise VocabularyMismatchError(
                f"formula mentions letters {sorted(unknown)} outside the target"
            )
        return formula.substitute(self._assignment)

    def apply_world(self, world: World) -> World:
        """``f'(s)``: the target world ``A |-> s-bar(f(A))``."""
        result = 0
        for index, name in enumerate(self._target.names):
            if satisfies(self._source, world, self._assignment[name]):
                result |= 1 << index
        return result

    def apply_world_set(self, worlds: WorldSet) -> WorldSet:
        """Pointwise extension to incomplete information databases."""
        if worlds.vocabulary != self._source:
            raise VocabularyMismatchError("world set is not over the source vocabulary")
        return WorldSet(self._target, (self.apply_world(w) for w in worlds))

    # --- composition ----------------------------------------------------------

    def then(self, g: "Morphism") -> "Morphism":
        """``g o f`` where ``self = f : D1 -> D2`` and ``g : D2 -> D3``.

        The result maps each ``D3`` letter ``A`` to ``f-bar(g(A))``
        (Definition 1.3.1); worlds flow ``D1 -> D2 -> D3``.
        """
        if g._source != self._target:
            raise VocabularyMismatchError(
                "cannot compose: g's source differs from f's target"
            )
        composed = {
            name: self.bar(g._assignment[name]) for name in g._target.names
        }
        return Morphism(self._source, g._target, composed)

    # --- correctness (Section 1.3) ---------------------------------------------

    def is_correct(self, source_schema, target_schema) -> bool:
        """Does ``f'`` map legal databases to legal databases?

        The paper's notion of a *correct* morphism (discussion around
        1.3.3): exhaustively checked over ``LDB[D1]``.
        """
        if source_schema.vocabulary != self._source:
            raise VocabularyMismatchError("source schema vocabulary mismatch")
        if target_schema.vocabulary != self._target:
            raise VocabularyMismatchError("target schema vocabulary mismatch")
        return all(
            target_schema.is_legal(self.apply_world(world))
            for world in source_schema.legal_worlds()
        )

    # --- identity / comparison --------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Morphism):
            return NotImplemented
        return (
            self._source == other._source
            and self._target == other._target
            and self._assignment == other._assignment
        )

    def __hash__(self) -> int:
        return hash(
            (
                self._source,
                self._target,
                tuple((name, self._assignment[name]) for name in self._target.names),
            )
        )

    def __repr__(self) -> str:
        changed = {
            name: image
            for name, image in self._assignment.items()
            if image != Var(name)
        }
        inner = ", ".join(f"{k} <- {v}" for k, v in sorted(changed.items()))
        return f"Morphism({inner or 'identity'})"
