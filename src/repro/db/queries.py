"""Queries as database morphisms (Definition 1.3.1's other reading).

The paper notes that regarding database mappings as interpretations
between theories "has been implicit in the definition of queries at least
since the early work of Codd": a query over ``D1`` producing a ``D2``
result *is* a morphism ``D1 -> D2``, and its extension to incomplete
information databases answers the query under every possible world at
once.  This module provides the standard constructors:

* :func:`projection` -- keep a subset of the letters (a view);
* :func:`renaming` -- a bijective re-lettering;
* :func:`derived_letter` -- a view whose letters are *defined* formulas
  (the general interpretation-between-theories case);
* :func:`view_dependency_mask` -- the mask congruence a view induces,
  connecting queries back to Section 1.5 ("if f is an update operation,
  it is critical to identify the information which it masks" -- the same
  machinery identifies what a *query* cannot see).
"""

from __future__ import annotations

from collections.abc import Mapping

from repro.db.masks import Mask, congruence_of
from repro.db.morphisms import Morphism
from repro.db.nondeterministic import NondetMorphism
from repro.errors import SchemaError
from repro.logic.formula import Formula, Var
from repro.logic.propositions import Vocabulary

__all__ = ["projection", "renaming", "derived_letter", "view_dependency_mask"]


def projection(source: Vocabulary, kept_names) -> Morphism:
    """The view keeping only ``kept_names`` (in source order).

    ``f'`` drops the other letters from every world; on an incomplete
    database it computes the possible answer set of the projection query.
    """
    kept = [name for name in source.names if name in set(kept_names)]
    missing = set(kept_names) - set(kept)
    if missing:
        raise SchemaError(f"cannot project onto unknown letters {sorted(missing)}")
    target = Vocabulary(kept)
    return Morphism(source, target, {name: Var(name) for name in kept})


def renaming(source: Vocabulary, mapping: Mapping[str, str]) -> Morphism:
    """A bijective re-lettering: ``mapping`` sends source names to target
    names (unmentioned letters keep their names)."""
    values = list(mapping.values())
    if len(set(values)) != len(values):
        raise SchemaError("renaming must be injective")
    target_names = [mapping.get(name, name) for name in source.names]
    target = Vocabulary(target_names)
    assignment = {
        new: Var(old) for old, new in zip(source.names, target_names)
    }
    return Morphism(source, target, assignment)


def derived_letter(
    source: Vocabulary, definitions: Mapping[str, Formula | str]
) -> Morphism:
    """A view whose target letters are defined formulas over the source.

    >>> from repro.logic import Vocabulary
    >>> source = Vocabulary.standard(3)
    >>> view = derived_letter(source, {"AnyAlarm": "A1 | A2 | A3"})
    >>> view.apply_world(0b010)
    1
    """
    from repro.logic.parser import parse_formula

    target = Vocabulary(definitions.keys())
    assignment = {
        name: parse_formula(f) if isinstance(f, str) else f
        for name, f in definitions.items()
    }
    return Morphism(source, target, assignment)


def view_dependency_mask(view: Morphism) -> Mask:
    """The mask congruence of a view: which source states the view
    conflates (Definition 1.5.1 applied to a query).

    Two databases are equivalent under this mask exactly when the view
    cannot distinguish them -- for a :func:`projection` this is the
    simple mask on the dropped letters (recognisable via
    :func:`repro.db.masks.as_simple_mask`); for a general
    :func:`derived_letter` view it is usually not simple, which is the
    Jacobs "implied constraint problem" flavour the paper cites against
    fast masking (discussion after Theorem 2.3.6).
    """
    return congruence_of(NondetMorphism.of(view))
