"""Nondeterministic database morphisms (Section 1.4).

A nondeterministic morphism ``F : D1 o-> D2`` is a *set* of deterministic
morphisms (Definition 1.4.1).  Applied to a single world it yields the set
of images under every component (``F'``); applied to an incomplete
information database it yields the union over all worlds (``F-bar``).

Composition is componentwise (Definition 1.4.1(b)); Fact 1.4.2
(``(G o F)' = G' o F'``) is verified by the test suite rather than assumed.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.db.instances import WorldSet
from repro.db.morphisms import Morphism
from repro.errors import VocabularyMismatchError
from repro.logic.propositions import Vocabulary
from repro.logic.structures import World

__all__ = ["NondetMorphism"]


class NondetMorphism:
    """A set of deterministic morphisms acting in parallel.

    Components are stored deduplicated but in a deterministic order (the
    order of first appearance), so congruence computations and repr output
    are reproducible.
    """

    __slots__ = ("_source", "_target", "_components")

    def __init__(self, components: Iterable[Morphism]):
        seen: dict[Morphism, None] = {}
        for component in components:
            seen.setdefault(component, None)
        component_tuple = tuple(seen)
        if not component_tuple:
            raise VocabularyMismatchError(
                "a nondeterministic morphism needs at least one component "
                "(use NondetMorphism.empty(vocabulary) for the empty update)"
            )
        source = component_tuple[0].source
        target = component_tuple[0].target
        for component in component_tuple[1:]:
            if component.source != source or component.target != target:
                raise VocabularyMismatchError(
                    "all components must share source and target vocabularies"
                )
        self._source = source
        self._target = target
        self._components = component_tuple

    # The paper allows Inset[Phi] to be empty (inserting an unsatisfiable
    # formula); the induced update maps every state to the empty world set.
    # That case cannot carry its vocabularies in components, so it gets a
    # dedicated constructor.

    @classmethod
    def empty(cls, vocabulary: Vocabulary) -> "NondetMorphism":
        """The componentless morphism ``D o-> D`` (maps everything to {})."""
        instance = object.__new__(cls)
        instance._source = vocabulary
        instance._target = vocabulary
        instance._components = ()
        return instance

    @classmethod
    def of(cls, morphism: Morphism) -> "NondetMorphism":
        """Embed a deterministic morphism (Definition 1.4.3)."""
        return cls((morphism,))

    @property
    def source(self) -> Vocabulary:
        """``D1``."""
        return self._source

    @property
    def target(self) -> Vocabulary:
        """``D2``."""
        return self._target

    @property
    def components(self) -> tuple[Morphism, ...]:
        """The deterministic components, in deterministic order."""
        return self._components

    def is_deterministic(self) -> bool:
        """True iff there is exactly one component."""
        return len(self._components) == 1

    # --- action on worlds and world sets -------------------------------------

    def apply_world(self, world: World) -> WorldSet:
        """``F'(s)``: the set of images of ``s`` under every component."""
        return WorldSet(
            self._target, (component.apply_world(world) for component in self._components)
        )

    def apply_world_set(self, worlds: WorldSet) -> WorldSet:
        """``F-bar(S)``: union of ``F'(s)`` over the possible worlds ``s``."""
        if worlds.vocabulary != self._source:
            raise VocabularyMismatchError("world set is not over the source vocabulary")
        images: set[World] = set()
        for world in worlds:
            for component in self._components:
                images.add(component.apply_world(world))
        return WorldSet(self._target, images)

    # --- composition -----------------------------------------------------------

    def then(self, g: "NondetMorphism") -> "NondetMorphism":
        """``G o F`` with ``self = F`` (Definition 1.4.1(b)): all pairings."""
        if g._source != self._target:
            raise VocabularyMismatchError(
                "cannot compose: G's source differs from F's target"
            )
        if not self._components or not g._components:
            return NondetMorphism.empty(self._source)
        return NondetMorphism(
            f.then(gg) for f in self._components for gg in g._components
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, NondetMorphism):
            return NotImplemented
        return (
            self._source == other._source
            and self._target == other._target
            and frozenset(self._components) == frozenset(other._components)
        )

    def __hash__(self) -> int:
        return hash((self._source, self._target, frozenset(self._components)))

    def __len__(self) -> int:
        return len(self._components)

    def __repr__(self) -> str:
        return f"NondetMorphism({len(self._components)} component(s))"
