"""Masks and mask congruences (Section 1.5).

A *mask* is an equivalence relation on ``DB[D]`` describing which
distinctions between states an operation forgets.  The two concrete kinds:

* :class:`SimpleMask` -- "agreement off a letter set ``P``", induced by the
  symbolwise morphism ``mask[P]`` of Definition 1.5.3.  Simple masks are
  the concrete domain of the **M** sort in ``BLU--I``.
* :func:`congruence_of` -- ``Congruence[F]`` of Definition 1.5.1: two
  states are equivalent when every component of the nondeterministic
  morphism ``F`` treats them identically.

Theorem 1.5.4 (an insertion masks exactly the letters its formula depends
on) is checked, not assumed: see ``tests/db/test_masks.py`` and bench E9.
"""

from __future__ import annotations

from collections.abc import Callable, Hashable, Iterable

from repro.db.instances import WorldSet
from repro.db.nondeterministic import NondetMorphism
from repro.errors import VocabularyMismatchError
from repro.logic.propositions import Vocabulary
from repro.logic.structures import World, all_worlds, flip_bit

__all__ = [
    "Mask",
    "SimpleMask",
    "KeyMask",
    "congruence_of",
    "mask_morphism",
    "masks_equal",
    "as_simple_mask",
]


class Mask:
    """An equivalence relation on the worlds of a vocabulary.

    Subclasses provide :meth:`key`, a canonical-form function; two worlds
    are equivalent iff their keys coincide.  All derived notions
    (saturation, partition, comparison) come from the key.
    """

    __slots__ = ("_vocabulary",)

    def __init__(self, vocabulary: Vocabulary):
        self._vocabulary = vocabulary

    @property
    def vocabulary(self) -> Vocabulary:
        """The vocabulary whose worlds are being related."""
        return self._vocabulary

    def key(self, world: World) -> Hashable:
        """A canonical value equal for exactly the equivalent worlds."""
        raise NotImplementedError

    def equivalent(self, left: World, right: World) -> bool:
        """Are the two worlds related?"""
        return self.key(left) == self.key(right)

    def saturate(self, worlds: WorldSet) -> WorldSet:
        """``mask`` at the instance level (Definition 2.2.2(b.iv)):
        ``{y | exists x in X with R(x, y)}`` -- the union of all
        equivalence classes that meet ``worlds``."""
        if worlds.vocabulary != self._vocabulary:
            raise VocabularyMismatchError("world set vocabulary differs from mask")
        hit_keys = {self.key(w) for w in worlds}
        return WorldSet(
            self._vocabulary,
            (w for w in all_worlds(self._vocabulary) if self.key(w) in hit_keys),
        )

    def partition(self) -> frozenset[frozenset[World]]:
        """The full partition of ``DB[D]`` (exponential; small vocabularies)."""
        blocks: dict[Hashable, set[World]] = {}
        for world in all_worlds(self._vocabulary):
            blocks.setdefault(self.key(world), set()).add(world)
        return frozenset(frozenset(block) for block in blocks.values())

    def __repr__(self) -> str:
        return f"{type(self).__name__}(over {len(self._vocabulary)} letters)"


class SimpleMask(Mask):
    """``s--mask[P]``: worlds are equivalent iff they agree outside ``P``.

    >>> vocab = Vocabulary.standard(3)
    >>> m = SimpleMask.of_names(vocab, ["A1"])
    >>> m.equivalent(0b000, 0b001)
    True
    >>> m.equivalent(0b000, 0b010)
    False
    """

    __slots__ = ("_indices", "_clear_mask")

    def __init__(self, vocabulary: Vocabulary, indices: Iterable[int]):
        super().__init__(vocabulary)
        index_set = frozenset(indices)
        for index in index_set:
            vocabulary.name_of(index)  # validate
        self._indices = index_set
        clear = 0
        for index in index_set:
            clear |= 1 << index
        self._clear_mask = clear

    @classmethod
    def of_names(cls, vocabulary: Vocabulary, names: Iterable[str]) -> "SimpleMask":
        """Build from proposition names instead of indices."""
        return cls(vocabulary, (vocabulary.index_of(n) for n in names))

    @property
    def indices(self) -> frozenset[int]:
        """The masked letter positions ``P``."""
        return self._indices

    @property
    def names(self) -> frozenset[str]:
        """The masked letter names."""
        return frozenset(self._vocabulary.name_of(i) for i in self._indices)

    def key(self, world: World) -> Hashable:
        return world & ~self._clear_mask

    def saturate(self, worlds: WorldSet) -> WorldSet:
        # Specialised fast path: bit-level saturation instead of a full scan.
        if worlds.vocabulary != self._vocabulary:
            raise VocabularyMismatchError("world set vocabulary differs from mask")
        return worlds.saturate(self._indices)

    def union(self, other: "SimpleMask") -> "SimpleMask":
        """Join of simple masks (mask more letters = coarser relation)."""
        if other._vocabulary != self._vocabulary:
            raise VocabularyMismatchError("masks are over different vocabularies")
        return SimpleMask(self._vocabulary, self._indices | other._indices)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SimpleMask):
            return NotImplemented
        return self._vocabulary == other._vocabulary and self._indices == other._indices

    def __hash__(self) -> int:
        return hash((self._vocabulary, self._indices))

    def __repr__(self) -> str:
        names = ", ".join(sorted(self.names)) or "-"
        return f"SimpleMask({names})"


class KeyMask(Mask):
    """A mask given by an arbitrary key function (general congruences)."""

    __slots__ = ("_key_function",)

    def __init__(self, vocabulary: Vocabulary, key_function: Callable[[World], Hashable]):
        super().__init__(vocabulary)
        self._key_function = key_function

    def key(self, world: World) -> Hashable:
        return self._key_function(world)


def congruence_of(morphism: NondetMorphism) -> Mask:
    """``Congruence[F]`` (Definition 1.5.1): states are equivalent when every
    component maps them to the same image."""
    components = morphism.components

    def key(world: World) -> Hashable:
        return tuple(component.apply_world(world) for component in components)

    return KeyMask(morphism.source, key)


def mask_morphism(vocabulary: Vocabulary, indices: Iterable[int]) -> NondetMorphism:
    """The symbolwise nondeterministic morphism ``mask[P]`` (Definition 1.5.3(a)).

    Each component assigns an arbitrary constant to every masked letter and
    the identity elsewhere -- ``2^|P|`` deterministic components.
    """
    import itertools

    from repro.db.morphisms import Morphism
    from repro.logic.formula import FALSE, TRUE

    index_list = sorted(set(indices))
    names = [vocabulary.name_of(i) for i in index_list]
    components = []
    for values in itertools.product((FALSE, TRUE), repeat=len(names)):
        components.append(
            Morphism(vocabulary, vocabulary, dict(zip(names, values)))
        )
    return NondetMorphism(components)


def masks_equal(left: Mask, right: Mask) -> bool:
    """Extensional equality of masks, by comparing induced partitions."""
    if left.vocabulary != right.vocabulary:
        return False
    return left.partition() == right.partition()


def as_simple_mask(mask: Mask) -> SimpleMask | None:
    """Recognise a mask as simple, returning the witness or ``None``.

    ``P`` must be ``{A | every world is equivalent to its A-flip}`` and the
    induced simple mask must reproduce the partition exactly.
    """
    vocabulary = mask.vocabulary
    candidate_indices = set()
    worlds = list(all_worlds(vocabulary))
    for index in range(len(vocabulary)):
        if all(mask.equivalent(w, flip_bit(w, index)) for w in worlds):
            candidate_indices.add(index)
    candidate = SimpleMask(vocabulary, candidate_indices)
    if masks_equal(candidate, mask):
        return candidate
    return None
