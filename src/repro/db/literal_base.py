"""Literal bases and the literal insertion set ``Inset`` (Definition 1.4.4),
plus the nondeterministically-specified updates built on it (Definition 1.4.5).

``Inset[Phi]`` tells us how to interpret an incompletely specified update
such as ``insert[{A1 | A2}]``: it is the set of *complete* literal bases of
``Phi``, and the update acts as the nondeterministic morphism whose
components deterministically insert each of them.  For ``{A1 | A2}`` that
is exactly the three assignments of ``(A1, A2)`` making the disjunction
true (Example 1.4.6).

On "complete": the wording of 1.4.4(c) in the surviving text is garbled
(taken literally, no set could be complete, since consistent supersets of
an entailing set still entail).  We adopt the operational reading forced
by Example 1.4.6, Remark 1.4.7 and Theorem 1.5.4:

    ``Inset[Phi]`` = the total assignments, *over exactly the letters Phi
    semantically depends on*, that entail ``Phi``.

Consequences pinned by tests: ``Inset[{A1 | A2}]`` is the paper's three
sets; a tautologous ``Phi`` yields ``{ {} }`` so insertion is the identity
(Remark 1.4.7); ``Prop[Inset[Phi]] = Dep[Mod[Phi]]`` which makes Theorem
1.5.4 hold.
"""

from __future__ import annotations

import itertools
from collections.abc import Iterable, Iterator

from repro.db.nondeterministic import NondetMorphism
from repro.db.updates import insert_literals, modify_literals
from repro.logic.clauses import Literal, literals_consistent, make_literal
from repro.logic.cnf import formulas_to_clauses
from repro.logic.formula import Formula, Not, conj
from repro.logic.parser import parse_formula
from repro.logic.propositions import Vocabulary
from repro.logic.semantics import dependency_indices, models_of_clauses
from repro.obs import core as obs

__all__ = [
    "literal_base",
    "is_irrelevant",
    "is_minimal",
    "is_complete",
    "inset",
    "inset_prop_indices",
    "insert_update",
    "delete_update",
    "modify_update",
]


def _as_formulas(formulas: Iterable[Formula | str]) -> tuple[Formula, ...]:
    return tuple(
        parse_formula(f) if isinstance(f, str) else f for f in formulas
    )


def _mod(vocabulary: Vocabulary, formulas: tuple[Formula, ...]) -> frozenset[int]:
    return models_of_clauses(formulas_to_clauses(formulas, vocabulary))


def _literal_set_entails(
    vocabulary: Vocabulary, literals: frozenset[Literal], models: frozenset[int]
) -> bool:
    """Does the literal set semantically entail the formula set with the
    given model set?  (Every world satisfying the literals is a model.)"""
    from repro.logic.clauses import literals_to_world_constraint

    care, value = literals_to_world_constraint(literals)
    free_indices = [i for i in range(len(vocabulary)) if not care >> i & 1]
    for bits in itertools.product((0, 1), repeat=len(free_indices)):
        world = value
        for bit, index in zip(bits, free_indices):
            if bit:
                world |= 1 << index
        if world not in models:
            return False
    return True


def literal_base(
    vocabulary: Vocabulary, formulas: Iterable[Formula | str]
) -> Iterator[frozenset[Literal]]:
    """Enumerate ``LB[Phi]``: consistent literal sets entailing ``Phi``.

    Exhaustive (3^n candidate sets) -- intended for tests and tiny
    vocabularies, exactly like the paper's definitional level.
    """
    formula_tuple = _as_formulas(formulas)
    models = _mod(vocabulary, formula_tuple)
    n = len(vocabulary)
    for signs in itertools.product((0, 1, None), repeat=n):
        literals = frozenset(
            make_literal(i, positive=bool(sign))
            for i, sign in enumerate(signs)
            if sign is not None
        )
        if _literal_set_entails(vocabulary, literals, models):
            yield literals


def is_irrelevant(
    vocabulary: Vocabulary,
    literal: Literal,
    formulas: Iterable[Formula | str],
) -> bool:
    """Definition 1.4.4(b): ``l`` is irrelevant when removing it (or its
    negation) from any literal base member leaves a literal base member."""
    members = set(literal_base(vocabulary, formulas))
    for member in members:
        if literal in member:
            if member - {literal} not in members:
                return False
            if member - {-literal} not in members:
                return False
    return True


def is_minimal(
    vocabulary: Vocabulary,
    literals: frozenset[Literal],
    formulas: Iterable[Formula | str],
) -> bool:
    """Definition 1.4.4(b): a member of ``LB`` with no irrelevant literal."""
    members = set(literal_base(vocabulary, formulas))
    if literals not in members:
        return False
    return not any(is_irrelevant(vocabulary, lit, formulas) for lit in literals)


def inset_prop_indices(
    vocabulary: Vocabulary, formulas: Iterable[Formula | str]
) -> frozenset[int]:
    """``Prop[Inset[Phi]]`` -- equal to ``Dep[Mod[Phi]]`` by construction."""
    formula_tuple = _as_formulas(formulas)
    return dependency_indices(vocabulary, _mod(vocabulary, formula_tuple))


def inset(
    vocabulary: Vocabulary, formulas: Iterable[Formula | str]
) -> frozenset[frozenset[Literal]]:
    """``Inset[Phi]``: total entailing assignments over the dependency letters.

    >>> vocab = Vocabulary.standard(2)
    >>> sorted(sorted(s) for s in inset(vocab, ["A1 | A2"]))
    [[-2, 1], [-1, 2], [1, 2]]
    """
    formula_tuple = _as_formulas(formulas)
    models = _mod(vocabulary, formula_tuple)
    dep = sorted(dependency_indices(vocabulary, models))
    obs.inc("db.inset.calls")
    obs.inc("db.inset.candidates", 1 << len(dep))
    result: set[frozenset[Literal]] = set()
    for signs in itertools.product((False, True), repeat=len(dep)):
        literals = frozenset(
            make_literal(index, positive=sign) for index, sign in zip(dep, signs)
        )
        if _literal_set_entails(vocabulary, literals, models):
            result.add(literals)
    obs.inc("db.inset.members", len(result))
    return frozenset(result)


def is_complete(
    vocabulary: Vocabulary,
    literals: frozenset[Literal],
    formulas: Iterable[Formula | str],
) -> bool:
    """Membership in ``Inset[Phi]`` (operational reading of 1.4.4(c))."""
    if not literals_consistent(literals):
        return False
    return literals in inset(vocabulary, formulas)


# ---------------------------------------------------------------------------
# Nondeterministically specified updates (Definition 1.4.5)
# ---------------------------------------------------------------------------

def insert_update(
    vocabulary: Vocabulary, formulas: Iterable[Formula | str]
) -> NondetMorphism:
    """``insert[Phi]``: one deterministic insertion per member of ``Inset``.

    An unsatisfiable ``Phi`` has empty ``Inset``, giving the componentless
    morphism (every state maps to the empty world set); a tautologous
    ``Phi`` gives the identity (Remark 1.4.7).
    """
    components = [
        insert_literals(vocabulary, literals)
        for literals in sorted(inset(vocabulary, formulas), key=sorted)
    ]
    obs.inc("db.insert.components", len(components))
    if not components:
        return NondetMorphism.empty(vocabulary)
    return NondetMorphism(components)


def delete_update(
    vocabulary: Vocabulary, formulas: Iterable[Formula | str]
) -> NondetMorphism:
    """``delete[Phi]`` (Definition 1.4.5(b)): insert the negated conjunction."""
    formula_tuple = _as_formulas(formulas)
    negated = Not(conj(formula_tuple))
    return insert_update(vocabulary, [negated])


def modify_update(
    vocabulary: Vocabulary,
    old_formulas: Iterable[Formula | str],
    new_formulas: Iterable[Formula | str],
) -> NondetMorphism:
    """``modify[Phi1, Phi2]`` (Definition 1.4.5(c)): all pairings of
    complete bases of the pre- and postconditions."""
    old_sets = sorted(inset(vocabulary, old_formulas), key=sorted)
    new_sets = sorted(inset(vocabulary, new_formulas), key=sorted)
    components = [
        modify_literals(vocabulary, old, new)
        for old in old_sets
        for new in new_sets
    ]
    if not components:
        return NondetMorphism.empty(vocabulary)
    return NondetMorphism(components)
