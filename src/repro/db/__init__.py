"""Propositional database systems (Sections 1.2--1.5 of the paper).

Schemas, complete and incomplete instances (world sets), deterministic and
nondeterministic database morphisms, the update morphisms ``insert`` /
``delete`` / ``modify``, literal bases / ``Inset``, and masks.
"""

from repro.db.instances import WorldSet
from repro.db.literal_base import (
    delete_update,
    insert_update,
    inset,
    inset_prop_indices,
    is_complete,
    is_irrelevant,
    is_minimal,
    literal_base,
    modify_update,
)
from repro.db.masks import (
    KeyMask,
    Mask,
    SimpleMask,
    as_simple_mask,
    congruence_of,
    mask_morphism,
    masks_equal,
)
from repro.db.morphisms import Morphism
from repro.db.nondeterministic import NondetMorphism
from repro.db.queries import (
    derived_letter,
    projection,
    renaming,
    view_dependency_mask,
)
from repro.db.schema import DbSchema
from repro.db.updates import (
    delete_atom,
    insert_atom,
    insert_literals,
    modify_atom,
    modify_literals,
)

__all__ = [
    "DbSchema",
    "WorldSet",
    "Morphism",
    "NondetMorphism",
    "insert_atom",
    "delete_atom",
    "modify_atom",
    "insert_literals",
    "modify_literals",
    "literal_base",
    "is_irrelevant",
    "is_minimal",
    "is_complete",
    "inset",
    "inset_prop_indices",
    "insert_update",
    "delete_update",
    "modify_update",
    "Mask",
    "SimpleMask",
    "KeyMask",
    "congruence_of",
    "mask_morphism",
    "masks_equal",
    "as_simple_mask",
    "projection",
    "renaming",
    "derived_letter",
    "view_dependency_mask",
]
