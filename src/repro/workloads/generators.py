"""Seeded workload generators for tests, examples, and benchmarks.

Everything is driven by an explicit :class:`random.Random` seed so every
bench table is reproducible run to run.
"""

from __future__ import annotations

import random
from collections.abc import Iterator

from repro.logic.clauses import Clause, ClauseSet, clause_of, make_literal
from repro.logic.formula import And, Formula, Iff, Implies, Not, Or, Var
from repro.logic.propositions import Vocabulary

__all__ = [
    "random_clause",
    "random_clause_set",
    "clause_set_of_length",
    "random_formula",
    "update_stream",
    "directory_schema",
]


def random_clause(
    rng: random.Random, letter_count: int, width: int
) -> Clause:
    """A random non-tautologous clause of exactly ``width`` distinct letters."""
    letters = rng.sample(range(letter_count), width)
    return clause_of(make_literal(i, rng.random() < 0.5) for i in letters)


def random_clause_set(
    rng: random.Random,
    vocabulary: Vocabulary,
    clause_count: int,
    width: int = 3,
) -> ClauseSet:
    """``clause_count`` random clauses of width ``width`` (deduplicated by
    the clause-set constructor, so the result may be slightly smaller)."""
    width = min(width, len(vocabulary))
    return ClauseSet(
        vocabulary,
        (random_clause(rng, len(vocabulary), width) for _ in range(clause_count)),
    )


def clause_set_of_length(
    rng: random.Random,
    vocabulary: Vocabulary,
    target_length: int,
    width: int = 3,
) -> ClauseSet:
    """A clause set whose ``Length`` is (very nearly) ``target_length``.

    Used by the complexity benchmarks, which are stated in terms of
    ``Length[Phi]`` (Theorem 2.3.4).  Distinct clauses are accumulated
    until the target is reached.
    """
    width = min(width, len(vocabulary))
    clauses: set[Clause] = set()
    length = 0
    attempts = 0
    while length + width <= target_length:
        clause = random_clause(rng, len(vocabulary), width)
        attempts += 1
        if clause not in clauses:
            clauses.add(clause)
            length += len(clause)
        if attempts > 100 * (target_length + 1):
            raise ValueError(
                f"cannot reach Length {target_length} with width {width} over "
                f"{len(vocabulary)} letters"
            )
    return ClauseSet(vocabulary, clauses)


def random_formula(
    rng: random.Random, vocabulary: Vocabulary, depth: int = 3
) -> Formula:
    """A random formula over the vocabulary, of bounded connective depth."""
    if depth <= 0 or rng.random() < 0.3:
        return Var(rng.choice(vocabulary.names))
    kind = rng.randrange(5)
    if kind == 0:
        return Not(random_formula(rng, vocabulary, depth - 1))
    left = random_formula(rng, vocabulary, depth - 1)
    right = random_formula(rng, vocabulary, depth - 1)
    if kind == 1:
        return And((left, right))
    if kind == 2:
        return Or((left, right))
    if kind == 3:
        return Implies(left, right)
    return Iff(left, right)


def update_stream(
    rng: random.Random,
    vocabulary: Vocabulary,
    count: int,
    width: int = 2,
) -> Iterator[Formula]:
    """A stream of insert payloads: random clauses (as formulas) of the
    given width -- the typical small user-supplied update parameters of
    Section 4."""
    from repro.logic.clauses import clause_to_formula

    for _ in range(count):
        yield clause_to_formula(
            vocabulary, random_clause(rng, len(vocabulary), width)
        )


def directory_schema(phone_count: int, person_count: int = 2, dept_count: int = 2):
    """The Section 5.1.1 telephone-directory schema, parameterised by the
    domain sizes (experiment E13 sweeps ``phone_count``)."""
    from repro.relational.schema import RelationalSchema

    people = [f"P{i}" for i in range(1, person_count + 1)]
    depts = [f"D{i}" for i in range(1, dept_count + 1)]
    phones = [f"T{i}" for i in range(1, phone_count + 1)]
    return RelationalSchema.build(
        constants={"person": people, "dept": depts, "telno": phones},
        relations={"R": [("N", "person"), ("D", "dept"), ("T", "telno")]},
    )
