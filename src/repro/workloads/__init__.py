"""Seeded workload generators."""

from repro.workloads.generators import (
    clause_set_of_length,
    directory_schema,
    random_clause,
    random_clause_set,
    random_formula,
    update_stream,
)

__all__ = [
    "random_clause",
    "random_clause_set",
    "clause_set_of_length",
    "random_formula",
    "update_stream",
    "directory_schema",
]
