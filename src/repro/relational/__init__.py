"""The first-order relational extension (Section 5 of the paper).

Typed relations over external constants, internal constants (nulls) with
Boolean category expressions, grounding to the propositional framework,
semantic resolution, and the extended ``where`` update language.
"""

from repro.relational.atoms import OpenAtom, atom_valuations
from repro.relational.constants import (
    CategoryExpr,
    ConstantDictionary,
    InternalConstant,
)
from repro.relational.grounding import Grounding
from repro.relational.language import (
    ANY,
    AtomTemplate,
    Binding,
    Exists,
    Wildcard,
    exists,
    var,
)
from repro.relational.prover import OpenKB
from repro.relational.schema import Attribute, RelationalSchema, RelationSignature
from repro.relational.semantic_resolution import (
    OpenClause,
    SignedAtom,
    semantic_resolvent,
    semantic_unify,
)
from repro.relational.session import RelationalDatabase
from repro.relational.types import TypeAlgebra, TypeExpr

__all__ = [
    "TypeAlgebra",
    "TypeExpr",
    "CategoryExpr",
    "InternalConstant",
    "ConstantDictionary",
    "Attribute",
    "RelationSignature",
    "RelationalSchema",
    "OpenAtom",
    "atom_valuations",
    "Grounding",
    "AtomTemplate",
    "Binding",
    "Exists",
    "Wildcard",
    "ANY",
    "var",
    "exists",
    "SignedAtom",
    "OpenClause",
    "semantic_unify",
    "semantic_resolvent",
    "RelationalDatabase",
    "OpenKB",
]
