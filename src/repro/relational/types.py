"""The Boolean algebra of types (Section 5.2).

"Also present in the extension is a Boolean algebra of types.  These
correspond to the Boolean categories of McSkimin and Minker."  Over a
finite universe of external constant symbols, types are simply sets of
constants closed under the Boolean operations; named types are registered
in a :class:`TypeAlgebra` and combined with ``|``, ``&``, ``-`` and ``~``.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.errors import TypeAlgebraError

__all__ = ["TypeAlgebra", "TypeExpr"]


class TypeExpr:
    """An element of the Boolean algebra of types: a set of external
    constants, tied to its algebra (universe)."""

    __slots__ = ("_algebra", "_members", "_label")

    def __init__(self, algebra: "TypeAlgebra", members: frozenset[str], label: str | None = None):
        self._algebra = algebra
        self._members = members
        self._label = label

    @property
    def algebra(self) -> "TypeAlgebra":
        """The owning type algebra."""
        return self._algebra

    @property
    def members(self) -> frozenset[str]:
        """The external constants of this type."""
        return self._members

    @property
    def label(self) -> str | None:
        """The registered name, if this is a named type."""
        return self._label

    def __contains__(self, constant: str) -> bool:
        return constant in self._members

    def __len__(self) -> int:
        return len(self._members)

    def __iter__(self):
        return iter(sorted(self._members))

    def is_empty(self) -> bool:
        """The bottom of the algebra?"""
        return not self._members

    # --- Boolean operations --------------------------------------------------

    def _check(self, other: "TypeExpr") -> None:
        if other._algebra is not self._algebra:
            raise TypeAlgebraError("type expressions belong to different algebras")

    def __or__(self, other: "TypeExpr") -> "TypeExpr":
        self._check(other)
        return TypeExpr(self._algebra, self._members | other._members)

    def __and__(self, other: "TypeExpr") -> "TypeExpr":
        self._check(other)
        return TypeExpr(self._algebra, self._members & other._members)

    def __sub__(self, other: "TypeExpr") -> "TypeExpr":
        self._check(other)
        return TypeExpr(self._algebra, self._members - other._members)

    def __invert__(self) -> "TypeExpr":
        return TypeExpr(self._algebra, self._algebra.universe - self._members)

    def __le__(self, other: "TypeExpr") -> bool:
        self._check(other)
        return self._members <= other._members

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TypeExpr):
            return NotImplemented
        return self._algebra is other._algebra and self._members == other._members

    def __hash__(self) -> int:
        return hash((id(self._algebra), self._members))

    def __repr__(self) -> str:
        if self._label:
            return f"TypeExpr({self._label})"
        if len(self._members) <= 5:
            return f"TypeExpr({{{', '.join(sorted(self._members))}}})"
        return f"TypeExpr({len(self._members)} constants)"


class TypeAlgebra:
    """The Boolean algebra of types over a universe of external constants.

    >>> algebra = TypeAlgebra(["Jones", "Smith", "D1", "T1", "T2"])
    >>> people = algebra.define("person", ["Jones", "Smith"])
    >>> phones = algebra.define("telno", ["T1", "T2"])
    >>> (people & phones).is_empty()
    True
    """

    def __init__(self, universe: Iterable[str]):
        self._universe = frozenset(universe)
        if not self._universe:
            raise TypeAlgebraError("a type algebra needs a non-empty universe")
        self._named: dict[str, TypeExpr] = {}

    @property
    def universe(self) -> frozenset[str]:
        """All external constants (the top type's members)."""
        return self._universe

    @property
    def universal(self) -> TypeExpr:
        """The universal type ``tau_u`` of Section 5.2."""
        return TypeExpr(self, self._universe, label="tau_u")

    @property
    def empty(self) -> TypeExpr:
        """The bottom of the algebra."""
        return TypeExpr(self, frozenset())

    def define(self, name: str, members: Iterable[str]) -> TypeExpr:
        """Register a named type; members must be known constants."""
        member_set = frozenset(members)
        unknown = member_set - self._universe
        if unknown:
            raise TypeAlgebraError(
                f"type {name!r} mentions unknown constants {sorted(unknown)}"
            )
        if name in self._named:
            raise TypeAlgebraError(f"type {name!r} already defined")
        expr = TypeExpr(self, member_set, label=name)
        self._named[name] = expr
        return expr

    def named(self, name: str) -> TypeExpr:
        """Look up a registered type by name."""
        try:
            return self._named[name]
        except KeyError:
            raise TypeAlgebraError(f"unknown type {name!r}") from None

    def singleton(self, constant: str) -> TypeExpr:
        """The smallest type containing one constant."""
        if constant not in self._universe:
            raise TypeAlgebraError(f"unknown constant {constant!r}")
        return TypeExpr(self, frozenset({constant}))

    def names(self) -> tuple[str, ...]:
        """The registered type names, sorted."""
        return tuple(sorted(self._named))

    def __repr__(self) -> str:
        return (
            f"TypeAlgebra({len(self._universe)} constants, "
            f"{len(self._named)} named type(s))"
        )
