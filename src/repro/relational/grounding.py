"""Grounding a relational schema to a propositional one (Sections 1.2, 5.2).

Each well-typed ground fact ``R(a1, ..., ak)`` becomes one proposition
letter named ``R.a1.....ak``; the grounded vocabulary is finite by domain
closure.  Open atoms (with internal constants) compile to formulas: a
*set* of atoms sharing internal constants compiles to the disjunction,
over the joint valuations of those constants, of the conjunction of the
ground facts -- the "enormous disjunction" of Section 5.1.1, produced
mechanically.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.errors import SchemaError
from repro.logic.formula import Formula, Var, conj, disj
from repro.logic.propositions import Vocabulary
from repro.relational.atoms import OpenAtom, atom_valuations
from repro.relational.schema import RelationalSchema

__all__ = ["Grounding"]

_SEPARATOR = "."


class Grounding:
    """The grounded propositional schema ``D`` of a relational schema ``E``.

    >>> schema = RelationalSchema.build(
    ...     constants={"person": ["Jones"], "telno": ["T1", "T2"]},
    ...     relations={"Phone": [("N", "person"), ("T", "telno")]},
    ... )
    >>> grounding = Grounding(schema)
    >>> grounding.vocabulary.names
    ('Phone.Jones.T1', 'Phone.Jones.T2')
    """

    def __init__(self, schema: RelationalSchema):
        self.schema = schema
        self._facts = tuple(schema.ground_facts())
        names = [self.proposition_name(rel, args) for rel, args in self._facts]
        self.vocabulary = Vocabulary(names)
        self._by_name = {
            name: fact for name, fact in zip(names, self._facts)
        }

    @staticmethod
    def proposition_name(relation: str, args: tuple[str, ...]) -> str:
        """The proposition letter for a ground fact."""
        return _SEPARATOR.join((relation, *args))

    def fact_of(self, proposition: str) -> tuple[str, tuple[str, ...]]:
        """Inverse of :meth:`proposition_name`."""
        try:
            return self._by_name[proposition]
        except KeyError:
            raise SchemaError(f"{proposition!r} is not a grounded fact") from None

    def fact_variable(self, relation: str, args: tuple[str, ...]) -> Var:
        """The ground fact as a propositional variable."""
        name = self.proposition_name(relation, args)
        if name not in self.vocabulary:
            raise SchemaError(
                f"{relation}{args} is not a well-typed ground fact"
            )
        return Var(name)

    def atom_formula(self, atom: OpenAtom) -> Formula:
        """One open atom as a formula (disjunction over its valuations)."""
        return self.atoms_formula([atom])

    def atoms_formula(self, atoms: Iterable[OpenAtom]) -> Formula:
        """A set of open atoms as one formula.

        Shared internal constants co-vary: the result is
        ``disj over valuations of conj of ground facts``.  For all-ground
        atoms this degenerates to a plain conjunction.
        """
        atom_list = list(atoms)
        for atom in atom_list:
            atom.validate(self.schema, self.schema.dictionary)
        disjuncts: list[Formula] = []
        for valuation in atom_valuations(
            atom_list, self.schema.dictionary, self.schema
        ):
            grounded = [atom.instantiate(valuation) for atom in atom_list]
            disjuncts.append(
                conj(
                    self.fact_variable(g.relation, g.ground_args())
                    for g in grounded
                )
            )
        if not disjuncts:
            raise SchemaError(
                "no valuation satisfies the typing constraints; the atom set "
                "is unsatisfiable under domain closure"
            )
        return disj(disjuncts)

    def facts_of_relation(self, relation: str) -> tuple[str, ...]:
        """All proposition letters belonging to one relation."""
        prefix = relation + _SEPARATOR
        return tuple(
            name for name in self.vocabulary.names if name.startswith(prefix)
        )

    def __repr__(self) -> str:
        return f"Grounding({len(self.vocabulary)} ground facts)"
