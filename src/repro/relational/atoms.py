"""Open atoms: ground facts that may contain internal constants (nulls).

``R(Jones, JD, u)`` with ``u`` an internal constant of type ``tau_telno``
is the paper's compact representation of "Jones has *some* telephone
number" -- one literal instead of the "enormous disjunction" over all
numbers (Section 5.1.1 / 5.2).
"""

from __future__ import annotations

import itertools
from collections.abc import Iterable

from repro.errors import SchemaError
from repro.relational.constants import ConstantDictionary, InternalConstant
from repro.relational.schema import RelationalSchema

__all__ = ["OpenAtom", "Valuation", "atom_valuations"]

ArgumentSymbol = str | InternalConstant

Valuation = dict[str, str]
"""An assignment of internal-constant idents to external constants."""


class OpenAtom:
    """A relation applied to external and/or internal constants."""

    __slots__ = ("relation", "args")

    def __init__(self, relation: str, args: Iterable[ArgumentSymbol]):
        self.relation = relation
        self.args = tuple(args)

    def internals(self) -> tuple[InternalConstant, ...]:
        """The internal constants occurring, in position order (dedup)."""
        seen: dict[str, InternalConstant] = {}
        for arg in self.args:
            if isinstance(arg, InternalConstant):
                seen.setdefault(arg.ident, arg)
        return tuple(seen.values())

    def is_ground(self) -> bool:
        """No internal constants?"""
        return not any(isinstance(a, InternalConstant) for a in self.args)

    def instantiate(self, valuation: Valuation) -> "OpenAtom":
        """Replace internal constants by their values under ``valuation``."""
        return OpenAtom(
            self.relation,
            tuple(
                valuation[a.ident] if isinstance(a, InternalConstant) else a
                for a in self.args
            ),
        )

    def ground_args(self) -> tuple[str, ...]:
        """The arguments, asserting groundness."""
        if not self.is_ground():
            raise SchemaError(f"atom {self} is not ground")
        return self.args  # type: ignore[return-value]

    def validate(self, schema: RelationalSchema, dictionary: ConstantDictionary) -> None:
        """Check arity, typing of externals, and non-empty possible values
        of internals against their positions."""
        signature = schema.relation(self.relation)
        if len(self.args) != signature.arity:
            raise SchemaError(
                f"{self.relation} expects {signature.arity} argument(s), "
                f"got {len(self.args)}"
            )
        for position, (attribute, arg) in enumerate(
            zip(signature.attributes, self.args)
        ):
            if isinstance(arg, InternalConstant):
                possible = dictionary.denotation_of(arg) & attribute.type.members
                if not possible:
                    raise SchemaError(
                        f"internal constant {arg.ident} cannot fill position "
                        f"{position} of {self.relation} (empty intersection "
                        f"with attribute type)"
                    )
            else:
                if not attribute.admits(arg):
                    raise SchemaError(
                        f"constant {arg!r} violates the typing constraint at "
                        f"position {position} of {self.relation}"
                    )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, OpenAtom):
            return NotImplemented
        return self.relation == other.relation and self.args == other.args

    def __hash__(self) -> int:
        return hash((self.relation, self.args))

    def __repr__(self) -> str:
        rendered = ", ".join(
            a.ident if isinstance(a, InternalConstant) else a for a in self.args
        )
        return f"{self.relation}({rendered})"


def atom_valuations(
    atoms: Iterable[OpenAtom],
    dictionary: ConstantDictionary,
    schema: RelationalSchema | None = None,
) -> Iterable[Valuation]:
    """Enumerate joint valuations of all internal constants in ``atoms``.

    A shared internal constant co-varies across atoms (it denotes *one*
    unknown external constant -- the modified closed world assumption).
    When ``schema`` is given, valuations violating a typing constraint at
    the position of occurrence are skipped.
    """
    atom_list = list(atoms)
    internals: dict[str, InternalConstant] = {}
    for atom in atom_list:
        for symbol in atom.internals():
            internals.setdefault(symbol.ident, symbol)
    idents = sorted(internals)
    domains = [sorted(dictionary.denotation_of(internals[i])) for i in idents]
    for values in itertools.product(*domains):
        valuation = dict(zip(idents, values))
        if schema is not None:
            grounded = [atom.instantiate(valuation) for atom in atom_list]
            if not all(
                schema.relation(g.relation).admits(g.ground_args()) for g in grounded
            ):
                continue
        yield valuation
