"""Reasoning over open-clause knowledge bases (Section 5.2).

The paper's relational extension stores *clauses* over atoms that may
contain internal constants (nulls).  Under the modified closed world
assumption each null rigidly denotes some external constant, so the
possible worlds of a knowledge base ``KB`` are the pairs ``(v, w)`` of a
*valuation* ``v`` of the active nulls and a ground world ``w`` satisfying
``KB`` instantiated by ``v``.  Consequently:

* ``KB`` is satisfiable  iff  some valuation's instantiation is;
* ``KB |= Q`` (ground)    iff  every valuation's instantiation entails Q.

:class:`OpenKB` implements exactly that semantics by splitting on the
nulls that actually occur (cost: the product of *their* denotations, not
the domain size) and deciding each ground instance with the propositional
machinery over the grounded vocabulary -- the precise sense in which
"since resolution has a direct extension, so too do our algorithms".
The per-pair unification service of
:mod:`repro.relational.semantic_resolution` is used as a sound pruning
step: a negative unit that semantically unifies with no positive
occurrence can never participate in a refutation.
"""

from __future__ import annotations

import itertools
from collections.abc import Iterable

from repro.logic.clauses import Clause, ClauseSet, make_literal
from repro.logic.sat import entails_clauses, is_satisfiable
from repro.relational.atoms import OpenAtom, Valuation
from repro.relational.grounding import Grounding
from repro.relational.schema import RelationalSchema
from repro.relational.semantic_resolution import OpenClause, SignedAtom

__all__ = ["OpenKB"]


class OpenKB:
    """A knowledge base of open clauses over a relational schema.

    >>> schema = RelationalSchema.build(
    ...     constants={"person": ["Jones"], "telno": ["T1", "T2"]},
    ...     relations={"Phone": [("N", "person"), ("T", "telno")]},
    ... )
    >>> kb = OpenKB(schema)
    >>> u = kb.new_null(schema.algebra.named("telno"))
    >>> kb.add_fact("Phone", "Jones", u)
    >>> kb.entails_fact("Phone", "Jones", "T1")
    False
    >>> kb.entails_clause([(True, "Phone", ("Jones", "T1")),
    ...                    (True, "Phone", ("Jones", "T2"))])
    True
    """

    def __init__(self, schema: RelationalSchema):
        self.schema = schema
        self.dictionary = schema.dictionary
        self.grounding = Grounding(schema)
        self._clauses: list[OpenClause] = []

    # --- construction -----------------------------------------------------------

    @property
    def clauses(self) -> tuple[OpenClause, ...]:
        """The stored open clauses, in insertion order."""
        return tuple(self._clauses)

    def new_null(self, type_expr, ie=(), ee=()) -> "InternalConstant":
        """Activate a fresh internal constant of the given type."""
        from repro.relational.constants import CategoryExpr

        return self.dictionary.activate(CategoryExpr(type_expr, ie, ee))

    def add_clause(self, literals: Iterable[tuple[bool, str, tuple]]) -> None:
        """Add a clause given as ``(positive, relation, args)`` triples."""
        signed = []
        for positive, relation, args in literals:
            atom = OpenAtom(relation, args)
            atom.validate(self.schema, self.dictionary)
            signed.append(SignedAtom(atom, positive))
        self._clauses.append(OpenClause(signed))

    def add_fact(self, relation: str, *args) -> None:
        """Add a positive unit clause."""
        self.add_clause([(True, relation, tuple(args))])

    def add_universal_clause(
        self,
        variables: dict[str, "TypeExpr"],
        literals: Iterable[tuple[bool, str, tuple]],
    ) -> int:
        """Add a universally quantified clause schema, by expansion.

        ``variables`` maps variable names to their types; each literal's
        args may use those names.  The schema is expanded into one ground
        (or null-carrying) clause per assignment of the variables to
        constants of their types -- the finite-domain shortcut that the
        full Pi-sigma machinery of McSkimin-Minker would avoid, which the
        paper notes "will add substantially to the complexity" (Section
        5.2).  Returns the number of clauses added.

        >>> schema = RelationalSchema.build(
        ...     constants={"person": ["Jones", "Smith"], "telno": ["T1"]},
        ...     relations={"Phone": [("N", "person"), ("T", "telno")],
        ...                "Reachable": [("N", "person")]},
        ... )
        >>> kb = OpenKB(schema)
        >>> kb.add_universal_clause(
        ...     {"p": schema.algebra.named("person")},
        ...     [(False, "Phone", ("p", "T1")), (True, "Reachable", ("p",))],
        ... )
        2
        """
        import itertools as _itertools

        names = sorted(variables)
        colliding = set(names) & self.schema.algebra.universe
        if colliding:
            from repro.errors import SchemaError

            raise SchemaError(
                f"variable names {sorted(colliding)} collide with constant "
                f"symbols; rename the variables"
            )
        domains = [sorted(variables[name].members) for name in names]
        literal_list = [
            (positive, relation, tuple(args)) for positive, relation, args in literals
        ]
        added = 0
        for values in _itertools.product(*domains):
            binding = dict(zip(names, values))
            instantiated = [
                (
                    positive,
                    relation,
                    tuple(binding.get(a, a) if isinstance(a, str) else a for a in args),
                )
                for positive, relation, args in literal_list
            ]
            self.add_clause(instantiated)
            added += 1
        return added

    def add_denial(self, relation: str, *args) -> None:
        """Add a negative unit clause (the fact is certainly false)."""
        self.add_clause([(False, relation, tuple(args))])

    # --- the null case split -------------------------------------------------------

    def _nulls(self, extra: Iterable[OpenClause] = ()) -> list:
        seen: dict[str, object] = {}
        for clause in itertools.chain(self._clauses, extra):
            for literal in clause:
                for symbol in literal.atom.internals():
                    seen.setdefault(symbol.ident, symbol)
        return [seen[ident] for ident in sorted(seen)]

    def _valuations(self, extra: Iterable[OpenClause] = ()):
        nulls = self._nulls(extra)
        domains = [sorted(self.dictionary.denotation_of(n)) for n in nulls]
        for values in itertools.product(*domains):
            yield {null.ident: value for null, value in zip(nulls, values)}

    def _instantiate(
        self, clauses: Iterable[OpenClause], valuation: Valuation
    ) -> ClauseSet | None:
        """Ground the clauses under one valuation, as a propositional
        clause set over the grounded vocabulary.  Returns ``None`` when
        the valuation violates a typing constraint (no such world)."""
        propositional: list[Clause] = []
        for clause in clauses:
            literals = []
            for signed in clause:
                ground = signed.atom.instantiate(valuation)
                args = ground.ground_args()
                if not self.schema.relation(ground.relation).admits(args):
                    return None
                index = self.grounding.vocabulary.index_of(
                    self.grounding.proposition_name(ground.relation, args)
                )
                literals.append(make_literal(index, positive=signed.positive))
            propositional.append(frozenset(literals))
        return ClauseSet(self.grounding.vocabulary, propositional)

    # --- decision procedures ----------------------------------------------------------

    def is_satisfiable(self) -> bool:
        """Does some (valuation, world) pair satisfy every clause?"""
        for valuation in self._valuations():
            instantiated = self._instantiate(self._clauses, valuation)
            if instantiated is not None and is_satisfiable(instantiated):
                return True
        return False

    def entails_clause(
        self, literals: Iterable[tuple[bool, str, tuple]]
    ) -> bool:
        """``KB |= disjunction`` of ground literals, by refutation under
        every null valuation."""
        query_literals = [
            (positive, relation, tuple(args)) for positive, relation, args in literals
        ]
        if not query_literals:
            return not self.is_satisfiable()
        # Sound pruning (semantic unification): a purely-positive ground
        # query whose atoms unify with no positive KB occurrence cannot be
        # entailed by a satisfiable KB -- skip the full split.
        if self.is_satisfiable() and self._prunable(query_literals):
            return False
        for valuation in self._valuations():
            instantiated = self._instantiate(self._clauses, valuation)
            if instantiated is None:
                continue  # no worlds under this valuation: vacuous
            query_clause = frozenset(
                make_literal(
                    self.grounding.vocabulary.index_of(
                        self.grounding.proposition_name(relation, args)
                    ),
                    positive=positive,
                )
                for positive, relation, args in query_literals
            )
            if not entails_clauses(
                instantiated, ClauseSet(self.grounding.vocabulary, [query_clause])
            ):
                return False
        return True

    def entails_fact(self, relation: str, *args) -> bool:
        """``KB |= fact`` for one ground fact."""
        return self.entails_clause([(True, relation, tuple(args))])

    def _prunable(self, query_literals) -> bool:
        from repro.relational.semantic_resolution import semantic_unify

        if not all(positive for positive, *_ in query_literals):
            return False
        for positive, relation, args in query_literals:
            query_atom = OpenAtom(relation, args)
            for clause in self._clauses:
                for signed in clause:
                    if signed.positive and semantic_unify(
                        self.dictionary, signed.atom, query_atom
                    ) is not None:
                        return False  # some support exists: cannot prune
        return True

    def __repr__(self) -> str:
        return f"OpenKB({len(self._clauses)} clause(s))"
