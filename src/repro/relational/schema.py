"""Relational schemata with typed attributes and domain closure (Sections
1.2 and 5.1).

A relational schema pairs relation signatures with a constant dictionary.
Typing constraints say which constants may fill which positions; domain
closure says the registered constants are all there are.  Together they
make the set of ground facts finite, which is what grounding (Section 1.2)
exploits.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.errors import SchemaError
from repro.relational.constants import ConstantDictionary
from repro.relational.types import TypeAlgebra, TypeExpr

__all__ = ["Attribute", "RelationSignature", "RelationalSchema"]


class Attribute:
    """A typed attribute position of a relation."""

    __slots__ = ("name", "type")

    def __init__(self, name: str, type_expr: TypeExpr):
        self.name = name
        self.type = type_expr

    def admits(self, constant: str) -> bool:
        """May ``constant`` fill this position? (typing constraint)"""
        return constant in self.type

    def __repr__(self) -> str:
        return f"Attribute({self.name}: {self.type!r})"


class RelationSignature:
    """A relation name with its typed attribute list, e.g. ``R[N D T]``."""

    __slots__ = ("name", "attributes")

    def __init__(self, name: str, attributes: Iterable[Attribute]):
        self.name = name
        self.attributes = tuple(attributes)
        if not self.attributes:
            raise SchemaError(f"relation {name!r} needs at least one attribute")

    @property
    def arity(self) -> int:
        """Number of attribute positions."""
        return len(self.attributes)

    def admits(self, args: tuple[str, ...]) -> bool:
        """Do the external constants satisfy the typing constraints?"""
        if len(args) != self.arity:
            return False
        return all(attr.admits(arg) for attr, arg in zip(self.attributes, args))

    def __repr__(self) -> str:
        inner = " ".join(a.name for a in self.attributes)
        return f"RelationSignature({self.name}[{inner}])"


class RelationalSchema:
    """Relations + type algebra + constant dictionary (the schema ``E``).

    >>> schema = RelationalSchema.build(
    ...     constants={"person": ["Jones"], "dept": ["D1"], "telno": ["T1", "T2"]},
    ...     relations={"R": [("N", "person"), ("D", "dept"), ("T", "telno")]},
    ... )
    >>> schema.ground_fact_count()
    2
    """

    def __init__(
        self,
        algebra: TypeAlgebra,
        dictionary: ConstantDictionary,
        relations: Iterable[RelationSignature],
    ):
        self.algebra = algebra
        self.dictionary = dictionary
        self.relations = {r.name: r for r in relations}
        if len(self.relations) == 0:
            raise SchemaError("a relational schema needs at least one relation")

    @classmethod
    def build(
        cls,
        constants: dict[str, Iterable[str]],
        relations: dict[str, Iterable[tuple[str, str]]],
    ) -> "RelationalSchema":
        """Declarative constructor.

        ``constants`` maps type name -> member constants (types may share
        members); ``relations`` maps relation name -> [(attribute name,
        type name), ...].
        """
        universe = {c for members in constants.values() for c in members}
        algebra = TypeAlgebra(universe)
        named = {name: algebra.define(name, members) for name, members in constants.items()}
        dictionary = ConstantDictionary(algebra)
        for type_name, members in constants.items():
            for constant in members:
                # smallest registered type wins; later registrations refine.
                try:
                    existing = dictionary.external_type(constant)
                except Exception:
                    existing = None
                candidate = named[type_name]
                if existing is None or len(candidate) < len(existing):
                    dictionary.register_external(constant, candidate)
        signatures = [
            RelationSignature(
                rel_name,
                (Attribute(attr, named[type_name]) for attr, type_name in columns),
            )
            for rel_name, columns in relations.items()
        ]
        return cls(algebra, dictionary, signatures)

    def relation(self, name: str) -> RelationSignature:
        """Look up a relation signature."""
        try:
            return self.relations[name]
        except KeyError:
            raise SchemaError(f"unknown relation {name!r}") from None

    def ground_facts(self):
        """Iterate every well-typed ground fact as ``(relation, args)``.

        Finite by domain closure; this is the atom set of the grounded
        propositional schema ``D`` (Section 1.2).
        """
        import itertools

        for name in sorted(self.relations):
            signature = self.relations[name]
            domains = [sorted(attr.type.members) for attr in signature.attributes]
            for args in itertools.product(*domains):
                yield name, tuple(args)

    def ground_fact_count(self) -> int:
        """Number of well-typed ground facts."""
        count = 0
        for name, signature in self.relations.items():
            product = 1
            for attr in signature.attributes:
                product *= len(attr.type)
            count += product
        return count

    def __repr__(self) -> str:
        return (
            f"RelationalSchema({len(self.relations)} relation(s), "
            f"{len(self.algebra.universe)} constant(s))"
        )
