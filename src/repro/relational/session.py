"""``RelationalDatabase``: the Section 5 extension, end to end.

Maintains *two* synchronised representations of the same set of possible
worlds, exactly as Section 5.2 prescribes ("maintain the same set of
possible worlds as the purely propositional case, but employ
representation techniques which admit much more efficient manipulation"):

* the **compact store** -- certain open atoms over external and internal
  constants (nulls with Boolean category expressions), plus the constant
  dictionary; and
* the **grounded mirror** -- an :class:`~repro.hlu.session.IncompleteDatabase`
  over the grounded propositional schema, updated through HLU.

The grounded mirror is the semantic ground truth (and is what queries are
answered against); the compact store is the paper's efficiency argument,
measured in experiment E13.  For large domains the mirror can be disabled
(``grounded=False``), leaving the compact representation alone -- which is
precisely the practical motivation of Section 5.1.1.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping

from repro.hlu.session import IncompleteDatabase
from repro.db.schema import DbSchema
from repro.relational.atoms import OpenAtom
from repro.relational.constants import CategoryExpr, InternalConstant
from repro.relational.grounding import Grounding
from repro.relational.language import AtomTemplate, TemplateArg
from repro.relational.schema import RelationalSchema
from repro.relational.types import TypeExpr

__all__ = ["RelationalDatabase"]


class RelationalDatabase:
    """A database with typed relations, nulls, and HLU update semantics.

    >>> schema = RelationalSchema.build(
    ...     constants={"person": ["Jones"], "dept": ["D1"],
    ...                "telno": ["T1", "T2", "T3"]},
    ...     relations={"R": [("N", "person"), ("D", "dept"), ("T", "telno")]},
    ... )
    >>> db = RelationalDatabase(schema)
    >>> _ = db.tell(("R", "Jones", "D1", "T2"))
    >>> db.certain("R", "Jones", "D1", "T2")
    True
    """

    def __init__(
        self,
        schema: RelationalSchema,
        backend: str = "clausal",
        grounded: bool = True,
    ):
        self.schema = schema
        self.dictionary = schema.dictionary
        self.grounding = Grounding(schema)
        self._store: set[OpenAtom] = set()
        self._grounded: IncompleteDatabase | None = None
        if grounded:
            self._grounded = IncompleteDatabase(
                DbSchema(self.grounding.vocabulary), backend=backend
            )

    # --- representation access ---------------------------------------------------

    @property
    def store(self) -> frozenset[OpenAtom]:
        """The compact certain-atom store."""
        return frozenset(self._store)

    @property
    def grounded(self) -> IncompleteDatabase | None:
        """The grounded propositional mirror (None when disabled)."""
        return self._grounded

    def compact_size(self) -> int:
        """Number of argument symbols in the compact store (atoms' length)."""
        return sum(len(atom.args) + 1 for atom in self._store)

    def grounded_size(self) -> int:
        """Length of the grounded clause-set state (0 if mirror disabled
        or running on the instance backend)."""
        if self._grounded is None:
            return 0
        state = self._grounded.state
        return getattr(state, "length", 0)

    # --- helpers -----------------------------------------------------------------------

    def atom(self, relation: str, *args) -> OpenAtom:
        """Build and validate an open atom."""
        built = OpenAtom(relation, args)
        built.validate(self.schema, self.dictionary)
        return built

    def unknown(
        self,
        type_expr: TypeExpr,
        ie: Iterable[str] = (),
        ee: Iterable[str] = (),
    ) -> InternalConstant:
        """Activate a fresh internal constant (null) of the given type."""
        return self.dictionary.activate(CategoryExpr(type_expr, ie, ee))

    def _as_atom(self, fact) -> OpenAtom:
        if isinstance(fact, OpenAtom):
            fact.validate(self.schema, self.dictionary)
            return fact
        relation, *args = fact
        return self.atom(relation, *args)

    # --- updates ----------------------------------------------------------------------

    def tell(self, *facts) -> "RelationalDatabase":
        """Insert facts (tuples or OpenAtoms; may share internal constants).

        Facts sharing an internal constant are compiled jointly so the null
        co-varies; the grounded mirror receives one HLU ``insert`` of the
        resulting formula.
        """
        atoms = [self._as_atom(f) for f in facts]
        self._store.update(atoms)
        if self._grounded is not None:
            formula = self.grounding.atoms_formula(atoms)
            self._grounded.insert(formula)
        return self

    def retract(self, relation: str, *args) -> "RelationalDatabase":
        """Delete a fact (HLU ``delete`` of its formula); the compact store
        drops every atom that could denote it."""
        atom = self.atom(relation, *args)
        removable = {
            stored
            for stored in self._store
            if stored.relation == atom.relation
            and all(
                self.dictionary.intersect(sa, aa)
                for sa, aa in zip(stored.args, atom.args)
            )
        }
        self._store -= removable
        if self._grounded is not None:
            self._grounded.delete(self.grounding.atoms_formula([atom]))
        return self

    def forget(self, relation: str, *args) -> "RelationalDatabase":
        """Mask (HLU ``clear``) every ground letter the open fact could
        denote -- total loss of information about it."""
        atom = self.atom(relation, *args)
        letters: set[str] = set()
        from repro.relational.atoms import atom_valuations

        for valuation in atom_valuations([atom], self.dictionary, self.schema):
            ground = atom.instantiate(valuation)
            letters.add(
                self.grounding.proposition_name(ground.relation, ground.ground_args())
            )
        removable = {
            stored
            for stored in self._store
            if stored.relation == atom.relation
            and all(
                self.dictionary.intersect(sa, aa)
                for sa, aa in zip(stored.args, atom.args)
            )
        }
        self._store -= removable
        if self._grounded is not None and letters:
            self._grounded.clear(*sorted(letters))
        return self

    # --- the extended where (Section 5.2) ------------------------------------------------

    def bindings(
        self,
        pattern: AtomTemplate | tuple,
        environment: Mapping[str, str] | None = None,
    ) -> list[dict[str, str]]:
        """Enumerate variable bindings by matching ``pattern`` against the
        certain atoms of the compact store ("an instance-by-instance
        environment for the action of the where")."""
        template = self._as_template(pattern)
        found: list[dict[str, str]] = []
        for atom in sorted(self._store, key=repr):
            match = template.match(atom, environment or {})
            if match is not None and match not in found:
                found.append(match)
        return found

    def where_update(
        self,
        pattern: AtomTemplate | tuple,
        action: AtomTemplate | tuple,
        environment: Mapping[str, str] | None = None,
    ) -> list[dict[str, str]]:
        """The paper's extended ``where``: for every binding of the pattern
        variables, perform the insertion given by ``action``.

        ``action`` may contain :class:`Exists` arguments; each performed
        insertion activates fresh internal constants for them and replaces
        the matched knowledge (HLU insert semantics: mask what the new
        formula depends on, then assert it).  Returns the bindings used.
        """
        pattern_template = self._as_template(pattern)
        action_template = self._as_template(action)
        bindings = self.bindings(pattern_template, environment)
        for binding in bindings:
            new_atom = action_template.instantiate(
                binding, activate_exists=self._activate_for_insert
            )
            new_atom.validate(self.schema, self.dictionary)
            # Compact store: the matched atoms for this binding are
            # superseded by the new (possibly open) atom.
            superseded = {
                stored
                for stored in self._store
                if pattern_template.match(stored, binding) is not None
            }
            self._store -= superseded
            self._store.add(new_atom)
            if self._grounded is not None:
                formula = self.grounding.atoms_formula([new_atom])
                self._grounded.insert(formula)
        return bindings

    def _activate_for_insert(self, type_expr: TypeExpr) -> InternalConstant:
        return self.dictionary.activate(CategoryExpr(type_expr))

    @staticmethod
    def _as_template(pattern) -> AtomTemplate:
        if isinstance(pattern, AtomTemplate):
            return pattern
        relation, *args = pattern
        return AtomTemplate(relation, args)

    # --- queries -------------------------------------------------------------------------

    def certain(self, relation: str, *args: str) -> bool:
        """Is the ground fact true in every possible world?"""
        variable = self.grounding.fact_variable(relation, tuple(args))
        if self._grounded is not None:
            return self._grounded.is_certain(variable)
        from repro.relational.compact_query import certain_fact

        return certain_fact(
            self._store, self.dictionary, self.schema, relation, tuple(args)
        )

    def certain_disjunction(
        self, facts: Iterable[tuple[str, tuple[str, ...]]]
    ) -> bool:
        """Is the disjunction of the given ground facts certain?

        Answered on the grounded mirror when available, otherwise exactly
        on the compact store (:mod:`repro.relational.compact_query`) --
        e.g. "Jones has *some* phone number" after the Section 5.1.1
        update.
        """
        fact_list = [(rel, tuple(args)) for rel, args in facts]
        if self._grounded is not None:
            from repro.logic.formula import disj

            formula = disj(
                self.grounding.fact_variable(rel, args) for rel, args in fact_list
            )
            return self._grounded.is_certain(formula)
        from repro.relational.compact_query import certain_disjunction

        return certain_disjunction(
            self._store, self.dictionary, self.schema, fact_list
        )

    def possible(self, relation: str, *args: str) -> bool:
        """Is the ground fact true in some possible world?"""
        variable = self.grounding.fact_variable(relation, tuple(args))
        if self._grounded is not None:
            return self._grounded.is_possible(variable)
        from repro.relational.compact_query import possible_fact

        return possible_fact(self.schema, relation, tuple(args))

    def possible_values(
        self, relation: str, args: tuple[TemplateArg, ...], position: int
    ) -> frozenset[str]:
        """External constants ``t`` such that the fact with ``t`` at
        ``position`` is possible (null-value query)."""
        signature = self.schema.relation(relation)
        candidates = signature.attributes[position].type.members
        out = set()
        for candidate in sorted(candidates):
            concrete = list(args)
            concrete[position] = candidate
            if self.possible(relation, *concrete):
                out.add(candidate)
        return frozenset(out)

    def __repr__(self) -> str:
        mirror = "on" if self._grounded is not None else "off"
        return (
            f"RelationalDatabase({len(self._store)} stored atom(s), "
            f"grounded mirror {mirror})"
        )
