"""The extended update language of Section 5.2: variables in ``where``,
typed existentials in ``insert``.

The paper's motivating update -- "Jones has a new telephone number" -- is
written::

    (where ((Jones = x) (y in tau_u))
      (insert ((exists w in tau_telno) (R x y w))))

Here that surface is modelled by three small value kinds usable in atom
templates:

* a plain string -- an external constant;
* :class:`Binding` ``var("y")`` -- a where-bound variable;
* :class:`Exists` ``exists(tau_telno)`` -- an existentially quantified
  value, realised as a freshly activated internal constant at execution.

Templates are matched against the database's certain atoms to enumerate
the variable bindings "on a case-by-case basis" (Section 5.2); the action
is then performed once per binding.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping

from repro.errors import SchemaError
from repro.relational.atoms import OpenAtom
from repro.relational.constants import InternalConstant
from repro.relational.types import TypeExpr

__all__ = ["Binding", "Exists", "Wildcard", "ANY", "var", "exists", "AtomTemplate"]


class Binding:
    """A variable occurrence in an atom template."""

    __slots__ = ("name",)

    def __init__(self, name: str):
        self.name = name

    def __eq__(self, other):
        return isinstance(other, Binding) and other.name == self.name

    def __hash__(self):
        return hash(("Binding", self.name))

    def __repr__(self):
        return f"?{self.name}"


class Exists:
    """An existentially quantified argument of a given type."""

    __slots__ = ("type",)

    def __init__(self, type_expr: TypeExpr):
        self.type = type_expr

    def __repr__(self):
        return f"Exists({self.type!r})"


class Wildcard:
    """Matches anything in a pattern (never usable in an insertion)."""

    __slots__ = ()

    def __repr__(self):
        return "ANY"


ANY = Wildcard()

TemplateArg = str | Binding | Exists | Wildcard | InternalConstant


def var(name: str) -> Binding:
    """A where-bound variable for use in templates."""
    return Binding(name)


def exists(type_expr: TypeExpr) -> Exists:
    """An existential argument: ``(exists w in tau) ...``."""
    return Exists(type_expr)


class AtomTemplate:
    """A relation applied to template arguments."""

    __slots__ = ("relation", "args")

    def __init__(self, relation: str, args: Iterable[TemplateArg]):
        self.relation = relation
        self.args = tuple(args)

    def variables(self) -> tuple[str, ...]:
        """Variable names, in position order (dedup)."""
        seen: dict[str, None] = {}
        for arg in self.args:
            if isinstance(arg, Binding):
                seen.setdefault(arg.name, None)
        return tuple(seen)

    def match(
        self, atom: OpenAtom, environment: Mapping[str, str]
    ) -> dict[str, str] | None:
        """Match the template against a certain atom under partial bindings.

        External-constant args must coincide; variables must be consistent
        with ``environment`` and with repeated occurrences; wildcards match
        anything.  Internal constants in the *atom* match a variable only
        if the variable's value is its unique possible value -- matching
        binds variables to external constants, so genuinely unknown values
        do not produce bindings.  Returns the extended bindings or ``None``.
        """
        if atom.relation != self.relation or len(atom.args) != len(self.args):
            return None
        bound = dict(environment)
        for template_arg, atom_arg in zip(self.args, atom.args):
            if isinstance(template_arg, Wildcard):
                continue
            if isinstance(template_arg, Exists):
                return None  # existentials never appear in patterns
            if isinstance(template_arg, InternalConstant):
                if template_arg != atom_arg:
                    return None
                continue
            if isinstance(template_arg, Binding):
                if isinstance(atom_arg, InternalConstant):
                    return None
                existing = bound.get(template_arg.name)
                if existing is None:
                    bound[template_arg.name] = atom_arg
                elif existing != atom_arg:
                    return None
                continue
            # plain external constant
            if template_arg != atom_arg:
                return None
        return bound

    def instantiate(
        self,
        environment: Mapping[str, str],
        activate_exists,
    ) -> OpenAtom:
        """Build a concrete (possibly open) atom: variables looked up in
        ``environment``; ``Exists`` args realised through
        ``activate_exists(type_expr) -> InternalConstant``."""
        concrete = []
        for arg in self.args:
            if isinstance(arg, Wildcard):
                raise SchemaError("a wildcard cannot be inserted")
            if isinstance(arg, Binding):
                try:
                    concrete.append(environment[arg.name])
                except KeyError:
                    raise SchemaError(f"unbound variable {arg.name!r}") from None
            elif isinstance(arg, Exists):
                concrete.append(activate_exists(arg.type))
            else:
                concrete.append(arg)
        return OpenAtom(self.relation, concrete)

    def __repr__(self):
        rendered = ", ".join(repr(a) if not isinstance(a, str) else a for a in self.args)
        return f"{self.relation}({rendered})"
