"""Semantic resolution over open atoms (Section 5.2, after McSkimin-Minker).

Clauses here are sets of signed open atoms.  Resolving ``R(a, ...)``
against ``~R(b, ...)`` consults the constant dictionary: each argument
pair must have a non-empty *intersection* of possible values -- "this
intersection is effectively the unification".  When an argument pair
involves an internal constant, the resolvent is guarded by the narrowed
categories: the resolution step is sound for precisely the valuations in
the intersection.

This module implements the special case the paper sketches (ground atoms
with internal constants; no universally quantified variables -- the full
Pi-sigma framework is noted as possible but "adds substantially to the
complexity").
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.relational.atoms import OpenAtom
from repro.relational.constants import ConstantDictionary, InternalConstant

__all__ = ["SignedAtom", "OpenClause", "semantic_unify", "semantic_resolvent"]


class SignedAtom:
    """An open atom or its negation."""

    __slots__ = ("positive", "atom")

    def __init__(self, atom: OpenAtom, positive: bool = True):
        self.atom = atom
        self.positive = positive

    def negated(self) -> "SignedAtom":
        """The complementary literal."""
        return SignedAtom(self.atom, not self.positive)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SignedAtom):
            return NotImplemented
        return self.positive == other.positive and self.atom == other.atom

    def __hash__(self) -> int:
        return hash((self.positive, self.atom))

    def __repr__(self) -> str:
        return ("" if self.positive else "~") + repr(self.atom)


class OpenClause:
    """A disjunction of signed open atoms."""

    __slots__ = ("literals",)

    def __init__(self, literals: Iterable[SignedAtom]):
        self.literals = frozenset(literals)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, OpenClause):
            return NotImplemented
        return self.literals == other.literals

    def __hash__(self) -> int:
        return hash(self.literals)

    def __len__(self) -> int:
        return len(self.literals)

    def __iter__(self):
        return iter(self.literals)

    def __repr__(self) -> str:
        if not self.literals:
            return "OpenClause(0)"
        return " | ".join(sorted(repr(lit) for lit in self.literals))


def semantic_unify(
    dictionary: ConstantDictionary, left: OpenAtom, right: OpenAtom
) -> dict[str, frozenset[str]] | None:
    """Argumentwise semantic unification of two atoms of the same relation.

    Returns, for each argument position's symbols, the narrowing required:
    a map ``ident -> allowed external values`` for every internal constant
    involved, or ``None`` when some position's intersection is empty
    (the atoms cannot denote the same fact).
    """
    if left.relation != right.relation or len(left.args) != len(right.args):
        return None
    narrowing: dict[str, frozenset[str]] = {}
    for left_arg, right_arg in zip(left.args, right.args):
        common = dictionary.intersect(left_arg, right_arg)
        if not common:
            return None
        for arg in (left_arg, right_arg):
            if isinstance(arg, InternalConstant):
                previous = narrowing.get(arg.ident, dictionary.denotation_of(arg))
                narrowed = previous & common
                if not narrowed:
                    return None
                narrowing[arg.ident] = narrowed
    return narrowing


def semantic_resolvent(
    dictionary: ConstantDictionary,
    left: OpenClause,
    right: OpenClause,
    on: tuple[SignedAtom, SignedAtom],
) -> OpenClause | None:
    """Resolve two open clauses on a complementary, semantically unifiable
    pair of literals.

    ``on = (p, n)`` with ``p`` positive from ``left`` and ``n`` negative
    from ``right``.  Returns the resolvent clause, or ``None`` when the
    pair does not unify.  (Narrowed internal-constant categories are
    returned to the caller through the dictionary only on demand -- the
    resolvent here keeps the original symbols, which is sound: it is a
    logical consequence for every valuation in the intersection, and
    weaker elsewhere.)
    """
    positive, negative = on
    if not positive.positive or negative.positive:
        return None
    if positive not in left.literals or negative not in right.literals:
        return None
    if semantic_unify(dictionary, positive.atom, negative.atom) is None:
        return None
    return OpenClause(
        (left.literals - {positive}) | (right.literals - {negative})
    )
