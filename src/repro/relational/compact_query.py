"""Query answering directly on the compact (internal-constant) store.

Section 5.2's whole point is that the compact representation "admits much
more efficient manipulation" -- including query answering -- than the
grounded one.  The compact store is a conjunction of certain open atoms;
under the modified closed world assumption each atom with internal
constants denotes the disjunction, over the joint valuations of its
nulls, of its ground instances (shared nulls co-vary across atoms).

For this positive-unit fragment, certain-truth of a ground disjunction
has an exact finite characterisation::

    store |= q1 v ... v qk   iff   for every joint valuation v of the
    store's internal constants, some instantiated store fact equals some qi.

:func:`certain_disjunction` implements precisely that, giving compact-mode
answers that provably agree with the grounded mirror (tested in
``tests/relational/test_compact_query.py``) at a cost that depends on the
*null count*, not the domain size.  Negative knowledge is outside the
fragment: the compact store denies nothing, so every well-typed fact is
possible (:func:`possible_fact` is constantly true, matching the grounded
semantics of a store that only ever asserts positives).
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.relational.atoms import OpenAtom, atom_valuations
from repro.relational.constants import ConstantDictionary
from repro.relational.schema import RelationalSchema

__all__ = ["certain_disjunction", "certain_fact", "possible_fact", "certain_values"]


def certain_disjunction(
    store: Iterable[OpenAtom],
    dictionary: ConstantDictionary,
    schema: RelationalSchema,
    query: Iterable[tuple[str, tuple[str, ...]]],
) -> bool:
    """Is the ground disjunction certain, given the compact store?

    ``query`` is a collection of ``(relation, args)`` ground facts read
    disjunctively.  Exact for the positive-unit store fragment (see
    module docstring); the enumeration is over the store's internal
    constants only.
    """
    query_set = {(relation, tuple(args)) for relation, args in query}
    if not query_set:
        return False
    atom_list = list(store)
    if not atom_list:
        return False
    for valuation in atom_valuations(atom_list, dictionary, schema):
        grounded = {
            (atom.relation, atom.instantiate(valuation).ground_args())
            for atom in atom_list
        }
        if not (grounded & query_set):
            return False
    return True


def certain_fact(
    store: Iterable[OpenAtom],
    dictionary: ConstantDictionary,
    schema: RelationalSchema,
    relation: str,
    args: tuple[str, ...],
) -> bool:
    """Is one ground fact certain?  (A one-disjunct query.)"""
    return certain_disjunction(store, dictionary, schema, [(relation, args)])


def possible_fact(
    schema: RelationalSchema, relation: str, args: tuple[str, ...]
) -> bool:
    """Is a ground fact possible?  The compact store carries no negative
    information, so exactly the well-typed facts are possible."""
    return schema.relation(relation).admits(tuple(args))


def certain_values(
    store: Iterable[OpenAtom],
    dictionary: ConstantDictionary,
    schema: RelationalSchema,
    relation: str,
    args: tuple,
    position: int,
) -> frozenset[str]:
    """The attribute values ``t`` for which the fact with ``t`` at
    ``position`` is *certain* (usually a singleton or empty)."""
    signature = schema.relation(relation)
    out = set()
    for candidate in sorted(signature.attributes[position].type.members):
        concrete = list(args)
        concrete[position] = candidate
        if certain_fact(store, dictionary, schema, relation, tuple(concrete)):
            out.add(candidate)
    return frozenset(out)
