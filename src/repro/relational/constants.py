"""External and internal constant symbols, and the constant dictionary
(Section 5.2).

*External* constants obey unique naming and are visible to the user.
*Internal* constants are null values: countably many, only finitely many
active, each equal to *some* external constant (the modified closed world
assumption).  The dictionary classifies every symbol: an external entry
records its smallest named type; an internal entry holds a McSkimin-Minker
*Boolean category expression* ``(ty, ie, ee)`` -- the value is of type
``ty`` or among the inclusion exceptions ``ie``, and not among the
exclusion exceptions ``ee``.

Intersection of category denotations is the dictionary's "semantic
unification" service used by semantic resolution.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.errors import TypeAlgebraError, UnknownConstantError
from repro.relational.types import TypeAlgebra, TypeExpr

__all__ = ["CategoryExpr", "InternalConstant", "ConstantDictionary"]


class CategoryExpr:
    """A Boolean category expression ``(ty, ie, ee)``.

    Denotation: ``(members(ty) | ie) - ee`` -- the external constants the
    classified symbol could equal.
    """

    __slots__ = ("ty", "ie", "ee")

    def __init__(
        self,
        ty: TypeExpr,
        ie: Iterable[str] = (),
        ee: Iterable[str] = (),
    ):
        self.ty = ty
        self.ie = frozenset(ie)
        self.ee = frozenset(ee)
        unknown = (self.ie | self.ee) - ty.algebra.universe
        if unknown:
            raise TypeAlgebraError(
                f"category expression mentions unknown constants {sorted(unknown)}"
            )

    def denotation(self) -> frozenset[str]:
        """The possible external values."""
        return (self.ty.members | self.ie) - self.ee

    def excluding(self, constants: Iterable[str]) -> "CategoryExpr":
        """A narrowed expression with more exclusion exceptions."""
        return CategoryExpr(self.ty, self.ie, self.ee | frozenset(constants))

    def restricted_to(self, allowed: frozenset[str]) -> "CategoryExpr":
        """A narrowed expression whose denotation is intersected with
        ``allowed`` (used by semantic unification)."""
        denotation = self.denotation() & allowed
        return CategoryExpr(self.ty.algebra.empty, ie=denotation)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CategoryExpr):
            return NotImplemented
        return (self.ty, self.ie, self.ee) == (other.ty, other.ie, other.ee)

    def __hash__(self) -> int:
        return hash((self.ty, self.ie, self.ee))

    def __repr__(self) -> str:
        parts = [repr(self.ty)]
        if self.ie:
            parts.append(f"ie={sorted(self.ie)}")
        if self.ee:
            parts.append(f"ee={sorted(self.ee)}")
        return f"CategoryExpr({', '.join(parts)})"


class InternalConstant:
    """An active internal constant (null value).  Identity is nominal --
    two internal constants with equal categories are still distinct
    symbols (no unique naming)."""

    __slots__ = ("ident",)

    def __init__(self, ident: str):
        self.ident = ident

    def __eq__(self, other: object) -> bool:
        return isinstance(other, InternalConstant) and other.ident == self.ident

    def __hash__(self) -> int:
        return hash(("InternalConstant", self.ident))

    def __repr__(self) -> str:
        return f"InternalConstant({self.ident})"


class ConstantDictionary:
    """The constant dictionary: one entry per external and active internal
    symbol (Section 5.2).

    >>> algebra = TypeAlgebra(["Jones", "T1", "T2"])
    >>> telno = algebra.define("telno", ["T1", "T2"])
    >>> person = algebra.define("person", ["Jones"])
    >>> d = ConstantDictionary(algebra)
    >>> d.register_external("Jones", person)
    >>> u = d.activate(CategoryExpr(telno))
    >>> sorted(d.denotation_of(u))
    ['T1', 'T2']
    """

    def __init__(self, algebra: TypeAlgebra):
        self._algebra = algebra
        self._external: dict[str, TypeExpr] = {}
        self._internal: dict[str, CategoryExpr] = {}
        self._counter = 0

    @property
    def algebra(self) -> TypeAlgebra:
        """The underlying type algebra."""
        return self._algebra

    # --- external symbols -------------------------------------------------------

    def register_external(self, name: str, smallest_type: TypeExpr) -> None:
        """Record an external constant with its smallest type."""
        if name not in self._algebra.universe:
            raise UnknownConstantError(f"{name!r} is not in the universe")
        if name not in smallest_type:
            raise TypeAlgebraError(
                f"{name!r} is not a member of its declared type"
            )
        self._external[name] = smallest_type

    def external_type(self, name: str) -> TypeExpr:
        """The smallest type of an external constant."""
        try:
            return self._external[name]
        except KeyError:
            raise UnknownConstantError(f"external constant {name!r} not registered") from None

    def externals(self) -> tuple[str, ...]:
        """Registered external constants, sorted."""
        return tuple(sorted(self._external))

    # --- internal symbols -----------------------------------------------------------

    def activate(self, category: CategoryExpr) -> InternalConstant:
        """Activate a fresh internal constant with the given category."""
        self._counter += 1
        symbol = InternalConstant(f"u{self._counter}")
        self._internal[symbol.ident] = category
        return symbol

    def category_of(self, symbol: InternalConstant) -> CategoryExpr:
        """The category expression of an active internal constant."""
        try:
            return self._internal[symbol.ident]
        except KeyError:
            raise UnknownConstantError(
                f"internal constant {symbol.ident!r} is not active"
            ) from None

    def narrow(self, symbol: InternalConstant, category: CategoryExpr) -> None:
        """Replace an internal constant's category (information gain)."""
        if symbol.ident not in self._internal:
            raise UnknownConstantError(f"{symbol.ident!r} is not active")
        self._internal[symbol.ident] = category

    def active_internals(self) -> tuple[InternalConstant, ...]:
        """All active internal constants."""
        return tuple(InternalConstant(i) for i in sorted(self._internal))

    # --- denotations and unification ----------------------------------------------------

    def denotation_of(self, symbol: str | InternalConstant) -> frozenset[str]:
        """Possible external values of any symbol (singleton if external)."""
        if isinstance(symbol, InternalConstant):
            return self.category_of(symbol).denotation()
        if symbol in self._external:
            return frozenset({symbol})
        raise UnknownConstantError(f"unknown symbol {symbol!r}")

    def intersect(
        self, left: str | InternalConstant, right: str | InternalConstant
    ) -> frozenset[str]:
        """Semantic unification: the common possible values of two symbols.

        Resolving ``R(a, ...)`` against ``R(b, ...)`` consults this
        intersection -- "this intersection is effectively the unification"
        (Section 5.2).  Empty means the arguments cannot co-refer.
        """
        return self.denotation_of(left) & self.denotation_of(right)

    def __repr__(self) -> str:
        return (
            f"ConstantDictionary({len(self._external)} external, "
            f"{len(self._internal)} internal)"
        )
