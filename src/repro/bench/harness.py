"""Measurement utilities for the experiment harness.

The paper proves asymptotic *shapes*, not wall-clock numbers, so the
harness is built around shape checks: minimum-of-repeats timing, log-log
slope fitting (for polynomial claims), and log-linear fitting (for
exponential claims), plus a plain-text table renderer used by every
experiment report.
"""

from __future__ import annotations

import math
import time
from collections.abc import Callable, Iterable, Iterator, Mapping, Sequence
from contextlib import contextmanager
from dataclasses import dataclass, field

from repro.obs import core as obs

__all__ = [
    "Timing",
    "measure_seconds",
    "measure_with_counters",
    "counting",
    "Measurement",
    "fit_loglog_slope",
    "fit_exponential_base",
    "Report",
]

# Shared log-clamping epsilon: zero values (timer underflow, empty outputs)
# are clamped here before taking logs so a report can never crash.
_EPS = 1e-12


class Timing(float):
    """Best-of-repeats seconds that still carries every raw sample.

    A ``Timing`` *is* a float (its value is the minimum of the repeats),
    so every existing call site -- formatting, sums, ratios, comparisons
    -- keeps working, while run records and regression gates can read the
    full distribution: :attr:`samples`, :attr:`median`, :attr:`minimum`,
    :attr:`maximum`, :attr:`mean`, and :attr:`stddev`.
    """

    __slots__ = ("samples",)

    samples: tuple[float, ...]

    def __new__(cls, samples: Iterable[float]) -> "Timing":
        values = tuple(float(s) for s in samples)
        if not values:
            raise ValueError("Timing needs at least one sample")
        self = super().__new__(cls, min(values))
        self.samples = values
        return self

    @property
    def best(self) -> float:
        return float(self)

    @property
    def minimum(self) -> float:
        return min(self.samples)

    @property
    def maximum(self) -> float:
        return max(self.samples)

    @property
    def mean(self) -> float:
        return sum(self.samples) / len(self.samples)

    @property
    def median(self) -> float:
        ordered = sorted(self.samples)
        mid = len(ordered) // 2
        if len(ordered) % 2:
            return ordered[mid]
        return (ordered[mid - 1] + ordered[mid]) / 2

    @property
    def stddev(self) -> float:
        """Population standard deviation (0.0 for a single repeat)."""
        mean = self.mean
        return math.sqrt(
            sum((s - mean) ** 2 for s in self.samples) / len(self.samples)
        )

    def to_json(self) -> dict[str, object]:
        """The schema-pinned JSON form used inside ``BENCH_*.json``."""
        return {
            "best": self.best,
            "median": self.median,
            "mean": self.mean,
            "min": self.minimum,
            "max": self.maximum,
            "stddev": self.stddev,
            "repeats": len(self.samples),
            "samples": list(self.samples),
        }

    @classmethod
    def from_json(cls, data: Mapping[str, object]) -> "Timing":
        """Rebuild from :meth:`to_json` output (raw samples are canonical)."""
        samples = data.get("samples")
        if not isinstance(samples, (list, tuple)) or not samples:
            raise ValueError(f"timing record needs a non-empty samples list: {data!r}")
        return cls(samples)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Timing(best={self.best:.6f}, repeats={len(self.samples)})"


def measure_seconds(fn: Callable[[], object], repeat: int = 3) -> Timing:
    """Best-of-``repeat`` wall-clock seconds for ``fn()``.

    Returns a :class:`Timing`, a float subclass whose value is the best
    repeat and which additionally exposes min/max/median/stddev and the
    raw samples for run records.
    """
    if repeat < 1:
        raise ValueError(f"repeat must be >= 1, got {repeat}")
    samples = []
    for _ in range(repeat):
        start = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - start)
    return Timing(samples)


@dataclass(frozen=True)
class Measurement:
    """A timing plus the kernel-counter increments of one run.

    ``seconds`` is a :class:`Timing` (float subclass), so raw repeat
    samples travel with the aggregate.
    """

    seconds: Timing
    counters: dict[str, int]


def measure_with_counters(fn: Callable[[], object], repeat: int = 3) -> Measurement:
    """Best-of-``repeat`` seconds plus the ``repro.obs`` counter delta.

    Timing repeats run with instrumentation in whatever state the caller
    left it (normally off, so timings stay undistorted); one extra run
    then executes under :func:`repro.obs.core.enabled` to capture the
    counter increments, so experiment reports can print "resolvents"
    next to "seconds".
    """
    seconds = measure_seconds(fn, repeat=repeat)
    with obs.enabled():
        before = obs.counters().snapshot()
        fn()
        delta = obs.counters().delta(before)
    return Measurement(seconds=seconds, counters=delta)


@contextmanager
def counting(report: "Report") -> Iterator[None]:
    """Merge the obs counter delta of the with-block into ``report``.

    Used by experiments whose verdicts are exact (no timing sweep) so
    their run records still carry kernel-work totals: the block runs once
    under :func:`repro.obs.core.enabled` and its counter increments are
    added to ``report.counters``.
    """
    with obs.enabled():
        before = obs.counters().snapshot()
        try:
            yield
        finally:
            report.merge_counters(obs.counters().delta(before))


def _least_squares_slope(xs: Sequence[float], ys: Sequence[float]) -> float:
    n = len(xs)
    mean_x = sum(xs) / n
    mean_y = sum(ys) / n
    numerator = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys))
    denominator = sum((x - mean_x) ** 2 for x in xs)
    if denominator == 0:
        return 0.0
    return numerator / denominator


def fit_loglog_slope(sizes: Sequence[float], values: Sequence[float]) -> float:
    """Least-squares slope of log(value) against log(size).

    ~1 for linear growth, ~2 for quadratic, etc.  Zero values are clamped
    to a tiny epsilon so timer underflow cannot crash a report.
    """
    xs = [math.log(s) for s in sizes]
    ys = [math.log(max(v, _EPS)) for v in values]
    return _least_squares_slope(xs, ys)


def fit_exponential_base(sizes: Sequence[float], values: Sequence[float]) -> float:
    """Fit ``value ~ c * b^size`` and return ``b``.

    Least squares on log(value) against size; the claim of Theorem
    2.3.4(b.iii) is ``b = e^(1/e) ~ 1.44`` in ``Length`` for complement.
    """
    ys = [math.log(max(v, _EPS)) for v in values]
    slope = _least_squares_slope(list(sizes), ys)
    return math.exp(slope)


@dataclass
class Report:
    """One experiment's claim-vs-measured report.

    Beyond the rendered table, a report carries two machine-readable
    channels consumed by ``repro.obs.metrics`` run records:

    * ``counters`` -- kernel-work totals for the whole experiment
      (accumulated via :meth:`merge_counters`, exact and deterministic);
    * ``metrics`` -- named scalar results such as fitted growth
      exponents (``loglog_slope``, ``exp_base``), compared against the
      baseline with a per-metric tolerance;
    * ``memory`` -- tracemalloc totals (``current_bytes``/``peak_bytes``)
      when the run tracked memory (``run_experiments.py --mem``),
      recorded but never gated.
    """

    ident: str
    title: str
    claim: str
    columns: tuple[str, ...]
    rows: list[tuple] = field(default_factory=list)
    observed: str = ""
    holds: bool | None = None
    counters: dict[str, int] = field(default_factory=dict)
    metrics: dict[str, float] = field(default_factory=dict)
    memory: dict[str, int] | None = None

    def merge_counters(self, delta: Mapping[str, int]) -> None:
        """Accumulate a counter delta into the experiment totals."""
        for name, value in delta.items():
            self.counters[name] = self.counters.get(name, 0) + value

    def add_row(self, *values) -> None:
        """Append a data row (must match ``columns``)."""
        if len(values) != len(self.columns):
            raise ValueError(
                f"row width {len(values)} != column count {len(self.columns)}"
            )
        self.rows.append(tuple(values))

    def render(self) -> str:
        """The report as a plain-text table."""
        header = [f"== {self.ident}: {self.title} =="]
        header.append(f"claim    : {self.claim}")
        if self.observed:
            header.append(f"observed : {self.observed}")
        if self.holds is not None:
            header.append(f"verdict  : {'SHAPE HOLDS' if self.holds else 'DIVERGES'}")
        cells = [tuple(str(v) for v in row) for row in self.rows]
        widths = [
            max(len(self.columns[i]), *(len(row[i]) for row in cells))
            if cells
            else len(self.columns[i])
            for i in range(len(self.columns))
        ]
        line = "  ".join(c.ljust(w) for c, w in zip(self.columns, widths))
        rule = "-" * len(line)
        body = [line, rule]
        for row in cells:
            body.append("  ".join(v.ljust(w) for v, w in zip(row, widths)))
        return "\n".join(header + body) + "\n"

    def __str__(self) -> str:
        return self.render()
