"""Measurement utilities for the experiment harness.

The paper proves asymptotic *shapes*, not wall-clock numbers, so the
harness is built around shape checks: minimum-of-repeats timing, log-log
slope fitting (for polynomial claims), and log-linear fitting (for
exponential claims), plus a plain-text table renderer used by every
experiment report.
"""

from __future__ import annotations

import math
import time
from collections.abc import Callable, Iterable, Sequence
from dataclasses import dataclass, field

from repro.obs import core as obs

__all__ = [
    "measure_seconds",
    "measure_with_counters",
    "Measurement",
    "fit_loglog_slope",
    "fit_exponential_base",
    "Report",
]

# Shared log-clamping epsilon: zero values (timer underflow, empty outputs)
# are clamped here before taking logs so a report can never crash.
_EPS = 1e-12


def measure_seconds(fn: Callable[[], object], repeat: int = 3) -> float:
    """Best-of-``repeat`` wall-clock seconds for ``fn()``."""
    if repeat < 1:
        raise ValueError(f"repeat must be >= 1, got {repeat}")
    best = math.inf
    for _ in range(repeat):
        start = time.perf_counter()
        fn()
        elapsed = time.perf_counter() - start
        if elapsed < best:
            best = elapsed
    return best


@dataclass(frozen=True)
class Measurement:
    """A timing plus the kernel-counter increments of one run."""

    seconds: float
    counters: dict[str, int]


def measure_with_counters(fn: Callable[[], object], repeat: int = 3) -> Measurement:
    """Best-of-``repeat`` seconds plus the ``repro.obs`` counter delta.

    Timing repeats run with instrumentation in whatever state the caller
    left it (normally off, so timings stay undistorted); one extra run
    then executes under :func:`repro.obs.core.enabled` to capture the
    counter increments, so experiment reports can print "resolvents"
    next to "seconds".
    """
    seconds = measure_seconds(fn, repeat=repeat)
    with obs.enabled():
        before = obs.counters().snapshot()
        fn()
        delta = obs.counters().delta(before)
    return Measurement(seconds=seconds, counters=delta)


def _least_squares_slope(xs: Sequence[float], ys: Sequence[float]) -> float:
    n = len(xs)
    mean_x = sum(xs) / n
    mean_y = sum(ys) / n
    numerator = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys))
    denominator = sum((x - mean_x) ** 2 for x in xs)
    if denominator == 0:
        return 0.0
    return numerator / denominator


def fit_loglog_slope(sizes: Sequence[float], values: Sequence[float]) -> float:
    """Least-squares slope of log(value) against log(size).

    ~1 for linear growth, ~2 for quadratic, etc.  Zero values are clamped
    to a tiny epsilon so timer underflow cannot crash a report.
    """
    xs = [math.log(s) for s in sizes]
    ys = [math.log(max(v, _EPS)) for v in values]
    return _least_squares_slope(xs, ys)


def fit_exponential_base(sizes: Sequence[float], values: Sequence[float]) -> float:
    """Fit ``value ~ c * b^size`` and return ``b``.

    Least squares on log(value) against size; the claim of Theorem
    2.3.4(b.iii) is ``b = e^(1/e) ~ 1.44`` in ``Length`` for complement.
    """
    ys = [math.log(max(v, _EPS)) for v in values]
    slope = _least_squares_slope(list(sizes), ys)
    return math.exp(slope)


@dataclass
class Report:
    """One experiment's claim-vs-measured report."""

    ident: str
    title: str
    claim: str
    columns: tuple[str, ...]
    rows: list[tuple] = field(default_factory=list)
    observed: str = ""
    holds: bool | None = None

    def add_row(self, *values) -> None:
        """Append a data row (must match ``columns``)."""
        if len(values) != len(self.columns):
            raise ValueError(
                f"row width {len(values)} != column count {len(self.columns)}"
            )
        self.rows.append(tuple(values))

    def render(self) -> str:
        """The report as a plain-text table."""
        header = [f"== {self.ident}: {self.title} =="]
        header.append(f"claim    : {self.claim}")
        if self.observed:
            header.append(f"observed : {self.observed}")
        if self.holds is not None:
            header.append(f"verdict  : {'SHAPE HOLDS' if self.holds else 'DIVERGES'}")
        cells = [tuple(str(v) for v in row) for row in self.rows]
        widths = [
            max(len(self.columns[i]), *(len(row[i]) for row in cells))
            if cells
            else len(self.columns[i])
            for i in range(len(self.columns))
        ]
        line = "  ".join(c.ljust(w) for c, w in zip(self.columns, widths))
        rule = "-" * len(line)
        body = [line, rule]
        for row in cells:
            body.append("  ".join(v.ljust(w) for v, w in zip(row, widths)))
        return "\n".join(header + body) + "\n"

    def __str__(self) -> str:
        return self.render()
