"""The experiment harness: one function per experiment E1--E17.

Each function runs its workload and returns a :class:`Report` with the
paper's claim, the measured rows, and a shape verdict.  The paper has no
empirical tables; these experiments regenerate its *formal* claims --
complexity theorems, worked examples, correctness theorems, and the
comparative claims of Section 3.3 (see DESIGN.md section 2 for the index).

Absolute timings are environment noise; every verdict is about shape
(fitted slopes / growth ratios / exact example outputs).
"""

from __future__ import annotations

import math
import random

from repro.obs import core as obs
from repro.bench.harness import (
    Report,
    counting,
    fit_exponential_base,
    fit_loglog_slope,
    measure_seconds,
    measure_with_counters,
)
from repro.blu.clausal_genmask import clausal_genmask, depends_on
from repro.blu.clausal_impl import (
    ClausalImplementation,
    clausal_combine,
    clausal_complement,
)
from repro.blu.clausal_mask import clausal_mask
from repro.logic.clauses import ClauseSet, clause_of, make_literal
from repro.logic.propositions import Vocabulary
from repro.workloads.generators import (
    clause_set_of_length,
    random_clause_set,
)

__all__ = [
    "a01_simplify_ablation",
    "a02_mask_strategy",
    "a03_backend_crossover",
    "a04_wilkins_hybrid",
    "a05_incremental_updates",
    "e01_assert_linear",
    "e02_combine_quadratic",
    "e03_complement_exponential",
    "e04_mask_blowup",
    "e05_genmask_exponential",
    "e06_example_315",
    "e07_example_325",
    "e08_inset_example",
    "e09_congruence_theorem",
    "e10_emulation",
    "e11_wilkins_tradeoff",
    "e12_hlu_equivalence",
    "e13_relational_grounding",
    "e14_tabular_gap",
    "e15_minimal_change",
    "e16_hlu_bottleneck",
    "e17_template_coverage",
    "all_experiments",
]


# ---------------------------------------------------------------------------
# E1 -- Theorem 2.3.4(b.i): assert is Theta(Length1 + Length2)
# ---------------------------------------------------------------------------

def e01_assert_linear(seed: int = 11) -> Report:
    report = Report(
        ident="E1",
        title="BLU--C assert scaling",
        claim="Theta(Length[Phi1] + Length[Phi2])  (Theorem 2.3.4(b.i))",
        columns=("Length", "clauses out (obs)", "seconds"),
    )
    rng = random.Random(seed)
    vocabulary = Vocabulary.standard(64)
    impl = ClausalImplementation(vocabulary, simplify=False)
    lengths = [2000, 4000, 8000, 16000, 32000]
    times = []
    for length in lengths:
        left = clause_set_of_length(rng, vocabulary, length // 2)
        right = clause_set_of_length(rng, vocabulary, length // 2)
        measured = measure_with_counters(lambda: impl.op_assert(left, right))
        seconds = measured.seconds
        times.append(seconds)
        report.merge_counters(measured.counters)
        report.add_row(
            length,
            measured.counters.get("blu.c.assert.clauses_out", 0),
            f"{seconds:.6f}",
        )
    slope = fit_loglog_slope(lengths, times)
    report.metrics["loglog_slope"] = slope
    report.observed = f"log-log slope {slope:.2f} (linear ~ 1)"
    report.holds = 0.4 <= slope <= 1.6
    return report


# ---------------------------------------------------------------------------
# E2 -- Theorem 2.3.4(b.ii): combine is Theta(Length1 x Length2)
# ---------------------------------------------------------------------------

def e02_combine_quadratic(seed: int = 12) -> Report:
    report = Report(
        ident="E2",
        title="BLU--C combine scaling",
        claim="Theta(Length[Phi1] x Length[Phi2])  (Theorem 2.3.4(b.ii))",
        columns=("Length each", "output clauses", "seconds"),
    )
    rng = random.Random(seed)
    vocabulary = Vocabulary.standard(64)
    lengths = [150, 300, 600, 1200]
    times = []
    for length in lengths:
        left = clause_set_of_length(rng, vocabulary, length)
        right = clause_set_of_length(rng, vocabulary, length)
        measured = measure_with_counters(
            lambda: clausal_combine(left, right, simplify=False)
        )
        seconds = measured.seconds
        report.merge_counters(measured.counters)
        output = clausal_combine(left, right, simplify=False)
        times.append(seconds)
        report.add_row(length, len(output), f"{seconds:.6f}")
    slope = fit_loglog_slope(lengths, times)
    report.metrics["loglog_slope"] = slope
    report.observed = f"log-log slope {slope:.2f} vs per-side Length (quadratic ~ 2)"
    report.holds = 1.5 <= slope <= 2.6
    return report


# ---------------------------------------------------------------------------
# E3 -- Theorem 2.3.4(b.iii): complement is Theta(eps^Length), eps = e^(1/e)
# ---------------------------------------------------------------------------

def e03_complement_exponential(seed: int = 13) -> Report:
    report = Report(
        ident="E3",
        title="BLU--C complement output growth",
        claim=(
            "Theta(eps^Length) with eps = e^(1/e) ~ 1.4447, worst case at "
            "clause width ~ e (Theorem 2.3.4(b.iii))"
        ),
        columns=("width", "Length", "output clauses"),
    )
    rng = random.Random(seed)
    bases: dict[int, float] = {}
    for width in (2, 3, 4):
        # Disjoint-letter clauses maximise the product: Length/width
        # clauses of the given width, each over fresh letters.
        lengths = [width * k for k in range(3, 7)]
        outputs = []
        for length in lengths:
            clause_count = length // width
            vocabulary = Vocabulary.standard(clause_count * width)
            clauses = [
                clause_of(
                    make_literal(width * i + j, rng.random() < 0.5)
                    for j in range(width)
                )
                for i in range(clause_count)
            ]
            state = ClauseSet(vocabulary, clauses)
            with counting(report):
                output = clausal_complement(state, simplify=False)
            outputs.append(len(output))
            report.add_row(width, length, len(output))
        bases[width] = fit_exponential_base(lengths, outputs)
        report.metrics[f"exp_base_w{width}"] = bases[width]
    eps = math.exp(1 / math.e)
    summary = ", ".join(f"width {w}: base {b:.3f}" for w, b in bases.items())
    report.observed = f"{summary}; eps = {eps:.4f}"
    report.holds = (
        abs(bases[3] - eps) < 0.05
        and bases[3] >= bases[2] - 1e-9
        and bases[3] >= bases[4] - 1e-9
    )
    return report


# ---------------------------------------------------------------------------
# E4 -- Theorem 2.3.6(b): mask blowup
# ---------------------------------------------------------------------------

def _star_instance(clause_count: int) -> ClauseSet:
    """A star family: one hub letter in every clause (half positive, half
    negative), spokes distinct -- eliminating the hub produces the full
    quadratic product."""
    letters = 1 + clause_count  # hub + one fresh letter per clause
    vocabulary = Vocabulary.standard(letters)
    clauses = []
    for i in range(clause_count):
        hub = make_literal(0, positive=(i % 2 == 0))
        spoke = make_literal(1 + i)
        clauses.append(clause_of((hub, spoke)))
    return ClauseSet(vocabulary, clauses)


def e04_mask_blowup(seed: int = 14) -> Report:
    report = Report(
        ident="E4",
        title="BLU--C mask output blowup",
        claim=(
            "worst case O(Length^(2^|P|)): masking is inherently hard "
            "(Theorem 2.3.6(b))"
        ),
        columns=("family", "|P|", "input Length", "output Length", "seconds"),
    )
    # (a) single-letter star family: quadratic output in input length.
    star_sizes = [8, 16, 32, 64]
    star_outputs = []
    for clause_count in star_sizes:
        state = _star_instance(clause_count)
        measured = measure_with_counters(
            lambda: clausal_mask(state, [0], simplify=False), repeat=2
        )
        seconds = measured.seconds
        report.merge_counters(measured.counters)
        output = clausal_mask(state, [0], simplify=False)
        star_outputs.append(output.length)
        report.add_row("star", 1, state.length, output.length, f"{seconds:.6f}")
    star_slope = fit_loglog_slope(
        [2 * c for c in star_sizes], star_outputs
    )
    report.metrics["star_output_slope"] = star_slope
    # (b) dense random family, growing |P|: time compounds with each letter.
    rng = random.Random(seed)
    vocabulary = Vocabulary.standard(12)
    dense = random_clause_set(rng, vocabulary, 40, width=3)
    dense_times = []
    for mask_size in (1, 2, 3, 4):
        indices = list(range(mask_size))
        measured = measure_with_counters(
            lambda: clausal_mask(dense, indices, simplify=True), repeat=2
        )
        seconds = measured.seconds
        report.merge_counters(measured.counters)
        output = clausal_mask(dense, indices, simplify=True)
        dense_times.append(seconds)
        report.add_row(
            "dense", mask_size, dense.length, output.length, f"{seconds:.6f}"
        )
    report.observed = (
        f"star output slope {star_slope:.2f} (quadratic ~ 2, already "
        f"super-linear for |P| = 1); dense time grows with |P|"
    )
    report.holds = star_slope >= 1.5 and dense_times[-1] >= dense_times[0]
    return report


# ---------------------------------------------------------------------------
# E5 -- Theorem 2.3.9(b,c): genmask exponential; dependence is NP-complete
# ---------------------------------------------------------------------------

def e05_genmask_exponential(seed: int = 15) -> Report:
    report = Report(
        ident="E5",
        title="BLU--C genmask scaling and NP-hardness witness",
        claim=(
            "Theta(2^|Prop[Phi]| . Length . |Prop|^2) time; deciding "
            "dependence is NP-complete (Theorem 2.3.9)"
        ),
        columns=("letters", "Length", "seconds"),
    )
    rng = random.Random(seed)
    # Worst-case family: a letter z that *occurs* but is *independent*
    # (Phi_k = {(z | A_i), (~z | A_i)} for i = 1..k is equivalent to
    # conj(A_i)).  Independence has no early exit, so testing z costs the
    # full 2^k Ldiff enumeration -- the Theorem 2.3.9(b) worst case.
    letter_counts = [6, 8, 10, 12]
    times = []
    for k in letter_counts:
        vocabulary = Vocabulary.standard(k + 1)
        z_index = k
        clauses = []
        for i in range(k):
            clauses.append(clause_of([make_literal(z_index), make_literal(i)]))
            clauses.append(
                clause_of([make_literal(z_index, False), make_literal(i)])
            )
        state = ClauseSet(vocabulary, clauses)
        measured = measure_with_counters(lambda: clausal_genmask(state), repeat=2)
        seconds = measured.seconds
        report.merge_counters(measured.counters)
        times.append(seconds)
        report.add_row(k + 1, state.length, f"{seconds:.6f}")
    base = fit_exponential_base(letter_counts, times)
    report.metrics["exp_base"] = base
    # NP-hardness witness: for fresh z, Phi = F u {z} depends on z iff F
    # is satisfiable (Mod[Phi] = z-true models of F, never closed under
    # flipping z unless empty) -- a SAT oracle in one dependence query.
    from repro.logic.sat import is_satisfiable

    agreement = 0
    trials = 12
    with counting(report):
        for _ in range(trials):
            vocabulary = Vocabulary.standard(7)  # letters 0..5 for F, 6 = z
            f_clauses = random_clause_set(rng, Vocabulary.standard(6), 9, width=3)
            z = make_literal(6)
            phi = ClauseSet(vocabulary, f_clauses.clauses).with_clause(
                clause_of([z])
            )
            if depends_on(phi, 6) == is_satisfiable(f_clauses):
                agreement += 1
    report.observed = (
        f"fitted exponential base {base:.2f} per letter (claim ~ 2); "
        f"SAT-reduction witness agreed {agreement}/{trials}"
    )
    report.holds = base >= 1.5 and agreement == trials
    return report


# ---------------------------------------------------------------------------
# E6 -- Example 3.1.5 (exact)
# ---------------------------------------------------------------------------

PAPER_STATE_STRS = ("~A1 | A3", "A1 | A4", "A4 | A5", "~A1 | ~A2 | ~A5")


def e06_example_315() -> Report:
    report = Report(
        ident="E6",
        title="Worked Example 3.1.5: insert {A1 | A2}",
        claim=(
            "genmask = {A1, A2}; mask(Phi) = {A4|A5, A3|A4}; result = "
            "{A1|A2, A4|A5, A3|A4}"
        ),
        columns=("step", "paper", "measured", "match"),
    )
    vocabulary = Vocabulary.standard(5)
    impl = ClausalImplementation(vocabulary)
    phi = ClauseSet.from_strs(vocabulary, PAPER_STATE_STRS)
    payload = ClauseSet.from_strs(vocabulary, ["A1 | A2"])

    with counting(report):
        mask = impl.op_genmask(payload)
    mask_names = sorted(vocabulary.name_of(i) for i in mask)
    ok1 = mask_names == ["A1", "A2"]
    report.add_row("genmask", "{A1, A2}", "{" + ", ".join(mask_names) + "}", ok1)

    with counting(report):
        masked = impl.op_mask(phi, mask)
    expected_masked = ClauseSet.from_strs(vocabulary, ["A4 | A5", "A3 | A4"])
    ok2 = masked == expected_masked
    report.add_row("mask", "{A4 | A5, A3 | A4}", str(masked), ok2)

    with counting(report):
        result = impl.op_assert(masked, payload)
    expected = ClauseSet.from_strs(vocabulary, ["A1 | A2", "A4 | A5", "A3 | A4"])
    ok3 = result == expected
    report.add_row("assert", str(expected), str(result), ok3)

    report.observed = "all three steps match the paper exactly" if (
        ok1 and ok2 and ok3
    ) else "MISMATCH"
    report.holds = ok1 and ok2 and ok3
    return report


# ---------------------------------------------------------------------------
# E7 -- Example 3.2.5 (exact expansion + agreeing backends)
# ---------------------------------------------------------------------------

def e07_example_325() -> Report:
    from repro.hlu import language
    from repro.hlu.session import IncompleteDatabase

    report = Report(
        ident="E7",
        title="Worked Example 3.2.5: (where {A5} (insert {A1 | A2}))",
        claim=(
            "macro expands to (lambda (s0 s1 s1.0) (combine (assert (mask "
            "(assert s0 s1) (genmask s1.0)) s1.0) (assert s0 (complement "
            "s1)))); branches combine to 16 raw products"
        ),
        columns=("check", "result"),
    )
    update = language.where("A5", language.insert("A1 | A2"))
    program, _ = update.compile()
    expected_text = (
        "(lambda (s0 s1 s1.0) (combine (assert (mask (assert s0 s1) "
        "(genmask s1.0)) s1.0) (assert s0 (complement s1))))"
    )
    ok_expansion = str(program) == expected_text
    report.add_row("expansion matches paper", ok_expansion)

    with counting(report):
        clausal = IncompleteDatabase.over(5).assert_(*PAPER_STATE_STRS).apply(update)
        instance = IncompleteDatabase.over(5, backend="instance").assert_(
            *PAPER_STATE_STRS
        ).apply(update)
    ok_agree = clausal.worlds() == instance.worlds()
    report.add_row("clausal == instance result", ok_agree)

    ok_semantics = (
        clausal.is_certain("A5 -> (A1 | A2)")
        and clausal.is_certain("~A5 -> (~A1 | A3)")
        and clausal.is_possible("A5")
        and clausal.is_possible("~A5")
    )
    report.add_row("semantic content (split worked)", ok_semantics)

    report.holds = ok_expansion and ok_agree and ok_semantics
    report.observed = "expansion and result reproduce the paper"
    return report


# ---------------------------------------------------------------------------
# E8 -- Example 1.4.6 / Remark 1.4.7
# ---------------------------------------------------------------------------

def e08_inset_example() -> Report:
    from repro.db.literal_base import inset

    report = Report(
        ident="E8",
        title="Example 1.4.6: Inset[{A1 | A2}] and the tautology rule",
        claim=(
            "Inset[{A1|A2}] = {{A1,A2},{A1,~A2},{~A1,A2}}; a tautologous "
            "insert is the identity (Remark 1.4.7)"
        ),
        columns=("formula", "Inset size", "expected", "match"),
    )
    vocabulary = Vocabulary.standard(3)
    cases = [
        ("A1 | A2", 3),
        ("A1 | ~A1", 1),   # { {} }
        ("A1", 1),
        ("A1 & ~A1", 0),
        ("(A1 | A2) & (A1 | ~A2)", 1),
    ]
    all_ok = True
    for text, expected_size in cases:
        with counting(report):
            got = inset(vocabulary, [text])
        ok = len(got) == expected_size
        all_ok = all_ok and ok
        report.add_row(text, len(got), expected_size, ok)
    exact = inset(vocabulary, ["A1 | A2"])
    exact_ok = exact == frozenset(
        {
            frozenset({1, 2}),
            frozenset({1, -2}),
            frozenset({-1, 2}),
        }
    )
    report.add_row("A1 | A2 exact sets", "-", "paper's three", exact_ok)
    report.holds = all_ok and exact_ok
    report.observed = "Inset values match Example 1.4.6 and Remark 1.4.7"
    return report


# ---------------------------------------------------------------------------
# E9 -- Theorem 1.5.4: Congruence(insert[Phi]) = s--mask[Prop[Inset[Phi]]]
# ---------------------------------------------------------------------------

def e09_congruence_theorem(seed: int = 19, trials: int = 25) -> Report:
    from repro.db.literal_base import insert_update, inset_prop_indices
    from repro.db.masks import SimpleMask, congruence_of, masks_equal
    from repro.workloads.generators import random_formula

    report = Report(
        ident="E9",
        title="Theorem 1.5.4 on random formulas",
        claim="Congruence(insert[Phi]) = s--mask[Prop[Inset[Phi]]]",
        columns=("trials", "holds", "identity cases (tautologies)"),
    )
    rng = random.Random(seed)
    vocabulary = Vocabulary.standard(4)
    holds = 0
    identity_cases = 0
    checked = 0
    with counting(report):
        for _ in range(trials):
            formula = random_formula(rng, vocabulary, depth=3)
            update = insert_update(vocabulary, [formula])
            if len(update) == 0:
                continue  # unsatisfiable insert: congruence not defined
            checked += 1
            expected = SimpleMask(
                vocabulary, inset_prop_indices(vocabulary, [formula])
            )
            if not expected.indices:
                identity_cases += 1
            if masks_equal(congruence_of(update), expected):
                holds += 1
    report.add_row(checked, holds, identity_cases)
    report.observed = f"theorem held on {holds}/{checked} satisfiable formulas"
    report.holds = holds == checked and checked > 0
    return report


# ---------------------------------------------------------------------------
# E10 -- Theorems 2.3.4(a)/2.3.6(a)/2.3.9(a): BLU--C emulates BLU--I
# ---------------------------------------------------------------------------

def e10_emulation(seed: int = 20, trials: int = 40) -> Report:
    from repro.blu.emulation import canonical_emulation
    from repro.blu.instance_impl import InstanceImplementation

    report = Report(
        ident="E10",
        title="Canonical emulation e_CI across all five operators",
        claim=(
            "e_CI(op_C(args)) == op_I(e_CI(args)) for assert, combine, "
            "complement, mask, genmask (Theorems 2.3.4/2.3.6/2.3.9 part (a))"
        ),
        columns=("operator", "trials", "agreed"),
    )
    rng = random.Random(seed)
    vocabulary = Vocabulary.standard(4)
    clausal = ClausalImplementation(vocabulary)
    instance = InstanceImplementation(vocabulary)
    emulation = canonical_emulation(clausal, instance)
    all_ok = True
    for operator in ("assert", "combine", "complement", "mask", "genmask"):
        agreed = 0
        with counting(report):
            for _ in range(trials):
                left = random_clause_set(
                    rng, vocabulary, rng.randint(0, 5), width=2
                )
                if operator in ("assert", "combine"):
                    right = random_clause_set(
                        rng, vocabulary, rng.randint(0, 5), width=2
                    )
                    ok = emulation.check_operator(operator, left, right)
                elif operator == "mask":
                    indices = frozenset(rng.sample(range(4), rng.randint(0, 4)))
                    ok = emulation.check_operator(operator, left, indices)
                else:
                    ok = emulation.check_operator(operator, left)
                agreed += ok
        report.add_row(operator, trials, agreed)
        all_ok = all_ok and agreed == trials
    report.observed = "emulation respected on every trial" if all_ok else "MISMATCH"
    report.holds = all_ok
    return report


# ---------------------------------------------------------------------------
# E11 -- Section 3.3.1: the Wilkins trade-off
# ---------------------------------------------------------------------------

def e11_wilkins_tradeoff(seed: int = 21) -> Report:
    from repro.baselines.wilkins import WilkinsDatabase
    from repro.hlu import language
    from repro.hlu.session import IncompleteDatabase
    from repro.workloads.generators import update_stream

    report = Report(
        ident="E11",
        title="Hegner vs Wilkins: update cost now or query cost later",
        claim=(
            "Wilkins updates are linear (faster than mask-assert); queries "
            "degrade as auxiliary letters accumulate; cleanup = deferred "
            "mask is expensive (Section 3.3.1)"
        ),
        columns=(
            "inserts",
            "aux letters",
            "hegner update s",
            "wilkins update s",
            "hegner query s",
            "wilkins query s",
            "wilkins cleanup s",
        ),
    )
    vocabulary = Vocabulary.standard(12)
    update_counts = [4, 8, 16, 32]
    hegner_updates, wilkins_updates = [], []
    hegner_queries, wilkins_queries = [], []
    query = "A1 | A2 | A3"
    for count in update_counts:
        rng = random.Random(seed)
        payloads = list(update_stream(rng, vocabulary, count, width=2))

        def run_hegner_stream():
            db = IncompleteDatabase.over(12)
            for payload in payloads:
                db.apply(language.insert(payload))
            return db

        def run_wilkins_stream():
            db = WilkinsDatabase(vocabulary)
            for payload in payloads:
                db.insert(payload)
            return db

        # Best-of-repeats: single-shot sub-millisecond timings are too
        # noisy to compare (this runs inside a loaded benchmark session).
        hegner_measured = measure_with_counters(run_hegner_stream, repeat=3)
        wilkins_measured = measure_with_counters(run_wilkins_stream, repeat=3)
        hegner_update = hegner_measured.seconds
        wilkins_update = wilkins_measured.seconds
        report.merge_counters(hegner_measured.counters)
        report.merge_counters(wilkins_measured.counters)
        hegner = run_hegner_stream()
        wilkins = run_wilkins_stream()

        hegner_query = measure_seconds(lambda: hegner.is_certain(query), repeat=5)
        wilkins_query = measure_seconds(lambda: wilkins.is_certain(query), repeat=5)

        def build_and_cleanup():
            db = run_wilkins_stream()
            db.cleanup()

        build_and_clean = measure_seconds(build_and_cleanup, repeat=2)
        cleanup = max(build_and_clean - wilkins_update, 0.0)

        hegner_updates.append(hegner_update)
        wilkins_updates.append(wilkins_update)
        hegner_queries.append(hegner_query)
        wilkins_queries.append(wilkins_query)
        report.add_row(
            count,
            2 * count,
            f"{hegner_update:.5f}",
            f"{wilkins_update:.5f}",
            f"{hegner_query:.6f}",
            f"{wilkins_query:.6f}",
            f"{cleanup:.5f}",
        )
    # Verdicts tolerate wall-clock jitter: compare totals and the largest
    # (least noisy) row rather than demanding strict per-row ordering.
    updates_cheaper = (
        sum(wilkins_updates) <= sum(hegner_updates)
        and wilkins_updates[-1] <= hegner_updates[-1] * 1.2
    )
    query_degrades = wilkins_queries[-1] > wilkins_queries[0]
    query_gap_grows = (wilkins_queries[-1] / max(hegner_queries[-1], 1e-9)) > (
        wilkins_queries[0] / max(hegner_queries[0], 1e-9)
    )
    report.observed = (
        f"Wilkins updates cheaper overall: {updates_cheaper}; "
        f"Wilkins query time grows with update count: {query_degrades}; "
        f"query-time gap widens: {query_gap_grows}"
    )
    report.holds = updates_cheaper and query_degrades
    return report


# ---------------------------------------------------------------------------
# E12 -- Theorem 3.1.4: HLU (via BLU) vs Definition 1.4.5
# ---------------------------------------------------------------------------

def e12_hlu_equivalence(seed: int = 22, trials: int = 30) -> Report:
    from repro.blu.instance_impl import InstanceImplementation
    from repro.db.instances import WorldSet
    from repro.db.literal_base import delete_update, insert_update, modify_update
    from repro.hlu import language
    from repro.hlu.interpreter import run_update
    from repro.workloads.generators import random_formula

    report = Report(
        ident="E12",
        title="Theorem 3.1.4: HLU updates vs Definition 1.4.5",
        claim=(
            "HLU-insert/delete/modify are logically equivalent to the "
            "nondeterministic updates of 1.4.5"
        ),
        columns=("operation", "trials", "agreed", "note"),
    )
    rng = random.Random(seed)
    vocabulary = Vocabulary.standard(3)
    impl = InstanceImplementation(vocabulary)

    def random_state() -> WorldSet:
        return WorldSet(
            vocabulary, frozenset(rng.sample(range(8), rng.randint(0, 6)))
        )

    insert_ok = 0
    delete_ok = 0
    with counting(report):
        for _ in range(trials):
            formula = random_formula(rng, vocabulary, depth=3)
            state = random_state()
            if insert_update(vocabulary, [formula]).apply_world_set(
                state
            ) == run_update(impl, state, language.insert(formula)):
                insert_ok += 1
            if delete_update(vocabulary, [formula]).apply_world_set(
                state
            ) == run_update(impl, state, language.delete(formula)):
                delete_ok += 1
    report.add_row("insert", trials, insert_ok, "")
    report.add_row("delete", trials, delete_ok, "")

    literal_ok = 0
    with counting(report):
        for _ in range(trials):
            pre = rng.choice(["A1", "~A1", "A2", "~A3"])
            post = random_formula(rng, vocabulary, depth=2)
            state = random_state()
            if modify_update(vocabulary, [pre], [post]).apply_world_set(
                state
            ) == run_update(impl, state, language.modify(pre, post)):
                literal_ok += 1
    report.add_row("modify (literal precondition)", trials, literal_ok, "")

    # The documented divergence: conjunctive precondition.
    state = WorldSet(vocabulary, {0b101})
    reference = modify_update(vocabulary, ["A1 & A3"], ["A1"]).apply_world_set(state)
    via_blu = run_update(impl, state, language.modify("A1 & A3", "A1"))
    diverges = reference != via_blu
    report.add_row(
        "modify (multi-literal precondition)",
        1,
        0 if diverges else 1,
        "KNOWN DIVERGENCE: 1.4.5 forces deleted letters false; the BLU "
        "program leaves them unknown",
    )
    report.observed = (
        "insert/delete: theorem holds; modify: holds for literal "
        "preconditions, diverges beyond (see EXPERIMENTS.md)"
    )
    report.holds = (
        insert_ok == trials and delete_ok == trials and literal_ok == trials and diverges
    )
    return report


# ---------------------------------------------------------------------------
# E13 -- Section 5.1.1: grounding blowup vs internal constants
# ---------------------------------------------------------------------------

def e13_relational_grounding() -> Report:
    from repro.relational.constants import CategoryExpr
    from repro.relational.grounding import Grounding
    from repro.relational.atoms import OpenAtom
    from repro.relational.session import RelationalDatabase
    from repro.workloads.generators import directory_schema

    report = Report(
        ident="E13",
        title="'Jones has a new telephone number': representation sizes",
        claim=(
            "the grounded update is an enormous disjunction (O(n) in the "
            "number of phone numbers, over an O(n) vocabulary); the "
            "internal-constant representation is a single literal (5.1.1)"
        ),
        columns=(
            "phone numbers",
            "grounded letters",
            "update disjuncts",
            "compact atom size",
            "grounded update s",
        ),
    )
    all_ok = True
    for phone_count in (4, 8, 16, 64, 256):
        schema = directory_schema(phone_count)
        grounding = Grounding(schema)
        u = schema.dictionary.activate(
            CategoryExpr(schema.algebra.named("telno"))
        )
        atom = OpenAtom("R", ("P1", "D1", u))
        formula = grounding.atom_formula(atom)
        disjuncts = len(formula.props())
        compact_size = len(atom.args) + 1

        if phone_count <= 8:
            db = RelationalDatabase(schema, backend="clausal")
            with counting(report):
                db.tell(("R", "P1", "D1", "T1"))
                with obs.span(
                    "relational.tell.grounded", phones=phone_count
                ) as span:
                    db.tell(atom)
            grounded_seconds = f"{span.elapsed:.4f}"
        else:
            grounded_seconds = "skipped (impractical -- the paper's point)"
        report.add_row(
            phone_count,
            len(grounding.vocabulary),
            disjuncts,
            compact_size,
            grounded_seconds,
        )
        all_ok = all_ok and disjuncts == phone_count and compact_size == 4
    report.observed = (
        "grounded form grows linearly with the domain while the compact "
        "open-atom form stays constant"
    )
    report.holds = all_ok
    return report


# ---------------------------------------------------------------------------
# E14 -- Section 3.3.3: the tabular expressiveness gap
# ---------------------------------------------------------------------------

def e14_tabular_gap() -> Report:
    from repro.baselines.tabular import (
        hlu_insert_transformer,
        search_for_transformer,
        t_intersection,
        t_union,
    )

    report = Report(
        ident="E14",
        title="Abiteboul-Grahne primitives cannot realise genmask",
        claim=(
            "three primitives coincide with combine/assert/difference; the "
            "six together do not express the genmask-based insert (3.3.3)"
        ),
        columns=("target", "expressible (depth-bounded search)"),
    )
    vocabulary = Vocabulary.standard(2)
    with counting(report):
        sanity_union = search_for_transformer(vocabulary, t_union, max_rounds=1)
    report.add_row("union (sanity: a primitive)", sanity_union)
    with counting(report):
        composed = search_for_transformer(
            vocabulary, lambda x, y: t_intersection(t_union(x, y), x), max_rounds=2
        )
    report.add_row("intersection(union(x,y),x) (sanity)", composed)
    with counting(report):
        insert_found = search_for_transformer(
            vocabulary, hlu_insert_transformer, max_rounds=2, max_functions=5000
        )
    report.add_row("HLU-insert (mask genmask then assert)", insert_found)
    report.observed = (
        "primitive compositions found; the genmask-based insert is not "
        "reachable within the searched depth"
    )
    report.holds = sanity_union and composed and not insert_found
    return report


# ---------------------------------------------------------------------------
# E15 -- Section 3.3.2: minimal change is syntactic and differs from ours
# ---------------------------------------------------------------------------

def e15_minimal_change() -> Report:
    from repro.baselines.minimal_change import MinimalChangeDatabase
    from repro.hlu.session import IncompleteDatabase

    report = Report(
        ident="E15",
        title="Minimal-change (flock) vs mask-assert insertion",
        claim=(
            "minimal change is purely syntactic (equivalent presentations "
            "diverge) and differs from mask-assert semantics (3.3.2)"
        ),
        columns=("scenario", "expectation", "holds"),
    )
    vocabulary = Vocabulary.standard(3)

    with counting(report):
        packaged = MinimalChangeDatabase(vocabulary, ["A1 & A2"])
        separated = MinimalChangeDatabase(vocabulary, ["A1", "A2"])
        packaged.insert("~A1")
        separated.insert("~A1")
    syntactic = packaged.world_set() != separated.world_set()
    report.add_row(
        "{A1 & A2} vs {A1, A2}, insert ~A1",
        "equivalent theories update differently",
        syntactic,
    )

    with counting(report):
        flock = MinimalChangeDatabase(vocabulary, ["A1 <-> A2"])
        flock.insert("~A1")
        hegner = IncompleteDatabase.over(3, backend="instance")
        hegner.assert_("A1 <-> A2").insert("~A1")
    differs = flock.world_set() != hegner.worlds()
    retains_more = flock.is_certain("~A2") and not hegner.is_certain("~A2")
    report.add_row(
        "{A1 <-> A2}, insert ~A1",
        "flock keeps the biconditional; mask-assert forgets it",
        differs and retains_more,
    )

    flock2 = MinimalChangeDatabase(vocabulary, ["A2"])
    flock2.insert("A1")
    hegner2 = IncompleteDatabase.over(3, backend="instance")
    hegner2.assert_("A2").insert("A1")
    agree = flock2.world_set() == hegner2.worlds()
    report.add_row(
        "independent insert",
        "both agree when nothing conflicts",
        agree,
    )
    report.observed = "flock semantics reproduced; divergence as described"
    report.holds = syntactic and differs and retains_more and agree
    return report


# ---------------------------------------------------------------------------
# E16 -- Section 4: mask on the system state is the bottleneck
# ---------------------------------------------------------------------------

def e16_hlu_bottleneck(seed: int = 26) -> Report:
    report = Report(
        ident="E16",
        title="HLU insert pipeline: where the time goes",
        claim=(
            "complement/genmask take only small user parameters; the "
            "bottleneck is mask applied to the (large) system state "
            "(Section 4)"
        ),
        columns=(
            "state Length",
            "genmask(payload) s",
            "mask(state) s",
            "mask resolvents (obs)",
            "assert s",
            "mask share",
        ),
    )
    rng = random.Random(seed)
    vocabulary = Vocabulary.standard(24)
    payload = ClauseSet.from_strs(vocabulary, ["A1 | A2"])
    impl = ClausalImplementation(vocabulary)
    mask_shares = []
    for state_length in (150, 300, 600, 1200):
        state = clause_set_of_length(rng, vocabulary, state_length, width=3)
        genmask_measured = measure_with_counters(lambda: impl.op_genmask(payload))
        genmask_seconds = genmask_measured.seconds
        report.merge_counters(genmask_measured.counters)
        mask_value = impl.op_genmask(payload)
        mask_measured = measure_with_counters(
            lambda: impl.op_mask(state, mask_value), repeat=2
        )
        mask_seconds = mask_measured.seconds
        report.merge_counters(mask_measured.counters)
        resolvents = mask_measured.counters.get(
            "logic.resolution.resolvents_formed", 0
        )
        masked = impl.op_mask(state, mask_value)
        assert_measured = measure_with_counters(
            lambda: impl.op_assert(masked, payload)
        )
        assert_seconds = assert_measured.seconds
        report.merge_counters(assert_measured.counters)
        # The share is computed from each phase's *first* (cold) sample:
        # under the opt-in kernel cache later repeats are hits and their
        # near-zero timings would make the share meaningless, while the
        # first repeat on each fresh state always does the real work.
        cold_genmask = genmask_seconds.samples[0]
        cold_mask = mask_seconds.samples[0]
        cold_assert = assert_seconds.samples[0]
        total = cold_genmask + cold_mask + cold_assert
        share = cold_mask / total if total else 0.0
        mask_shares.append(share)
        report.add_row(
            state_length,
            f"{genmask_seconds:.6f}",
            f"{mask_seconds:.6f}",
            resolvents,
            f"{assert_seconds:.6f}",
            f"{share:.0%}",
        )
    report.metrics["mask_share_largest"] = mask_shares[-1]
    report.observed = (
        f"mask's share of the pipeline on the largest state: "
        f"{mask_shares[-1]:.0%}"
    )
    report.holds = mask_shares[-1] >= 0.5
    return report


def all_experiments() -> list[Report]:
    """Run every experiment (E-suite then A-ablations), in order."""
    return [
        e01_assert_linear(),
        e02_combine_quadratic(),
        e03_complement_exponential(),
        e04_mask_blowup(),
        e05_genmask_exponential(),
        e06_example_315(),
        e07_example_325(),
        e08_inset_example(),
        e09_congruence_theorem(),
        e10_emulation(),
        e11_wilkins_tradeoff(),
        e12_hlu_equivalence(),
        e13_relational_grounding(),
        e14_tabular_gap(),
        e15_minimal_change(),
        e16_hlu_bottleneck(),
        e17_template_coverage(),
        a01_simplify_ablation(),
        a02_mask_strategy(),
        a03_backend_crossover(),
        a04_wilkins_hybrid(),
        a05_incremental_updates(),
    ]


# ---------------------------------------------------------------------------
# E17 -- Section 4: the template (V-table) model covers much but not all
# ---------------------------------------------------------------------------

def e17_template_coverage() -> Report:
    from repro.baselines.tables import (
        TableVariable,
        VTable,
        is_representable,
        representable_world_sets,
    )
    from repro.db.instances import WorldSet
    from repro.relational.schema import RelationalSchema

    report = Report(
        ident="E17",
        title="Imielinski-Lipski V-tables: coverage of possible-world sets",
        claim=(
            "'this model is not able to represent all possible worlds, "
            "[but] it can represent many important cases arising in "
            "practice' (Section 4)"
        ),
        columns=("check", "result"),
    )
    tiny = RelationalSchema.build(
        constants={"thing": ["a", "b"]},
        relations={"P": [("X", "thing")]},
    )
    with counting(report):
        reachable = representable_world_sets(tiny, max_rows=3, max_variables=2)
    total = 1 << (1 << 2)  # world sets over 2 ground facts
    report.add_row(
        "world sets reachable by <=3-row tables (2 ground facts)",
        f"{len(reachable)} of {total}",
    )

    # Important case: the Jones-style "some value" state is a table.
    phone = RelationalSchema.build(
        constants={"person": ["Jones"], "telno": ["T1", "T2"]},
        relations={"Phone": [("N", "person"), ("T", "telno")]},
    )
    x = TableVariable("x", phone.algebra.named("telno"))
    with counting(report):
        some_phone = VTable(phone, [("Phone", ("Jones", x))]).world_set()
        practical = is_representable(
            some_phone, phone, max_rows=2, max_variables=1
        )
    report.add_row("'Jones has some phone' representable", practical is not None)

    # Open-world insert result: representable via row collapse.
    vocab = VTable(tiny, []).grounding.vocabulary
    a_bit = 1 << vocab.index_of("P.a")
    b_bit = 1 << vocab.index_of("P.b")
    open_insert = WorldSet(vocab, {a_bit, a_bit | b_bit})
    with counting(report):
        collapse = is_representable(open_insert, tiny, max_rows=2, max_variables=1)
    report.add_row(
        "open-world insert result representable (row collapse)",
        collapse is not None,
    )

    # The gap: presence correlation ("nothing or both") is not a table.
    correlated = WorldSet(vocab, {0, a_bit | b_bit})
    with counting(report):
        gap = is_representable(correlated, tiny, max_rows=3, max_variables=2)
    report.add_row("'nothing or both' representable", gap is not None)

    report.observed = (
        f"{len(reachable)}/{total} world sets reachable; practical cases "
        f"representable, presence-correlated sets are not"
    )
    report.holds = (
        0 < len(reachable) < total
        and practical is not None
        and collapse is not None
        and gap is None
    )
    return report


# ---------------------------------------------------------------------------
# A1 -- ablation: subsumption reduction (simplify) in BLU--C
# ---------------------------------------------------------------------------

def a01_simplify_ablation(seed: int = 17, inserts: int = 12) -> Report:
    from repro.hlu import language
    from repro.hlu.interpreter import run_update
    from repro.logic.semantics import models_of_clauses
    from repro.workloads.generators import update_stream

    report = Report(
        ident="A1",
        title="Ablation: simplification on the insert stream",
        claim=(
            "tautology elimination + subsumption reduction keep states "
            "smaller at equal semantics (Section 4's 'correctness-"
            "preserving optimizations')"
        ),
        columns=("mode", "inserts", "final Length", "seconds"),
    )
    vocabulary = Vocabulary.standard(14)

    def run_stream(simplify: bool) -> ClauseSet:
        impl = ClausalImplementation(vocabulary, simplify=simplify)
        state = ClauseSet.tautology(vocabulary)
        rng = random.Random(seed)
        for payload in update_stream(rng, vocabulary, inserts, width=2):
            state = run_update(impl, state, language.insert(payload))
        return state

    lengths: dict[bool, int] = {}
    for simplify in (True, False):
        measured = measure_with_counters(lambda: run_stream(simplify), repeat=2)
        report.merge_counters(measured.counters)
        state = run_stream(simplify)
        lengths[simplify] = state.length
        report.add_row(
            "simplified" if simplify else "raw",
            inserts,
            state.length,
            f"{measured.seconds:.5f}",
        )
    agree = models_of_clauses(run_stream(True)) == models_of_clauses(
        run_stream(False)
    )
    ratio = lengths[False] / max(lengths[True], 1)
    report.metrics["raw_over_simplified_length"] = ratio
    report.observed = (
        f"same models: {agree}; raw state is {ratio:.2f}x the simplified Length"
    )
    report.holds = agree and lengths[True] <= lengths[False]
    return report


# ---------------------------------------------------------------------------
# A2 -- ablation: masking strategies (Section 4)
# ---------------------------------------------------------------------------

def a02_mask_strategy(seed: int = 23) -> Report:
    from repro.logic.implicates import mask_via_implicates
    from repro.logic.resolution import eliminate_letter
    from repro.logic.semantics import models_of_clauses

    report = Report(
        ident="A2",
        title="Ablation: resolve-then-drop vs expand-then-drop masking",
        claim=(
            "making masking trivial via full prime-implicate expansion "
            "makes everything else intolerably slow (Section 4)"
        ),
        columns=("strategy", "clauses", "output Length", "seconds"),
    )
    vocabulary = Vocabulary.standard(12)
    indices = [0, 1, 2]

    def make_state(clause_count: int) -> ClauseSet:
        rng = random.Random(seed)
        return random_clause_set(rng, vocabulary, clause_count, width=3)

    def fewest_occurrences_first(state: ClauseSet) -> ClauseSet:
        remaining = set(indices)
        current = state
        while remaining:
            def occurrences(index: int) -> int:
                return sum(
                    1
                    for clause in current.clauses
                    if index + 1 in clause or -(index + 1) in clause
                )

            best = min(remaining, key=occurrences)
            remaining.discard(best)
            current = eliminate_letter(current, best)
        return current

    for clause_count in (20, 40):
        state = make_state(clause_count)
        measured = measure_with_counters(
            lambda: clausal_mask(state, indices, simplify=True), repeat=2
        )
        report.merge_counters(measured.counters)
        output = clausal_mask(state, indices, simplify=True)
        report.add_row(
            "resolve-then-drop", clause_count, output.length,
            f"{measured.seconds:.5f}",
        )
    for clause_count in (8, 12):
        state = make_state(clause_count)
        measured = measure_with_counters(
            lambda: mask_via_implicates(state, indices, 500_000), repeat=2
        )
        report.merge_counters(measured.counters)
        output = mask_via_implicates(state, indices, 500_000)
        report.add_row(
            "expand-then-drop", clause_count, output.length,
            f"{measured.seconds:.5f}",
        )
    state = make_state(20)
    measured = measure_with_counters(
        lambda: fewest_occurrences_first(state), repeat=2
    )
    report.merge_counters(measured.counters)
    report.add_row(
        "fewest-occurrences-first", 20,
        fewest_occurrences_first(state).length, f"{measured.seconds:.5f}",
    )

    small = make_state(12)
    agree = (
        models_of_clauses(clausal_mask(small, indices))
        == models_of_clauses(mask_via_implicates(small, indices, 500_000))
        == models_of_clauses(fewest_occurrences_first(small))
    )
    try:
        mask_via_implicates(make_state(40), indices, 100_000)
        budget_blows = False
    except MemoryError:
        budget_blows = True
    report.observed = (
        f"strategies agree semantically: {agree}; 40-clause expansion "
        f"exceeds a 100k-implicate budget: {budget_blows}"
    )
    report.holds = agree and budget_blows
    return report


# ---------------------------------------------------------------------------
# A3 -- ablation: instance vs clausal backend crossover
# ---------------------------------------------------------------------------

def a03_backend_crossover(seed: int = 31) -> Report:
    from repro.hlu import language
    from repro.hlu.session import IncompleteDatabase
    from repro.workloads.generators import update_stream

    report = Report(
        ident="A3",
        title="Ablation: instance vs clausal backend as letters grow",
        claim=(
            "direct world-set representation is exponential in the "
            "vocabulary; the clausal backend scales with the "
            "representation ('direct representation is impractical', "
            "Section 0)"
        ),
        columns=("letters", "instance s", "clausal s"),
    )

    def run_script(letters: int, backend: str) -> IncompleteDatabase:
        db = IncompleteDatabase.over(letters, backend=backend)
        rng = random.Random(seed)
        for payload in update_stream(rng, db.vocabulary, 6, width=2):
            db.apply(language.insert(payload))
        db.is_certain("A1 | A2")
        return db

    for letters in (6, 10, 14):
        instance_measured = measure_with_counters(
            lambda: run_script(letters, "instance"), repeat=2
        )
        clausal_measured = measure_with_counters(
            lambda: run_script(letters, "clausal"), repeat=2
        )
        report.merge_counters(instance_measured.counters)
        report.merge_counters(clausal_measured.counters)
        report.add_row(
            letters,
            f"{instance_measured.seconds:.5f}",
            f"{clausal_measured.seconds:.5f}",
        )
    agree = (
        run_script(10, "instance").worlds() == run_script(10, "clausal").worlds()
    )
    report.observed = f"backends agree at 10 letters: {agree}"
    report.holds = agree
    return report


# ---------------------------------------------------------------------------
# A4 -- ablation: hybrid cleanup policies for the Wilkins strategy
# ---------------------------------------------------------------------------

def a04_wilkins_hybrid(seed: int = 47, inserts: int = 24) -> Report:
    from repro.baselines.wilkins import WilkinsDatabase
    from repro.workloads.generators import update_stream

    report = Report(
        ident="A4",
        title="Ablation: Wilkins cleanup policy sweep",
        claim=(
            "deferred masking must eventually be paid; policies trade "
            "update cost against query cost with no superior alternative "
            "(Section 3.3.1)"
        ),
        columns=("policy", "aux letters", "seconds"),
    )
    vocabulary = Vocabulary.standard(12)
    queries_per_insert = 4
    query = "A1 | A2 | A3"

    def payloads():
        rng = random.Random(seed)
        return list(update_stream(rng, vocabulary, inserts, width=2))

    def run_policy(cleanup_every: int | None) -> WilkinsDatabase:
        db = WilkinsDatabase(vocabulary)
        for step, payload in enumerate(payloads(), start=1):
            db.insert(payload)
            if cleanup_every and step % cleanup_every == 0:
                db.cleanup()
            for _ in range(queries_per_insert):
                db.is_certain(query)
        return db

    aux_counts: dict[str, int] = {}
    for label, policy in (
        ("never", None), ("every-8", 8), ("every-4", 4), ("eager", 1)
    ):
        measured = measure_with_counters(lambda: run_policy(policy), repeat=1)
        report.merge_counters(measured.counters)
        db = run_policy(policy)
        aux_counts[label] = db.aux_count
        report.add_row(label, db.aux_count, f"{measured.seconds:.5f}")

    def final_state(policy: int | None):
        db = run_policy(policy)
        db.cleanup()
        return db.state

    agree = final_state(None) == final_state(4) == final_state(1)
    report.observed = (
        f"policies agree on base-letter knowledge after cleanup: {agree}; "
        f"aux letters never={aux_counts['never']}, eager={aux_counts['eager']}"
    )
    report.holds = (
        agree
        and aux_counts["eager"] == 0
        and aux_counts["never"] == 2 * inserts
    )
    return report


# ---------------------------------------------------------------------------
# A5 -- ablation: incremental closure maintenance on update sequences
# ---------------------------------------------------------------------------

def a05_incremental_updates(
    seed: int = 29, lengths: tuple[int, ...] = (6, 12, 24)
) -> Report:
    """Delta-driven saturation vs per-step scratch recomputation.

    An E10/E16-style update sequence -- a random single-clause
    insert/delete walk -- queries the resolution closure and the prime
    implicates after every step.  The scratch arm re-saturates from
    nothing each time, so its cumulative kernel work grows ~linearly in
    sequence length; the incremental arm pays only each step's delta
    frontier, so its cumulative work is sublinear (the closure is built
    once and then maintained).  Work is the shared
    ``logic.resolution.resolvents_formed`` counter, deterministic on the
    seeded walk; both arms must return bit-identical results at every
    step.  Global cache/incremental switches are saved, forced off, and
    restored, so the verdict is identical under ``--cache --jobs N``.
    """
    from repro.cache import core as cache_mod
    from repro.logic import incremental
    from repro.logic.implicates import prime_implicates
    from repro.logic.resolution import resolution_closure

    report = Report(
        ident="A5",
        title="Ablation: incremental closure maintenance on update sequences",
        claim=(
            "maintaining closures under single-clause deltas makes an "
            "update sequence's cumulative closure work sublinear in its "
            "length, at bit-identical results"
        ),
        columns=("arm", "steps", "resolvents formed", "queries"),
    )
    vocabulary = Vocabulary.standard(7)

    def walk(length: int):
        """The first ``length`` states of the seeded insert/delete walk
        (deterministic, shared by both arms)."""
        rng = random.Random(seed)
        current: set[frozenset[int]] = set()
        states = []
        while len(states) < length:
            if current and rng.random() < 0.3:
                current.discard(rng.choice(sorted(current, key=sorted)))
            else:
                width = rng.randint(1, 3)
                letters = rng.sample(range(7), width)
                current.add(
                    frozenset(
                        make_literal(i, rng.random() < 0.5) for i in letters
                    )
                )
            states.append(ClauseSet(vocabulary, current))
        return states

    def run_arm(length: int, incremental_on: bool):
        if incremental_on:
            incremental.reset_incremental()
            incremental.enable_incremental()
        else:
            incremental.disable_incremental()
        try:
            results = []
            for state in walk(length):
                results.append(
                    (resolution_closure(state), prime_implicates(state))
                )
            return results
        finally:
            incremental.disable_incremental()
            incremental.reset_incremental()

    cache_was_on = cache_mod.cache_enabled()
    incremental_was_on = incremental.incremental_enabled()
    cache_mod.disable_cache()
    incremental.disable_incremental()
    try:
        work: dict[bool, list[int]] = {False: [], True: []}
        identical = True
        for length in lengths:
            per_arm: dict[bool, list] = {}
            for incremental_on in (False, True):
                with obs.enabled():
                    before = obs.counters().snapshot()
                    per_arm[incremental_on] = run_arm(length, incremental_on)
                    delta = obs.counters().delta(before)
                report.merge_counters(delta)
                formed = delta.get("logic.resolution.resolvents_formed", 0)
                work[incremental_on].append(formed)
                report.add_row(
                    "incremental" if incremental_on else "scratch",
                    length,
                    formed,
                    2 * length,
                )
            identical = identical and per_arm[False] == per_arm[True]
    finally:
        incremental.reset_incremental()
        if cache_was_on:
            cache_mod.enable_cache()
        if incremental_was_on:
            incremental.enable_incremental()

    scratch_slope = fit_loglog_slope(lengths, work[False])
    incremental_slope = fit_loglog_slope(lengths, work[True])
    report.metrics["scratch_work_slope"] = scratch_slope
    report.metrics["incremental_work_slope"] = incremental_slope
    report.metrics["work_ratio_at_max"] = work[False][-1] / max(
        work[True][-1], 1
    )
    report.observed = (
        f"bit-identical results: {identical}; cumulative-work slopes "
        f"scratch {scratch_slope:.2f} vs incremental "
        f"{incremental_slope:.2f}; {report.metrics['work_ratio_at_max']:.1f}x "
        f"less work at {lengths[-1]} steps"
    )
    report.holds = (
        identical
        and incremental_slope < scratch_slope - 0.2
        and work[True][-1] < work[False][-1]
    )
    return report
