"""The textual surface syntax of HLU (the grammar of Section 0).

The paper writes user-level programs as::

    (assert W)   (mask M)   (insert W)   (delete W)   (modify W V)
    (where W P)  (where W P Q)

where ``W`` / ``V`` are possible-worlds arguments (here: brace-delimited,
comma-separated formula sets such as ``{A1 | A2, ~A3}``) and ``M`` is a
brace-delimited set of proposition names.  This module parses that syntax
into :mod:`repro.hlu.language` update values, so the paper's programs run
verbatim::

    >>> update = parse_update("(where {A5} (insert {A1 | A2}))")
    >>> print(update)
    (where {A5} (insert {(A1 | A2)}))
"""

from __future__ import annotations

from repro.errors import ParseError
from repro.hlu import language
from repro.logic.parser import parse_formula

__all__ = ["parse_update", "parse_updates"]


def _tokenize(text: str) -> list[str]:
    """Tokens: ``(``, ``)``, brace groups (kept whole), and bare words."""
    tokens: list[str] = []
    i = 0
    length = len(text)
    while i < length:
        ch = text[i]
        if ch.isspace():
            i += 1
            continue
        if ch == ";":
            while i < length and text[i] != "\n":
                i += 1
            continue
        if ch in "()":
            tokens.append(ch)
            i += 1
            continue
        if ch == "{":
            depth = 1
            start = i
            i += 1
            while i < length and depth:
                if text[i] == "{":
                    depth += 1
                elif text[i] == "}":
                    depth -= 1
                i += 1
            if depth:
                raise ParseError("unterminated { ... } group", text, start)
            tokens.append(text[start:i])
            continue
        if ch == "}":
            raise ParseError("unexpected '}'", text, i)
        start = i
        while i < length and not text[i].isspace() and text[i] not in "(){};":
            i += 1
        tokens.append(text[start:i])
    return tokens


def _split_top_level(body: str) -> list[str]:
    """Split a brace body on top-level commas (parentheses respected)."""
    parts: list[str] = []
    depth = 0
    current: list[str] = []
    for ch in body:
        if ch == "(":
            depth += 1
        elif ch == ")":
            depth -= 1
        if ch == "," and depth == 0:
            parts.append("".join(current))
            current = []
        else:
            current.append(ch)
    parts.append("".join(current))
    return [part.strip() for part in parts if part.strip()]


def _parse_w(token: str, text: str):
    """A possible-worlds argument: ``{formula, ...}``."""
    if not token.startswith("{"):
        raise ParseError(
            f"expected a {{...}} possible-worlds argument, got {token!r}", text
        )
    return tuple(parse_formula(part) for part in _split_top_level(token[1:-1]))


def _parse_m(token: str, text: str) -> tuple[str, ...]:
    """A mask argument: ``{Name, ...}`` (bare proposition names)."""
    if not token.startswith("{"):
        raise ParseError(f"expected a {{...}} mask argument, got {token!r}", text)
    names = _split_top_level(token[1:-1])
    for name in names:
        if not name.replace("_", "").replace(".", "").isalnum():
            raise ParseError(
                f"mask arguments are proposition names, got {name!r}", text
            )
    return tuple(names)


class _Parser:
    def __init__(self, text: str):
        self.text = text
        self.tokens = _tokenize(text)
        self.index = 0

    def peek(self) -> str | None:
        return self.tokens[self.index] if self.index < len(self.tokens) else None

    def take(self) -> str:
        if self.index >= len(self.tokens):
            raise ParseError("unexpected end of HLU program", self.text)
        token = self.tokens[self.index]
        self.index += 1
        return token

    def expect(self, token: str) -> None:
        got = self.take()
        if got != token:
            raise ParseError(f"expected {token!r}, got {got!r}", self.text)

    def parse_program(self) -> language.Update:
        self.expect("(")
        head = self.take()
        if head == "assert":
            update = language.Assert(_parse_w(self.take(), self.text))
        elif head == "mask":
            update = language.Clear(_parse_m(self.take(), self.text))
        elif head == "insert":
            update = language.Insert(_parse_w(self.take(), self.text))
        elif head == "delete":
            update = language.Delete(_parse_w(self.take(), self.text))
        elif head == "modify":
            old = _parse_w(self.take(), self.text)
            new = _parse_w(self.take(), self.text)
            update = language.Modify(old, new)
        elif head == "where":
            condition = _parse_w(self.take(), self.text)
            then = self.parse_program()
            otherwise = None
            if self.peek() == "(":
                otherwise = self.parse_program()
            update = language.Where(condition, then, otherwise)
        else:
            raise ParseError(f"unknown HLU operation {head!r}", self.text)
        self.expect(")")
        return update


def parse_update(text: str) -> language.Update:
    """Parse exactly one HLU program from ``text``."""
    parser = _Parser(text)
    update = parser.parse_program()
    if parser.peek() is not None:
        raise ParseError(
            f"trailing input after HLU program: {parser.tokens[parser.index:]}",
            text,
        )
    return update


def parse_updates(text: str) -> list[language.Update]:
    """Parse a sequence of HLU programs (e.g. a script file)."""
    parser = _Parser(text)
    updates: list[language.Update] = []
    while parser.peek() is not None:
        updates.append(parser.parse_program())
    return updates
