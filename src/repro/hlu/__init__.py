"""HLU -- the High-level Language for Updates (Section 3 of the paper).

The five simple-HLU operations are *defined* as BLU programs (3.1.2); the
``where`` constructs are macros expanding to BLU programs (3.2).  The
session class :class:`IncompleteDatabase` is the user-facing API.
"""

from repro.hlu.interpreter import convert_argument, run_update
from repro.hlu.language import (
    Assert,
    Clear,
    Delete,
    Insert,
    MaskArg,
    Modify,
    StateArg,
    Update,
    Where,
    assert_,
    clear,
    delete,
    insert,
    modify,
    where,
)
from repro.hlu.macros import arglist, atomappend, substitute_term, where1, where2
from repro.hlu.programs import (
    HLU_ASSERT,
    HLU_CLEAR,
    HLU_DELETE,
    HLU_INSERT,
    HLU_MODIFY,
    IDENTITY,
    SIMPLE_HLU_PROGRAMS,
)
from repro.hlu.persistence import dump_session, load_session
from repro.hlu.session import IncompleteDatabase
from repro.hlu.surface import parse_update, parse_updates
from repro.hlu.signature import HLU_SIGNATURE, PROGRAM_SORT, SIMPLE_HLU_SIGNATURE

__all__ = [
    "SIMPLE_HLU_SIGNATURE",
    "HLU_SIGNATURE",
    "PROGRAM_SORT",
    "HLU_ASSERT",
    "HLU_CLEAR",
    "HLU_INSERT",
    "HLU_DELETE",
    "HLU_MODIFY",
    "IDENTITY",
    "SIMPLE_HLU_PROGRAMS",
    "atomappend",
    "arglist",
    "substitute_term",
    "where1",
    "where2",
    "Update",
    "Assert",
    "Clear",
    "Insert",
    "Delete",
    "Modify",
    "Where",
    "StateArg",
    "MaskArg",
    "assert_",
    "clear",
    "insert",
    "delete",
    "modify",
    "where",
    "convert_argument",
    "run_update",
    "IncompleteDatabase",
    "parse_update",
    "parse_updates",
    "dump_session",
    "load_session",
]
