"""The ``where`` macros of full HLU (Definitions 3.2.2--3.2.4).

``(where2 W P Q)`` splits the system state ``S`` into ``S intersect pw(W)``
and ``S \\ pw(W)``, runs ``P`` on the first part and ``Q`` on the second,
and combines the results.  ``(where1 W P)`` is ``(where2 W P I)``.

The paper defines these as Scheme macros whose expansion (i) substitutes
``(assert s0 s1)`` -- respectively ``(assert s0 (complement s1))`` -- for
the program's state parameter, and (ii) renames the program's remaining
parameters with the suffixes ``".0"`` / ``".1"`` (``atomappend``) so the
two inlined argument lists cannot collide with each other or with ``s0`` /
``s1``.  We perform the expansion directly on sort-checked terms, with the
beta-reduction the paper carries out by hand in Example 3.2.5 already
applied.

Reconstruction note: the ``where2`` listing in the surviving text gives
*both* branches the ``(assert s0 s1)`` state, which contradicts the stated
semantics ("splits S into S intersect pw(W) and S \\ pw(W)", Section 0)
and the worked Example 3.2.5, where the second branch is
``(assert s0 (complement s1))``.  We implement the semantics the example
exhibits; ``tests/hlu/test_macros.py`` pins the Example 3.2.5 expansion.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping

from repro.blu.syntax import Apply, BluProgram, Term, Variable
from repro.errors import MacroExpansionError

__all__ = ["atomappend", "arglist", "substitute_term", "where1", "where2"]


def atomappend(suffix: str, atoms: Iterable[str]) -> tuple[str, ...]:
    """Definition 3.2.2(a): append ``suffix`` to every atom name.

    >>> atomappend(".0", ["s1", "s2"])
    ('s1.0', 's2.0')
    """
    return tuple(atom + suffix for atom in atoms)


def arglist(program: BluProgram) -> tuple[str, ...]:
    """Definition 3.2.2(b): the formal argument list of a program."""
    return program.parameters


def substitute_term(term: Term, mapping: Mapping[str, Term]) -> Term:
    """Simultaneously replace variables in a term (capture is impossible:
    BLU terms have no binders)."""
    if isinstance(term, Variable):
        return mapping.get(term.name, term)
    if isinstance(term, Apply):
        return Apply(
            term.operator,
            tuple(substitute_term(argument, mapping) for argument in term.arguments),
        )
    raise MacroExpansionError(f"cannot substitute into {term!r}")


def _inline(program: BluProgram, state_term: Term, suffix: str) -> tuple[Term, tuple[str, ...]]:
    """Inline ``program`` with its state parameter bound to ``state_term``
    and its remaining parameters renamed by ``suffix``.

    Returns the beta-reduced body and the renamed parameter names (which
    become parameters of the expansion).
    """
    renamed = atomappend(suffix, program.parameters[1:])
    mapping: dict[str, Term] = {"s0": state_term}
    for original, fresh in zip(program.parameters[1:], renamed):
        mapping[original] = Variable(fresh)
    return substitute_term(program.body, mapping), renamed


def where2(p0: BluProgram, p1: BluProgram) -> BluProgram:
    """Expand ``(where2 s1 p0 p1)`` into a single BLU program.

    The result's parameters are ``(s0 s1 <p0's renamed args> <p1's renamed
    args>)``; its body is::

        (combine  <p0 body with s0 := (assert s0 s1),      args := *.0>
                  <p1 body with s0 := (assert s0 (complement s1)), args := *.1>)

    >>> from repro.hlu.programs import HLU_INSERT, IDENTITY
    >>> str(where2(HLU_INSERT, IDENTITY))
    '(lambda (s0 s1 s1.0) (combine (assert (mask (assert s0 s1) (genmask s1.0)) s1.0) (assert s0 (complement s1))))'
    """
    inside = Apply("assert", (Variable("s0"), Variable("s1")))
    outside = Apply(
        "assert", (Variable("s0"), Apply("complement", (Variable("s1"),)))
    )
    body0, params0 = _inline(p0, inside, ".0")
    body1, params1 = _inline(p1, outside, ".1")
    parameters = ("s0", "s1", *params0, *params1)
    if len(set(parameters)) != len(parameters):
        raise MacroExpansionError(
            f"parameter collision after renaming: {parameters}"
        )
    return BluProgram(parameters, Apply("combine", (body0, body1)))


def where1(p0: BluProgram) -> BluProgram:
    """Expand ``(where1 s1 p0)`` -- equivalent to ``(where2 s1 p0 I)``."""
    from repro.hlu.programs import IDENTITY

    return where2(p0, IDENTITY)
