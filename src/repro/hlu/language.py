"""The HLU surface language: update expressions and their compilation to BLU.

An HLU program (Section 0's grammar) is one of::

    (assert W)  (mask M)  (insert W)  (delete W)  (modify W V)
    (where W P)  (where W P Q)

with the system state implicit.  Here these are value objects built by the
constructor functions :func:`assert_`, :func:`clear`, :func:`insert`,
:func:`delete`, :func:`modify`, :func:`where`; formulas may be given as
:class:`~repro.logic.formula.Formula` objects or as strings (parsed).

:meth:`Update.compile` produces the *single* BLU program defining the
update's semantics (Definition 3.1.2 for the simple forms, the macro
expansion of Section 3.2 for ``where``) together with the user-argument
descriptors to bind after ``s0``.  Whichever BLU implementation then runs
the program determines the representation level -- that is the paper's
whole architecture.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.blu.syntax import BluProgram
from repro.hlu import macros
from repro.hlu.programs import (
    HLU_ASSERT,
    HLU_CLEAR,
    HLU_DELETE,
    HLU_INSERT,
    HLU_MODIFY,
)
from repro.logic.formula import Formula
from repro.logic.parser import parse_formula

__all__ = [
    "StateArg",
    "MaskArg",
    "Update",
    "Assert",
    "Clear",
    "Insert",
    "Delete",
    "Modify",
    "Where",
    "assert_",
    "clear",
    "insert",
    "delete",
    "modify",
    "where",
]

FormulaLike = Formula | str


def _as_formula_tuple(formulas: Iterable[FormulaLike] | FormulaLike) -> tuple[Formula, ...]:
    if isinstance(formulas, (Formula, str)):
        formulas = (formulas,)
    return tuple(
        parse_formula(f) if isinstance(f, str) else f for f in formulas
    )


class StateArg:
    """A user-supplied possible-worlds argument ``W`` (a set of formulas)."""

    __slots__ = ("formulas",)

    def __init__(self, formulas: tuple[Formula, ...]):
        self.formulas = formulas

    def __eq__(self, other):
        return isinstance(other, StateArg) and other.formulas == self.formulas

    def __hash__(self):
        return hash(("StateArg", self.formulas))

    def __repr__(self):
        return f"StateArg({', '.join(map(str, self.formulas))})"


class MaskArg:
    """A user-supplied mask argument ``M`` (a set of proposition names)."""

    __slots__ = ("names",)

    def __init__(self, names: frozenset[str]):
        self.names = names

    def __eq__(self, other):
        return isinstance(other, MaskArg) and other.names == self.names

    def __hash__(self):
        return hash(("MaskArg", self.names))

    def __repr__(self):
        return f"MaskArg({{{', '.join(sorted(self.names))}}})"


class Update:
    """Abstract HLU update expression."""

    __slots__ = ()

    def compile(self) -> tuple[BluProgram, tuple[StateArg | MaskArg, ...]]:
        """The defining BLU program and the arguments to bind after ``s0``."""
        raise NotImplementedError

    def __repr__(self) -> str:
        return str(self)


class _SimpleUpdate(Update):
    """Shared shape for the five simple-HLU forms."""

    __slots__ = ("arguments",)
    _program: BluProgram
    _name: str

    def compile(self):
        return self._program, self.arguments

    def __eq__(self, other):
        return type(other) is type(self) and other.arguments == self.arguments

    def __hash__(self):
        return hash((type(self).__name__, self.arguments))


class Assert(_SimpleUpdate):
    """``(assert W)``: restrict to the worlds satisfying ``W``."""

    __slots__ = ()
    _program = HLU_ASSERT
    _name = "assert"

    def __init__(self, formulas):
        self.arguments = (StateArg(_as_formula_tuple(formulas)),)

    def __str__(self):
        return f"(assert {{{', '.join(map(str, self.arguments[0].formulas))}}})"


class Clear(_SimpleUpdate):
    """``(mask M)``: forget everything about the named letters."""

    __slots__ = ()
    _program = HLU_CLEAR
    _name = "clear"

    def __init__(self, names: Iterable[str]):
        if isinstance(names, str):
            names = (names,)
        self.arguments = (MaskArg(frozenset(names)),)

    def __str__(self):
        return f"(mask {{{', '.join(sorted(self.arguments[0].names))}}})"


class Insert(_SimpleUpdate):
    """``(insert W)``: mask ``W``'s dependency letters, then assert ``W``."""

    __slots__ = ()
    _program = HLU_INSERT
    _name = "insert"

    def __init__(self, formulas):
        self.arguments = (StateArg(_as_formula_tuple(formulas)),)

    def __str__(self):
        return f"(insert {{{', '.join(map(str, self.arguments[0].formulas))}}})"


class Delete(_SimpleUpdate):
    """``(delete W)``: mask ``W``'s dependency letters, then assert ``~W``."""

    __slots__ = ()
    _program = HLU_DELETE
    _name = "delete"

    def __init__(self, formulas):
        self.arguments = (StateArg(_as_formula_tuple(formulas)),)

    def __str__(self):
        return f"(delete {{{', '.join(map(str, self.arguments[0].formulas))}}})"


class Modify(_SimpleUpdate):
    """``(modify W V)``: where ``W`` holds, delete ``W`` and insert ``V``."""

    __slots__ = ()
    _program = HLU_MODIFY
    _name = "modify"

    def __init__(self, old_formulas, new_formulas):
        self.arguments = (
            StateArg(_as_formula_tuple(old_formulas)),
            StateArg(_as_formula_tuple(new_formulas)),
        )

    def __str__(self):
        old = ", ".join(map(str, self.arguments[0].formulas))
        new = ", ".join(map(str, self.arguments[1].formulas))
        return f"(modify {{{old}}} {{{new}}})"


class Where(Update):
    """``(where W P)`` / ``(where W P Q)``: split on ``W``, run ``P`` on the
    satisfying worlds and ``Q`` (default: identity) on the rest, recombine.

    Compilation performs the macro expansion of Section 3.2 recursively,
    yielding one flat BLU program whose parameters carry the ``".0"`` /
    ``".1"`` renamings.
    """

    __slots__ = ("condition", "then", "otherwise")

    def __init__(self, condition, then: Update, otherwise: Update | None = None):
        self.condition = StateArg(_as_formula_tuple(condition))
        self.then = then
        self.otherwise = otherwise

    def compile(self):
        then_program, then_arguments = self.then.compile()
        if self.otherwise is None:
            expanded = macros.where1(then_program)
            arguments = (self.condition, *then_arguments)
        else:
            otherwise_program, otherwise_arguments = self.otherwise.compile()
            expanded = macros.where2(then_program, otherwise_program)
            arguments = (self.condition, *then_arguments, *otherwise_arguments)
        return expanded, arguments

    def __eq__(self, other):
        return (
            isinstance(other, Where)
            and other.condition == self.condition
            and other.then == self.then
            and other.otherwise == self.otherwise
        )

    def __hash__(self):
        return hash(("Where", self.condition, self.then, self.otherwise))

    def __str__(self):
        condition = ", ".join(map(str, self.condition.formulas))
        if self.otherwise is None:
            return f"(where {{{condition}}} {self.then})"
        return f"(where {{{condition}}} {self.then} {self.otherwise})"


# --- constructor functions (the user-facing spelling) -----------------------

def assert_(*formulas: FormulaLike) -> Assert:
    """``(assert W)`` -- see :class:`Assert`."""
    return Assert(formulas)


def clear(*names: str) -> Clear:
    """``(mask M)`` -- see :class:`Clear`."""
    return Clear(names)


def insert(*formulas: FormulaLike) -> Insert:
    """``(insert W)`` -- see :class:`Insert`."""
    return Insert(formulas)


def delete(*formulas: FormulaLike) -> Delete:
    """``(delete W)`` -- see :class:`Delete`."""
    return Delete(formulas)


def modify(old_formulas, new_formulas) -> Modify:
    """``(modify W V)`` -- see :class:`Modify`."""
    return Modify(old_formulas, new_formulas)


def where(condition, then: Update, otherwise: Update | None = None) -> Where:
    """``(where W P [Q])`` -- see :class:`Where`."""
    return Where(condition, then, otherwise)
