"""``IncompleteDatabase``: the user-facing session API over HLU.

This is the adoptable surface of the library: a mutable handle on an
incomplete-information database state, updated through the HLU operations
and queried for certain / possible truth.  Two interchangeable backends:

* ``"clausal"`` -- the scalable resolution-based ``BLU--C`` (default);
* ``"instance"`` -- exact possible-worlds ``BLU--I`` (small vocabularies;
  the reference semantics).

Integrity constraints (from a :class:`~repro.db.schema.DbSchema`) are, as
in the paper, *not* part of update semantics; with
``enforce_constraints=True`` the session applies the paper's suggested
policy for the incomplete-information case -- "update each possible world
individually, and then those which are not legal are eliminated" -- by
asserting the constraint clauses after every update.
"""

from __future__ import annotations

import logging as _logging
from collections.abc import Iterable
from typing import Any

from repro.obs import core as obs
from repro.obs import runtime
from repro.obs.logging import get_logger
from repro.blu.clausal_impl import ClausalImplementation
from repro.blu.implementation import Implementation
from repro.blu.syntax import Sort
from repro.blu.instance_impl import InstanceImplementation
from repro.db.instances import WorldSet
from repro.db.schema import DbSchema
from repro.errors import EvaluationError, ReproError
from repro.hlu import audit as audit_mod
from repro.hlu import language
from repro.hlu.interpreter import run_update
from repro.logic import incremental
from repro.logic.clauses import ClauseSet
from repro.logic.cnf import formula_to_clauses
from repro.logic.formula import Formula
from repro.logic.parser import parse_formula
from repro.logic.propositions import Vocabulary
from repro.logic.sat import entails_clauses, is_satisfiable

__all__ = ["IncompleteDatabase", "BACKENDS"]

#: The valid session backends (public so persistence and error messages
#: can enumerate them without reaching into private state).
BACKENDS = ("clausal", "instance")
_BACKENDS = BACKENDS

#: Structured (JSON-lines) logger for session operations; silent until
#: ``repro.obs.logging.configure`` attaches a handler.  Records emitted
#: inside an open span carry its name and sid for trace correlation.
_LOG = get_logger("repro.hlu.session")


class IncompleteDatabase:
    """A session over an incomplete-information database.

    >>> db = IncompleteDatabase.over(5)
    >>> _ = db.assert_("~A1 | A3", "A1 | A4", "A4 | A5", "~A1 | ~A2 | ~A5")
    >>> _ = db.insert("A1 | A2")             # Example 3.1.5
    >>> db.is_certain("A1 | A2")
    True
    >>> print(db.state)
    {A1 | A2, A3 | A4, A4 | A5}
    """

    def __init__(
        self,
        schema: DbSchema,
        backend: str = "clausal",
        initial: Any | None = None,
        enforce_constraints: bool = False,
    ):
        if backend not in _BACKENDS:
            raise EvaluationError(f"backend must be one of {_BACKENDS}, got {backend!r}")
        self._schema = schema
        self._backend_name = backend
        if backend == "clausal":
            self._implementation: Implementation = ClausalImplementation(
                schema.vocabulary
            )
        else:
            self._implementation = InstanceImplementation(schema.vocabulary)
        if initial is None:
            initial = self._total_state()
        self._implementation.check_sorted(initial, Sort.S)
        self._state = initial
        self._enforce_constraints = enforce_constraints
        self._history: list[language.Update] = []
        self._snapshots: list[Any] = []
        if enforce_constraints:
            self._state = self._apply_constraints(self._state)
        self._audit: audit_mod.SessionAudit | None = None
        if audit_mod._ENABLED:
            self._audit = audit_mod.register_session(self)

    # --- constructors ------------------------------------------------------------

    @classmethod
    def over(
        cls,
        letters: int | Iterable[str],
        constraints: Iterable[Formula | str] = (),
        backend: str = "clausal",
        enforce_constraints: bool = False,
    ) -> "IncompleteDatabase":
        """Start from total ignorance over a fresh schema."""
        return cls(
            DbSchema.of(letters, constraints),
            backend=backend,
            enforce_constraints=enforce_constraints,
        )

    # --- accessors -----------------------------------------------------------------

    @property
    def schema(self) -> DbSchema:
        """The database schema."""
        return self._schema

    @property
    def vocabulary(self) -> Vocabulary:
        """``Prop[D]``."""
        return self._schema.vocabulary

    @property
    def backend(self) -> str:
        """``"clausal"`` or ``"instance"``."""
        return self._backend_name

    @property
    def implementation(self) -> Implementation:
        """The underlying BLU implementation."""
        return self._implementation

    @property
    def state(self) -> Any:
        """The current backend state (a ClauseSet or WorldSet)."""
        return self._state

    @property
    def history(self) -> tuple[language.Update, ...]:
        """Every update applied so far, in order."""
        return tuple(self._history)

    # --- the HLU operations -----------------------------------------------------------

    def apply(self, update: language.Update) -> "IncompleteDatabase":
        """Apply any :class:`~repro.hlu.language.Update`; returns self.

        When the audit trail is enabled the operation is recorded with
        pre/post fingerprints; a rejected update (any :class:`ReproError`
        out of the interpreter) is recorded with outcome ``"rejected"``,
        logged with the offending operation echoed, and re-raised.
        """
        entry = None
        if audit_mod._ENABLED and self._audit is not None:
            entry = self._audit.begin("apply", str(update), self.clauses().fingerprint)
        with runtime.timed("hlu.update"), obs.span(
            "hlu.apply",
            update=type(update).__name__.lower(),
            backend=self._backend_name,
        ) as current:
            obs.inc("hlu.updates")
            if entry is not None:
                entry.span_sid = getattr(current, "sid", 0)
            try:
                new_state = run_update(self._implementation, self._state, update)
                if self._enforce_constraints:
                    new_state = self._apply_constraints(new_state)
            except ReproError as error:
                if _LOG.isEnabledFor(_logging.WARNING):
                    _LOG.warning(
                        "update rejected",
                        extra={
                            "op": str(update),
                            "backend": self._backend_name,
                            "error": str(error),
                        },
                    )
                if entry is not None:
                    self._audit.commit(entry, "rejected", error=str(error))
                raise
            if _LOG.isEnabledFor(_logging.INFO):
                _LOG.info(
                    "update applied",
                    extra={"op": str(update), "backend": self._backend_name},
                )
        old_state = self._state
        self._snapshots.append(self._state)
        self._state = new_state
        self._history.append(update)
        self._after_transition(old_state, new_state)
        if entry is not None:
            self._audit.commit(
                entry, self._outcome(), post=self.clauses().fingerprint
            )
        return self

    def undo(self) -> "IncompleteDatabase":
        """Revert the most recent update (states are immutable values, so
        snapshots are free).  Raises if there is nothing to undo.

        Updates are *not* invertible operations -- insert genuinely
        destroys information -- so undo is only possible through
        snapshots; this is the session-level counterpart of Section 1.5's
        observation that a morphism's preimage is an equivalence class,
        not a point.  The audit trail records the undo like any other
        operation, so a replay traverses the same state trajectory.
        """
        entry = None
        if audit_mod._ENABLED and self._audit is not None:
            entry = self._audit.begin("undo", "", self.clauses().fingerprint)
        if not self._snapshots:
            if entry is not None:
                self._audit.commit(entry, "rejected", error="nothing to undo")
            if _LOG.isEnabledFor(_logging.WARNING):
                _LOG.warning(
                    "undo rejected",
                    extra={"backend": self._backend_name, "error": "nothing to undo"},
                )
            raise EvaluationError("nothing to undo")
        old_state = self._state
        self._state = self._snapshots.pop()
        self._history.pop()
        self._after_transition(old_state, self._state)
        if _LOG.isEnabledFor(_logging.INFO):
            _LOG.info("undo applied", extra={"backend": self._backend_name})
        if entry is not None:
            self._audit.commit(
                entry, self._outcome(), post=self.clauses().fingerprint
            )
        return self

    def restore_history(
        self, updates: Iterable[language.Update]
    ) -> "IncompleteDatabase":
        """Replace the recorded update history (persistence restore).

        The state is untouched: the restored history is documentary --
        it reports how the current state came to be, it is not replayed.
        Undo snapshots are cleared (they pair with the live history, and
        a restored history has none), matching the save-format contract
        that snapshots are not persisted.  The operation is recorded in
        the audit trail as ``restore_history`` (state fingerprints
        unchanged), so loading a session never silently diverges a trail
        from the session's reported history -- the reason callers must
        use this API instead of poking ``_history`` directly.
        """
        update_list = list(updates)
        for update in update_list:
            if not isinstance(update, language.Update):
                raise EvaluationError(
                    f"history entries must be HLU updates, got {update!r}"
                )
        entry = None
        if audit_mod._ENABLED and self._audit is not None:
            entry = self._audit.begin(
                "restore_history",
                " ".join(str(update) for update in update_list),
                self.clauses().fingerprint,
            )
        self._history = update_list
        self._snapshots.clear()
        if entry is not None:
            self._audit.commit(entry, "ok", post=self.clauses().fingerprint)
        return self

    def attach_audit(self) -> audit_mod.SessionAudit:
        """Start auditing this session (audit must be enabled).

        Sessions created while :func:`repro.hlu.audit.enable` is active
        register automatically; this is the late-attachment hook for
        sessions that predate the enable (e.g. the REPL's ``:audit on``).
        The session record captures the *current* state as the initial
        one, so replay still converges.
        """
        if not audit_mod.is_enabled():
            raise EvaluationError("audit recording is not enabled")
        self._audit = audit_mod.register_session(self)
        return self._audit

    def assert_(self, *formulas: Formula | str) -> "IncompleteDatabase":
        """``(assert W)``: monotonically add the information ``W``."""
        return self.apply(language.assert_(*formulas))

    def clear(self, *names: str) -> "IncompleteDatabase":
        """``(mask M)``: forget everything about the named letters."""
        return self.apply(language.clear(*names))

    def insert(self, *formulas: Formula | str) -> "IncompleteDatabase":
        """``(insert W)``: make ``W`` true, forgetting what it overrides."""
        return self.apply(language.insert(*formulas))

    def delete(self, *formulas: Formula | str) -> "IncompleteDatabase":
        """``(delete W)``: make ``W`` false, forgetting what it overrides."""
        return self.apply(language.delete(*formulas))

    def modify(self, old_formulas, new_formulas) -> "IncompleteDatabase":
        """``(modify W V)``: where ``W`` holds, replace it by ``V``."""
        return self.apply(language.modify(old_formulas, new_formulas))

    def where(
        self,
        condition,
        then: language.Update,
        otherwise: language.Update | None = None,
    ) -> "IncompleteDatabase":
        """``(where W P [Q])``: conditional update via macro expansion."""
        return self.apply(language.where(condition, then, otherwise))

    def run(self, text: str) -> "IncompleteDatabase":
        """Apply HLU programs written in the paper's surface syntax.

        >>> db = IncompleteDatabase.over(5)
        >>> _ = db.run("(assert {A4 | A5}) (where {A5} (insert {A1 | A2}))")
        >>> db.is_certain("A5 -> (A1 | A2)")
        True
        """
        from repro.hlu.surface import parse_updates

        for update in parse_updates(text):
            self.apply(update)
        return self

    # --- queries ------------------------------------------------------------------------

    def is_certain(self, formula: Formula | str) -> bool:
        """Does the formula hold in *every* possible world?"""
        formula = self._parse(formula)
        entry = None
        if audit_mod._ENABLED and self._audit is not None:
            entry = self._audit.begin(
                "query_certain", str(formula), self.clauses().fingerprint
            )
        with runtime.timed("hlu.query"), obs.span(
            "hlu.is_certain", backend=self._backend_name
        ) as current:
            obs.inc("hlu.queries")
            if entry is not None:
                entry.span_sid = getattr(current, "sid", 0)
            if isinstance(self._state, WorldSet):
                result = self._state.satisfies_everywhere(formula)
            else:
                query = formula_to_clauses(formula, self.vocabulary)
                result = entails_clauses(self._state, query)
            if _LOG.isEnabledFor(_logging.INFO):
                _LOG.info(
                    "query",
                    extra={
                        "kind": "certain",
                        "formula": str(formula),
                        "backend": self._backend_name,
                        "result": result,
                    },
                )
        if entry is not None:
            self._audit.commit(entry, "true" if result else "false")
        return result

    def is_possible(self, formula: Formula | str) -> bool:
        """Does the formula hold in *some* possible world?"""
        formula = self._parse(formula)
        entry = None
        if audit_mod._ENABLED and self._audit is not None:
            entry = self._audit.begin(
                "query_possible", str(formula), self.clauses().fingerprint
            )
        with runtime.timed("hlu.query"), obs.span(
            "hlu.is_possible", backend=self._backend_name
        ) as current:
            obs.inc("hlu.queries")
            if entry is not None:
                entry.span_sid = getattr(current, "sid", 0)
            if isinstance(self._state, WorldSet):
                result = self._state.satisfies_somewhere(formula)
            else:
                query = formula_to_clauses(formula, self.vocabulary)
                result = is_satisfiable(self._state.union(query))
            if _LOG.isEnabledFor(_logging.INFO):
                _LOG.info(
                    "query",
                    extra={
                        "kind": "possible",
                        "formula": str(formula),
                        "backend": self._backend_name,
                        "result": result,
                    },
                )
        if entry is not None:
            self._audit.commit(entry, "true" if result else "false")
        return result

    def is_consistent(self) -> bool:
        """Is there at least one possible world?"""
        if isinstance(self._state, WorldSet):
            return bool(self._state)
        return is_satisfiable(self._state)

    def world_count(self) -> int:
        """How many possible worlds the state has.

        Exact #SAT on the clausal backend (no enumeration), a plain
        ``len`` on the instance backend.
        """
        if isinstance(self._state, ClauseSet):
            from repro.logic.sat import count_models_exact

            return count_models_exact(self._state)
        return len(self._state)

    def certain_literals(self) -> frozenset[str]:
        """The literals holding in every possible world.

        On the clausal backend this is the SAT backbone -- no world
        enumeration, so it works at any vocabulary size.
        """
        if isinstance(self._state, ClauseSet):
            from repro.logic.clauses import literal_to_str
            from repro.logic.sat import backbone_literals

            return frozenset(
                literal_to_str(self.vocabulary, literal)
                for literal in backbone_literals(self._state)
            )
        return self.worlds().certain_literals()

    # --- representation changes ------------------------------------------------------------

    def worlds(self) -> WorldSet:
        """The state as an explicit world set (small vocabularies only)."""
        if isinstance(self._state, WorldSet):
            return self._state
        return WorldSet.from_clause_set(self._state)

    def clauses(self) -> ClauseSet:
        """The state as a clause set."""
        if isinstance(self._state, ClauseSet):
            return self._state
        return self._state.to_clause_set()

    def canonical_clauses(self, max_clauses: int = 100_000) -> ClauseSet:
        """The state's prime implicates: a presentation-independent
        canonical clausal form (two sessions hold the same information iff
        this is equal).  Exponential in the worst case -- display and
        comparison only."""
        from repro.logic.implicates import prime_implicates

        return prime_implicates(self.clauses(), max_clauses=max_clauses)

    def with_backend(self, backend: str) -> "IncompleteDatabase":
        """A copy of this session running on the other backend.

        The update history carries over; undo snapshots do not (they are
        representation-level values of the original backend).
        """
        if backend == self._backend_name:
            initial = self._state
        elif backend == "instance":
            initial = self.worlds()
        else:
            initial = self.clauses()
        clone = IncompleteDatabase(
            self._schema,
            backend=backend,
            initial=initial,
            enforce_constraints=self._enforce_constraints,
        )
        clone._history = list(self._history)
        return clone

    # --- internals -------------------------------------------------------------------------

    def _total_state(self) -> Any:
        if self._backend_name == "clausal":
            return ClauseSet.tautology(self.vocabulary)
        return WorldSet.total(self.vocabulary)

    def _apply_constraints(self, state: Any) -> Any:
        if not self._schema.constraints:
            return state
        if isinstance(state, WorldSet):
            return state.legal(self._schema)
        return state.union(self._schema.constraint_clauses()).reduce()

    def _after_transition(self, old_state: Any, new_state: Any) -> None:
        """Post-transition hook: feed the state change to the incremental
        closure engine and record the clausal delta size.

        Only clausal states participate (``WorldSet`` transitions are a
        structural break the engine does not track); within the clausal
        backend, :func:`repro.logic.incremental.touch` adopts the nearest
        known lineage and replays the insert/delete frontier, falling back
        to a fresh lineage when the vocabulary changed or the delta is too
        large to be worth replaying.
        """
        if isinstance(old_state, ClauseSet) and isinstance(new_state, ClauseSet):
            if obs._ENABLED and old_state.vocabulary == new_state.vocabulary:
                from repro.db.updates import clause_delta

                inserts, deletes = clause_delta(old_state, new_state)
                obs.observe("hlu.update.delta_size", len(inserts) + len(deletes))
        if incremental._ENABLED and isinstance(new_state, ClauseSet):
            incremental.touch(new_state)

    def _outcome(self) -> str:
        """The audit outcome of the current state: ``"inconsistent"`` when
        inconsistency is representationally evident (an explicit empty
        clause, or an empty world set), else ``"ok"``.  A deliberately
        cheap check -- the semantic question is ``is_consistent()`` and,
        for an explanation, ``repro.obs.provenance.explain_inconsistency``.
        """
        if isinstance(self._state, ClauseSet):
            return "inconsistent" if self._state.has_empty_clause else "ok"
        return "ok" if self._state else "inconsistent"

    def _parse(self, formula: Formula | str) -> Formula:
        return parse_formula(formula) if isinstance(formula, str) else formula

    def __repr__(self) -> str:
        return (
            f"IncompleteDatabase(backend={self._backend_name!r}, "
            f"{len(self.vocabulary)} letters, {len(self._history)} update(s))"
        )

