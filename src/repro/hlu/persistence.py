"""Saving and restoring sessions as plain text.

A session file is line-oriented and human-editable::

    #repro-session v1
    vocabulary A1 A2 A3
    backend clausal
    constraint A1 -> A2
    clause ~A1 | A2
    clause A3
    update (insert {A1})

* ``clause`` lines are the state's clausal representation (the canonical
  carrier across backends: an instance-backend session is converted on
  save and back on load, which is exact);
* ``update`` lines record the history in the HLU surface syntax -- they
  are informational on load (the state line already reflects them) but
  re-parseable, so a saved session doubles as a replayable script;
* ``constraint`` lines restore the schema.

Blank lines and ``;`` comments are ignored.
"""

from __future__ import annotations

from repro.db.schema import DbSchema
from repro.errors import ParseError
from repro.hlu.session import BACKENDS, IncompleteDatabase
from repro.logic.clauses import ClauseSet, clause_to_str

__all__ = ["dump_session", "load_session"]

_HEADER = "#repro-session v1"


def dump_session(db: IncompleteDatabase) -> str:
    """Serialise a session to the text format above."""
    lines = [_HEADER]
    lines.append("vocabulary " + " ".join(db.vocabulary.names))
    lines.append(f"backend {db.backend}")
    for constraint in db.schema.constraints:
        lines.append(f"constraint {constraint}")
    clause_set = db.clauses()
    for clause in sorted(
        clause_set.clauses, key=lambda c: clause_to_str(db.vocabulary, c)
    ):
        lines.append("clause " + clause_to_str(db.vocabulary, clause))
    for update in db.history:
        lines.append(f"update {update}")
    return "\n".join(lines) + "\n"


def load_session(text: str) -> IncompleteDatabase:
    """Rebuild a session from :func:`dump_session` output.

    The restored session has the saved schema, backend, state, and
    history; undo snapshots (representation-level) are not persisted.
    """
    names: list[str] | None = None
    backend = "clausal"
    constraints: list[str] = []
    clause_texts: list[str] = []
    update_texts: list[str] = []

    lines = text.splitlines()
    if not lines or lines[0].strip() != _HEADER:
        raise ParseError(f"not a repro session file (missing {_HEADER!r})")
    for raw in lines[1:]:
        line = raw.strip()
        if not line or line.startswith(";"):
            continue
        key, _, rest = line.partition(" ")
        rest = rest.strip()
        if key == "vocabulary":
            names = rest.split()
        elif key == "backend":
            if rest not in BACKENDS:
                raise ParseError(
                    f"unknown backend {rest!r}; valid backends: "
                    + ", ".join(BACKENDS),
                    text=line,
                )
            backend = rest
        elif key == "constraint":
            constraints.append(rest)
        elif key == "clause":
            clause_texts.append(rest)
        elif key == "update":
            update_texts.append(rest)
        else:
            raise ParseError(f"unknown session line {line!r}")
    if names is None:
        raise ParseError("session file has no vocabulary line")

    schema = DbSchema.of(names, constraints=constraints)
    state = ClauseSet.from_strs(schema.vocabulary, clause_texts)
    session = IncompleteDatabase(schema, backend="clausal", initial=state)
    if backend == "instance":
        session = session.with_backend("instance")
    if update_texts:
        from repro.hlu.surface import parse_updates

        session.restore_history(parse_updates(" ".join(update_texts)))
    return session
