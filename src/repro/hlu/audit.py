"""Append-only, schema-versioned session audit trails with checked replay.

Every :class:`~repro.hlu.session.IncompleteDatabase` operation --
updates, undo, certain/possible queries -- can be recorded as one JSON
line: the operation and its arguments (in the paper's surface syntax, so
the line re-parses), the pre/post clause-set fingerprints (free via
:mod:`repro.cache.fingerprint`), the kernel-counter deltas the operation
caused, its wall time, the trace-span ``sid`` open while it ran (the
correlation hook into :mod:`repro.obs` traces and structured logs), and
the outcome.  A ``"session"`` record opens each trail segment with
everything needed to rebuild the session from scratch: backend, letters,
constraints, and the initial clause set.

This is crash-recovery semantics in miniature and the precursor of a
write-ahead log (see ROADMAP): :func:`replay_audit` rebuilds each
session, re-applies every operation, and checks that every recorded
pre/post fingerprint and query outcome is reproduced exactly.

Mirrors the enable-flag discipline of :mod:`repro.obs.core`: one
process-wide module global (``_ENABLED``) checked by the session hooks,
so the disabled path costs a single global load per operation.  Session
ids embed the process id, so per-worker trail files from a parallel run
(``run_experiments.py --jobs``) can be concatenated safely.
"""

from __future__ import annotations

import itertools
import json
import os
import time
from collections.abc import Iterable
from dataclasses import dataclass, field
from pathlib import Path
from typing import IO, Any

from repro.errors import AuditError, EvaluationError, ReproError
from repro.obs import core as obs

__all__ = [
    "AUDIT_SCHEMA_VERSION",
    "AuditTrail",
    "AuditWriter",
    "AuditReplay",
    "enable",
    "disable",
    "is_enabled",
    "sink",
    "register_session",
    "SessionAudit",
    "fingerprint_json",
    "read_audit",
    "validate_audit",
    "replay_audit",
]

#: Bumped when the record shape changes; carried on every line so replay
#: tooling can refuse trails it would silently mis-read.
AUDIT_SCHEMA_VERSION = 1

#: Operation kinds an ``"op"`` record may carry.  ``restore_history``
#: replaces the documentary update history (persistence restore) without
#: touching the state -- recorded so a trail never silently diverges
#: from the session's reported history.
OPS = ("apply", "undo", "query_certain", "query_possible", "restore_history")

#: Outcomes: state ops end "ok"/"inconsistent"/"rejected", queries
#: "true"/"false" (or "rejected" when the argument itself was refused).
OUTCOMES = ("ok", "inconsistent", "rejected", "true", "false")


def fingerprint_json(fingerprint: tuple[int, int, bytes]) -> dict[str, Any]:
    """A clause-set fingerprint as a JSON-ready object.

    ``n`` is the clause count, ``mask`` the hex letter-signature mask,
    ``digest`` the hex content digest (see :mod:`repro.cache.fingerprint`).

    >>> fingerprint_json((2, 5, b"\\x00\\xff"))
    {'n': 2, 'mask': '5', 'digest': '00ff'}
    """
    count, mask, digest = fingerprint
    return {"n": count, "mask": format(mask, "x"), "digest": digest.hex()}


# ---------------------------------------------------------------------------
# Sinks
# ---------------------------------------------------------------------------


class AuditTrail:
    """In-memory audit sink: a plain list of record dicts.

    The REPL's ``:audit on`` uses one of these; :meth:`save` writes the
    JSONL representation out, :meth:`dump` returns it as text.
    """

    def __init__(self) -> None:
        self.records: list[dict[str, Any]] = []

    def write(self, record: dict[str, Any]) -> None:
        self.records.append(record)

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Any:
        return iter(self.records)

    def dump(self) -> str:
        return "\n".join(json.dumps(r, sort_keys=True) for r in self.records)

    def save(self, path: str | Path) -> None:
        text = self.dump()
        with open(path, "w", encoding="utf-8") as handle:
            if text:
                handle.write(text + "\n")


class AuditWriter:
    """Append-only JSONL sink over a file path or open text stream.

    Opens paths in append mode (the trail is append-only by contract) and
    flushes after every record so a crash loses at most the operation in
    flight.
    """

    def __init__(self, target: str | Path | IO[str]):
        if hasattr(target, "write"):
            self._handle: IO[str] = target  # type: ignore[assignment]
            self._owns = False
        else:
            self._handle = open(target, "a", encoding="utf-8")  # noqa: SIM115
            self._owns = True

    def write(self, record: dict[str, Any]) -> None:
        self._handle.write(json.dumps(record, sort_keys=True) + "\n")
        self._handle.flush()

    def close(self) -> None:
        if self._owns:
            self._handle.close()


# ---------------------------------------------------------------------------
# The process-wide switch and session registration
# ---------------------------------------------------------------------------

# Mirrors repro.obs.core: a plain module global so the disabled check in
# the session hooks is a single global load.
_ENABLED = False
_SINK: AuditTrail | AuditWriter | None = None
_SESSION_IDS = itertools.count(1)


def enable(target: str | Path | IO[str] | AuditTrail | AuditWriter | None = None):
    """Turn audit recording on (process-wide) and return the active sink.

    ``target`` may be a path or stream (wrapped in an append-only
    :class:`AuditWriter`), an existing sink, or ``None`` for a fresh
    in-memory :class:`AuditTrail`.  Sessions created while enabled
    register themselves automatically; existing sessions can opt in via
    :meth:`~repro.hlu.session.IncompleteDatabase.attach_audit`.
    """
    global _ENABLED, _SINK
    if target is None:
        _SINK = AuditTrail()
    elif isinstance(target, (AuditTrail, AuditWriter)):
        _SINK = target
    else:
        _SINK = AuditWriter(target)
    _ENABLED = True
    return _SINK


def disable() -> None:
    """Turn audit recording off and close a file-backed sink."""
    global _ENABLED, _SINK
    _ENABLED = False
    closing, _SINK = _SINK, None
    if isinstance(closing, AuditWriter):
        closing.close()


def is_enabled() -> bool:
    """Whether session operations are currently being recorded."""
    return _ENABLED


def sink() -> AuditTrail | AuditWriter | None:
    """The active sink, or ``None`` while disabled."""
    return _SINK


@dataclass
class _OpEntry:
    """One in-flight operation between ``begin`` and ``commit``."""

    op: str
    args: str
    pre: dict[str, Any]
    seq: int
    started: float
    counters_before: dict[str, int] | None = None
    span_sid: int = 0


class SessionAudit:
    """Per-session recorder handed out by :func:`register_session`."""

    def __init__(self, out: AuditTrail | AuditWriter, session_id: str):
        self._out = out
        self.session_id = session_id
        self._seq = itertools.count(1)

    def begin(self, op: str, args: str, pre: tuple[int, int, bytes]) -> _OpEntry:
        """Open one operation record; commit writes it."""
        return _OpEntry(
            op=op,
            args=args,
            pre=fingerprint_json(pre),
            seq=next(self._seq),
            started=time.perf_counter(),
            counters_before=obs.counters().snapshot() if obs.is_enabled() else None,
        )

    def commit(
        self,
        entry: _OpEntry,
        outcome: str,
        post: tuple[int, int, bytes] | None = None,
        error: str | None = None,
    ) -> None:
        """Write the completed operation as one audit record."""
        record: dict[str, Any] = {
            "schema": AUDIT_SCHEMA_VERSION,
            "kind": "op",
            "session": self.session_id,
            "seq": entry.seq,
            "ts": time.time(),
            "op": entry.op,
            "args": entry.args,
            "pre": entry.pre,
            "outcome": outcome,
            "wall_ms": (time.perf_counter() - entry.started) * 1000.0,
            "span_sid": entry.span_sid,
        }
        if post is not None:
            record["post"] = fingerprint_json(post)
        if entry.counters_before is not None:
            record["counters"] = obs.counters().delta(entry.counters_before)
        if error is not None:
            record["error"] = error
        self._out.write(record)


def register_session(db: Any) -> SessionAudit:
    """Open a trail segment for a session and return its recorder.

    Writes the ``"session"`` record carrying everything replay needs to
    rebuild the session: backend, letters, constraints (surface syntax),
    the enforce flag, and the *current* clause-set rendering as the
    initial state (so late attachment via ``attach_audit`` still replays;
    re-applying constraints to an already-constrained state is
    idempotent).  Session ids embed the pid, so concatenated per-worker
    trails never collide.
    """
    from repro.logic.clauses import clause_to_str

    out = _SINK if _SINK is not None else enable()
    session_id = f"s{os.getpid()}-{next(_SESSION_IDS)}"
    clauses = db.clauses()
    out.write(
        {
            "schema": AUDIT_SCHEMA_VERSION,
            "kind": "session",
            "session": session_id,
            "ts": time.time(),
            "backend": db.backend,
            "letters": list(db.vocabulary.names),
            "constraints": [str(c) for c in db.schema.constraints],
            "enforce_constraints": bool(db._enforce_constraints),
            "initial": [
                clause_to_str(db.vocabulary, c) for c in clauses.sorted_clauses()
            ],
        }
    )
    return SessionAudit(out, session_id)


# ---------------------------------------------------------------------------
# Reading, validating, replaying
# ---------------------------------------------------------------------------


def read_audit(source: Any) -> list[dict[str, Any]]:
    """Load audit records from a path, stream, trail, or record list.

    Raises :class:`AuditError` on an unparsable line or on schema drift
    (any record whose ``schema`` is not the supported version).
    """
    records: list[dict[str, Any]]
    if isinstance(source, AuditTrail):
        records = list(source.records)
    elif isinstance(source, (str, Path)):
        with open(source, "r", encoding="utf-8") as handle:
            records = _parse_lines(handle)
    elif hasattr(source, "read"):
        records = _parse_lines(source)
    else:
        records = [dict(r) for r in source]
    for number, record in enumerate(records, start=1):
        schema = record.get("schema")
        if schema != AUDIT_SCHEMA_VERSION:
            raise AuditError(
                f"record {number}: audit schema {schema!r} is not the "
                f"supported version {AUDIT_SCHEMA_VERSION}"
            )
    return records


def _parse_lines(lines: Iterable[str]) -> list[dict[str, Any]]:
    records = []
    for number, line in enumerate(lines, start=1):
        stripped = line.strip()
        if not stripped:
            continue
        try:
            record = json.loads(stripped)
        except json.JSONDecodeError as error:
            raise AuditError(f"line {number}: not valid JSON: {error}") from error
        if not isinstance(record, dict):
            raise AuditError(f"line {number}: record is not a JSON object")
        records.append(record)
    return records


def _fingerprint_shape_ok(value: Any) -> bool:
    return (
        isinstance(value, dict)
        and isinstance(value.get("n"), int)
        and isinstance(value.get("mask"), str)
        and isinstance(value.get("digest"), str)
    )


def validate_audit(records: Iterable[dict[str, Any]]) -> list[str]:
    """Structural validation; returns the list of problems (empty = ok).

    Checks record kinds, that every op names a previously opened session,
    per-session ``seq`` contiguity from 1, known op/outcome vocabulary,
    and fingerprint field shape.  Purely structural -- semantic agreement
    is :func:`replay_audit`'s job.
    """
    problems: list[str] = []
    expected_seq: dict[str, int] = {}
    for number, record in enumerate(records, start=1):
        kind = record.get("kind")
        if kind == "session":
            missing = [
                key
                for key in (
                    "session", "backend", "letters", "constraints",
                    "enforce_constraints", "initial",
                )
                if key not in record
            ]
            if missing:
                problems.append(f"record {number}: session record lacks {missing}")
                continue
            expected_seq[record["session"]] = 1
        elif kind == "op":
            session = record.get("session")
            if session not in expected_seq:
                problems.append(
                    f"record {number}: op for unknown session {session!r}"
                )
                continue
            if record.get("seq") != expected_seq[session]:
                problems.append(
                    f"record {number}: session {session} expected seq "
                    f"{expected_seq[session]}, got {record.get('seq')!r}"
                )
            else:
                expected_seq[session] += 1
            if record.get("op") not in OPS:
                problems.append(f"record {number}: unknown op {record.get('op')!r}")
            if record.get("outcome") not in OUTCOMES:
                problems.append(
                    f"record {number}: unknown outcome {record.get('outcome')!r}"
                )
            if not _fingerprint_shape_ok(record.get("pre")):
                problems.append(f"record {number}: malformed pre fingerprint")
            if "post" in record and not _fingerprint_shape_ok(record.get("post")):
                problems.append(f"record {number}: malformed post fingerprint")
            if not isinstance(record.get("wall_ms"), (int, float)):
                problems.append(f"record {number}: missing wall_ms")
        else:
            problems.append(f"record {number}: unknown record kind {kind!r}")
    return problems


@dataclass
class AuditReplay:
    """The result of replaying a trail: what ran and what disagreed."""

    sessions: int = 0
    ops: int = 0
    mismatches: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.mismatches

    def render(self) -> str:
        status = "ok" if self.ok else f"{len(self.mismatches)} mismatch(es)"
        lines = [
            f"audit replay: {self.sessions} session(s), {self.ops} op(s): {status}"
        ]
        lines.extend(f"  {m}" for m in self.mismatches)
        return "\n".join(lines)


def replay_audit(source: Any) -> AuditReplay:
    """Re-apply a recorded trail and check it reproduces exactly.

    Rebuilds every session from its ``"session"`` record, re-applies each
    operation (parsed back from its surface-syntax ``args``), and checks
    the recorded pre/post clause-set fingerprints and query outcomes
    against the live session at every step -- so a final match means the
    *entire* state trajectory was reproduced, not just the endpoint.

    Raises :class:`AuditError` on schema drift or structural problems;
    semantic disagreements land in the returned report's ``mismatches``.
    Recording is suspended while replaying (the replayed operations must
    not append to the trail being checked).
    """
    records = read_audit(source)
    problems = validate_audit(records)
    if problems:
        raise AuditError(
            "audit trail is structurally invalid: " + "; ".join(problems)
        )
    from repro.db.instances import WorldSet
    from repro.db.schema import DbSchema
    from repro.hlu.session import IncompleteDatabase
    from repro.hlu.surface import parse_updates
    from repro.logic.clauses import ClauseSet

    report = AuditReplay()
    sessions: dict[str, IncompleteDatabase] = {}

    global _ENABLED
    previous = _ENABLED
    _ENABLED = False
    try:
        for number, record in enumerate(records, start=1):
            if record["kind"] == "session":
                schema = DbSchema.of(record["letters"], record["constraints"])
                initial: Any = ClauseSet.from_strs(
                    schema.vocabulary, record["initial"]
                )
                if record["backend"] == "instance":
                    initial = WorldSet.from_clause_set(initial)
                sessions[record["session"]] = IncompleteDatabase(
                    schema,
                    backend=record["backend"],
                    initial=initial,
                    enforce_constraints=record["enforce_constraints"],
                )
                report.sessions += 1
                continue
            db = sessions[record["session"]]
            where = f"record {number} (session {record['session']} seq {record['seq']})"
            report.ops += 1
            if fingerprint_json(db.clauses().fingerprint) != record["pre"]:
                report.mismatches.append(f"{where}: pre fingerprint differs")
            op = record["op"]
            outcome = record["outcome"]
            rejected = False
            if op == "apply":
                try:
                    db.apply(parse_updates(record["args"])[0])
                except ReproError:
                    rejected = True
            elif op == "undo":
                try:
                    db.undo()
                except EvaluationError:
                    rejected = True
            elif op == "restore_history":
                args = record["args"]
                db.restore_history(parse_updates(args) if args else ())
            elif op == "query_certain":
                result = db.is_certain(record["args"])
                if outcome in ("true", "false") and result != (outcome == "true"):
                    report.mismatches.append(
                        f"{where}: query_certain returned {result}, "
                        f"trail says {outcome}"
                    )
            elif op == "query_possible":
                result = db.is_possible(record["args"])
                if outcome in ("true", "false") and result != (outcome == "true"):
                    report.mismatches.append(
                        f"{where}: query_possible returned {result}, "
                        f"trail says {outcome}"
                    )
            if rejected != (outcome == "rejected"):
                report.mismatches.append(
                    f"{where}: op was {'rejected' if rejected else 'accepted'}, "
                    f"trail says {outcome}"
                )
            post = record.get("post")
            if post is not None and fingerprint_json(
                db.clauses().fingerprint
            ) != post:
                report.mismatches.append(f"{where}: post fingerprint differs")
    finally:
        _ENABLED = previous
    return report
