"""The BLU-based semantics of simple-HLU (Definition 3.1.2).

Each simple-HLU operator is *defined* as a BLU program; HLU thereby
inherits its semantics from whichever BLU implementation runs it.  The
programs below are the paper's ``define`` forms, parsed from their
s-expression sources so the definitions remain textual and inspectable.

Two reconstructions from the surviving text, both pinned by tests:

* ``HLU-clear``: the paper writes ``(lambda (s0 s1) (mask s0 s1))``; the
  second parameter is a *mask*, so under the sorting convention of
  Definition 2.1.1(b) it must be named ``m1``.
* ``HLU-modify``: the parenthesisation printed in 3.1.2 is unbalanced; the
  intended term -- "on the worlds where s1 holds, delete s1 then insert
  s2; leave the other worlds alone" (the mask-assert paradigm applied
  twice, combined with the untouched branch) -- is::

      (combine
        (assert (mask (assert (mask (assert s0 s1) (genmask s1))
                              (complement s1))
                      (genmask s2))
                s2)
        (assert s0 (complement s1)))

  Theorem 3.1.4 (equivalence with Definition 1.4.5) is verified for this
  reconstruction in ``tests/hlu/test_theorem_314.py``.
"""

from __future__ import annotations

from repro.blu.parser import parse_program
from repro.blu.syntax import BluProgram

__all__ = [
    "HLU_ASSERT",
    "HLU_CLEAR",
    "HLU_INSERT",
    "HLU_DELETE",
    "HLU_MODIFY",
    "IDENTITY",
    "SIMPLE_HLU_PROGRAMS",
]

HLU_ASSERT: BluProgram = parse_program("(lambda (s0 s1) (assert s0 s1))")
"""``(assert W)``: intersect the state with the asserted worlds."""

HLU_CLEAR: BluProgram = parse_program("(lambda (s0 m1) (mask s0 m1))")
"""``(mask M)`` / clear: forget all information about the masked letters."""

HLU_INSERT: BluProgram = parse_program(
    "(lambda (s0 s1) (assert (mask s0 (genmask s1)) s1))"
)
"""``(insert W)``: mask the letters W depends on, then assert W."""

HLU_DELETE: BluProgram = parse_program(
    "(lambda (s0 s1) (assert (mask s0 (genmask s1)) (complement s1)))"
)
"""``(delete W)``: mask the letters W depends on, then assert not-W."""

HLU_MODIFY: BluProgram = parse_program(
    """
    (lambda (s0 s1 s2)
      (combine
        (assert (mask (assert (mask (assert s0 s1) (genmask s1))
                              (complement s1))
                      (genmask s2))
                s2)
        (assert s0 (complement s1))))
    """
)
"""``(modify W V)``: where W holds, delete W then insert V; elsewhere identity."""

IDENTITY: BluProgram = parse_program("(lambda (s0) s0)")
"""The identity program ``I``, used by ``(where W P) = (where W P I)``."""

SIMPLE_HLU_PROGRAMS: dict[str, BluProgram] = {
    "assert": HLU_ASSERT,
    "clear": HLU_CLEAR,
    "insert": HLU_INSERT,
    "delete": HLU_DELETE,
    "modify": HLU_MODIFY,
}
"""Operator name -> defining BLU program (Definition 3.1.2)."""
