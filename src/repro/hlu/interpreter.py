"""Running HLU updates against a BLU implementation (Definition 3.1.3).

``simple-HLU--I`` and ``simple-HLU--C`` are "the BLU--I and BLU--C based
implementations of simple-HLU": compile the update to its defining BLU
program, convert the user-supplied arguments into the implementation's
concrete domains, and evaluate.  Nothing else -- "all of the work was done
in the definitions of the implementations of BLU".
"""

from __future__ import annotations

from typing import Any

from repro.blu.implementation import Implementation
from repro.errors import EvaluationError
from repro.hlu.language import MaskArg, StateArg, Update

__all__ = ["convert_argument", "run_update"]


def convert_argument(implementation: Implementation, argument: StateArg | MaskArg) -> Any:
    """Map a user-level argument into the implementation's concrete domain.

    State arguments (formula sets) become clause sets / world sets; mask
    arguments (letter-name sets) become index sets / simple masks.  The
    implementation provides the conversions (``state_from_formulas`` /
    ``mask_from_names``).
    """
    if isinstance(argument, StateArg):
        converter = getattr(implementation, "state_from_formulas", None)
        if converter is None:
            raise EvaluationError(
                f"{type(implementation).__name__} cannot convert formula arguments"
            )
        return converter(argument.formulas)
    if isinstance(argument, MaskArg):
        converter = getattr(implementation, "mask_from_names", None)
        if converter is None:
            raise EvaluationError(
                f"{type(implementation).__name__} cannot convert mask arguments"
            )
        return converter(argument.names)
    raise EvaluationError(f"unknown argument kind {argument!r}")


def run_update(implementation: Implementation, state: Any, update: Update) -> Any:
    """Apply one HLU update to a state, returning the new state.

    ``state`` must already live in the implementation's S domain.
    """
    program, arguments = update.compile()
    values = [convert_argument(implementation, argument) for argument in arguments]
    return implementation.run(program, state, *values)
