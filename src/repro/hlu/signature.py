"""The algebraic signatures of simple-HLU and full HLU (Definitions 3.1.1, 3.2.1).

simple-HLU shares BLU's sorts **S** and **M** and has five operators; in
the "user's syntax" the system state is hidden, so each operator's first
(S) argument below is implicit at the surface::

    assert : S x S -> S
    clear  : S x M -> S
    insert : S x S -> S
    delete : S x S -> S
    modify : S x S x S -> S     (state, precondition, postcondition)

Full HLU adds the sort **P** of BLU programs and the two ``where``
constructs, handled by macro expansion (:mod:`repro.hlu.macros`)::

    where1 : S x P -> S
    where2 : S x P x P -> S

(Definition 3.1.1 prints ``modify : S x S -> S``, but its defining program
in 3.1.2 takes ``(s0 s1 s2)`` -- the printed arity omits the hidden state;
we record the full arity.)
"""

from __future__ import annotations

from repro.blu.syntax import Sort

__all__ = ["SIMPLE_HLU_SIGNATURE", "HLU_SIGNATURE", "PROGRAM_SORT"]

PROGRAM_SORT = "P"
"""The extra sort of full HLU: BLU programs as first-class values."""

SIMPLE_HLU_SIGNATURE: dict[str, tuple[tuple[Sort, ...], Sort]] = {
    "assert": ((Sort.S, Sort.S), Sort.S),
    "clear": ((Sort.S, Sort.M), Sort.S),
    "insert": ((Sort.S, Sort.S), Sort.S),
    "delete": ((Sort.S, Sort.S), Sort.S),
    "modify": ((Sort.S, Sort.S, Sort.S), Sort.S),
}
"""simple-HLU operators with their full (state-explicit) arities."""

HLU_SIGNATURE: dict[str, tuple[tuple[object, ...], Sort]] = {
    **SIMPLE_HLU_SIGNATURE,
    "where1": ((Sort.S, PROGRAM_SORT), Sort.S),
    "where2": ((Sort.S, PROGRAM_SORT, PROGRAM_SORT), Sort.S),
}
"""Full HLU: simple-HLU plus the two where constructs."""
