"""Parsing s-expressions into sort-checked BLU terms and programs."""

from __future__ import annotations

from repro.blu.sexpr import SExpr, read_sexpr
from repro.blu.syntax import Apply, BluProgram, Term, Variable
from repro.errors import ParseError

__all__ = ["term_from_sexpr", "parse_term", "program_from_sexpr", "parse_program"]


def term_from_sexpr(expr: SExpr) -> Term:
    """Build a sort-checked :class:`Term` from an s-expression."""
    if isinstance(expr, str):
        return Variable(expr)
    if not expr:
        raise ParseError("empty list is not a BLU term")
    head = expr[0]
    if not isinstance(head, str):
        raise ParseError(f"operator position must be an atom, got {head!r}")
    if head == "lambda":
        raise ParseError("lambda form is a program, not a term; use parse_program")
    arguments = tuple(term_from_sexpr(item) for item in expr[1:])
    return Apply(head, arguments)


def parse_term(text: str) -> Term:
    """Parse a BLU term from text.

    >>> parse_term("(assert (mask s0 (genmask s1)) s1)").sort.value
    'S'
    """
    return term_from_sexpr(read_sexpr(text))


def program_from_sexpr(expr: SExpr) -> BluProgram:
    """Build a :class:`BluProgram` from a ``(lambda <varlist> <body>)`` list."""
    if not isinstance(expr, list) or len(expr) != 3 or expr[0] != "lambda":
        raise ParseError("a BLU program must be (lambda (<vars>) <S-term>)")
    varlist = expr[1]
    if not isinstance(varlist, list) or not all(isinstance(v, str) for v in varlist):
        raise ParseError("the lambda parameter list must be a list of atoms")
    body = term_from_sexpr(expr[2])
    return BluProgram(tuple(varlist), body)


def parse_program(text: str) -> BluProgram:
    """Parse a BLU program from text.

    >>> p = parse_program("(lambda (s0 s1) (assert s0 s1))")
    >>> p.parameters
    ('s0', 's1')
    """
    return program_from_sexpr(read_sexpr(text))
