"""The clause-level ``genmask`` operator (Definition 2.3.7, Algorithm 2.3.8).

``genmask(Phi)`` computes the set of letters the clause set *semantically*
depends on -- the clause-level counterpart of ``s--mask[Dep[Mod[Phi]]]``.

The paper's algorithm tests each letter ``A`` in ``Prop[Phi]`` by
enumerating ``Ldiff[A, Phi]``: pairs of total assignments over ``Prop[Phi]``
that differ only on ``A``, looking for a pair on which the truth value of
``Phi`` differs.  Truth under a total assignment is read off via unit
resolution (``unitres``): a clause reduces to the empty clause exactly when
the assignment falsifies it, so ``Phi`` holds iff no empty clause appears.

Implementation note (deviation, documented): Algorithm 2.3.8 as printed
compares the two unit-resolution *residue sets* for inequality.  Taken
literally that test is wrong -- any clause mentioning ``A`` leaves
different satisfied-literal residues under the two assignments, so every
letter of ``Prop[Phi]`` would be declared dependent (e.g. for the
tautologous ``{A1 | ~A1}``... which the ClauseSet representation already
normalises away, but ``{A1 | A2, A1 | ~A2}`` still witnesses the bug: A2
is not dependent).  The evidently intended comparison -- and the one that
makes Theorem 2.3.9(a) true -- is of the *truth values*, i.e. whether the
residue contains the empty clause.  That is what is implemented; the
enumeration structure and complexity (Theorem 2.3.9(b)) are unchanged.
Cross-checked against brute-force ``Dep[Mod[Phi]]`` in the tests and in
bench E5.

Deciding dependence is NP-complete (Theorem 2.3.9(c)); no subexponential
shortcut exists, which is why ``genmask`` only ever takes *user-supplied*
update parameters in HLU (Section 4), never the large system state.
"""

from __future__ import annotations

import itertools
from collections.abc import Iterator

from repro.cache import core as cache
from repro.obs import core as obs
from repro.logic.clauses import ClauseSet, Literal, make_literal
from repro.logic.resolution import unit_resolve

__all__ = ["cls_assignments", "ldiff", "depends_on", "clausal_genmask"]


def cls_assignments(clause_set: ClauseSet) -> Iterator[frozenset[Literal]]:
    """``CLS[Phi]`` (Definition 2.3.7(a)): consistent total literal sets
    over ``Prop[Phi]``."""
    indices = sorted(clause_set.prop_indices)
    for signs in itertools.product((False, True), repeat=len(indices)):
        yield frozenset(
            make_literal(index, positive=sign) for index, sign in zip(indices, signs)
        )


def ldiff(clause_set: ClauseSet, index: int) -> Iterator[tuple[frozenset[Literal], frozenset[Literal]]]:
    """``Ldiff[A, Phi]`` (Definition 2.3.7(b)): pairs from ``CLS[Phi]``
    differing only in the polarity of the letter at ``index``."""
    other_indices = sorted(clause_set.prop_indices - {index})
    positive = make_literal(index, positive=True)
    negative = -positive
    for signs in itertools.product((False, True), repeat=len(other_indices)):
        shared = frozenset(
            make_literal(i, positive=sign) for i, sign in zip(other_indices, signs)
        )
        yield shared | {positive}, shared | {negative}


def _falsified(clause_set: ClauseSet, assignment: frozenset[Literal]) -> bool:
    """Is ``Phi`` false under the total assignment?  (unitres leaves an
    empty clause exactly for falsified clauses.)

    ``unitres`` is occurrence-indexed, so each of the ``2^|Prop[Phi]|``
    probes strikes only the clauses actually containing a negated literal
    instead of rescanning the whole set once per literal.
    """
    return unit_resolve(clause_set, assignment).has_empty_clause


def depends_on(clause_set: ClauseSet, index: int) -> bool:
    """Does ``Phi`` semantically depend on the letter at ``index``?

    The Ldiff enumeration of Algorithm 2.3.8 with early exit.
    """
    if index not in clause_set.prop_indices:
        return False
    obs.inc("blu.c.genmask.letters_tested")
    pairs = 0
    for with_a, without_a in ldiff(clause_set, index):
        pairs += 1
        if _falsified(clause_set, with_a) != _falsified(clause_set, without_a):
            obs.inc("blu.c.genmask.pairs_tested", pairs)
            obs.inc("blu.c.genmask.dependent_letters")
            return True
    if pairs:
        obs.inc("blu.c.genmask.pairs_tested", pairs)
    return False


def clausal_genmask(clause_set: ClauseSet) -> frozenset[int]:
    """``BLU--C[genmask]``: the letters ``Phi`` depends on, as indices.

    >>> from repro.logic import Vocabulary
    >>> vocab = Vocabulary.standard(3)
    >>> sorted(clausal_genmask(ClauseSet.from_strs(vocab, ["A1 | A2"])))
    [0, 1]

    Memoised by the opt-in kernel cache on the state's fingerprint: the
    dependence set is determined by the clause contents alone, and the
    NP-complete Ldiff enumeration is the most expensive thing a repeated
    update pipeline re-derives.
    """
    if cache._ENABLED:
        key = (clause_set.vocabulary, clause_set.fingerprint)
        hit = cache.lookup("blu.c.genmask", key)
        if hit is not cache.MISS:
            return hit
    result = frozenset(
        index for index in clause_set.prop_indices if depends_on(clause_set, index)
    )
    if cache._ENABLED:
        cache.store("blu.c.genmask", key, result)
    return result
