"""Emulations between BLU implementations (Definitions 2.3.1--2.3.2(b)).

An emulation ``e`` of implementation **B** by implementation **A** is a
pair of surjections ``e[S] : A[S] -> B[S]`` and ``e[M] : A[M] -> B[M]``
respecting every operator, e.g.::

    e[S]((A[mask] s m)) = (B[mask] e[S](s) e[M](m))

The canonical emulation ``e_CI`` of ``BLU--I`` by ``BLU--C`` maps a clause
set to its model set and a letter set to the corresponding simple mask.
Theorems 2.3.4(a), 2.3.6(a) and 2.3.9(a) assert that the clause-level
algorithms respect ``e_CI``; :meth:`Emulation.check_operator` and
:meth:`Emulation.check_term` verify this mechanically (tests and bench E10).
"""

from __future__ import annotations

from collections.abc import Callable, Mapping
from typing import Any

from repro.blu.clausal_impl import ClausalImplementation
from repro.blu.implementation import Implementation, evaluate_term
from repro.blu.instance_impl import InstanceImplementation
from repro.blu.syntax import Sort, Term, variable_sort
from repro.db.instances import WorldSet
from repro.db.masks import SimpleMask

__all__ = ["Emulation", "canonical_emulation"]


class Emulation:
    """A morphism of BLU algebras: ``low`` emulates ``high``.

    ``state_map`` / ``mask_map`` are ``e[S]`` / ``e[M]``; surjectivity is a
    mathematical side condition (witnessed for ``e_CI`` by
    :meth:`WorldSet.to_clause_set`) and is not enforced here.
    """

    def __init__(
        self,
        low: Implementation,
        high: Implementation,
        state_map: Callable[[Any], Any],
        mask_map: Callable[[Any], Any],
    ):
        self.low = low
        self.high = high
        self.state_map = state_map
        self.mask_map = mask_map

    def map_value(self, value: Any, sort: Sort) -> Any:
        """Apply the right component of ``e`` for the sort."""
        return self.state_map(value) if sort is Sort.S else self.mask_map(value)

    def check_operator(self, operator: str, *low_arguments: Any) -> bool:
        """Does ``e(op_low(args)) == op_high(e(args))`` for this instance?"""
        from repro.blu.syntax import SIGNATURE

        argument_sorts, result_sort = SIGNATURE[operator]
        method = {
            "assert": "op_assert",
            "combine": "op_combine",
            "complement": "op_complement",
            "mask": "op_mask",
            "genmask": "op_genmask",
        }[operator]
        low_result = getattr(self.low, method)(*low_arguments)
        high_arguments = [
            self.map_value(value, sort)
            for value, sort in zip(low_arguments, argument_sorts)
        ]
        high_result = getattr(self.high, method)(*high_arguments)
        return self._values_equal(
            self.map_value(low_result, result_sort), high_result, result_sort
        )

    def check_term(self, term: Term, low_environment: Mapping[str, Any]) -> bool:
        """Does evaluating ``term`` low then mapping equal mapping the
        environment then evaluating high?  (Emulations compose over whole
        terms because they respect each operator.)"""
        low_result = evaluate_term(self.low, term, low_environment)
        high_environment = {
            name: self.map_value(value, variable_sort(name))
            for name, value in low_environment.items()
        }
        high_result = evaluate_term(self.high, term, high_environment)
        return self._values_equal(
            self.map_value(low_result, term.sort), high_result, term.sort
        )

    @staticmethod
    def _values_equal(left: Any, right: Any, sort: Sort) -> bool:
        if sort is Sort.M:
            # Masks may be distinct objects denoting the same relation.
            from repro.db.masks import Mask, masks_equal

            if isinstance(left, Mask) and isinstance(right, Mask):
                return masks_equal(left, right)
        return left == right


def canonical_emulation(
    clausal: ClausalImplementation, instance: InstanceImplementation
) -> Emulation:
    """``e_CI`` (Definition 2.3.2(b)): ``Phi |-> Mod[Phi]``,
    ``P |-> s--mask[P]``."""
    if clausal.vocabulary != instance.vocabulary:
        from repro.errors import VocabularyMismatchError

        raise VocabularyMismatchError(
            "emulation requires both implementations over the same vocabulary"
        )
    vocabulary = clausal.vocabulary
    return Emulation(
        low=clausal,
        high=instance,
        state_map=WorldSet.from_clause_set,
        mask_map=lambda indices: SimpleMask(vocabulary, indices),
    )
