"""``BLU--C``: the clause-level implementation of BLU (Definition 2.3.2,
Algorithms 2.3.3 / 2.3.5 / 2.3.8).

Concrete domains:

* sort **S** = sets of clauses over ``D`` (:class:`ClauseSet`);
* sort **M** = sets of proposition letters (``frozenset`` of vocabulary
  indices).

Operators (Algorithm 2.3.3 for the Boolean trio):

* ``assert`` = clause-set union (models intersect) --
  ``Theta(Length[Phi1] + Length[Phi2])``;
* ``combine`` = pairwise disjunction ``{phi1 v phi2}`` (models union) --
  ``Theta(Length[Phi1] x Length[Phi2])``;
* ``complement`` = the distribution procedure **C**: pick one literal from
  each clause and negate it, in all ways -- ``Theta(eps^Length)`` with
  ``eps = e^(1/e)``;
* ``mask`` = per-letter resolve-then-drop (:mod:`repro.blu.clausal_mask`);
* ``genmask`` = dependency testing (:mod:`repro.blu.clausal_genmask`).

``simplify=True`` (default) applies tautology elimination and subsumption
reduction to operator outputs -- Section 4's "correctness-preserving
optimizations".  Pass ``simplify=False`` to measure the raw algorithms
(used by the complexity benchmarks E1--E5).
"""

from __future__ import annotations

from typing import Any

from repro.obs import core as obs
from repro.obs import runtime
from repro.blu.clausal_genmask import clausal_genmask
from repro.blu.clausal_mask import clausal_mask
from repro.blu.implementation import Implementation
from repro.errors import VocabularyMismatchError
from repro.logic import incremental
from repro.logic.clauses import Clause, ClauseSet, clause_is_tautologous
from repro.logic.propositions import Vocabulary

__all__ = ["ClausalImplementation", "clausal_combine", "clausal_complement"]


def clausal_combine(left: ClauseSet, right: ClauseSet, simplify: bool = True) -> ClauseSet:
    """``BLU--C[combine]`` (Algorithm 2.3.3): all pairwise disjunctions.

    The CNF of ``conj(left) | conj(right)``; tautologous products are
    dropped (they denote 1 inside a conjunction).
    """
    with runtime.timed("blu.c.combine"), obs.span(
        "blu.c.combine", left=len(left), right=len(right)
    ):
        product: set[Clause] = set()
        dropped = 0
        for clause_left in left.clauses:
            for clause_right in right.clauses:
                merged = clause_left | clause_right
                if clause_is_tautologous(merged):
                    dropped += 1
                else:
                    product.add(merged)
        if left.vocabulary == right.vocabulary:
            # Every product is a union of already-validated literals with
            # tautologies filtered above: skip the re-validating constructor.
            result = ClauseSet._trusted(left.vocabulary, frozenset(product))
        else:
            result = ClauseSet(left.vocabulary, product)
        if simplify:
            result = result.reduce()
        obs.inc("blu.c.combine.calls")
        obs.inc("blu.c.combine.products", len(left) * len(right))
        obs.inc("blu.c.combine.tautologies_dropped", dropped)
        obs.observe("blu.c.combine.clauses_out", len(result))
        return result


def clausal_complement(clause_set: ClauseSet, simplify: bool = True) -> ClauseSet:
    """``BLU--C[complement]`` (procedure **C** of Algorithm 2.3.3).

    Builds the CNF of ``~conj(Phi)`` by distribution: starting from the
    singleton ``{box}``, each clause ``gamma`` of ``Phi`` multiplies the
    accumulator by its negated literals.  Output size is the product of
    the clause lengths -- maximised, for fixed total Length, at clause
    length ``e``, giving the ``eps = e^(1/e)`` base of Theorem 2.3.4(b.iii).
    """
    with runtime.timed("blu.c.complement"), obs.span(
        "blu.c.complement", clauses_in=len(clause_set)
    ):
        accumulator: set[Clause] = {frozenset()}
        widenings = 0
        for gamma in clause_set.clauses:
            next_accumulator: set[Clause] = set()
            for delta in accumulator:
                for literal in gamma:
                    widened = delta | {-literal}
                    if not clause_is_tautologous(widened):
                        next_accumulator.add(widened)
                    widenings += 1
            accumulator = next_accumulator
        # Accumulator clauses are built from negations of validated literals
        # and tautology-checked on the way in: the trusted constructor skips
        # the per-literal re-validation.
        result = ClauseSet._trusted(clause_set.vocabulary, frozenset(accumulator))
        if simplify:
            result = result.reduce()
        obs.inc("blu.c.complement.calls")
        obs.inc("blu.c.complement.widenings", widenings)
        obs.observe("blu.c.complement.clauses_out", len(result))
        return result


class ClausalImplementation(Implementation):
    """The clause-level algebra ``BLU--C`` over a fixed vocabulary.

    >>> from repro.logic import Vocabulary
    >>> from repro.blu.parser import parse_program
    >>> vocab = Vocabulary.standard(5)
    >>> impl = ClausalImplementation(vocab)
    >>> phi = ClauseSet.from_strs(
    ...     vocab, ["~A1 | A3", "A1 | A4", "A4 | A5", "~A1 | ~A2 | ~A5"])
    >>> w = ClauseSet.from_strs(vocab, ["A1 | A2"])
    >>> insert = parse_program(
    ...     "(lambda (s0 s1) (assert (mask s0 (genmask s1)) s1))")
    >>> print(impl.run(insert, phi, w))
    {A1 | A2, A3 | A4, A4 | A5}
    """

    def __init__(self, vocabulary: Vocabulary, simplify: bool = True):
        self._vocabulary = vocabulary
        self._simplify = simplify

    @property
    def vocabulary(self) -> Vocabulary:
        """The reference schema's vocabulary."""
        return self._vocabulary

    @property
    def simplify(self) -> bool:
        """Whether operator outputs are subsumption-reduced."""
        return self._simplify

    # --- domains ---------------------------------------------------------------

    def is_state(self, value: Any) -> bool:
        return isinstance(value, ClauseSet) and value.vocabulary == self._vocabulary

    def is_mask(self, value: Any) -> bool:
        if not isinstance(value, frozenset):
            return False
        return all(
            isinstance(index, int) and 0 <= index < len(self._vocabulary)
            for index in value
        )

    def mask_of_names(self, names) -> frozenset[int]:
        """Convenience: a sort-M value from proposition names."""
        return frozenset(self._vocabulary.index_of(name) for name in names)

    # --- operators ---------------------------------------------------------------

    def op_assert(self, state: ClauseSet, other: ClauseSet) -> ClauseSet:
        """Clause-set union: ``Theta(Length1 + Length2)``."""
        self._check_state(state)
        self._check_state(other)
        with runtime.timed("blu.c.assert"), obs.span(
            "blu.c.assert", left=len(state), right=len(other)
        ):
            result = state.union(other)
            if self._simplify:
                result = result.reduce()
            obs.inc("blu.c.assert.calls")
            obs.inc("blu.c.assert.clauses_out", len(result))
            obs.observe("blu.c.state_clauses", len(result))
            if incremental._ENABLED:
                # Assert outputs feed the next operator in an update
                # sequence: keeping their lineage warm is what makes a
                # BLU program's intermediate states delta-maintained.
                incremental.touch(result)
            return result

    def op_combine(self, state: ClauseSet, other: ClauseSet) -> ClauseSet:
        self._check_state(state)
        self._check_state(other)
        return clausal_combine(state, other, simplify=self._simplify)

    def op_complement(self, state: ClauseSet) -> ClauseSet:
        self._check_state(state)
        return clausal_complement(state, simplify=self._simplify)

    def op_mask(self, state: ClauseSet, mask: frozenset[int]) -> ClauseSet:
        self._check_state(state)
        if not self.is_mask(mask):
            raise VocabularyMismatchError(
                "clause-level masks are frozensets of vocabulary indices"
            )
        with runtime.timed("blu.c.mask"), obs.span(
            "blu.c.mask", letters=len(mask), clauses_in=len(state)
        ):
            result = clausal_mask(state, mask, simplify=self._simplify)
            obs.inc("blu.c.mask.calls")
            obs.observe("blu.c.state_clauses", len(result))
            if incremental._ENABLED:
                incremental.touch(result)
            return result

    def op_genmask(self, state: ClauseSet) -> frozenset[int]:
        self._check_state(state)
        with obs.span("blu.c.genmask", clauses_in=len(state)):
            obs.inc("blu.c.genmask.calls")
            return clausal_genmask(state)

    # --- conversions from user-level update parameters ---------------------------

    def state_from_formulas(self, formulas) -> ClauseSet:
        """Sort-S value denoting ``formulas`` (HLU argument conversion)."""
        from repro.logic.cnf import formulas_to_clauses

        return formulas_to_clauses(formulas, self._vocabulary)

    def mask_from_names(self, names) -> frozenset[int]:
        """Sort-M value masking the named letters."""
        return self.mask_of_names(names)

    def _check_state(self, state: Any) -> None:
        if not self.is_state(state):
            raise VocabularyMismatchError(
                "state is not a ClauseSet over this implementation's vocabulary"
            )

    def __repr__(self) -> str:
        return (
            f"ClausalImplementation({self._vocabulary!r}, simplify={self._simplify})"
        )
