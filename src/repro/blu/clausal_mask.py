"""The clause-level ``mask`` operator (Algorithm 2.3.5).

``mask(Phi, P)`` computes, clause by clause, a representation of the state
obtained by forgetting all information about the letters in ``P``.  The
algorithm is letter-at-a-time:

    for each A in P:  Phi <- drop({A}, rclosure(Phi, {A}))

i.e. close under resolution on ``A``, then discard every clause mentioning
``A`` -- the Davis-Putnam variable-elimination step.  The ``rclosure``
step manufactures exactly the ``A``-free consequences needed so that
dropping the ``A``-clauses loses nothing *about the other letters*
(Theorem 2.3.6(a)); what is lost is precisely the information about ``A``.

The paper notes (Theorem 2.3.6(b)) the worst case is
``O(Length[Phi]^(2^|P|))`` -- masking is inherently hard (it embeds the
implied-constraint problem for views).  Intermediate subsumption reduction
(``simplify=True``, the default) is one of the "correctness-preserving
optimizations" Section 4 anticipates; it does not change the worst case.

The per-letter ``rclosure``/``drop``/``reduce`` steps are now backed by
the occurrence index and signature-filtered subsumption of
:mod:`repro.logic.resolution` / :mod:`repro.logic.clauses` -- same
outputs, but each elimination touches only the clauses mentioning the
pivot letter (counters ``logic.resolution.index_hits`` /
``logic.resolution.index_skips`` quantify the avoided scans).
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.cache import core as cache
from repro.obs import core as obs
from repro.logic.clauses import ClauseSet
from repro.logic.resolution import drop, rclosure

__all__ = ["clausal_mask"]


def clausal_mask(
    clause_set: ClauseSet, indices: Iterable[int], simplify: bool = True
) -> ClauseSet:
    """``BLU--C[mask]``: forget the letters at ``indices``.

    >>> from repro.logic import Vocabulary
    >>> vocab = Vocabulary.standard(5)
    >>> phi = ClauseSet.from_strs(
    ...     vocab, ["~A1 | A3", "A1 | A4", "A4 | A5", "~A1 | ~A2 | ~A5"])
    >>> print(clausal_mask(phi, [0, 1]))
    {A3 | A4, A4 | A5}

    The whole mask is memoised by the opt-in kernel cache on the state's
    fingerprint plus the masked-letter set and ``simplify`` flag; a hit
    skips every per-letter elimination (and their spans/counters), which
    is where repeated-update workloads spend most of their time.
    """
    letter_set = frozenset(indices)
    if cache._ENABLED:
        key = (clause_set.vocabulary, clause_set.fingerprint, letter_set, simplify)
        hit = cache.lookup("blu.c.mask", key)
        if hit is not cache.MISS:
            return hit
    current = clause_set
    for index in sorted(letter_set):
        with obs.span("blu.c.mask.eliminate", letter=index, clauses_in=len(current)):
            closed = rclosure(current, (index,))
            current = drop(closed, (index,))
            if simplify:
                current = current.reduce()
            obs.inc("blu.c.mask.letters_eliminated")
            obs.inc("blu.c.mask.clauses_retained", len(current))
    if cache._ENABLED:
        cache.store("blu.c.mask", key, current)
    return current
