"""Implementations (algebras) of the BLU signature, and the term evaluator.

Definition 2.2.1: an implementation of BLU designates concrete domains for
the sorts **S** and **M** and assigns a function of the right arity to each
of the five operator symbols.  "Running a BLU program just amounts to
binding concrete domain values to the argument list of the lambda
expression and then evaluating the term."

:class:`Implementation` is that notion as an abstract base class;
:func:`evaluate_term` / :meth:`Implementation.run` are the (eager,
environment-passing) evaluator.  The two concrete algebras are
:class:`repro.blu.instance_impl.InstanceImplementation` (``BLU--I``) and
:class:`repro.blu.clausal_impl.ClausalImplementation` (``BLU--C``).
"""

from __future__ import annotations

from collections.abc import Mapping
from typing import Any

from repro.blu.syntax import Apply, BluProgram, Sort, Term, Variable
from repro.errors import EvaluationError

__all__ = ["Implementation", "evaluate_term"]


class Implementation:
    """An algebra for the BLU signature.

    Subclasses implement the five operators plus the two domain-membership
    predicates used to validate inputs eagerly (so a mis-sorted actual
    argument fails at the call, not deep inside a term).
    """

    # --- concrete domains -----------------------------------------------------

    def is_state(self, value: Any) -> bool:
        """Does ``value`` belong to the concrete domain of sort S?"""
        raise NotImplementedError

    def is_mask(self, value: Any) -> bool:
        """Does ``value`` belong to the concrete domain of sort M?"""
        raise NotImplementedError

    # --- the five operators -----------------------------------------------------

    def op_assert(self, state: Any, other: Any) -> Any:
        """``(assert s0 s1)``: increase information."""
        raise NotImplementedError

    def op_combine(self, state: Any, other: Any) -> Any:
        """``(combine s0 s1)``: merge alternatives."""
        raise NotImplementedError

    def op_complement(self, state: Any) -> Any:
        """``(complement s0)``."""
        raise NotImplementedError

    def op_mask(self, state: Any, mask: Any) -> Any:
        """``(mask s0 m0)``: decrease information."""
        raise NotImplementedError

    def op_genmask(self, state: Any) -> Any:
        """``(genmask s0)``: the mask of everything the state depends on."""
        raise NotImplementedError

    # --- running programs ---------------------------------------------------------

    def check_sorted(self, value: Any, sort: Sort) -> None:
        """Raise :class:`EvaluationError` unless ``value`` inhabits ``sort``."""
        ok = self.is_state(value) if sort is Sort.S else self.is_mask(value)
        if not ok:
            raise EvaluationError(
                f"value {value!r} is not in the concrete domain of sort {sort.value}"
            )

    def evaluate(self, term: Term, environment: Mapping[str, Any]) -> Any:
        """Evaluate a term under a variable binding."""
        return evaluate_term(self, term, environment)

    def run(self, program: BluProgram, *arguments: Any) -> Any:
        """Bind ``arguments`` to the program's parameters and evaluate.

        The first argument is the system state bound to ``s0``
        (convention of Definition 2.1.2).
        """
        if len(arguments) != len(program.parameters):
            raise EvaluationError(
                f"program expects {len(program.parameters)} argument(s) "
                f"{program.parameters}, got {len(arguments)}"
            )
        environment = dict(zip(program.parameters, arguments))
        for name, value in environment.items():
            from repro.blu.syntax import variable_sort

            self.check_sorted(value, variable_sort(name))
        return evaluate_term(self, program.body, environment)


_OPERATOR_DISPATCH = {
    "assert": "op_assert",
    "combine": "op_combine",
    "complement": "op_complement",
    "mask": "op_mask",
    "genmask": "op_genmask",
}


def evaluate_term(
    implementation: Implementation, term: Term, environment: Mapping[str, Any]
) -> Any:
    """Eagerly evaluate ``term`` in ``implementation`` under ``environment``."""
    if isinstance(term, Variable):
        try:
            return environment[term.name]
        except KeyError:
            raise EvaluationError(f"unbound variable {term.name!r}") from None
    if isinstance(term, Apply):
        values = [
            evaluate_term(implementation, argument, environment)
            for argument in term.arguments
        ]
        method = getattr(implementation, _OPERATOR_DISPATCH[term.operator])
        return method(*values)
    raise EvaluationError(f"cannot evaluate {term!r}")
