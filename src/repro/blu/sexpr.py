"""S-expressions: the surface syntax of BLU and HLU (Section 2.1.1(c)).

The paper writes BLU terms "in a Lisp-like list formalism"; the ``where``
macros of Section 3.2 are *defined* by list surgery (quasiquote, ``cons``,
``cdr``, ``atomappend``).  To replay those definitions literally we provide
a minimal s-expression layer: atoms are Python strings, lists are Python
lists, plus a reader and a printer.

Only what the paper needs is implemented -- symbols and proper lists.
Quoted data (the state / formula arguments fed to programs) is handled at
the evaluation layer, not here.
"""

from __future__ import annotations

from repro.errors import ParseError

__all__ = ["SExpr", "read_sexpr", "read_sexprs", "write_sexpr", "sexpr_atoms"]

SExpr = str | list
"""An s-expression: an atom (``str``) or a list of s-expressions."""


def _tokenize(text: str) -> list[str]:
    tokens: list[str] = []
    i = 0
    length = len(text)
    while i < length:
        ch = text[i]
        if ch.isspace():
            i += 1
            continue
        if ch == ";":  # comment to end of line
            while i < length and text[i] != "\n":
                i += 1
            continue
        if ch in "()":
            tokens.append(ch)
            i += 1
            continue
        start = i
        while i < length and not text[i].isspace() and text[i] not in "();":
            i += 1
        tokens.append(text[start:i])
    return tokens


def _parse(tokens: list[str], position: int) -> tuple[SExpr, int]:
    if position >= len(tokens):
        raise ParseError("unexpected end of input in s-expression")
    token = tokens[position]
    if token == "(":
        items: list[SExpr] = []
        position += 1
        while position < len(tokens) and tokens[position] != ")":
            item, position = _parse(tokens, position)
            items.append(item)
        if position >= len(tokens):
            raise ParseError("missing closing parenthesis")
        return items, position + 1
    if token == ")":
        raise ParseError("unexpected closing parenthesis")
    return token, position + 1


def read_sexpr(text: str) -> SExpr:
    """Parse exactly one s-expression from ``text``.

    >>> read_sexpr("(assert s0 (complement s1))")
    ['assert', 's0', ['complement', 's1']]
    """
    tokens = _tokenize(text)
    if not tokens:
        raise ParseError("empty s-expression", text)
    expr, position = _parse(tokens, 0)
    if position != len(tokens):
        raise ParseError(f"trailing tokens after s-expression: {tokens[position:]}", text)
    return expr


def read_sexprs(text: str) -> list[SExpr]:
    """Parse a sequence of s-expressions (e.g. a file of ``define`` forms)."""
    tokens = _tokenize(text)
    exprs: list[SExpr] = []
    position = 0
    while position < len(tokens):
        expr, position = _parse(tokens, position)
        exprs.append(expr)
    return exprs


def write_sexpr(expr: SExpr) -> str:
    """Render an s-expression back to text.

    >>> write_sexpr(['mask', 's0', ['genmask', 's1']])
    '(mask s0 (genmask s1))'
    """
    if isinstance(expr, str):
        return expr
    return "(" + " ".join(write_sexpr(item) for item in expr) + ")"


def sexpr_atoms(expr: SExpr) -> list[str]:
    """All atoms in the expression, left to right (with repetitions)."""
    if isinstance(expr, str):
        return [expr]
    out: list[str] = []
    for item in expr:
        out.extend(sexpr_atoms(item))
    return out
