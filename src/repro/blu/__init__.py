"""BLU -- the Basic Language for Updates (Section 2 of the paper).

Five primitives (``assert``, ``combine``, ``complement``, ``mask``,
``genmask``) over two sorts (states and masks), with two implementations:

* :class:`InstanceImplementation` (``BLU--I``) -- exact possible-worlds
  semantics over :class:`~repro.db.instances.WorldSet`;
* :class:`ClausalImplementation` (``BLU--C``) -- resolution-based
  algorithms over :class:`~repro.logic.clauses.ClauseSet`.

The canonical emulation (:func:`canonical_emulation`) relates the two.
"""

from repro.blu.definitions import (
    SIMPLE_HLU_SOURCE,
    ProgramEnvironment,
    default_environment,
)
from repro.blu.clausal_genmask import (
    clausal_genmask,
    cls_assignments,
    depends_on,
    ldiff,
)
from repro.blu.clausal_impl import (
    ClausalImplementation,
    clausal_combine,
    clausal_complement,
)
from repro.blu.clausal_mask import clausal_mask
from repro.blu.emulation import Emulation, canonical_emulation
from repro.blu.implementation import Implementation, evaluate_term
from repro.blu.instance_impl import InstanceImplementation
from repro.blu.parser import (
    parse_program,
    parse_term,
    program_from_sexpr,
    term_from_sexpr,
)
from repro.blu.sexpr import read_sexpr, read_sexprs, sexpr_atoms, write_sexpr
from repro.blu.syntax import SIGNATURE, Apply, BluProgram, Sort, Term, Variable

__all__ = [
    "Sort",
    "SIGNATURE",
    "Term",
    "Variable",
    "Apply",
    "BluProgram",
    "read_sexpr",
    "read_sexprs",
    "write_sexpr",
    "sexpr_atoms",
    "parse_term",
    "parse_program",
    "term_from_sexpr",
    "program_from_sexpr",
    "Implementation",
    "evaluate_term",
    "InstanceImplementation",
    "ClausalImplementation",
    "clausal_combine",
    "clausal_complement",
    "clausal_mask",
    "clausal_genmask",
    "cls_assignments",
    "ldiff",
    "depends_on",
    "Emulation",
    "canonical_emulation",
    "ProgramEnvironment",
    "SIMPLE_HLU_SOURCE",
    "default_environment",
]
