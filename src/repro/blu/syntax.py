"""The algebraic signature and abstract syntax of BLU (Definitions 2.1.1--2.1.2).

BLU has two sorts -- **S** (states) and **M** (masks) -- and five operator
symbols::

    assert     : S x S -> S
    combine    : S x S -> S
    complement : S -> S
    mask       : S x M -> S
    genmask    : S -> M

Variables are sorted by their leading letter (``s...`` for S, ``m...`` for
M), matching the paper's ``Var[S] = {s0, s1, ...}`` / ``Var[M] = {m0, ...}``
convention.  Macro-generated names such as ``s1.0`` (Section 3.2) keep the
convention, so sorting by first letter remains well defined.

A :class:`BluProgram` is a lambda form ``(lambda (s0 ...) <S-term>)``
(Definition 2.1.2): the parameter list starts with the system-state
variable ``s0``, contains exactly the variables occurring in the body, and
the body is an S-term mentioning ``s0``.

Note on the ``mask`` argument order: Definition 3.1.2 consistently writes
``(mask s0 (genmask s1))`` -- state first, mask second -- which is the
order adopted here.  (The isolated term in Example 2.1.3 shows the
opposite order; we follow the operative HLU definitions.)
"""

from __future__ import annotations

from enum import Enum

from repro.errors import ArityError, SortError

__all__ = ["Sort", "SIGNATURE", "Term", "Variable", "Apply", "BluProgram", "variable_sort"]


class Sort(Enum):
    """The two BLU sorts."""

    S = "S"
    M = "M"


SIGNATURE: dict[str, tuple[tuple[Sort, ...], Sort]] = {
    "assert": ((Sort.S, Sort.S), Sort.S),
    "combine": ((Sort.S, Sort.S), Sort.S),
    "complement": ((Sort.S,), Sort.S),
    "mask": ((Sort.S, Sort.M), Sort.S),
    "genmask": ((Sort.S,), Sort.M),
}
"""Operator name -> (argument sorts, result sort), per Definition 2.1.1."""


def variable_sort(name: str) -> Sort:
    """The sort of a variable, from its leading letter."""
    if name.startswith("s"):
        return Sort.S
    if name.startswith("m"):
        return Sort.M
    raise SortError(
        f"variable {name!r} has no sort: names must start with 's' (state) "
        f"or 'm' (mask)"
    )


class Term:
    """Abstract base for BLU terms.  Immutable; equality is structural."""

    __slots__ = ()

    @property
    def sort(self) -> Sort:
        """The sort of the term."""
        raise NotImplementedError

    def variables(self) -> tuple[str, ...]:
        """Variable names occurring in the term, in first-appearance order."""
        seen: dict[str, None] = {}
        self._collect_variables(seen)
        return tuple(seen)

    def _collect_variables(self, seen: dict[str, None]) -> None:
        raise NotImplementedError

    def to_sexpr(self):
        """The term as an s-expression."""
        raise NotImplementedError

    def __str__(self) -> str:
        from repro.blu.sexpr import write_sexpr

        return write_sexpr(self.to_sexpr())

    def __repr__(self) -> str:
        return f"{type(self).__name__}({str(self)!r})"


class Variable(Term):
    """A sorted variable occurrence."""

    __slots__ = ("name", "_sort")

    def __init__(self, name: str):
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "_sort", variable_sort(name))

    def __setattr__(self, key, value):
        raise AttributeError("Variable is immutable")

    @property
    def sort(self) -> Sort:
        return self._sort

    def _collect_variables(self, seen: dict[str, None]) -> None:
        seen.setdefault(self.name, None)

    def to_sexpr(self):
        return self.name

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Variable) and other.name == self.name

    def __hash__(self) -> int:
        return hash(("Variable", self.name))


class Apply(Term):
    """An operator application, sort-checked on construction."""

    __slots__ = ("operator", "arguments", "_sort")

    def __init__(self, operator: str, arguments: tuple[Term, ...]):
        if operator not in SIGNATURE:
            raise SortError(f"unknown BLU operator {operator!r}")
        expected, result = SIGNATURE[operator]
        arguments = tuple(arguments)
        if len(arguments) != len(expected):
            raise ArityError(
                f"{operator} expects {len(expected)} argument(s), got {len(arguments)}"
            )
        for position, (argument, want) in enumerate(zip(arguments, expected)):
            if not isinstance(argument, Term):
                raise SortError(f"argument {position} of {operator} is not a Term")
            if argument.sort is not want:
                raise SortError(
                    f"argument {position} of {operator} must have sort "
                    f"{want.value}, got {argument.sort.value}"
                )
        object.__setattr__(self, "operator", operator)
        object.__setattr__(self, "arguments", arguments)
        object.__setattr__(self, "_sort", result)

    def __setattr__(self, key, value):
        raise AttributeError("Apply is immutable")

    @property
    def sort(self) -> Sort:
        return self._sort

    def _collect_variables(self, seen: dict[str, None]) -> None:
        for argument in self.arguments:
            argument._collect_variables(seen)

    def to_sexpr(self):
        return [self.operator, *(a.to_sexpr() for a in self.arguments)]

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Apply)
            and other.operator == self.operator
            and other.arguments == self.arguments
        )

    def __hash__(self) -> int:
        return hash(("Apply", self.operator, self.arguments))


class BluProgram:
    """A BLU program ``(lambda <varlist> <S-term>)`` (Definition 2.1.2).

    Invariants enforced:

    * the parameter list starts with ``s0``;
    * the parameters are distinct;
    * the parameters are exactly the variables occurring in the body
      (which therefore mentions ``s0``);
    * the body is an S-term.
    """

    __slots__ = ("_parameters", "_body")

    def __init__(self, parameters: tuple[str, ...], body: Term):
        parameters = tuple(parameters)
        if not parameters or parameters[0] != "s0":
            raise SortError("a BLU program's parameter list must start with s0")
        if len(set(parameters)) != len(parameters):
            raise SortError("duplicate parameter names")
        for name in parameters:
            variable_sort(name)  # validates the name
        if body.sort is not Sort.S:
            raise SortError("a BLU program's body must be an S-term")
        body_variables = set(body.variables())
        parameter_set = set(parameters)
        if body_variables != parameter_set:
            missing = body_variables - parameter_set
            unused = parameter_set - body_variables
            problems = []
            if missing:
                problems.append(f"free variables {sorted(missing)}")
            if unused:
                problems.append(f"unused parameters {sorted(unused)}")
            raise SortError(
                "parameter list must contain exactly the body's variables: "
                + "; ".join(problems)
            )
        self._parameters = parameters
        self._body = body

    @property
    def parameters(self) -> tuple[str, ...]:
        """The formal parameter names, ``s0`` first (the ``arglist``)."""
        return self._parameters

    @property
    def body(self) -> Term:
        """The S-term."""
        return self._body

    def to_sexpr(self):
        """The full ``(lambda ...)`` s-expression."""
        return ["lambda", list(self._parameters), self._body.to_sexpr()]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, BluProgram):
            return NotImplemented
        return self._parameters == other._parameters and self._body == other._body

    def __hash__(self) -> int:
        return hash((self._parameters, self._body))

    def __str__(self) -> str:
        from repro.blu.sexpr import write_sexpr

        return write_sexpr(self.to_sexpr())

    def __repr__(self) -> str:
        return f"BluProgram({str(self)})"
