"""Correctness-preserving optimisation of BLU terms (Section 4).

The paper's prototype "is based substantially upon the BLU definition,
although a number of correctness-preserving optimizations are employed".
This module is that layer: a sound rewrite system on BLU terms applied
before evaluation.  Every rule is justified by the Boolean-algebra /
closure-operator laws of the instance semantics (Definition 2.2.2) and is
therefore valid in *any* implementation that emulates it; the property
tests in ``tests/blu/test_optimizer.py`` verify semantic equivalence of
original and optimised terms on both implementations.

Rules (x, y arbitrary S-terms; m an M-term):

====  =======================================  ==========================
 R1   ``(assert x x)`` -> ``x``                 idempotence of meet
 R2   ``(combine x x)`` -> ``x``                idempotence of join
 R3   ``(complement (complement x))`` -> ``x``  involution
 R4   ``(assert x (complement x))``             annihilation: the empty
      -> ``(assert x (complement x))`` kept     state has no term form, so
                                                this one is *not* rewritten
 R5   ``(mask (mask x m) m)`` -> ``(mask x m)`` masking is a closure
                                                operator (idempotent)
 R6   ``(assert (assert x y) y)``               absorption of repeated
      -> ``(assert x y)``                       assertion
 R7   ``(combine (combine x y) y)``             absorption of repeated
      -> ``(combine x y)``                      combination
 R8   ``(assert (mask (assert x y) m) y)``      re-asserting y after a
      -> no rewrite                             mask is NOT redundant --
                                                documented non-rule; see
                                                the test suite
====  =======================================  ==========================

The non-rules matter as much as the rules: optimisation of update
programs is treacherous precisely because ``mask`` destroys information
(R8's pattern is the body of HLU-insert, where the final assert is
essential).  ``optimize`` is deliberately conservative: only rewrites
provable from lattice laws are applied.
"""

from __future__ import annotations

from repro.blu.syntax import Apply, BluProgram, Term, Variable

__all__ = ["optimize_term", "optimize_program", "term_size"]


def term_size(term: Term) -> int:
    """Number of nodes in the term (operators + variables)."""
    if isinstance(term, Variable):
        return 1
    assert isinstance(term, Apply)
    return 1 + sum(term_size(argument) for argument in term.arguments)


def _rewrite(term: Term) -> Term:
    """One bottom-up rewriting pass."""
    if isinstance(term, Variable):
        return term
    assert isinstance(term, Apply)
    arguments = tuple(_rewrite(argument) for argument in term.arguments)
    operator = term.operator

    # R3: (complement (complement x)) -> x
    if operator == "complement":
        inner = arguments[0]
        if isinstance(inner, Apply) and inner.operator == "complement":
            return inner.arguments[0]

    if operator in ("assert", "combine"):
        left, right = arguments
        # R1 / R2: idempotence.
        if left == right:
            return left
        # R6 / R7: (op (op x y) y) -> (op x y); also the symmetric
        # (op y (op x y)) and left-arg variants.
        if isinstance(left, Apply) and left.operator == operator and (
            right in left.arguments
        ):
            return left
        if isinstance(right, Apply) and right.operator == operator and (
            left in right.arguments
        ):
            return right

    if operator == "mask":
        state, mask = arguments
        # R5: (mask (mask x m) m) -> (mask x m)  -- closure idempotence.
        if (
            isinstance(state, Apply)
            and state.operator == "mask"
            and state.arguments[1] == mask
        ):
            return state

    return Apply(operator, arguments)


def optimize_term(term: Term) -> Term:
    """Rewrite to a fixpoint (each pass shrinks or preserves the term,
    so termination is by size)."""
    current = term
    while True:
        rewritten = _rewrite(current)
        if rewritten == current:
            return current
        current = rewritten


def optimize_program(program: BluProgram) -> BluProgram:
    """Optimise a program's body.

    The parameter list is preserved *only if* every parameter still
    occurs (Definition 2.1.2 requires the parameter list to be exactly
    the body's variables); if a rewrite eliminated a parameter's last
    occurrence the original program is returned unoptimised -- dropping a
    parameter would change the program's calling convention.
    """
    body = optimize_term(program.body)
    if set(body.variables()) != set(program.parameters):
        return program
    return BluProgram(program.parameters, body)
