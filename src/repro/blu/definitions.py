"""Named BLU programs: the paper's ``define`` convention (Section 2.1.3).

"We use the Scheme formalism ``define`` for the assignment of a program
value to a variable."  A :class:`ProgramEnvironment` is such a namespace:
it loads ``(define <name> (lambda ...))`` forms from text, so program
definitions remain inspectable data -- including the five simple-HLU
definitions of 3.1.2, shipped verbatim as :data:`SIMPLE_HLU_SOURCE`.
"""

from __future__ import annotations

from collections.abc import Iterator

from repro.blu.parser import program_from_sexpr
from repro.blu.sexpr import read_sexprs
from repro.blu.syntax import BluProgram
from repro.errors import ParseError

__all__ = ["ProgramEnvironment", "SIMPLE_HLU_SOURCE", "default_environment"]


SIMPLE_HLU_SOURCE = """
; Definition 3.1.2 -- the BLU-based semantics for simple-HLU.
; (HLU-clear's mask parameter is named m1 per the sort convention of
; 2.1.1(b); HLU-modify is the balanced reconstruction -- see
; repro/hlu/programs.py.)

(define HLU-assert
  (lambda (s0 s1) (assert s0 s1)))

(define HLU-clear
  (lambda (s0 m1) (mask s0 m1)))

(define HLU-insert
  (lambda (s0 s1)
    (assert (mask s0 (genmask s1)) s1)))

(define HLU-delete
  (lambda (s0 s1)
    (assert (mask s0 (genmask s1))
            (complement s1))))

(define HLU-modify
  (lambda (s0 s1 s2)
    (combine
      (assert (mask (assert (mask (assert s0 s1) (genmask s1))
                            (complement s1))
                    (genmask s2))
              s2)
      (assert s0 (complement s1)))))

(define I
  (lambda (s0) s0))
"""
"""The paper's simple-HLU ``define`` forms, as loadable source text."""


class ProgramEnvironment:
    """A namespace of named BLU programs.

    >>> env = default_environment()
    >>> env["HLU-insert"].parameters
    ('s0', 's1')
    """

    def __init__(self):
        self._programs: dict[str, BluProgram] = {}

    def define(self, name: str, program: BluProgram) -> None:
        """Bind ``name`` to ``program`` (rebinding is an error: the paper
        treats definitions as mathematical equations, not assignments)."""
        if name in self._programs:
            raise ParseError(f"program {name!r} is already defined")
        self._programs[name] = program

    def load(self, source: str) -> list[str]:
        """Parse a sequence of ``(define name (lambda ...))`` forms.

        Returns the names defined, in order.
        """
        defined: list[str] = []
        for expr in read_sexprs(source):
            if (
                not isinstance(expr, list)
                or len(expr) != 3
                or expr[0] != "define"
                or not isinstance(expr[1], str)
            ):
                raise ParseError(
                    "expected (define <name> (lambda ...)) forms, got "
                    f"{expr!r}"
                )
            self.define(expr[1], program_from_sexpr(expr[2]))
            defined.append(expr[1])
        return defined

    def __getitem__(self, name: str) -> BluProgram:
        try:
            return self._programs[name]
        except KeyError:
            raise ParseError(f"no program named {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._programs

    def __iter__(self) -> Iterator[str]:
        return iter(self._programs)

    def __len__(self) -> int:
        return len(self._programs)

    def names(self) -> tuple[str, ...]:
        """Defined names, in definition order."""
        return tuple(self._programs)


def default_environment() -> ProgramEnvironment:
    """An environment preloaded with the Definition 3.1.2 programs."""
    environment = ProgramEnvironment()
    environment.load(SIMPLE_HLU_SOURCE)
    return environment
