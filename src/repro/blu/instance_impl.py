"""``BLU--I``: the instance-level (possible worlds) implementation of BLU
(Definition 2.2.2).

Concrete domains:

* sort **S** = ``IDB[D]`` -- :class:`repro.db.instances.WorldSet`;
* sort **M** = ``s--mask[D]`` -- :class:`repro.db.masks.SimpleMask` (general
  :class:`~repro.db.masks.Mask` values are accepted by ``mask``, since the
  instance operator is defined for any equivalence relation, but
  ``genmask`` always produces simple masks, as in the paper).

Operators:

* ``combine`` = set union, ``assert`` = set intersection;
* ``complement`` = complement relative to ``DB[D]`` (see module note);
* ``mask`` = saturation: ``{y | exists x in X with R(x, y)}``;
* ``genmask`` = ``s--mask[Dep[X]]``.

Note on ``complement``: Definition 2.2.2 writes ``ILDB[D] \\ X``.  With the
paper's default of no integrity constraints, ``ILDB`` coincides with the
full world set, which is also what the clausal algorithm of 2.3.3
computes; constraint filtering is available separately via
:meth:`WorldSet.legal`.  This is the reading that makes the canonical
emulation (Definition 2.3.2(b)) exact, and it is the one implemented.
"""

from __future__ import annotations

from typing import Any

from repro.obs import core as obs
from repro.obs import runtime
from repro.blu.implementation import Implementation
from repro.db.instances import WorldSet
from repro.db.masks import Mask, SimpleMask
from repro.errors import VocabularyMismatchError
from repro.logic.propositions import Vocabulary

__all__ = ["InstanceImplementation"]


class InstanceImplementation(Implementation):
    """The possible-worlds algebra ``BLU--I`` over a fixed vocabulary.

    >>> from repro.logic import Vocabulary
    >>> from repro.blu.parser import parse_program
    >>> vocab = Vocabulary.standard(2)
    >>> impl = InstanceImplementation(vocab)
    >>> prog = parse_program("(lambda (s0 s1) (assert s0 s1))")
    >>> out = impl.run(prog, WorldSet.total(vocab), WorldSet.from_texts(vocab, ["A1"]))
    >>> len(out)
    2
    """

    def __init__(self, vocabulary: Vocabulary):
        self._vocabulary = vocabulary

    @property
    def vocabulary(self) -> Vocabulary:
        """The reference schema's vocabulary."""
        return self._vocabulary

    # --- domains ---------------------------------------------------------------

    def is_state(self, value: Any) -> bool:
        return isinstance(value, WorldSet) and value.vocabulary == self._vocabulary

    def is_mask(self, value: Any) -> bool:
        return isinstance(value, Mask) and value.vocabulary == self._vocabulary

    # --- operators (Definition 2.2.2(b)) -----------------------------------------

    def op_assert(self, state: WorldSet, other: WorldSet) -> WorldSet:
        """Intersection: keep the worlds common to both."""
        self._check_state(state)
        self._check_state(other)
        with runtime.timed("blu.i.assert"), obs.span(
            "blu.i.assert", left=len(state), right=len(other)
        ):
            result = state.intersection(other)
            obs.inc("blu.i.assert.calls")
            obs.observe("blu.i.state_worlds", len(result))
            return result

    def op_combine(self, state: WorldSet, other: WorldSet) -> WorldSet:
        """Union: either alternative is possible."""
        self._check_state(state)
        self._check_state(other)
        with obs.span("blu.i.combine", left=len(state), right=len(other)):
            result = state.union(other)
            obs.inc("blu.i.combine.calls")
            obs.observe("blu.i.state_worlds", len(result))
            return result

    def op_complement(self, state: WorldSet) -> WorldSet:
        """All worlds not in the state."""
        self._check_state(state)
        with obs.span("blu.i.complement", worlds_in=len(state)):
            result = state.complement()
            obs.inc("blu.i.complement.calls")
            obs.observe("blu.i.state_worlds", len(result))
            return result

    def op_mask(self, state: WorldSet, mask: Mask) -> WorldSet:
        """Saturation under the mask's equivalence relation."""
        self._check_state(state)
        if not self.is_mask(mask):
            raise VocabularyMismatchError("mask is not over this vocabulary")
        with runtime.timed("blu.i.mask"), obs.span(
            "blu.i.mask", worlds_in=len(state)
        ):
            result = mask.saturate(state)
            obs.inc("blu.i.mask.calls")
            obs.inc("blu.i.mask.worlds_added", len(result) - len(state))
            obs.observe("blu.i.state_worlds", len(result))
            return result

    def op_genmask(self, state: WorldSet) -> SimpleMask:
        """``s--mask[Dep[X]]``: the simple mask on the dependency letters."""
        self._check_state(state)
        with obs.span("blu.i.genmask", worlds_in=len(state)):
            obs.inc("blu.i.genmask.calls")
            return SimpleMask(self._vocabulary, state.dependency_indices())

    # --- conversions from user-level update parameters ---------------------------

    def state_from_formulas(self, formulas) -> WorldSet:
        """Sort-S value denoting ``Mod[formulas]`` (HLU argument conversion)."""
        return WorldSet.from_formulas(self._vocabulary, formulas)

    def mask_from_names(self, names) -> SimpleMask:
        """Sort-M value masking the named letters."""
        return SimpleMask.of_names(self._vocabulary, names)

    def _check_state(self, state: Any) -> None:
        if not self.is_state(state):
            raise VocabularyMismatchError(
                "state is not a WorldSet over this implementation's vocabulary"
            )

    def __repr__(self) -> str:
        return f"InstanceImplementation({self._vocabulary!r})"
