"""Finite, ordered propositional vocabularies (Section 1.1 of the paper).

The paper works with a propositional logic ``L = (P, C)`` where ``P`` is a
finite set of proposition names carrying an implicit order (``A1, A2, ...``).
:class:`Vocabulary` is that ``P``: an immutable, ordered collection of
distinct names, with fast name <-> index lookup.

Ordering matters because structures (worlds) are represented as bit vectors
indexed by position (see :mod:`repro.logic.structures`), and because the
paper's algorithms iterate proposition letters in a deterministic order.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Sequence

from repro.errors import VocabularyError, VocabularyMismatchError

__all__ = ["Vocabulary", "check_same_vocabulary"]

_NAME_FORBIDDEN = set("()|&~!<->= \t\n\r,'\"")


def _validate_name(name: str) -> str:
    """Return ``name`` if usable as a proposition name, else raise.

    Names must be non-empty strings free of whitespace and of the operator
    and punctuation characters used by the formula parser, so that every
    vocabulary round-trips through the textual syntax.
    """
    if not isinstance(name, str) or not name:
        raise VocabularyError(f"proposition name must be a non-empty string, got {name!r}")
    if any(ch in _NAME_FORBIDDEN for ch in name):
        raise VocabularyError(f"proposition name {name!r} contains a reserved character")
    if name[0].isdigit():
        raise VocabularyError(f"proposition name {name!r} must not start with a digit")
    return name


class Vocabulary:
    """An ordered, finite set of proposition names.

    Instances are immutable, hashable, and compare by their name sequence,
    so two vocabularies with the same names in the same order are
    interchangeable.

    >>> vocab = Vocabulary.standard(3)
    >>> list(vocab)
    ['A1', 'A2', 'A3']
    >>> vocab.index_of("A2")
    1
    """

    __slots__ = ("_names", "_index", "_hash")

    def __init__(self, names: Iterable[str]):
        names_tuple = tuple(_validate_name(n) for n in names)
        index = {name: i for i, name in enumerate(names_tuple)}
        if len(index) != len(names_tuple):
            seen: set[str] = set()
            for name in names_tuple:
                if name in seen:
                    raise VocabularyError(f"duplicate proposition name {name!r}")
                seen.add(name)
        self._names = names_tuple
        self._index = index
        self._hash = hash(names_tuple)

    @classmethod
    def standard(cls, count: int, prefix: str = "A") -> "Vocabulary":
        """The paper's standard vocabulary ``{A1, ..., An}``.

        >>> Vocabulary.standard(2).names
        ('A1', 'A2')
        """
        if count < 0:
            raise VocabularyError("vocabulary size must be non-negative")
        return cls(f"{prefix}{i}" for i in range(1, count + 1))

    @property
    def names(self) -> tuple[str, ...]:
        """The proposition names, in order."""
        return self._names

    def index_of(self, name: str) -> int:
        """The 0-based position of ``name``; raises if absent."""
        try:
            return self._index[name]
        except KeyError:
            raise VocabularyError(f"unknown proposition {name!r}") from None

    def name_of(self, index: int) -> str:
        """The name at 0-based position ``index``; raises if out of range."""
        if not 0 <= index < len(self._names):
            raise VocabularyError(f"proposition index {index} out of range 0..{len(self) - 1}")
        return self._names[index]

    def __contains__(self, name: object) -> bool:
        return name in self._index

    def __iter__(self) -> Iterator[str]:
        return iter(self._names)

    def __len__(self) -> int:
        return len(self._names)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Vocabulary):
            return NotImplemented
        return self._names == other._names

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        if len(self._names) <= 6:
            inner = ", ".join(self._names)
        else:
            inner = ", ".join(self._names[:3]) + f", ... ({len(self._names)} names)"
        return f"Vocabulary({inner})"

    def subset_indices(self, names: Iterable[str]) -> frozenset[int]:
        """Indices of the given names (each must belong to the vocabulary)."""
        return frozenset(self.index_of(n) for n in names)

    def extended(self, extra: Sequence[str]) -> "Vocabulary":
        """A new vocabulary with ``extra`` names appended (used by the
        Wilkins baseline, which mints fresh auxiliary letters per update)."""
        return Vocabulary(self._names + tuple(extra))

    def fresh_names(self, count: int, stem: str = "H") -> tuple[str, ...]:
        """``count`` names not already present, of the form ``<stem><k>``."""
        result: list[str] = []
        k = 1
        while len(result) < count:
            candidate = f"{stem}{k}"
            if candidate not in self._index:
                result.append(candidate)
            k += 1
        return tuple(result)


def check_same_vocabulary(*objects) -> Vocabulary:
    """Assert that all arguments share one vocabulary and return it.

    Each argument must expose a ``vocabulary`` attribute.  Used by every
    binary operation in the library to fail fast on cross-schema mixing.
    """
    if not objects:
        raise VocabularyMismatchError("no objects supplied")
    vocab = objects[0].vocabulary
    for obj in objects[1:]:
        if obj.vocabulary != vocab:
            raise VocabularyMismatchError(
                f"vocabulary mismatch: {vocab!r} vs {obj.vocabulary!r}"
            )
    return vocab
