"""Resolution machinery (Chang & Lee [2] in the paper's references).

Provides the primitives the clausal implementation ``BLU--C`` is built on:

* :func:`resolvent` -- ``Resolvent(phi1, phi2, A)`` of Section 1.1;
* :func:`rclosure` -- closure under resolution on a set of letters
  (Algorithm 2.3.5);
* :func:`drop` -- discard clauses mentioning given letters (Algorithm 2.3.5);
* :func:`eliminate_letter` -- one Davis-Putnam variable-elimination step,
  i.e. ``drop({A}, rclosure(Phi, {A}))``, the body of ``BLU--C[mask]``;
* :func:`unit_resolve` -- the paper's ``unitres`` (Algorithm 2.3.8);
* :func:`resolution_closure` -- full saturation (used by the
  prime-implicate engine and, on small instances, by refutation-
  completeness tests).

The fixpoints are driven by a :class:`~repro.logic.occurrence.OccurrenceIndex`
(literal -> clauses), so each pass touches only the clauses containing the
pivot literal instead of rescanning the whole working set per letter.  The
paper's Theta-bounds (2.3.4/2.3.6) and the produced clause sets are
unchanged -- the index is a correctness-preserving optimisation in the
Section 4 sense, cross-checked against the seed full-scan implementations
in ``tests/logic/test_kernel_differential.py``.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Iterable

from repro.cache import core as cache
from repro.errors import ClosureBudgetError
from repro.obs import core as obs
from repro.obs import provenance
from repro.obs import runtime
from repro.logic.clauses import (
    Clause,
    ClauseSet,
    Literal,
    clause_is_tautologous,
    clause_sort_key,
    make_literal,
)
from repro.logic.occurrence import OccurrenceIndex
from repro.logic import incremental

__all__ = [
    "resolvent",
    "rclosure",
    "drop",
    "eliminate_letter",
    "unit_resolve",
    "resolution_closure",
]


def resolvent(clause_pos: Clause, clause_neg: Clause, index: int) -> Clause | None:
    """The resolvent of two clauses on the letter at vocabulary ``index``.

    ``clause_pos`` must contain the positive literal and ``clause_neg`` the
    negative one; returns ``None`` when the resolvent does not exist or is
    tautologous (a tautologous resolvent carries no information and every
    classical treatment discards it).
    """
    positive = make_literal(index, positive=True)
    negative = -positive
    if positive not in clause_pos or negative not in clause_neg:
        return None
    merged = (clause_pos - {positive}) | (clause_neg - {negative})
    if clause_is_tautologous(merged):
        obs.inc("logic.resolution.tautologies_discarded")
        return None
    return merged


def _saturate(
    clauses: Iterable[Clause],
    pivot_indices: frozenset[int] | None,
    max_clauses: int | None = None,
    stop_on: Clause | None = None,
) -> tuple[OccurrenceIndex, int, int, int]:
    """Worklist resolution closure on the pivot letters (all letters if None).

    Every clause enters the worklist exactly once; when it is processed,
    the occurrence index serves up exactly the opposite-polarity partners
    for each of its pivot literals.  Any resolvable pair ``(C1, C2)`` is
    attempted when the later-queued of the two is processed (the earlier
    one is in the index by then), so the result is genuinely closed under
    resolution on the pivot letters -- the same fixpoint the seed's
    rescan-until-stable loops computed, without the rescans.

    Exceeding ``max_clauses`` raises :class:`ClosureBudgetError`.  When
    ``stop_on`` is given, the saturation returns early as soon as that
    exact clause is formed (it may also be an input) -- the explain
    drivers use this to stop a refutation at the empty clause instead of
    paying for the full closure.  The early exit returns a *partial*
    index, so the memoised closure wrappers never pass ``stop_on``.

    With :mod:`repro.obs.provenance` enabled, every input clause and
    every resolvent is recorded into the context recorder (rule
    ``"resolve"``, parents ``(positive, negative)``, the pivot letter
    index as the attribute); inputs are recorded in canonical order so
    ids are stable across runs.

    Returns ``(index, resolvents_formed, partner_hits, scan_skips)`` where
    ``partner_hits`` counts clauses served by index lookups and
    ``scan_skips`` counts the clauses a per-letter full scan would have
    examined but the index never touched.
    """
    occ = OccurrenceIndex(clauses)
    rec = provenance.recorder() if provenance._ENABLED else None
    if rec is not None:
        ordered_inputs = sorted(occ, key=clause_sort_key)
        for input_clause in ordered_inputs:
            rec.ensure(input_clause)
        queue: deque[Clause] = deque(ordered_inputs)
    else:
        queue = deque(occ)
    formed = 0
    hits = 0
    skips = 0
    if stop_on is not None and stop_on in occ:
        return occ, formed, hits, skips
    while queue:
        clause = queue.popleft()
        for literal in clause:
            if pivot_indices is not None and (abs(literal) - 1) not in pivot_indices:
                continue
            partners = occ.clauses_with(-literal)
            if not partners:
                skips += len(occ)
                continue
            index = abs(literal) - 1
            hits += len(partners)
            skips += len(occ) - len(partners)
            # Copy: resolvents never contain the pivot letter (both inputs
            # are tautology-free), so this bucket cannot grow mid-loop, but
            # adding resolvents mutates sibling buckets of the same dict.
            for partner in list(partners):
                if literal > 0:
                    res = resolvent(clause, partner, index)
                else:
                    res = resolvent(partner, clause, index)
                if res is not None and occ.add(res):
                    queue.append(res)
                    formed += 1
                    if rec is not None:
                        if literal > 0:
                            parents = (rec.ensure(clause), rec.ensure(partner))
                        else:
                            parents = (rec.ensure(partner), rec.ensure(clause))
                        rec.record(res, "resolve", parents, pivot=index)
                    if res == stop_on:
                        return occ, formed, hits, skips
                    if max_clauses is not None and len(occ) > max_clauses:
                        raise ClosureBudgetError(
                            f"resolution closure exceeded {max_clauses} clauses",
                            budget=max_clauses,
                            formed=formed,
                        )
    return occ, formed, hits, skips


def rclosure(clause_set: ClauseSet, indices: Iterable[int]) -> ClauseSet:
    """Close ``clause_set`` under resolution on the given letters.

    Faithful to Algorithm 2.3.5's ``rclosure``: the result contains every
    (non-tautologous) resolvent derivable by resolving on the listed
    letters, including resolvents of resolvents, until a fixpoint.  Driven
    by the occurrence index rather than the seed's per-letter rescan of
    the whole working set.

    Memoised by the opt-in kernel cache (``repro.cache``) on the clause
    set's content fingerprint plus the pivot set: the closure is a pure
    function of immutable inputs, so a hit skips the saturation (and its
    work counters) entirely.  With incremental maintenance enabled
    (:mod:`repro.logic.incremental`), the closure is served from a
    delta-maintained track instead of re-saturating; the routed path
    validates against and feeds the same memo-cache keys.
    """
    pivot_indices = frozenset(indices)
    if incremental._ENABLED:
        routed = incremental.route_rclosure(clause_set, pivot_indices)
        if routed is not None:
            return routed
    if cache._ENABLED:
        key = (clause_set.vocabulary, clause_set.fingerprint, pivot_indices)
        hit = cache.lookup("logic.rclosure", key)
        if hit is not cache.MISS:
            return hit
    with runtime.timed("logic.rclosure"), obs.span(
        "logic.rclosure", pivots=len(pivot_indices), clauses_in=len(clause_set)
    ) as current:
        occ, formed, hits, skips = _saturate(clause_set.clauses, pivot_indices)
        if formed:
            obs.inc("logic.resolution.resolvents_formed", formed)
            runtime.count("logic.resolvents_formed", formed)
        if hits:
            obs.inc("logic.resolution.index_hits", hits)
        if skips:
            obs.inc("logic.resolution.index_skips", skips)
        current.set(clauses_out=len(occ), resolvents_formed=formed)
        result = ClauseSet._trusted(clause_set.vocabulary, frozenset(occ))
    if cache._ENABLED:
        cache.store("logic.rclosure", key, result)
    return result


def drop(clause_set: ClauseSet, indices: Iterable[int]) -> ClauseSet:
    """Algorithm 2.3.5's ``drop``: discard clauses mentioning any listed letter."""
    return clause_set.without_letters(indices)


def eliminate_letter(clause_set: ClauseSet, index: int) -> ClauseSet:
    """One variable-elimination step: resolve on the letter, then drop it.

    This computes the clausal representation of ``exists A . Phi`` -- the
    logically strongest consequence of ``Phi`` not mentioning ``A`` -- and
    is the per-letter body of ``BLU--C[mask]`` (Algorithm 2.3.5).  The
    result is subsumption-reduced, a correctness-preserving optimisation
    the paper anticipates in Section 4.
    """
    with obs.span("logic.eliminate_letter", letter=index, clauses_in=len(clause_set)):
        closed = rclosure(clause_set, (index,))
        result = drop(closed, (index,)).reduce()
        obs.inc("logic.resolution.letters_eliminated")
        obs.inc("logic.resolution.clauses_retained", len(result))
        obs.observe("logic.resolution.retained_per_eliminate", len(result))
        return result


def unit_resolve(clause_set: ClauseSet, literals: Iterable[Literal]) -> ClauseSet:
    """The paper's ``unitres`` (Algorithm 2.3.8), literally.

    For each literal ``l`` in ``literals``, every occurrence of ``~l`` is
    struck from every clause.  Note this does *not* delete satisfied
    clauses; with a total assignment, a clause reduces to the empty clause
    exactly when the assignment falsifies it.

    The occurrence index locates the clauses containing ``~l`` directly;
    the seed scanned the whole working set once per literal.

    With :mod:`repro.obs.provenance` enabled, each given literal is
    recorded as a ``"given"`` unit clause and every strike as a
    ``"resolve"`` step against that unit (striking ``~l`` from ``C`` *is*
    resolving ``C`` with ``{l}`` on ``l``'s letter).
    """
    literal_list = list(literals)
    if not literal_list:
        return clause_set
    occ = OccurrenceIndex(clause_set.clauses)
    rec = provenance.recorder() if provenance._ENABLED else None
    struck = 0
    hits = 0
    skips = 0
    for literal in literal_list:
        negated = -literal
        unit_id = rec.record(frozenset((literal,)), "given") if rec is not None else 0
        affected = sorted(occ.clauses_with(negated), key=clause_sort_key) if (
            rec is not None
        ) else list(occ.clauses_with(negated))
        hits += len(affected)
        skips += len(occ) - len(affected)
        for clause in affected:
            occ.discard(clause)
            reduced = clause - {negated}
            if not occ.add(reduced):
                # Two distinct clauses collapsed to the same reduced
                # clause (or it was already present): nothing new was
                # added, so neither the strike counter nor provenance
                # should claim a fresh derivation.
                continue
            struck += 1
            if rec is not None:
                source_id = rec.ensure(clause)
                if literal > 0:
                    rec.record(reduced, "resolve", (unit_id, source_id),
                               pivot=literal - 1)
                else:
                    rec.record(reduced, "resolve", (source_id, unit_id),
                               pivot=-literal - 1)
    if struck:
        obs.inc("logic.resolution.literals_struck", struck)
    if hits:
        obs.inc("logic.resolution.index_hits", hits)
    if skips:
        obs.inc("logic.resolution.index_skips", skips)
    return ClauseSet._trusted(clause_set.vocabulary, frozenset(occ))


def resolution_closure(clause_set: ClauseSet, max_clauses: int = 100_000) -> ClauseSet:
    """Saturate under resolution on *every* letter (total resolution).

    The basis of the prime-implicate engine; guarded by ``max_clauses``
    since saturation is exponential -- exceeding the budget raises
    :class:`repro.errors.ClosureBudgetError` (a :class:`MemoryError`
    subclass, for callers that treated the budget as an out-of-memory
    condition).  Memoised by the opt-in kernel cache on the clause set's
    fingerprint plus ``max_clauses`` (a run that raises is never stored).
    With incremental maintenance enabled the closure is served from a
    delta-maintained track with the same budget semantics.
    """
    if incremental._ENABLED:
        routed = incremental.route_resolution_closure(clause_set, max_clauses)
        if routed is not None:
            return routed
    if cache._ENABLED:
        key = (clause_set.vocabulary, clause_set.fingerprint, max_clauses)
        hit = cache.lookup("logic.resolution_closure", key)
        if hit is not cache.MISS:
            return hit
    occ, formed, hits, skips = _saturate(
        clause_set.clauses, None, max_clauses=max_clauses
    )
    if formed:
        obs.inc("logic.resolution.resolvents_formed", formed)
        runtime.count("logic.resolvents_formed", formed)
    if hits:
        obs.inc("logic.resolution.index_hits", hits)
    if skips:
        obs.inc("logic.resolution.index_skips", skips)
    result = ClauseSet._trusted(clause_set.vocabulary, frozenset(occ))
    if cache._ENABLED:
        cache.store("logic.resolution_closure", key, result)
    return result
