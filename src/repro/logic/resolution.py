"""Resolution machinery (Chang & Lee [2] in the paper's references).

Provides the primitives the clausal implementation ``BLU--C`` is built on:

* :func:`resolvent` -- ``Resolvent(phi1, phi2, A)`` of Section 1.1;
* :func:`rclosure` -- closure under resolution on a set of letters
  (Algorithm 2.3.5);
* :func:`drop` -- discard clauses mentioning given letters (Algorithm 2.3.5);
* :func:`eliminate_letter` -- one Davis-Putnam variable-elimination step,
  i.e. ``drop({A}, rclosure(Phi, {A}))``, the body of ``BLU--C[mask]``;
* :func:`unit_resolve` -- the paper's ``unitres`` (Algorithm 2.3.8);
* :func:`resolution_closure` -- full saturation (used in tests to check
  refutation completeness on small instances).
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.obs import core as obs
from repro.logic.clauses import (
    Clause,
    ClauseSet,
    Literal,
    clause_is_tautologous,
    clause_props,
    make_literal,
)

__all__ = [
    "resolvent",
    "rclosure",
    "drop",
    "eliminate_letter",
    "unit_resolve",
    "resolution_closure",
]


def resolvent(clause_pos: Clause, clause_neg: Clause, index: int) -> Clause | None:
    """The resolvent of two clauses on the letter at vocabulary ``index``.

    ``clause_pos`` must contain the positive literal and ``clause_neg`` the
    negative one; returns ``None`` when the resolvent does not exist or is
    tautologous (a tautologous resolvent carries no information and every
    classical treatment discards it).
    """
    positive = make_literal(index, positive=True)
    negative = -positive
    if positive not in clause_pos or negative not in clause_neg:
        return None
    merged = (clause_pos - {positive}) | (clause_neg - {negative})
    if clause_is_tautologous(merged):
        obs.inc("logic.resolution.tautologies_discarded")
        return None
    return merged


def rclosure(clause_set: ClauseSet, indices: Iterable[int]) -> ClauseSet:
    """Close ``clause_set`` under resolution on the given letters.

    Faithful to Algorithm 2.3.5's ``rclosure``: for each letter ``A`` in
    turn, add every (non-tautologous) resolvent of an ``A``-positive and an
    ``A``-negative clause.  Later letters see resolvents produced by earlier
    ones, and the loop re-runs until a fixpoint is reached so that the
    result is genuinely closed under resolution on *all* listed letters.
    """
    index_list = sorted(set(indices))
    current: set[Clause] = set(clause_set.clauses)
    formed = 0
    changed = True
    while changed:
        changed = False
        for index in index_list:
            positive_literal = make_literal(index, positive=True)
            negative_literal = -positive_literal
            with_pos = [c for c in current if positive_literal in c]
            with_neg = [c for c in current if negative_literal in c]
            for clause_pos in with_pos:
                for clause_neg in with_neg:
                    res = resolvent(clause_pos, clause_neg, index)
                    if res is not None and res not in current:
                        current.add(res)
                        formed += 1
                        changed = True
    if formed:
        obs.inc("logic.resolution.resolvents_formed", formed)
    return ClauseSet(clause_set.vocabulary, current)


def drop(clause_set: ClauseSet, indices: Iterable[int]) -> ClauseSet:
    """Algorithm 2.3.5's ``drop``: discard clauses mentioning any listed letter."""
    return clause_set.without_letters(indices)


def eliminate_letter(clause_set: ClauseSet, index: int) -> ClauseSet:
    """One variable-elimination step: resolve on the letter, then drop it.

    This computes the clausal representation of ``exists A . Phi`` -- the
    logically strongest consequence of ``Phi`` not mentioning ``A`` -- and
    is the per-letter body of ``BLU--C[mask]`` (Algorithm 2.3.5).  The
    result is subsumption-reduced, a correctness-preserving optimisation
    the paper anticipates in Section 4.
    """
    with obs.span("logic.eliminate_letter", letter=index, clauses_in=len(clause_set)):
        closed = rclosure(clause_set, (index,))
        result = drop(closed, (index,)).reduce()
        obs.inc("logic.resolution.letters_eliminated")
        obs.inc("logic.resolution.clauses_retained", len(result))
        obs.observe("logic.resolution.retained_per_eliminate", len(result))
        return result


def unit_resolve(clause_set: ClauseSet, literals: Iterable[Literal]) -> ClauseSet:
    """The paper's ``unitres`` (Algorithm 2.3.8), literally.

    For each literal ``l`` in ``literals``, every occurrence of ``~l`` is
    struck from every clause.  Note this does *not* delete satisfied
    clauses; with a total assignment, a clause reduces to the empty clause
    exactly when the assignment falsifies it.
    """
    literal_list = list(literals)
    clauses: set[Clause] = set(clause_set.clauses)
    struck = 0
    for literal in literal_list:
        negated = -literal
        updated: set[Clause] = set()
        for clause in clauses:
            if negated in clause:
                updated.add(clause - {negated})
                struck += 1
            else:
                updated.add(clause)
        clauses = updated
    if struck:
        obs.inc("logic.resolution.literals_struck", struck)
    return ClauseSet(clause_set.vocabulary, clauses)


def resolution_closure(clause_set: ClauseSet, max_clauses: int = 100_000) -> ClauseSet:
    """Saturate under resolution on *every* letter (total resolution).

    Used only for testing (e.g. refutation-completeness checks); guarded by
    ``max_clauses`` since saturation is exponential.
    """
    indices = sorted(clause_set.prop_indices)
    current: set[Clause] = set(clause_set.clauses)
    formed = 0
    changed = True
    while changed:
        changed = False
        snapshot = list(current)
        for index in indices:
            positive_literal = make_literal(index, positive=True)
            with_pos = [c for c in snapshot if positive_literal in c]
            with_neg = [c for c in snapshot if -positive_literal in c]
            for clause_pos in with_pos:
                for clause_neg in with_neg:
                    res = resolvent(clause_pos, clause_neg, index)
                    if res is not None and res not in current:
                        current.add(res)
                        formed += 1
                        changed = True
                        if len(current) > max_clauses:
                            raise MemoryError(
                                f"resolution closure exceeded {max_clauses} clauses"
                            )
        snapshot = list(current)
    if formed:
        obs.inc("logic.resolution.resolvents_formed", formed)
    return ClauseSet(clause_set.vocabulary, current)
