"""Literals, clauses, and clause sets -- ``Lit[L]`` and ``CF[D]``.

Representation choices (performance-critical: the clausal implementation
``BLU--C`` manipulates nothing else):

* a **literal** is a non-zero ``int``: ``+(i+1)`` for the letter at
  vocabulary index ``i``, ``-(i+1)`` for its negation (DIMACS style);
* a **clause** is a ``frozenset`` of literals (the paper's clauses are sets
  of *distinct* literals -- length counts distinct literals);
* a **clause set** (:class:`ClauseSet`) pairs a vocabulary with a frozenset
  of clauses.

Distinguished elements (Section 1.1): the empty clause (``frozenset()``) is
the always-false 0 / box; a *tautologous* clause (containing ``l`` and
``-l``) is the always-true 1.  :class:`ClauseSet` normalises tautologous
clauses away on construction, so the always-true clause set is the empty
set of clauses and an always-false one contains the empty clause.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

from repro.cache import core as cache
from repro.errors import InconsistentLiteralsError, ParseError, VocabularyError
from repro.logic.formula import Formula, Not, Var
from repro.logic.propositions import Vocabulary
from repro.obs import core as obs

__all__ = [
    "Literal",
    "Clause",
    "EMPTY_CLAUSE",
    "make_literal",
    "literal_index",
    "literal_is_positive",
    "negate_literal",
    "literal_from_str",
    "literal_to_str",
    "literal_to_formula",
    "clause_of",
    "clause_props",
    "clause_signature",
    "clause_is_tautologous",
    "clause_sort_key",
    "clause_to_str",
    "clause_to_formula",
    "clause_satisfied_by",
    "literals_consistent",
    "literals_to_world_constraint",
    "ClauseSet",
]

Literal = int
"""Type alias: a literal is a non-zero ``int`` (sign = polarity)."""

Clause = frozenset[int]
"""Type alias: a clause is a frozenset of literals."""

EMPTY_CLAUSE: Clause = frozenset()
"""The empty clause (the paper's box / 0): satisfied by no world."""

#: Routing hook installed by :func:`repro.logic.incremental.enable_incremental`
#: (and removed on disable).  Late-bound so this module never imports the
#: incremental engine -- the same one-global-load discipline as the cache
#: and obs flags.  When set, :meth:`ClauseSet.reduce` offers the call to
#: the maintained subsumption-minimal tracks first.
_INCREMENTAL_REDUCE = None


# --------------------------------------------------------------------------
# literals
# --------------------------------------------------------------------------

def make_literal(index: int, positive: bool = True) -> Literal:
    """Literal for the letter at 0-based vocabulary ``index``."""
    if index < 0:
        raise VocabularyError(f"negative proposition index {index}")
    return index + 1 if positive else -(index + 1)


def literal_index(literal: Literal) -> int:
    """0-based vocabulary index of the literal's letter."""
    return abs(literal) - 1


def literal_is_positive(literal: Literal) -> bool:
    """True for ``A``, false for ``~A``."""
    return literal > 0


def negate_literal(literal: Literal) -> Literal:
    """``A`` <-> ``~A``."""
    return -literal


def literal_from_str(vocabulary: Vocabulary, text: str) -> Literal:
    """Parse ``"A3"`` or ``"~A3"`` (also ``"!A3"``) into a literal."""
    stripped = text.strip()
    positive = True
    while stripped[:1] in ("~", "!"):
        positive = not positive
        stripped = stripped[1:].strip()
    if not stripped:
        raise ParseError(f"no proposition name in literal {text!r}", text)
    return make_literal(vocabulary.index_of(stripped), positive)


def literal_to_str(vocabulary: Vocabulary, literal: Literal) -> str:
    """Render a literal with its proposition name."""
    name = vocabulary.name_of(literal_index(literal))
    return name if literal > 0 else f"~{name}"


def literal_to_formula(vocabulary: Vocabulary, literal: Literal) -> Formula:
    """The literal as a :class:`Formula` (``Var`` or ``Not(Var)``)."""
    variable = Var(vocabulary.name_of(literal_index(literal)))
    return variable if literal > 0 else Not(variable)


def literals_consistent(literals: Iterable[Literal]) -> bool:
    """A literal set is consistent iff it never contains both ``l`` and ``-l``."""
    seen = set(literals)
    return all(-literal not in seen for literal in seen)


def literals_to_world_constraint(literals: Iterable[Literal]) -> tuple[int, int]:
    """Compile a consistent literal set to ``(care_mask, value_mask)`` bits.

    A world ``w`` satisfies the set iff ``w & care_mask == value_mask``.
    Raises :class:`InconsistentLiteralsError` on ``{A, ~A}``.
    """
    care = 0
    value = 0
    for literal in literals:
        bit = 1 << literal_index(literal)
        if care & bit:
            expected = bool(value & bit)
            if expected != (literal > 0):
                raise InconsistentLiteralsError(
                    "literal set contains a complementary pair"
                )
            continue
        care |= bit
        if literal > 0:
            value |= bit
    return care, value


# --------------------------------------------------------------------------
# clauses
# --------------------------------------------------------------------------

def clause_of(literals: Iterable[Literal]) -> Clause:
    """Build a clause from literals (a plain frozenset)."""
    return frozenset(literals)


def clause_props(clause: Clause) -> frozenset[int]:
    """Vocabulary indices of the letters occurring in the clause."""
    return frozenset(literal_index(literal) for literal in clause)


def clause_signature(clause: Clause) -> int:
    """Letter bitmask of the clause: bit ``i`` set iff letter ``i`` occurs.

    A cheap necessary condition for subsumption: ``c1 <= c2`` implies
    ``clause_signature(c1) & clause_signature(c2) == clause_signature(c1)``,
    so the (frozenset) subset test only needs to run on signature-compatible
    pairs.  Ignores polarity -- it is a filter, not a decision procedure.
    """
    signature = 0
    for literal in clause:
        signature |= 1 << (abs(literal) - 1)
    return signature


def clause_is_tautologous(clause: Clause) -> bool:
    """True iff the clause contains a complementary literal pair (the 1)."""
    return any(-literal in clause for literal in clause)


def clause_sort_key(clause: Clause) -> tuple[tuple[int, bool], ...]:
    """A canonical total order on clauses: sorted ``(letter index, negated)``
    pairs.  Distinct clauses always get distinct keys (the pairs determine
    the literals), so sorting by this key is deterministic across runs and
    hash seeds -- the order every rendered clause listing (``__str__``,
    explain output, audit records, session dumps) uses.  Numeric, not
    lexicographic: ``A2`` sorts before ``A10``.
    """
    return tuple(sorted((literal_index(lit), lit < 0) for lit in clause))


def clause_to_str(vocabulary: Vocabulary, clause: Clause) -> str:
    """Render a clause, e.g. ``"A1 | ~A2"``; the empty clause prints as 0."""
    if not clause:
        return "0"
    ordered = sorted(clause, key=lambda lit: (literal_index(lit), lit < 0))
    return " | ".join(literal_to_str(vocabulary, lit) for lit in ordered)


def clause_to_formula(vocabulary: Vocabulary, clause: Clause) -> Formula:
    """The clause as a disjunction :class:`Formula`."""
    from repro.logic.formula import disj

    ordered = sorted(clause, key=lambda lit: (literal_index(lit), lit < 0))
    return disj(literal_to_formula(vocabulary, lit) for lit in ordered)


def clause_satisfied_by(clause: Clause, world: int) -> bool:
    """Does the bit-packed ``world`` satisfy the clause?"""
    for literal in clause:
        bit = world >> (abs(literal) - 1) & 1
        if (literal > 0) == bool(bit):
            return True
    return False


# --------------------------------------------------------------------------
# clause sets
# --------------------------------------------------------------------------

def _check_clause_literals(clause: Clause, max_index: int, vocab_size: int) -> None:
    for literal in clause:
        if literal == 0:
            raise VocabularyError("0 is not a valid literal")
        if literal_index(literal) > max_index:
            raise VocabularyError(
                f"literal {literal} exceeds vocabulary size {vocab_size}"
            )


class ClauseSet:
    """A finite set of clauses over a vocabulary -- an element of ``CF[D]``.

    Immutable and hashable.  Tautologous clauses are removed on
    construction (they denote 1 and are redundant in a conjunction), which
    keeps the distinguished representations canonical:

    * the always-true clause set is ``ClauseSet.tautology(vocab)`` (no
      clauses);
    * any clause set containing the empty clause is unsatisfiable.

    >>> vocab = Vocabulary.standard(3)
    >>> cs = ClauseSet.from_strs(vocab, ["A1 | ~A2", "A3"])
    >>> cs.length
    3
    """

    __slots__ = ("_vocabulary", "_clauses", "_hash", "_sigs", "_fp")

    def __init__(self, vocabulary: Vocabulary, clauses: Iterable[Clause]):
        max_index = len(vocabulary) - 1
        kept: set[Clause] = set()
        for clause in clauses:
            clause = frozenset(clause)
            _check_clause_literals(clause, max_index, len(vocabulary))
            if not clause_is_tautologous(clause):
                kept.add(clause)
        self._vocabulary = vocabulary
        self._clauses = frozenset(kept)
        self._hash = hash((vocabulary, self._clauses))
        self._sigs = None
        self._fp = None

    # --- constructors -------------------------------------------------------

    @classmethod
    def _trusted(cls, vocabulary: Vocabulary, clauses: frozenset[Clause]) -> "ClauseSet":
        """Build a ClauseSet from already-validated clauses, skipping checks.

        Private fast path for operations whose outputs are made purely of
        (subsets/unions of) clauses drawn from existing ClauseSets:
        ``reduce``, ``union``, ``without_letters`` and the resolution
        kernels.  Callers must guarantee every clause is a frozenset of
        in-vocabulary literals with no complementary pair -- the public
        constructor re-validates everything and was a measurable cost on
        every intermediate clause set of the fixpoint kernels.
        """
        self = object.__new__(cls)
        self._vocabulary = vocabulary
        self._clauses = clauses
        self._hash = hash((vocabulary, clauses))
        self._sigs = None
        self._fp = None
        return self

    @classmethod
    def tautology(cls, vocabulary: Vocabulary) -> "ClauseSet":
        """The empty clause set: true in every world."""
        return cls(vocabulary, ())

    @classmethod
    def contradiction(cls, vocabulary: Vocabulary) -> "ClauseSet":
        """``{box}``: true in no world."""
        return cls(vocabulary, (EMPTY_CLAUSE,))

    @classmethod
    def from_strs(cls, vocabulary: Vocabulary, clause_texts: Iterable[str]) -> "ClauseSet":
        """Parse clause strings such as ``"A1 | ~A2"`` (literals joined by |).

        Each string must be a flat disjunction of literals; for arbitrary
        formulas use :func:`repro.logic.cnf.formula_to_clauses`.
        """
        clauses: list[Clause] = []
        for text in clause_texts:
            stripped = text.strip()
            if stripped in ("0", "[]"):
                clauses.append(EMPTY_CLAUSE)
                continue
            parts = [p for p in stripped.replace("\\/", "|").split("|")]
            clauses.append(
                frozenset(literal_from_str(vocabulary, part) for part in parts)
            )
        return cls(vocabulary, clauses)

    @classmethod
    def from_literal_set(cls, vocabulary: Vocabulary, literals: Iterable[Literal]) -> "ClauseSet":
        """The clause set ``{{l} : l in literals}`` (a conjunction of units)."""
        return cls(vocabulary, (frozenset((lit,)) for lit in literals))

    # --- accessors ----------------------------------------------------------

    @property
    def vocabulary(self) -> Vocabulary:
        """The vocabulary the clause set is defined over."""
        return self._vocabulary

    @property
    def clauses(self) -> frozenset[Clause]:
        """The underlying frozenset of clauses."""
        return self._clauses

    @property
    def length(self) -> int:
        """``Length[Phi]``: total number of distinct literals over all clauses."""
        return sum(len(clause) for clause in self._clauses)

    @property
    def prop_indices(self) -> frozenset[int]:
        """Vocabulary indices of all letters occurring in some clause."""
        out: set[int] = set()
        for clause in self._clauses:
            for literal in clause:
                out.add(literal_index(literal))
        return frozenset(out)

    @property
    def prop_names(self) -> frozenset[str]:
        """``Prop[Phi]``: names of all letters occurring in some clause."""
        return frozenset(self._vocabulary.name_of(i) for i in self.prop_indices)

    @property
    def has_empty_clause(self) -> bool:
        """True iff the set contains the (unsatisfiable) empty clause."""
        return EMPTY_CLAUSE in self._clauses

    def __len__(self) -> int:
        return len(self._clauses)

    def __iter__(self) -> Iterator[Clause]:
        return iter(self._clauses)

    def __contains__(self, clause: object) -> bool:
        return clause in self._clauses

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ClauseSet):
            return NotImplemented
        return self._vocabulary == other._vocabulary and self._clauses == other._clauses

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        return f"ClauseSet({self})"

    def __str__(self) -> str:
        if not self._clauses:
            return "{1}"
        return "{" + ", ".join(
            clause_to_str(self._vocabulary, c) for c in self.sorted_clauses()
        ) + "}"

    # --- operations ---------------------------------------------------------

    @property
    def signatures(self) -> dict[Clause, int]:
        """Per-clause letter-bitmask signatures (lazily computed, cached)."""
        if self._sigs is None:
            self._sigs = {c: clause_signature(c) for c in self._clauses}
        return self._sigs

    @property
    def fingerprint(self) -> tuple[int, int, bytes]:
        """Canonical content fingerprint: ``(count, signature mask, digest)``.

        Computed lazily and cached on the (immutable) instance; see
        :mod:`repro.cache.fingerprint`.  Two clause sets have equal
        fingerprints iff they hold the same clauses (up to the 128-bit
        digest's collision bound), regardless of construction order.
        The kernel memo-cache keys on ``(vocabulary, fingerprint, ...)``.
        """
        if self._fp is None:
            from repro.cache.fingerprint import clause_set_fingerprint

            self._fp = clause_set_fingerprint(self)
        return self._fp

    def union(self, other: "ClauseSet") -> "ClauseSet":
        """Set union of the clauses (conjunction of the theories)."""
        self._check_vocabulary(other)
        return ClauseSet._trusted(self._vocabulary, self._clauses | other._clauses)

    def with_clause(self, clause: Clause) -> "ClauseSet":
        """This clause set plus one extra clause."""
        clause = frozenset(clause)
        _check_clause_literals(clause, len(self._vocabulary) - 1, len(self._vocabulary))
        if clause_is_tautologous(clause) or clause in self._clauses:
            return self
        return ClauseSet._trusted(self._vocabulary, self._clauses | {clause})

    def without_letters(self, indices: Iterable[int]) -> "ClauseSet":
        """Clauses that do not mention any of the given letters (``drop``).

        Raises :class:`VocabularyError` on a negative or out-of-range
        letter index: a negative index used to surface as a bare
        ``ValueError`` from the mask shift and an overlarge one silently
        matched nothing, both of which hid caller bugs.
        """
        forbidden_mask = 0
        size = len(self._vocabulary)
        for index in indices:
            if not 0 <= index < size:
                raise VocabularyError(
                    f"letter index {index} is outside the vocabulary "
                    f"(size {size})"
                )
            forbidden_mask |= 1 << index
        sigs = self.signatures
        return ClauseSet._trusted(
            self._vocabulary,
            frozenset(c for c in self._clauses if not (sigs[c] & forbidden_mask)),
        )

    def satisfied_by(self, world: int) -> bool:
        """Does ``world`` (bit-packed) satisfy every clause?"""
        return all(clause_satisfied_by(clause, world) for clause in self._clauses)

    def reduce(self) -> "ClauseSet":
        """Remove subsumed clauses (keep only subset-minimal ones).

        The paper's algorithms are stated modulo logical equivalence; this
        is the standard tidy-up that keeps intermediate results small.
        The subset test ``kept <= clause`` is only attempted on pairs whose
        letter-bitmask signatures are compatible (``sig(kept)`` a submask
        of ``sig(clause)``), which prunes the quadratic pair scan to the
        few genuinely comparable clauses.

        Memoised by the opt-in kernel cache (``repro.cache``) on the
        clause set's content fingerprint: reduce is a pure function of
        an immutable input, so a hit returns the previously computed
        (immutable) result unchanged.  With incremental maintenance
        enabled (:mod:`repro.logic.incremental`), the call is served
        from a maintained subsumption-minimal track instead, which
        handles its own cache validation and storage.
        """
        if _INCREMENTAL_REDUCE is not None:
            routed = _INCREMENTAL_REDUCE(self)
            if routed is not None:
                return routed
        if cache._ENABLED:
            key = (self._vocabulary, self.fingerprint)
            hit = cache.lookup("logic.reduce", key)
            if hit is not cache.MISS:
                return hit
        result = self._reduce_uncached()
        if cache._ENABLED:
            cache.store("logic.reduce", key, result)
        return result

    def _reduce_uncached(self) -> "ClauseSet":
        with obs.span("logic.reduce", clauses_in=len(self._clauses)) as current:
            sigs = self.signatures
            by_size = sorted(self._clauses, key=len)
            kept: list[Clause] = []
            kept_sigs: list[int] = []
            subset_tests = 0
            sig_skips = 0
            for clause in by_size:
                signature = sigs[clause]
                subsumed = False
                for kept_clause, kept_sig in zip(kept, kept_sigs):
                    if kept_sig & signature != kept_sig:
                        sig_skips += 1
                        continue
                    subset_tests += 1
                    if kept_clause <= clause:
                        subsumed = True
                        break
                if not subsumed:
                    kept.append(clause)
                    kept_sigs.append(signature)
            if subset_tests:
                obs.inc("logic.reduce.subset_tests", subset_tests)
            if sig_skips:
                obs.inc("logic.reduce.sig_skips", sig_skips)
            current.set(clauses_out=len(kept), subset_tests=subset_tests)
            if len(kept) == len(self._clauses):
                return self
            return ClauseSet._trusted(self._vocabulary, frozenset(kept))

    def sorted_clauses(self) -> tuple[Clause, ...]:
        """The clauses in the canonical :func:`clause_sort_key` order.

        The deterministic iteration every rendered listing uses (``str``,
        explain output, audit records, session dumps): independent of
        set-iteration order and hash seed, so derivations and audit diffs
        are stable across runs.
        """
        return tuple(sorted(self._clauses, key=clause_sort_key))

    def to_formulas(self) -> tuple[Formula, ...]:
        """Each clause as a disjunction formula, in a deterministic order."""
        return tuple(
            clause_to_formula(self._vocabulary, c) for c in self.sorted_clauses()
        )

    def _check_vocabulary(self, other: "ClauseSet") -> None:
        if self._vocabulary != other._vocabulary:
            from repro.errors import VocabularyMismatchError

            raise VocabularyMismatchError(
                "clause sets are over different vocabularies"
            )
