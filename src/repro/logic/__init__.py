"""Propositional-logic substrate (Section 1.1 of the paper).

Everything else in the library -- database schemata, BLU, HLU, the
relational extension, and the baselines -- is built on the notions defined
here: vocabularies, formulas, structures (worlds), clauses, model sets,
dependency sets, and resolution.
"""

from repro.logic.clauses import (
    Clause,
    ClauseSet,
    EMPTY_CLAUSE,
    Literal,
    clause_of,
    clause_signature,
    clause_to_str,
    literal_from_str,
    literal_to_str,
    literals_consistent,
    make_literal,
    negate_literal,
)
from repro.logic.cnf import clauses_to_formula, formula_to_clauses, formulas_to_clauses
from repro.logic.implicates import (
    is_implicate,
    is_prime_implicate,
    mask_via_implicates,
    prime_implicates,
)
from repro.logic.formula import (
    FALSE,
    TRUE,
    And,
    Const,
    Formula,
    Iff,
    Implies,
    Not,
    Or,
    Var,
    conj,
    disj,
    props_of,
    var,
)
from repro.logic.occurrence import OccurrenceIndex
from repro.logic.parser import parse_formula, parse_formulas
from repro.logic.propositions import Vocabulary
from repro.logic.resolution import (
    drop,
    eliminate_letter,
    rclosure,
    resolution_closure,
    resolvent,
    unit_resolve,
)
from repro.logic.sat import (
    backbone_literals,
    count_models_exact,
    entails_clause,
    entails_clauses,
    is_satisfiable,
    solve,
)
from repro.logic.semantics import (
    clause_set_dependency_indices,
    clause_sets_equivalent,
    dependency_indices,
    dependency_names,
    formulas_entail,
    models_of_clauses,
    models_of_formulas,
    sat_literals,
    theory_contains,
)
from repro.logic.structures import (
    World,
    all_worlds,
    flip_bit,
    flip_bits,
    satisfies,
    saturate_on,
    world_count,
    world_from_dict,
    world_from_true_set,
    world_str,
    world_to_dict,
    world_to_true_set,
)

__all__ = [
    # propositions
    "Vocabulary",
    # formulas
    "Formula", "Const", "Var", "Not", "And", "Or", "Implies", "Iff",
    "TRUE", "FALSE", "var", "conj", "disj", "props_of",
    "parse_formula", "parse_formulas",
    # structures
    "World", "all_worlds", "world_count", "world_from_dict",
    "world_from_true_set", "world_to_dict", "world_to_true_set",
    "flip_bit", "flip_bits", "satisfies", "world_str", "saturate_on",
    # clauses
    "Literal", "Clause", "EMPTY_CLAUSE", "ClauseSet", "make_literal",
    "negate_literal", "literal_from_str", "literal_to_str", "clause_of",
    "clause_to_str", "clause_signature", "literals_consistent",
    "OccurrenceIndex",
    # cnf
    "formula_to_clauses", "formulas_to_clauses", "clauses_to_formula",
    # semantics
    "models_of_formulas", "models_of_clauses", "sat_literals",
    "theory_contains", "formulas_entail", "clause_sets_equivalent",
    "dependency_indices", "dependency_names", "clause_set_dependency_indices",
    # resolution
    "resolvent", "rclosure", "drop", "eliminate_letter", "unit_resolve",
    "resolution_closure",
    # implicates
    "prime_implicates", "is_implicate", "is_prime_implicate",
    "mask_via_implicates",
    # sat
    "is_satisfiable", "solve", "entails_clause", "entails_clauses",
    "backbone_literals", "count_models_exact",
]
