"""Literal-occurrence indexes over clause collections.

Every hot clause kernel -- ``rclosure``'s resolution fixpoint,
``unitres``'s literal striking, DPLL's unit propagation -- answers the
same question in its inner loop: *which clauses contain this literal?*
The seed implementations answered it by rescanning the whole clause set
per query, which made each kernel quadratic in the clause count.  An
:class:`OccurrenceIndex` maintains the ``literal -> clauses`` map
incrementally so each pass touches only the clauses that actually
mention the pivot literal.

This is a correctness-preserving optimisation in the sense the paper
anticipates in Section 4: the index changes *which clauses are looked
at*, never the set of clauses produced.  The differential tests in
``tests/logic/test_kernel_differential.py`` check the indexed kernels
against verbatim copies of the seed implementations.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

from repro.logic.clauses import Clause, Literal

__all__ = ["OccurrenceIndex"]

_EMPTY: frozenset[Clause] = frozenset()


class OccurrenceIndex:
    """A mutable ``literal -> set of clauses`` index over a clause set.

    Clauses are plain frozensets of literals (see
    :mod:`repro.logic.clauses`); the index also tracks the full clause
    set, so it can stand in for the working set of a fixpoint
    computation (``frozenset(index)`` reads the current clauses back
    out).

    >>> from repro.logic.clauses import clause_of
    >>> index = OccurrenceIndex([clause_of([1, 2]), clause_of([-1, 3])])
    >>> sorted(len(c) for c in index.clauses_with(1))
    [2]
    >>> index.add(clause_of([2, 3]))
    True
    >>> len(index)
    3
    """

    __slots__ = ("_by_literal", "_clauses")

    def __init__(self, clauses: Iterable[Clause] = ()):
        self._by_literal: dict[Literal, set[Clause]] = {}
        self._clauses: set[Clause] = set()
        for clause in clauses:
            self.add(clause)

    def add(self, clause: Clause) -> bool:
        """Index ``clause``; returns False if it was already present."""
        if clause in self._clauses:
            return False
        self._clauses.add(clause)
        by_literal = self._by_literal
        for literal in clause:
            bucket = by_literal.get(literal)
            if bucket is None:
                by_literal[literal] = {clause}
            else:
                bucket.add(clause)
        return True

    def discard(self, clause: Clause) -> bool:
        """Remove ``clause`` from the index; returns False if absent."""
        if clause not in self._clauses:
            return False
        self._clauses.discard(clause)
        by_literal = self._by_literal
        for literal in clause:
            bucket = by_literal.get(literal)
            if bucket is not None:
                bucket.discard(clause)
                if not bucket:
                    del by_literal[literal]
        return True

    def clauses_with(self, literal: Literal) -> frozenset[Clause] | set[Clause]:
        """The clauses currently containing ``literal``.

        Returns the live internal bucket for speed; callers that mutate
        the index while iterating must copy it first (``list(...)``).
        """
        return self._by_literal.get(literal, _EMPTY)

    def __len__(self) -> int:
        return len(self._clauses)

    def __iter__(self) -> Iterator[Clause]:
        return iter(self._clauses)

    def __contains__(self, clause: object) -> bool:
        return clause in self._clauses

    def __repr__(self) -> str:
        return f"OccurrenceIndex({len(self._clauses)} clauses)"
