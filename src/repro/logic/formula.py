"""Well-formed propositional formulas -- ``WF[L]`` of Section 1.1.

The AST mirrors the paper's connective set ``{and, or, not, =>, <=>}`` plus
the constants 0 and 1.  Formulas are immutable and hashable; they are pure
syntax and carry no vocabulary -- a formula is interpreted *over* a
vocabulary when evaluated or converted to clauses.

Substitution (:meth:`Formula.substitute`) is the engine behind database
morphisms (Definition 1.3.1): a morphism assigns a formula to each
proposition letter, and its extension to ``WF`` substitutes throughout.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable, Mapping

__all__ = [
    "Formula",
    "Const",
    "Var",
    "Not",
    "And",
    "Or",
    "Implies",
    "Iff",
    "TRUE",
    "FALSE",
    "var",
    "conj",
    "disj",
    "props_of",
]


class Formula:
    """Abstract base for all formula nodes.

    Subclasses are value objects: equality and hashing are structural.
    Operator overloads build formulas conveniently::

        >>> f = var("A1") & ~var("A2")
        >>> str(f)
        '(A1 & ~A2)'
    """

    __slots__ = ()

    # --- construction sugar -------------------------------------------------

    def __and__(self, other: "Formula") -> "Formula":
        return And((self, other))

    def __or__(self, other: "Formula") -> "Formula":
        return Or((self, other))

    def __invert__(self) -> "Formula":
        return Not(self)

    def implies(self, other: "Formula") -> "Formula":
        """The formula ``self => other``."""
        return Implies(self, other)

    def iff(self, other: "Formula") -> "Formula":
        """The formula ``self <=> other``."""
        return Iff(self, other)

    # --- core interface -----------------------------------------------------

    def props(self) -> frozenset[str]:
        """``Prop[{self}]``: the proposition names occurring in the formula."""
        out: set[str] = set()
        self._collect_props(out)
        return frozenset(out)

    def _collect_props(self, out: set[str]) -> None:
        raise NotImplementedError

    def evaluate(self, assignment: Callable[[str], bool] | Mapping[str, bool]) -> bool:
        """Truth value under ``assignment`` (the paper's ``s-bar``).

        ``assignment`` maps proposition names to booleans; it may be a
        mapping or a callable.  Unmentioned letters are never consulted.
        """
        if isinstance(assignment, Mapping):
            mapping = assignment
            return self._eval(lambda name: bool(mapping[name]))
        return self._eval(lambda name: bool(assignment(name)))

    def _eval(self, lookup: Callable[[str], bool]) -> bool:
        raise NotImplementedError

    def substitute(self, mapping: Mapping[str, "Formula"]) -> "Formula":
        """Replace each variable named in ``mapping`` by its image formula.

        This is the natural extension ``f-bar : WF[D2] -> WF[D1]`` of a
        morphism ``f`` (Definition 1.3.1).  Variables absent from the
        mapping are left untouched.
        """
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{type(self).__name__}({str(self)!r})"


class Const(Formula):
    """The constant formulas 1 (true) and 0 (false)."""

    __slots__ = ("value",)

    def __init__(self, value: bool):
        object.__setattr__(self, "value", bool(value))

    def __setattr__(self, name, value):  # immutability guard
        raise AttributeError("Const is immutable")

    def _collect_props(self, out: set[str]) -> None:
        pass

    def _eval(self, lookup) -> bool:
        return self.value

    def substitute(self, mapping) -> Formula:
        return self

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Const) and other.value == self.value

    def __hash__(self) -> int:
        return hash(("Const", self.value))

    def __str__(self) -> str:
        return "1" if self.value else "0"


TRUE = Const(True)
FALSE = Const(False)


class Var(Formula):
    """A proposition letter used as a formula."""

    __slots__ = ("name",)

    def __init__(self, name: str):
        object.__setattr__(self, "name", name)

    def __setattr__(self, name, value):
        raise AttributeError("Var is immutable")

    def _collect_props(self, out: set[str]) -> None:
        out.add(self.name)

    def _eval(self, lookup) -> bool:
        return lookup(self.name)

    def substitute(self, mapping) -> Formula:
        return mapping.get(self.name, self)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Var) and other.name == self.name

    def __hash__(self) -> int:
        return hash(("Var", self.name))

    def __str__(self) -> str:
        return self.name


class Not(Formula):
    """Negation."""

    __slots__ = ("operand",)

    def __init__(self, operand: Formula):
        object.__setattr__(self, "operand", operand)

    def __setattr__(self, name, value):
        raise AttributeError("Not is immutable")

    def _collect_props(self, out: set[str]) -> None:
        self.operand._collect_props(out)

    def _eval(self, lookup) -> bool:
        return not self.operand._eval(lookup)

    def substitute(self, mapping) -> Formula:
        return Not(self.operand.substitute(mapping))

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Not) and other.operand == self.operand

    def __hash__(self) -> int:
        return hash(("Not", self.operand))

    def __str__(self) -> str:
        return f"~{self.operand._wrapped()}"


class _Nary(Formula):
    """Shared machinery for the flat n-ary connectives And / Or."""

    __slots__ = ("operands",)
    _symbol = "?"
    _empty_value: bool = True

    def __init__(self, operands: Iterable[Formula]):
        ops = tuple(operands)
        for op in ops:
            if not isinstance(op, Formula):
                raise TypeError(f"operand {op!r} is not a Formula")
        object.__setattr__(self, "operands", ops)

    def __setattr__(self, name, value):
        raise AttributeError(f"{type(self).__name__} is immutable")

    def _collect_props(self, out: set[str]) -> None:
        for op in self.operands:
            op._collect_props(out)

    def substitute(self, mapping) -> Formula:
        return type(self)(op.substitute(mapping) for op in self.operands)

    def __eq__(self, other: object) -> bool:
        return type(other) is type(self) and other.operands == self.operands

    def __hash__(self) -> int:
        return hash((type(self).__name__, self.operands))

    def __str__(self) -> str:
        if not self.operands:
            return "1" if self._empty_value else "0"
        if len(self.operands) == 1:
            return str(self.operands[0])
        inner = f" {self._symbol} ".join(op._wrapped() for op in self.operands)
        return f"({inner})"


class And(_Nary):
    """Conjunction over zero or more operands (empty = 1)."""

    __slots__ = ()
    _symbol = "&"
    _empty_value = True

    def _eval(self, lookup) -> bool:
        return all(op._eval(lookup) for op in self.operands)


class Or(_Nary):
    """Disjunction over zero or more operands (empty = 0)."""

    __slots__ = ()
    _symbol = "|"
    _empty_value = False

    def _eval(self, lookup) -> bool:
        return any(op._eval(lookup) for op in self.operands)


class Implies(Formula):
    """Material implication ``left => right``."""

    __slots__ = ("left", "right")

    def __init__(self, left: Formula, right: Formula):
        object.__setattr__(self, "left", left)
        object.__setattr__(self, "right", right)

    def __setattr__(self, name, value):
        raise AttributeError("Implies is immutable")

    def _collect_props(self, out: set[str]) -> None:
        self.left._collect_props(out)
        self.right._collect_props(out)

    def _eval(self, lookup) -> bool:
        return (not self.left._eval(lookup)) or self.right._eval(lookup)

    def substitute(self, mapping) -> Formula:
        return Implies(self.left.substitute(mapping), self.right.substitute(mapping))

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Implies) and (other.left, other.right) == (self.left, self.right)

    def __hash__(self) -> int:
        return hash(("Implies", self.left, self.right))

    def __str__(self) -> str:
        return f"({self.left._wrapped()} -> {self.right._wrapped()})"


class Iff(Formula):
    """Biconditional ``left <=> right``."""

    __slots__ = ("left", "right")

    def __init__(self, left: Formula, right: Formula):
        object.__setattr__(self, "left", left)
        object.__setattr__(self, "right", right)

    def __setattr__(self, name, value):
        raise AttributeError("Iff is immutable")

    def _collect_props(self, out: set[str]) -> None:
        self.left._collect_props(out)
        self.right._collect_props(out)

    def _eval(self, lookup) -> bool:
        return self.left._eval(lookup) == self.right._eval(lookup)

    def substitute(self, mapping) -> Formula:
        return Iff(self.left.substitute(mapping), self.right.substitute(mapping))

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Iff) and (other.left, other.right) == (self.left, self.right)

    def __hash__(self) -> int:
        return hash(("Iff", self.left, self.right))

    def __str__(self) -> str:
        return f"({self.left._wrapped()} <-> {self.right._wrapped()})"


def _wrapped(self: Formula) -> str:
    """Render a formula for embedding inside a larger one.

    Atomic-looking forms (variables, constants, negations, and anything that
    already prints with outer parentheses) need no extra wrapping.
    """
    text = str(self)
    return text


Formula._wrapped = _wrapped  # type: ignore[attr-defined]


def var(name: str) -> Var:
    """Shorthand constructor: ``var("A1")``."""
    return Var(name)


def conj(formulas: Iterable[Formula]) -> Formula:
    """Conjunction of a collection, flattened; empty collection gives 1."""
    ops = tuple(formulas)
    if len(ops) == 1:
        return ops[0]
    return And(ops)


def disj(formulas: Iterable[Formula]) -> Formula:
    """Disjunction of a collection, flattened; empty collection gives 0."""
    ops = tuple(formulas)
    if len(ops) == 1:
        return ops[0]
    return Or(ops)


def props_of(formulas: Iterable[Formula]) -> frozenset[str]:
    """``Prop[Phi]`` for a collection of formulas (Section 1.1)."""
    out: set[str] = set()
    for formula in formulas:
        formula._collect_props(out)
    return frozenset(out)
