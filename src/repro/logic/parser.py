"""Textual syntax for propositional formulas.

The paper writes formulas mathematically (``A1 v A2``, ``¬A1 v ¬A2 v ¬A5``);
for a usable library we provide an ASCII grammar:

=============  =======================================
construct      syntax (synonyms)
=============  =======================================
constant       ``1``, ``0``, ``true``, ``false``
variable       any identifier: ``A1``, ``R_Jones_D1_T2``
negation       ``~p``  (also ``!p``)
conjunction    ``p & q``  (also ``p /\\ q``)
disjunction    ``p | q``  (also ``p \\/ q``)
implication    ``p -> q`` (also ``p => q``), right-assoc
biconditional  ``p <-> q`` (also ``p <=> q``)
grouping       ``( ... )``
=============  =======================================

Precedence, tightest first: ``~``, ``&``, ``|``, ``->``, ``<->``.

>>> str(parse_formula("~A1 | A2 -> A3"))
'((~A1 | A2) -> A3)'
"""

from __future__ import annotations

import re
from collections.abc import Iterable

from repro.errors import ParseError
from repro.logic.formula import (
    FALSE,
    TRUE,
    And,
    Formula,
    Iff,
    Implies,
    Not,
    Or,
    Var,
)

__all__ = ["parse_formula", "parse_formulas"]

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<iff><->|<=>)
  | (?P<implies>->|=>)
  | (?P<and>&&?|/\\)
  | (?P<or>\|\|?|\\/)
  | (?P<not>[~!])
  | (?P<lparen>\()
  | (?P<rparen>\))
  | (?P<name>[A-Za-z_][A-Za-z0-9_.']*|[01])
    """,
    re.VERBOSE,
)

_CONSTANTS = {"1": TRUE, "0": FALSE, "true": TRUE, "false": FALSE, "TRUE": TRUE, "FALSE": FALSE}


def _tokenize(text: str) -> list[tuple[str, str, int]]:
    """Split ``text`` into ``(kind, lexeme, position)`` triples."""
    tokens: list[tuple[str, str, int]] = []
    pos = 0
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if match is None:
            raise ParseError(
                f"unexpected character {text[pos]!r} at position {pos}", text, pos
            )
        kind = match.lastgroup
        assert kind is not None
        if kind != "ws":
            tokens.append((kind, match.group(), pos))
        pos = match.end()
    return tokens


class _Parser:
    """Recursive-descent parser over the token list."""

    def __init__(self, text: str):
        self.text = text
        self.tokens = _tokenize(text)
        self.index = 0

    def peek(self) -> str | None:
        if self.index < len(self.tokens):
            return self.tokens[self.index][0]
        return None

    def advance(self) -> tuple[str, str, int]:
        token = self.tokens[self.index]
        self.index += 1
        return token

    def expect(self, kind: str) -> tuple[str, str, int]:
        if self.peek() != kind:
            found = self.tokens[self.index][1] if self.index < len(self.tokens) else "<end>"
            pos = self.tokens[self.index][2] if self.index < len(self.tokens) else len(self.text)
            raise ParseError(f"expected {kind}, found {found!r}", self.text, pos)
        return self.advance()

    # Grammar:  iff <- imp ( '<->' imp )*        (left-assoc)
    #           imp <- or  ( '->' imp )?         (right-assoc)
    #           or  <- and ( '|' and )*
    #           and <- unary ( '&' unary )*
    #           unary <- '~' unary | atom
    #           atom <- name | '(' iff ')'

    def parse(self) -> Formula:
        result = self.parse_iff()
        if self.index != len(self.tokens):
            _, lexeme, pos = self.tokens[self.index]
            raise ParseError(f"trailing input starting at {lexeme!r}", self.text, pos)
        return result

    def parse_iff(self) -> Formula:
        left = self.parse_implies()
        while self.peek() == "iff":
            self.advance()
            right = self.parse_implies()
            left = Iff(left, right)
        return left

    def parse_implies(self) -> Formula:
        left = self.parse_or()
        if self.peek() == "implies":
            self.advance()
            right = self.parse_implies()
            return Implies(left, right)
        return left

    def parse_or(self) -> Formula:
        operands = [self.parse_and()]
        while self.peek() == "or":
            self.advance()
            operands.append(self.parse_and())
        if len(operands) == 1:
            return operands[0]
        return Or(operands)

    def parse_and(self) -> Formula:
        operands = [self.parse_unary()]
        while self.peek() == "and":
            self.advance()
            operands.append(self.parse_unary())
        if len(operands) == 1:
            return operands[0]
        return And(operands)

    def parse_unary(self) -> Formula:
        if self.peek() == "not":
            self.advance()
            return Not(self.parse_unary())
        return self.parse_atom()

    def parse_atom(self) -> Formula:
        kind = self.peek()
        if kind == "lparen":
            self.advance()
            inner = self.parse_iff()
            self.expect("rparen")
            return inner
        if kind == "name":
            _, lexeme, _ = self.advance()
            constant = _CONSTANTS.get(lexeme)
            if constant is not None:
                return constant
            return Var(lexeme)
        found = self.tokens[self.index][1] if self.index < len(self.tokens) else "<end>"
        pos = self.tokens[self.index][2] if self.index < len(self.tokens) else len(self.text)
        raise ParseError(f"expected a formula, found {found!r}", self.text, pos)


def parse_formula(text: str) -> Formula:
    """Parse one formula from ``text``.

    >>> parse_formula("A1 & ~A2") == (Var("A1") & ~Var("A2"))
    True
    """
    if not text.strip():
        raise ParseError("empty formula", text, 0)
    return _Parser(text).parse()


def parse_formulas(texts: Iterable[str]) -> tuple[Formula, ...]:
    """Parse a collection of formulas, preserving order."""
    return tuple(parse_formula(t) for t in texts)
