"""A small DPLL satisfiability solver over :class:`ClauseSet`.

The instance-level semantics enumerates worlds and cannot scale past ~20
letters; the Wilkins baseline (Section 3.3.1) deliberately *grows* the
vocabulary with every update, so measuring its query-time degradation
(experiment E11) needs a solver that handles a few hundred letters.  This
is a classic DPLL with unit propagation, pure-literal elimination, and a
most-frequent-literal branching heuristic -- entirely adequate for the
workloads in this repository.

The search is **iterative** (explicit decision stack + assignment trail),
not recursive: the seed's recursive formulation blew Python's default
1000-frame limit on deep propagation/decision chains (a few hundred
letters suffice on E11-style Wilkins instances; see
``tests/logic/test_sat_deepchain.py``).  Unit propagation is driven by a
literal-occurrence index with per-clause satisfied/unassigned counters,
so assigning a literal touches only the clauses containing it -- the seed
rebuilt the entire simplified clause list on every propagation step.
"""

from __future__ import annotations

from collections import Counter, deque

from repro.cache import core as cache
from repro.obs import core as obs
from repro.obs import provenance
from repro.obs import runtime
from repro.logic.clauses import Clause, ClauseSet, Literal, clause_sort_key

__all__ = [
    "is_satisfiable",
    "solve",
    "entails_clause",
    "entails_clauses",
    "count_models",
    "count_models_exact",
    "backbone_literals",
]


class _SolverState:
    """Occurrence-indexed CNF working state with an undo trail.

    Tracks, per clause, how many of its literals are currently true
    (``n_true``) and how many are unassigned (``n_free``); a clause is
    *open* while no literal in it is true.  Assigning a variable updates
    only the clauses its two literals occur in (via the occurrence
    lists), queueing clauses that become unit and detecting the ones that
    become falsified.  ``undo_to`` rewinds the trail for backtracking.
    """

    __slots__ = (
        "clauses",
        "occ",
        "assignment",
        "trail",
        "n_true",
        "n_free",
        "open_clauses",
        "unit_queue",
        "root_conflict",
        "conflict_cid",
        "prov",
        "prov_active",
        "clause_ids",
        "reasons",
    )

    def __init__(
        self,
        clauses: list[Clause],
        assignment: dict[int, bool],
        record_provenance: bool = False,
    ):
        self.clauses = clauses
        self.occ: dict[Literal, list[int]] = {}
        for cid, clause in enumerate(clauses):
            for literal in clause:
                self.occ.setdefault(literal, []).append(cid)
        self.assignment = assignment
        self.trail: list[int] = []
        self.n_true = [0] * len(clauses)
        self.n_free = [len(clause) for clause in clauses]
        self.open_clauses = len(clauses)
        self.unit_queue: deque[int] = deque()
        self.root_conflict = False
        self.conflict_cid = -1
        # Provenance (opt-in, sound only at decision level 0): input
        # clauses are recorded as "input", the caller's assumptions as
        # "assumption" units, and each root unit propagation as a
        # "unitprop" node whose id becomes the assigned variable's
        # *reason*.  prov_active is switched off at the first decision or
        # pure-literal assignment -- consequences under either are not
        # consequences of the clause set.
        self.prov: provenance.DerivationRecorder | None = None
        self.prov_active = False
        self.clause_ids: list[int] = []
        self.reasons: dict[int, int] = {}
        if record_provenance and provenance._ENABLED:
            rec = provenance.recorder()
            self.prov = rec
            self.prov_active = True
            for input_clause in sorted(clauses, key=clause_sort_key):
                rec.ensure(input_clause)
            self.clause_ids = [rec.ensure(clause) for clause in clauses]
            for index, value in assignment.items():
                literal = index + 1 if value else -(index + 1)
                self.reasons[index] = rec.record(
                    frozenset((literal,)), "assumption"
                )
        # Fold any pre-existing assignment (the caller's assumptions) into
        # the counters, then pick up the clauses that start unit or empty.
        for index, value in assignment.items():
            if not self._apply(index, value):
                self.root_conflict = True
        for cid in range(len(clauses)):
            if self.n_true[cid] == 0:
                if self.n_free[cid] == 0:
                    self.root_conflict = True
                    self.conflict_cid = cid
                elif self.n_free[cid] == 1:
                    self.unit_queue.append(cid)

    def _apply(self, index: int, value: bool) -> bool:
        """Update clause counters for ``index := value``.

        Queues clauses that become unit; returns False when some clause
        is falsified (all literals assigned, none true).
        """
        literal = index + 1 if value else -(index + 1)
        n_true = self.n_true
        n_free = self.n_free
        for cid in self.occ.get(literal, ()):
            if n_true[cid] == 0:
                self.open_clauses -= 1
            n_true[cid] += 1
        ok = True
        for cid in self.occ.get(-literal, ()):
            n_free[cid] -= 1
            if n_true[cid] == 0:
                if n_free[cid] == 0:
                    ok = False
                    self.conflict_cid = cid
                elif n_free[cid] == 1:
                    self.unit_queue.append(cid)
        return ok

    def assign(self, index: int, value: bool) -> bool:
        """Assign on the trail; returns False on an immediate conflict."""
        self.assignment[index] = value
        self.trail.append(index)
        return self._apply(index, value)

    def propagate(self) -> bool:
        """Drain the unit queue to fixpoint; False (queue cleared) on conflict."""
        if self.root_conflict:
            obs.inc("logic.sat.conflicts")
            self._record_conflict()
            return False
        ok = True
        propagations = 0
        queue = self.unit_queue
        while ok and queue:
            cid = queue.popleft()
            if self.n_true[cid] > 0:
                continue  # became satisfied since it was queued
            if self.n_free[cid] == 0:
                ok = False
                self.conflict_cid = cid
                break
            unit: Literal = 0
            for literal in self.clauses[cid]:
                if (abs(literal) - 1) not in self.assignment:
                    unit = literal
                    break
            if self.prov_active:
                self._record_unit(cid, unit)
            propagations += 1
            ok = self.assign(abs(unit) - 1, unit > 0)
        if propagations:
            obs.inc("logic.sat.unit_propagations", propagations)
        if not ok:
            obs.inc("logic.sat.conflicts")
            self._record_conflict()
            queue.clear()
        return ok

    def _record_unit(self, cid: int, unit: Literal) -> None:
        """Record one level-0 unit propagation: clause ``cid`` forces
        ``unit`` because its other literals are all falsified; the forcing
        node becomes the variable's reason."""
        rec = self.prov
        if rec is None:
            return
        parents = [self.clause_ids[cid]]
        for literal in self.clauses[cid]:
            if literal != unit:
                parents.append(self.reasons[abs(literal) - 1])
        self.reasons[abs(unit) - 1] = rec.record(
            frozenset((unit,)), "unitprop", tuple(parents)
        )

    def _record_conflict(self) -> None:
        """Record the empty clause from a level-0 conflict: the falsified
        clause plus the unit reasons of every literal in it."""
        rec = self.prov
        cid = self.conflict_cid
        if rec is None or not self.prov_active or cid < 0:
            return
        parents = [self.clause_ids[cid]]
        for literal in self.clauses[cid]:
            reason = self.reasons.get(abs(literal) - 1)
            if reason is None:
                return  # a literal with no recorded reason: not level 0
            parents.append(reason)
        rec.record(frozenset(), "unitprop", tuple(parents))

    def undo_to(self, mark: int) -> None:
        """Rewind the trail (and all clause counters) to length ``mark``."""
        n_true = self.n_true
        n_free = self.n_free
        while len(self.trail) > mark:
            index = self.trail.pop()
            value = self.assignment.pop(index)
            literal = index + 1 if value else -(index + 1)
            for cid in self.occ.get(literal, ()):
                n_true[cid] -= 1
                if n_true[cid] == 0:
                    self.open_clauses += 1
            for cid in self.occ.get(-literal, ()):
                n_free[cid] += 1
        self.unit_queue.clear()

    def scan_open(self) -> tuple[list[tuple[int, bool]], Counter]:
        """One pass over the open clauses: pure literals + literal counts.

        Returns ``(pures, counts)`` where ``pures`` are the assignments
        pure-literal elimination may make (each unassigned letter whose
        open-clause occurrences all share one polarity) and ``counts``
        tallies unassigned literal occurrences for the branching
        heuristic.
        """
        assignment = self.assignment
        polarity: dict[int, int] = {}
        counts: Counter[Literal] = Counter()
        for cid, clause in enumerate(self.clauses):
            if self.n_true[cid] > 0:
                continue
            for literal in clause:
                index = abs(literal) - 1
                if index in assignment:
                    continue
                counts[literal] += 1
                sign = 1 if literal > 0 else -1
                previous = polarity.get(index)
                if previous is None:
                    polarity[index] = sign
                elif previous != sign:
                    polarity[index] = 0
        pures = [(index, sign > 0) for index, sign in polarity.items() if sign != 0]
        return pures, counts


def _search(state: _SolverState) -> dict[int, bool] | None:
    """Iterative DPLL over a prepared solver state."""
    # Each frame is (variable index, first value tried, trail mark, flipped).
    frames: list[tuple[int, bool, int, bool]] = []
    while True:
        if state.propagate():
            if state.open_clauses == 0:
                return dict(state.assignment)
            # Past this point every assignment sits under a pure-literal
            # choice or a decision, neither of which is a consequence of
            # the clause set -- stop recording provenance.
            state.prov_active = False
            # Cascading pure-literal elimination.  Assigning a pure literal
            # can only satisfy open clauses (its negation occurs in none of
            # them), so no propagation or conflict can result; satisfied
            # clauses may expose new pure letters, hence the loop.
            while True:
                pures, counts = state.scan_open()
                if not pures:
                    break
                for index, value in pures:
                    state.assign(index, value)
                if state.open_clauses == 0:
                    return dict(state.assignment)
            # Branch on the most frequent literal among open clauses.
            literal, _ = counts.most_common(1)[0]
            index = abs(literal) - 1
            first = literal > 0
            obs.inc("logic.sat.decisions")
            frames.append((index, first, len(state.trail), False))
            state.assign(index, first)
        else:
            while frames:
                index, first, mark, flipped = frames.pop()
                state.undo_to(mark)
                if not flipped:
                    obs.inc("logic.sat.backtracks")
                    obs.inc("logic.sat.decisions")
                    frames.append((index, first, mark, True))
                    state.assign(index, not first)
                    break
            else:
                return None


def solve(clause_set: ClauseSet, assumptions: tuple[Literal, ...] = ()) -> dict[int, bool] | None:
    """A satisfying (partial) assignment, or ``None`` if unsatisfiable.

    The returned dict maps vocabulary indices to booleans; letters that
    never mattered may be absent (any value works for them).
    """
    assignment: dict[int, bool] = {}
    for literal in assumptions:
        index = abs(literal) - 1
        value = literal > 0
        if assignment.get(index, value) != value:
            if provenance._ENABLED:
                # Complementary assumptions refute themselves; record the
                # two units and their empty resolvent so the derivation
                # DAG still explains the failure.
                rec = provenance.recorder()
                pos = rec.record(frozenset((index + 1,)), "assumption")
                neg = rec.record(frozenset((-(index + 1),)), "assumption")
                rec.record(frozenset(), "resolve", (pos, neg), pivot=index)
            return None
        assignment[index] = value
    with runtime.timed("logic.sat.solve"), obs.span(
        "logic.sat.solve", clauses=len(clause_set), assumptions=len(assumptions)
    ):
        obs.inc("logic.sat.solve_calls")
        return _search(
            _SolverState(
                list(clause_set.clauses),
                assignment,
                record_provenance=provenance._ENABLED,
            )
        )


def is_satisfiable(clause_set: ClauseSet, assumptions: tuple[Literal, ...] = ()) -> bool:
    """Satisfiability of the clause set (under optional assumptions)."""
    return solve(clause_set, assumptions) is not None


def entails_clause(clause_set: ClauseSet, clause: Clause) -> bool:
    """``Phi |= clause`` by refutation: ``Phi`` plus the negated clause is UNSAT."""
    negated = tuple(-literal for literal in clause)
    return not is_satisfiable(clause_set, negated)


def entails_clauses(clause_set: ClauseSet, other: ClauseSet) -> bool:
    """``Phi |= Psi``: every clause of ``Psi`` is entailed."""
    return all(entails_clause(clause_set, clause) for clause in other.clauses)


def count_models_exact(clause_set: ClauseSet) -> int:
    """Exact model count (#SAT) by counting DPLL.

    Unlike :func:`count_models` this never enumerates worlds: unit
    propagation plus branching, with each fully-satisfied residue
    contributing ``2^(free letters)``.  Pure-literal elimination is
    deliberately absent -- it is satisfiability-preserving but not
    count-preserving.  Worst case exponential (#SAT is #P-complete), but
    comfortable far beyond the 24-letter enumeration limit on the states
    this library produces.  Iterative like :func:`solve`, so deep
    propagation chains cannot exhaust the Python stack.

    Used by :meth:`repro.hlu.session.IncompleteDatabase.world_count`.

    Memoised by the opt-in kernel cache on the clause set's content
    fingerprint (the count also depends on the vocabulary size, which
    the vocabulary component of the key pins down).
    """
    if cache._ENABLED:
        key = (clause_set.vocabulary, clause_set.fingerprint)
        hit = cache.lookup("logic.count_models_exact", key)
        if hit is not cache.MISS:
            return hit
    result = _count_models_exact_uncached(clause_set)
    if cache._ENABLED:
        cache.store("logic.count_models_exact", key, result)
    return result


def _count_models_exact_uncached(clause_set: ClauseSet) -> int:
    total_letters = len(clause_set.vocabulary)
    state = _SolverState(list(clause_set.clauses), {})
    # Each frame is [variable index, trail mark, tried_false, subtotal].
    frames: list[list] = []
    entering = True
    result = 0
    while True:
        if entering:
            if not state.propagate():
                result = 0
                entering = False
            elif state.open_clauses == 0:
                result = 1 << (total_letters - len(state.assignment))
                entering = False
            else:
                # Branch on a variable of an open clause with the fewest
                # unassigned literals (the seed's shortest-clause rule).
                best = -1
                best_free = 0
                for cid in range(len(state.clauses)):
                    if state.n_true[cid] > 0:
                        continue
                    free = state.n_free[cid]
                    if best < 0 or free < best_free:
                        best, best_free = cid, free
                index = -1
                for literal in state.clauses[best]:
                    candidate = abs(literal) - 1
                    if candidate not in state.assignment:
                        index = candidate
                        break
                obs.inc("logic.sat.decisions")
                frames.append([index, len(state.trail), False, 0])
                state.assign(index, True)
        else:
            if not frames:
                return result
            frame = frames[-1]
            frame[3] += result
            state.undo_to(frame[1])
            if not frame[2]:
                frame[2] = True
                state.assign(frame[0], False)
                entering = True
            else:
                result = frame[3]
                frames.pop()


def backbone_literals(clause_set: ClauseSet) -> frozenset[Literal]:
    """The backbone: literals true in *every* model of the clause set.

    This is the clause-level route to a state's certain literals (the
    readable ``Sat`` fragment) without enumerating worlds, so it scales
    to vocabularies the instance semantics cannot touch.  Classic
    SAT-probing with model reuse: a literal is in the backbone iff the
    set is satisfiable and forcing its negation is not; any model found
    along the way rules out half the remaining candidates.

    An unsatisfiable set vacuously forces every literal; all of
    ``{A, ~A : A in vocabulary}`` is returned in that case, matching
    :func:`repro.logic.semantics.sat_literals` on the empty world set.
    """
    n = len(clause_set.vocabulary)
    first_model = solve(clause_set)
    if first_model is None:
        return frozenset(
            literal for index in range(n) for literal in (index + 1, -(index + 1))
        )
    # Candidates: one polarity per letter, as witnessed by the model
    # (letters it leaves unassigned are unconstrained, hence not backbone).
    candidates: set[Literal] = set()
    for index in range(n):
        if index in first_model:
            candidates.add(index + 1 if first_model[index] else -(index + 1))
    confirmed: set[Literal] = set()
    while candidates:
        literal = candidates.pop()
        model = solve(clause_set, assumptions=(-literal,))
        if model is None:
            confirmed.add(literal)
            continue
        # The counter-model eliminates every candidate it falsifies.
        candidates = {
            c
            for c in candidates
            if (abs(c) - 1) in model and model[abs(c) - 1] == (c > 0)
        }
    return frozenset(confirmed)


def count_models(clause_set: ClauseSet, over_indices: frozenset[int] | None = None) -> int:
    """Count models projected to ``over_indices`` (default: full vocabulary).

    Exhaustive enumeration -- only for small vocabularies; used by tests
    and by the expressiveness experiment E14.
    """
    from repro.logic.semantics import models_of_clauses

    models = models_of_clauses(clause_set)
    if over_indices is None:
        return len(models)
    mask = 0
    for index in over_indices:
        mask |= 1 << index
    return len({world & mask for world in models})
