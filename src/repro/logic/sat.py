"""A small DPLL satisfiability solver over :class:`ClauseSet`.

The instance-level semantics enumerates worlds and cannot scale past ~20
letters; the Wilkins baseline (Section 3.3.1) deliberately *grows* the
vocabulary with every update, so measuring its query-time degradation
(experiment E11) needs a solver that handles a few hundred letters.  This
is a classic DPLL with unit propagation, pure-literal elimination, and a
most-frequent-literal branching heuristic -- entirely adequate for the
workloads in this repository.
"""

from __future__ import annotations

from collections import Counter

from repro.obs import core as obs
from repro.logic.clauses import Clause, ClauseSet, Literal

__all__ = [
    "is_satisfiable",
    "solve",
    "entails_clause",
    "entails_clauses",
    "count_models",
    "count_models_exact",
    "backbone_literals",
]


def _propagate(
    clauses: list[Clause], assignment: dict[int, bool]
) -> list[Clause] | None:
    """Unit propagation; returns simplified clauses or ``None`` on conflict."""
    work = list(clauses)
    propagations = 0
    while True:
        unit: Literal | None = None
        simplified: list[Clause] = []
        for clause in work:
            # Evaluate the clause under the current partial assignment.
            remaining: list[Literal] = []
            satisfied = False
            for literal in clause:
                index = abs(literal) - 1
                if index in assignment:
                    if assignment[index] == (literal > 0):
                        satisfied = True
                        break
                else:
                    remaining.append(literal)
            if satisfied:
                continue
            if not remaining:
                if propagations:
                    obs.inc("logic.sat.unit_propagations", propagations)
                obs.inc("logic.sat.conflicts")
                return None  # falsified clause
            if len(remaining) == 1 and unit is None:
                unit = remaining[0]
            simplified.append(frozenset(remaining))
        if unit is None:
            if propagations:
                obs.inc("logic.sat.unit_propagations", propagations)
            return simplified
        assignment[abs(unit) - 1] = unit > 0
        propagations += 1
        work = simplified


def _dpll(clauses: list[Clause], assignment: dict[int, bool]) -> dict[int, bool] | None:
    simplified = _propagate(clauses, assignment)
    if simplified is None:
        return None
    if not simplified:
        return assignment
    # Pure literal elimination.
    polarity: dict[int, int] = {}
    for clause in simplified:
        for literal in clause:
            index = abs(literal) - 1
            sign = 1 if literal > 0 else -1
            polarity[index] = polarity.get(index, sign) if polarity.get(index, sign) == sign else 0
            if index not in polarity:
                polarity[index] = sign
    pure = {index: sign for index, sign in polarity.items() if sign != 0}
    if pure:
        for index, sign in pure.items():
            if index not in assignment:
                assignment[index] = sign > 0
        remaining = [
            clause
            for clause in simplified
            if not any(
                (abs(l) - 1) in pure and (pure[abs(l) - 1] > 0) == (l > 0)
                for l in clause
            )
        ]
        if len(remaining) != len(simplified):
            return _dpll(remaining, assignment)
    # Branch on the most frequent literal.
    counts: Counter[Literal] = Counter()
    for clause in simplified:
        counts.update(clause)
    literal, _ = counts.most_common(1)[0]
    first = literal > 0
    for value in (first, not first):
        if value is not first:
            obs.inc("logic.sat.backtracks")
        obs.inc("logic.sat.decisions")
        trial = dict(assignment)
        trial[abs(literal) - 1] = value
        result = _dpll(simplified, trial)
        if result is not None:
            return result
    return None


def solve(clause_set: ClauseSet, assumptions: tuple[Literal, ...] = ()) -> dict[int, bool] | None:
    """A satisfying (partial) assignment, or ``None`` if unsatisfiable.

    The returned dict maps vocabulary indices to booleans; letters that
    never mattered may be absent (any value works for them).
    """
    assignment: dict[int, bool] = {}
    for literal in assumptions:
        index = abs(literal) - 1
        value = literal > 0
        if assignment.get(index, value) != value:
            return None
        assignment[index] = value
    with obs.span(
        "logic.sat.solve", clauses=len(clause_set), assumptions=len(assumptions)
    ):
        obs.inc("logic.sat.solve_calls")
        return _dpll(list(clause_set.clauses), assignment)


def is_satisfiable(clause_set: ClauseSet, assumptions: tuple[Literal, ...] = ()) -> bool:
    """Satisfiability of the clause set (under optional assumptions)."""
    return solve(clause_set, assumptions) is not None


def entails_clause(clause_set: ClauseSet, clause: Clause) -> bool:
    """``Phi |= clause`` by refutation: ``Phi`` plus the negated clause is UNSAT."""
    negated = tuple(-literal for literal in clause)
    return not is_satisfiable(clause_set, negated)


def entails_clauses(clause_set: ClauseSet, other: ClauseSet) -> bool:
    """``Phi |= Psi``: every clause of ``Psi`` is entailed."""
    return all(entails_clause(clause_set, clause) for clause in other.clauses)


def count_models_exact(clause_set: ClauseSet) -> int:
    """Exact model count (#SAT) by counting DPLL.

    Unlike :func:`count_models` this never enumerates worlds: unit
    propagation plus branching, with each fully-satisfied residue
    contributing ``2^(free letters)``.  Pure-literal elimination is
    deliberately absent -- it is satisfiability-preserving but not
    count-preserving.  Worst case exponential (#SAT is #P-complete), but
    comfortable far beyond the 24-letter enumeration limit on the states
    this library produces.

    Used by :meth:`repro.hlu.session.IncompleteDatabase.world_count`.
    """
    total_letters = len(clause_set.vocabulary)

    def count(clauses: list[Clause], assignment: dict[int, bool]) -> int:
        simplified = _propagate(clauses, assignment)
        if simplified is None:
            return 0
        if not simplified:
            return 1 << (total_letters - len(assignment))
        shortest = min(simplified, key=len)
        literal = next(iter(shortest))
        index = abs(literal) - 1
        obs.inc("logic.sat.decisions")
        subtotal = 0
        for value in (True, False):
            trial = dict(assignment)
            trial[index] = value
            subtotal += count(simplified, trial)
        return subtotal

    return count(list(clause_set.clauses), {})


def backbone_literals(clause_set: ClauseSet) -> frozenset[Literal]:
    """The backbone: literals true in *every* model of the clause set.

    This is the clause-level route to a state's certain literals (the
    readable ``Sat`` fragment) without enumerating worlds, so it scales
    to vocabularies the instance semantics cannot touch.  Classic
    SAT-probing with model reuse: a literal is in the backbone iff the
    set is satisfiable and forcing its negation is not; any model found
    along the way rules out half the remaining candidates.

    An unsatisfiable set vacuously forces every literal; all of
    ``{A, ~A : A in vocabulary}`` is returned in that case, matching
    :func:`repro.logic.semantics.sat_literals` on the empty world set.
    """
    n = len(clause_set.vocabulary)
    first_model = solve(clause_set)
    if first_model is None:
        return frozenset(
            literal for index in range(n) for literal in (index + 1, -(index + 1))
        )
    # Candidates: one polarity per letter, as witnessed by the model
    # (letters it leaves unassigned are unconstrained, hence not backbone).
    candidates: set[Literal] = set()
    for index in range(n):
        if index in first_model:
            candidates.add(index + 1 if first_model[index] else -(index + 1))
    confirmed: set[Literal] = set()
    while candidates:
        literal = candidates.pop()
        model = solve(clause_set, assumptions=(-literal,))
        if model is None:
            confirmed.add(literal)
            continue
        # The counter-model eliminates every candidate it falsifies.
        candidates = {
            c
            for c in candidates
            if (abs(c) - 1) in model and model[abs(c) - 1] == (c > 0)
        }
    return frozenset(confirmed)


def count_models(clause_set: ClauseSet, over_indices: frozenset[int] | None = None) -> int:
    """Count models projected to ``over_indices`` (default: full vocabulary).

    Exhaustive enumeration -- only for small vocabularies; used by tests
    and by the expressiveness experiment E14.
    """
    from repro.logic.semantics import models_of_clauses

    models = models_of_clauses(clause_set)
    if over_indices is None:
        return len(models)
    mask = 0
    for index in over_indices:
        mask |= 1 << index
    return len({world & mask for world in models})
