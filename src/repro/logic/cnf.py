"""Exact conversion of formulas to clause sets (conjunctive normal form).

The conversion must preserve the *model set over the same vocabulary* --
the possible-worlds semantics of Section 1 leaves no room for Tseitin-style
auxiliary variables (those change the vocabulary and hence the world set).
We therefore use the classical transformation: push negations to literals
(negation normal form), then distribute disjunction over conjunction.
This is worst-case exponential, which is fine: the paper itself proves the
associated operations inherently exponential (Theorem 2.3.4).

Tautologous clauses are dropped and subsumed clauses removed, so simple
formulas produce the small clause sets one writes by hand.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.errors import VocabularyError
from repro.logic.clauses import Clause, ClauseSet, clause_is_tautologous, make_literal
from repro.logic.formula import (
    And,
    Const,
    Formula,
    Iff,
    Implies,
    Not,
    Or,
    Var,
)
from repro.logic.propositions import Vocabulary

__all__ = ["formula_to_clauses", "formulas_to_clauses", "clauses_to_formula"]


def _to_nnf(formula: Formula, negated: bool) -> Formula:
    """Negation normal form: negations appear only on variables/constants."""
    if isinstance(formula, Const):
        return Const(formula.value != negated)
    if isinstance(formula, Var):
        return Not(formula) if negated else formula
    if isinstance(formula, Not):
        return _to_nnf(formula.operand, not negated)
    if isinstance(formula, And):
        parts = tuple(_to_nnf(op, negated) for op in formula.operands)
        return Or(parts) if negated else And(parts)
    if isinstance(formula, Or):
        parts = tuple(_to_nnf(op, negated) for op in formula.operands)
        return And(parts) if negated else Or(parts)
    if isinstance(formula, Implies):
        # p -> q  ==  ~p | q ;   ~(p -> q)  ==  p & ~q
        if negated:
            return And((_to_nnf(formula.left, False), _to_nnf(formula.right, True)))
        return Or((_to_nnf(formula.left, True), _to_nnf(formula.right, False)))
    if isinstance(formula, Iff):
        # p <-> q  ==  (p & q) | (~p & ~q) ;  negation swaps one side
        left, right = formula.left, formula.right
        if negated:
            return Or((
                And((_to_nnf(left, False), _to_nnf(right, True))),
                And((_to_nnf(left, True), _to_nnf(right, False))),
            ))
        return Or((
            And((_to_nnf(left, False), _to_nnf(right, False))),
            And((_to_nnf(left, True), _to_nnf(right, True))),
        ))
    raise TypeError(f"unknown formula node {type(formula).__name__}")


def _cross(left: frozenset[Clause], right: frozenset[Clause]) -> frozenset[Clause]:
    """Distribute: CNF of (L | R) from CNFs of L and R, dropping tautologies."""
    out: set[Clause] = set()
    for lc in left:
        for rc in right:
            merged = lc | rc
            if not clause_is_tautologous(merged):
                out.add(merged)
    return frozenset(out)


_TRUE_CNF: frozenset[Clause] = frozenset()
_FALSE_CNF: frozenset[Clause] = frozenset({frozenset()})


def _nnf_to_clauses(formula: Formula, vocabulary: Vocabulary) -> frozenset[Clause]:
    """CNF of an NNF formula as a raw frozenset of clauses."""
    if isinstance(formula, Const):
        return _TRUE_CNF if formula.value else _FALSE_CNF
    if isinstance(formula, Var):
        return frozenset({frozenset({make_literal(vocabulary.index_of(formula.name))})})
    if isinstance(formula, Not):
        operand = formula.operand
        if not isinstance(operand, Var):
            raise AssertionError("formula was not in NNF")
        return frozenset(
            {frozenset({make_literal(vocabulary.index_of(operand.name), positive=False)})}
        )
    if isinstance(formula, And):
        out: frozenset[Clause] = frozenset()
        for op in formula.operands:
            out = out | _nnf_to_clauses(op, vocabulary)
        return out
    if isinstance(formula, Or):
        if not formula.operands:
            return _FALSE_CNF
        parts = [_nnf_to_clauses(op, vocabulary) for op in formula.operands]
        # An always-true disjunct makes the whole disjunction a tautology.
        acc = parts[0]
        for part in parts[1:]:
            if not acc or not part:
                acc = _TRUE_CNF
                continue
            acc = _cross(acc, part)
        return acc
    raise AssertionError(f"unexpected NNF node {type(formula).__name__}")


def formula_to_clauses(formula: Formula, vocabulary: Vocabulary) -> ClauseSet:
    """Convert one formula to an equivalent :class:`ClauseSet`.

    >>> from repro.logic.parser import parse_formula
    >>> vocab = Vocabulary.standard(3)
    >>> str(formula_to_clauses(parse_formula("A1 -> (A2 & A3)"), vocab))
    '{~A1 | A2, ~A1 | A3}'
    """
    unknown = formula.props() - set(vocabulary.names)
    if unknown:
        raise VocabularyError(f"formula mentions unknown letters {sorted(unknown)}")
    nnf = _to_nnf(formula, negated=False)
    return ClauseSet(vocabulary, _nnf_to_clauses(nnf, vocabulary)).reduce()


def formulas_to_clauses(formulas: Iterable[Formula], vocabulary: Vocabulary) -> ClauseSet:
    """Convert a set of formulas (an implicit conjunction) to clauses."""
    acc = ClauseSet.tautology(vocabulary)
    for formula in formulas:
        acc = acc.union(formula_to_clauses(formula, vocabulary))
    return acc.reduce()


def clauses_to_formula(clause_set: ClauseSet) -> Formula:
    """The clause set as one conjunction formula (inverse presentation)."""
    from repro.logic.formula import conj

    return conj(clause_set.to_formulas())
