"""Model-theoretic notions of Section 1.1: ``Mod``, ``Sat``, ``Th``, ``Dep``.

These are the exact, enumerative definitions over a finite vocabulary --
the ground truth everything else is checked against.  They enumerate up to
``2^n`` worlds and are therefore restricted to small vocabularies; scalable
(clause-level) counterparts live in :mod:`repro.logic.sat` and
:mod:`repro.logic.resolution`.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.logic.clauses import ClauseSet
from repro.logic.formula import Formula
from repro.logic.propositions import Vocabulary
from repro.logic.structures import World, all_worlds, flip_bit, satisfies

__all__ = [
    "models_of_formulas",
    "models_of_clauses",
    "sat_literals",
    "theory_contains",
    "formulas_entail",
    "clause_sets_equivalent",
    "dependency_indices",
    "dependency_names",
    "clause_set_dependency_indices",
]


def models_of_formulas(
    vocabulary: Vocabulary, formulas: Iterable[Formula]
) -> frozenset[World]:
    """``Mod[Phi]``: all structures satisfying every formula in ``Phi``."""
    formula_tuple = tuple(formulas)
    return frozenset(
        world
        for world in all_worlds(vocabulary)
        if all(satisfies(vocabulary, world, f) for f in formula_tuple)
    )


def models_of_clauses(clause_set: ClauseSet) -> frozenset[World]:
    """``Mod[Phi]`` for a clause set (the canonical emulation map
    ``e_CI[S]`` of Definition 2.3.2(b))."""
    return frozenset(
        world
        for world in all_worlds(clause_set.vocabulary)
        if clause_set.satisfied_by(world)
    )


def sat_literals(vocabulary: Vocabulary, worlds: Iterable[World]) -> frozenset[str]:
    """A readable fragment of ``Sat[S]``: the *literals* true in every world.

    (``Sat[S]`` itself is infinite; its literal fragment is what callers
    actually inspect.)  Returns strings like ``"A1"`` / ``"~A2"``.
    """
    world_list = list(worlds)
    out: set[str] = set()
    if not world_list:
        # Every formula holds vacuously; report all literals.
        for name in vocabulary.names:
            out.add(name)
            out.add(f"~{name}")
        return frozenset(out)
    for index, name in enumerate(vocabulary.names):
        values = {world >> index & 1 for world in world_list}
        if values == {1}:
            out.add(name)
        elif values == {0}:
            out.add(f"~{name}")
    return frozenset(out)


def theory_contains(
    vocabulary: Vocabulary, axioms: Iterable[Formula], candidate: Formula
) -> bool:
    """Is ``candidate`` in ``Th[axioms]`` (i.e. ``axioms |= candidate``)?"""
    candidate_formula = candidate
    axiom_tuple = tuple(axioms)
    for world in all_worlds(vocabulary):
        if all(satisfies(vocabulary, world, f) for f in axiom_tuple):
            if not satisfies(vocabulary, world, candidate_formula):
                return False
    return True


def formulas_entail(
    vocabulary: Vocabulary, premises: Iterable[Formula], conclusions: Iterable[Formula]
) -> bool:
    """``premises |= conclusions`` by exhaustive model check."""
    premise_tuple = tuple(premises)
    conclusion_tuple = tuple(conclusions)
    for world in all_worlds(vocabulary):
        if all(satisfies(vocabulary, world, f) for f in premise_tuple):
            if not all(satisfies(vocabulary, world, f) for f in conclusion_tuple):
                return False
    return True


def clause_sets_equivalent(left: ClauseSet, right: ClauseSet) -> bool:
    """Logical equivalence of clause sets, by model comparison."""
    return models_of_clauses(left) == models_of_clauses(right)


def dependency_indices(
    vocabulary: Vocabulary, worlds: frozenset[World] | set[World]
) -> frozenset[int]:
    """``Dep[S]`` as vocabulary indices (Section 1.1, semantic reading).

    A letter ``A`` belongs to the dependency set of a world set ``S`` iff
    ``S`` is *not* closed under flipping ``A``: some world is in ``S``
    while its ``A``-flipped twin is not.  Equivalently, every axiomatisation
    of ``S`` must mention ``A``.
    """
    world_set = frozenset(worlds)
    dependent: set[int] = set()
    for index in range(len(vocabulary)):
        for world in world_set:
            if flip_bit(world, index) not in world_set:
                dependent.add(index)
                break
    return frozenset(dependent)


def dependency_names(
    vocabulary: Vocabulary, worlds: frozenset[World] | set[World]
) -> frozenset[str]:
    """``Dep[S]`` as proposition names."""
    return frozenset(
        vocabulary.name_of(i) for i in dependency_indices(vocabulary, worlds)
    )


def clause_set_dependency_indices(clause_set: ClauseSet) -> frozenset[int]:
    """Brute-force ``Dep[Mod[Phi]]`` for a clause set.

    Exponential reference implementation used to validate the paper's
    ``genmask`` algorithm (2.3.8); the deciding problem is NP-complete
    (Theorem 2.3.9(c)), so no cheap version exists.
    """
    return dependency_indices(clause_set.vocabulary, models_of_clauses(clause_set))
