"""Structures (possible worlds) for a finite vocabulary -- ``Struct[L]``.

A structure ``s : P -> {0, 1}`` (Section 1.1) over an ``n``-letter
vocabulary is represented as an ``n``-bit integer: bit ``i`` (0-based,
matching :meth:`Vocabulary.index_of`) holds ``s(A_{i+1})``.  This makes
worlds hashable, cheap to store in sets, and cheap to "flip" -- the
operation underlying masks and dependency sets.

These are deliberately plain functions over ``(vocabulary, int)`` rather
than a wrapper class: the instance-level semantics (``BLU--I``) enumerates
up to ``2^n`` worlds and the constant factors matter.  The user-facing
wrapper is :class:`repro.db.instances.WorldSet`.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Mapping

from repro.errors import VocabularyError
from repro.logic.formula import Formula
from repro.logic.propositions import Vocabulary

__all__ = [
    "World",
    "all_worlds",
    "world_count",
    "world_from_dict",
    "world_from_true_set",
    "world_to_dict",
    "world_to_true_set",
    "get_bit",
    "set_bit",
    "flip_bit",
    "flip_bits",
    "satisfies",
    "world_str",
    "saturate_on",
]

World = int
"""Type alias: a world is an ``int`` bit vector over some vocabulary."""

_MAX_ENUMERABLE = 24


def world_count(vocabulary: Vocabulary) -> int:
    """``|Struct[L]| = 2^n``."""
    return 1 << len(vocabulary)


def all_worlds(vocabulary: Vocabulary) -> Iterator[World]:
    """Enumerate every structure over ``vocabulary`` (ascending bit order).

    Guarded against accidental astronomically-large enumerations: the
    instance-level semantics is only intended for small vocabularies.
    """
    n = len(vocabulary)
    if n > _MAX_ENUMERABLE:
        raise VocabularyError(
            f"refusing to enumerate 2^{n} worlds; instance-level semantics is "
            f"limited to vocabularies of at most {_MAX_ENUMERABLE} letters"
        )
    return iter(range(1 << n))


def world_from_dict(vocabulary: Vocabulary, assignment: Mapping[str, bool]) -> World:
    """Build a world from a name -> bool mapping.

    Every vocabulary name must be assigned; extra names raise.
    """
    extra = set(assignment) - set(vocabulary.names)
    if extra:
        raise VocabularyError(f"assignment mentions unknown letters {sorted(extra)}")
    missing = set(vocabulary.names) - set(assignment)
    if missing:
        raise VocabularyError(f"assignment is missing letters {sorted(missing)}")
    world = 0
    for name, value in assignment.items():
        if value:
            world |= 1 << vocabulary.index_of(name)
    return world


def world_from_true_set(vocabulary: Vocabulary, true_names: Iterable[str]) -> World:
    """Build a world in which exactly ``true_names`` hold."""
    world = 0
    for name in true_names:
        world |= 1 << vocabulary.index_of(name)
    return world


def world_to_dict(vocabulary: Vocabulary, world: World) -> dict[str, bool]:
    """Expand a world into an explicit name -> bool mapping."""
    return {name: bool(world >> i & 1) for i, name in enumerate(vocabulary.names)}


def world_to_true_set(vocabulary: Vocabulary, world: World) -> frozenset[str]:
    """The set of letters true in ``world``."""
    return frozenset(name for i, name in enumerate(vocabulary.names) if world >> i & 1)


def get_bit(world: World, index: int) -> bool:
    """Truth value of the letter at ``index`` in ``world``."""
    return bool(world >> index & 1)


def set_bit(world: World, index: int, value: bool) -> World:
    """``world`` with the letter at ``index`` forced to ``value``."""
    if value:
        return world | (1 << index)
    return world & ~(1 << index)


def flip_bit(world: World, index: int) -> World:
    """``world`` with the letter at ``index`` toggled."""
    return world ^ (1 << index)


def flip_bits(world: World, indices: Iterable[int]) -> World:
    """``world`` with every listed letter toggled."""
    for index in indices:
        world ^= 1 << index
    return world


def satisfies(vocabulary: Vocabulary, world: World, formula: Formula) -> bool:
    """``s-bar(formula) = 1``: does ``world`` satisfy ``formula``?"""
    index_of = vocabulary.index_of
    return formula.evaluate(lambda name: bool(world >> index_of(name) & 1))


def world_str(vocabulary: Vocabulary, world: World) -> str:
    """Human-readable rendering, e.g. ``{A1, ~A2, A3}``."""
    parts = [
        name if world >> i & 1 else f"~{name}"
        for i, name in enumerate(vocabulary.names)
    ]
    return "{" + ", ".join(parts) + "}"


def saturate_on(worlds: Iterable[World], indices: frozenset[int] | set[int]) -> frozenset[World]:
    """Close a set of worlds under arbitrary re-assignment of ``indices``.

    This is the instance-level action of the simple mask ``mask[P]``
    (Definition 1.5.3): every world is replaced by all worlds that agree
    with it outside ``P``.
    """
    index_list = sorted(indices)
    if not index_list:
        return frozenset(worlds)
    # Clear the masked bits, collect the distinct "skeletons", then expand
    # each skeleton with every combination of masked-bit values.
    clear_mask = 0
    for index in index_list:
        clear_mask |= 1 << index
    skeletons = {world & ~clear_mask for world in worlds}
    result: set[World] = set()
    combos = 1 << len(index_list)
    for skeleton in skeletons:
        for combo in range(combos):
            filled = skeleton
            for bit_position, index in enumerate(index_list):
                if combo >> bit_position & 1:
                    filled |= 1 << index
            result.add(filled)
    return frozenset(result)
