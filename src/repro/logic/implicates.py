"""Prime implicates: the canonical clausal form of a theory.

A clause ``c`` is an *implicate* of ``Phi`` when ``Phi |= c``; it is a
*prime* implicate when no proper subclause is also an implicate.  The set
of prime implicates is the strongest, subsumption-free clausal
presentation of a theory -- a canonical form: two clause sets are
logically equivalent iff their prime-implicate sets coincide.

Why this lives here: the paper's clausal states are only ever defined up
to logical equivalence (its algorithms freely simplify), so a canonical
form is what lets the library *display* and *compare* states
deterministically (:meth:`ClauseSet.reduce` removes subsumed clauses but
is presentation-dependent; prime implicates are not).  It also realises
the Section 4 remark that keeping states "fully expanded to include all
consequences" trivialises masking -- :func:`mask_via_implicates` is that
alternative implementation, ablated against resolve-then-drop in
``benchmarks/bench_a02_ablations.py``.

The computation is Tison-style: saturate under resolution, keep the
subsumption-minimal clauses.  Exponential, as it must be.  Both stages
ride the indexed kernels: saturation is worklist-driven over the literal
occurrence index (:func:`repro.logic.resolution.resolution_closure`) and
the subsumption sweep is signature-filtered (:meth:`ClauseSet.reduce`),
which only changes how the candidates are enumerated, never the result.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.cache import core as cache
from repro.obs import core as obs
from repro.logic import incremental
from repro.logic.clauses import Clause, ClauseSet
from repro.logic.resolution import resolution_closure

__all__ = ["prime_implicates", "is_implicate", "is_prime_implicate", "mask_via_implicates"]


def prime_implicates(clause_set: ClauseSet, max_clauses: int = 100_000) -> ClauseSet:
    """The prime implicates of ``clause_set``.

    >>> from repro.logic import Vocabulary
    >>> vocab = Vocabulary.standard(3)
    >>> cs = ClauseSet.from_strs(vocab, ["A1 | A2", "~A1 | A3"])
    >>> print(prime_implicates(cs))
    {A1 | A2, ~A1 | A3, A2 | A3}

    An unsatisfiable set has the single prime implicate 0 (the empty
    clause); a tautologous set has none.

    The underlying saturation is exponential; when its working set
    outgrows ``max_clauses`` the computation raises
    :class:`repro.errors.ClosureBudgetError` (a dedicated budget error --
    also a :class:`MemoryError` subclass for older callers) rather than
    returning a silently truncated implicate set.

    Memoised by the opt-in kernel cache on the clause set's fingerprint
    plus ``max_clauses``; a top-level hit also skips the (separately
    cached) closure and reduction stages.  A run that exceeds the budget
    is never stored.  With incremental maintenance enabled
    (:mod:`repro.logic.incremental`), the implicates are served from a
    delta-maintained closure-plus-minimal-set track instead.
    """
    if incremental._ENABLED:
        routed = incremental.route_prime_implicates(clause_set, max_clauses)
        if routed is not None:
            return routed
    if cache._ENABLED:
        key = (clause_set.vocabulary, clause_set.fingerprint, max_clauses)
        hit = cache.lookup("logic.prime_implicates", key)
        if hit is not cache.MISS:
            return hit
    with obs.span("logic.prime_implicates", clauses_in=len(clause_set)):
        closed = resolution_closure(clause_set, max_clauses=max_clauses)
        reduced = closed.reduce()
        obs.inc("logic.implicates.candidates", len(closed))
        obs.inc("logic.implicates.survivors", len(reduced))
    if cache._ENABLED:
        cache.store("logic.prime_implicates", key, reduced)
    return reduced


def is_implicate(clause_set: ClauseSet, clause: Clause) -> bool:
    """``Phi |= clause``?  (SAT refutation; tautologies are trivially
    implicates but carry no information.)"""
    from repro.logic.clauses import clause_is_tautologous
    from repro.logic.sat import entails_clause

    if clause_is_tautologous(clause):
        return True
    return entails_clause(clause_set, clause)


def is_prime_implicate(clause_set: ClauseSet, clause: Clause) -> bool:
    """An implicate none of whose proper subclauses is an implicate."""
    if not is_implicate(clause_set, clause):
        return False
    return not any(
        is_implicate(clause_set, clause - {literal}) for literal in clause
    )


def mask_via_implicates(
    clause_set: ClauseSet, indices: Iterable[int], max_clauses: int = 100_000
) -> ClauseSet:
    """Masking by the Section 4 alternative: fully expand to all (prime)
    consequences, then simply drop the clauses mentioning masked letters.

    "We might demand that all sets of clauses be fully expanded to
    include all consequences.  Masking then becomes trivial.  Of course,
    other operations then become intolerably slow."  Semantically equal
    to :func:`repro.blu.clausal_mask.clausal_mask`; the cost moves from
    the mask itself into maintaining the expansion.
    """
    expanded = prime_implicates(clause_set, max_clauses=max_clauses)
    return expanded.without_letters(indices)
