"""Incremental closure maintenance: delta-driven saturation.

The memo-cache (``repro.cache``) only fires when an *identical* clause
set recurs; real update sequences (E10/E16/A4, the session workloads)
produce *nearly*-identical sets -- one clause inserted or deleted per
step.  This module maintains the expensive closure kernels
(``rclosure``, ``resolution_closure``, ``prime_implicates``,
``reduce``) *incrementally* under single-clause deltas, in the spirit
of Chabin & Halfeld Ferrari's incremental consistent updating
(PAPERS.md) and the classic delete-and-rederive (DRed) treatment of
materialised views.

How it stays exact
------------------

* **Insert.**  The resolution closure is a least fixpoint, so
  ``closure(S + {c}) = saturate(closure(S) + {c})`` -- the worklist is
  seeded with only the *delta frontier* (the new clause and its
  transitive resolvents) instead of the whole set.  The saturation
  invariant of :func:`repro.logic.resolution._saturate` carries over:
  every co-present pair is attempted exactly once, when the
  later-queued clause is processed against the live occurrence index.

* **Delete.**  Every formed resolvent records *support edges*
  ``resolvent -> (positive parent, negative parent, pivot)`` -- even
  when two distinct pairs collapse to the same resolvent, so every
  derivation path is known.  Deleting a clause over-deletes its
  transitive support cone from the index, then re-derives: a cone
  member comes back iff it is a base clause or some support pair has
  both parents currently alive.  The two phases are the exact DRed
  fixpoint, so orphaned resolvents retract without re-saturating and
  clauses that survive on an independent derivation stay.

* **Reduce / prime implicates.**  The subsumption-reduced form is the
  (unique) set of subset-minimal clauses; :class:`_MinimalSet`
  maintains it under inserts (evict supersets) and deletes (promote
  the clauses only the deleted minimal subsumed).  Prime implicates
  are the minimal set of the full closure, maintained from the
  closure track's add/retract stream.

* **Budgets.**  ``resolution_closure``'s working set only ever grows,
  so the scratch kernel raises :class:`ClosureBudgetError` iff the
  final closure exceeds ``max_clauses`` -- a maintained track mirrors
  that bit-for-bit: a mid-delta overflow evicts the track (the next
  call rebuilds from scratch, and the memo-cache is never touched on
  the failing path), and a completed track re-raises at query time
  whenever its closure outgrows the requested budget.

Lineages and routing
--------------------

State evolves along *lineages*: an :class:`IncrementalClosure` owns
the maintained tracks for one evolving clause set.  A process-wide
LRU registry adopts each kernel query into the nearest lineage (the
one with the smallest symmetric difference, when that delta is small
enough to be worth replaying) and otherwise starts a fresh lineage --
the structural-break fallback for backend switches, vocabulary
changes, and budget overflows.  Everything is **opt-in** behind one
module flag (:func:`enable_incremental`), mirroring ``repro.cache``
and ``repro.obs``: the disabled path at each kernel call site costs a
single global load and tier-1 counter totals are untouched.

When the memo-cache holds a from-scratch result for the same key, the
routed result is cross-checked against it
(``logic.incremental.validations`` / ``validation_failures``); a
mismatch marks the lineage stale and the cached scratch value wins.
With :mod:`repro.obs.provenance` enabled, incremental saturations
record inputs and resolvents exactly like ``_saturate``, so
``explain`` still produces verifiable derivations from incremental
runs.
"""

from __future__ import annotations

from collections import OrderedDict, deque
from collections.abc import Iterable
from typing import Any

from repro.cache import core as cache
from repro.errors import ClosureBudgetError
from repro.obs import core as obs
from repro.obs import provenance
from repro.logic.clauses import (
    Clause,
    ClauseSet,
    clause_signature,
    clause_sort_key,
)
from repro.logic.occurrence import OccurrenceIndex

__all__ = [
    "IncrementalClosure",
    "enable_incremental",
    "disable_incremental",
    "incremental_enabled",
    "reset_incremental",
    "incremental_stats",
    "touch",
    "route_rclosure",
    "route_resolution_closure",
    "route_prime_implicates",
    "route_reduce",
]

#: Lineages kept in the process-wide registry before LRU eviction.
DEFAULT_LINEAGES = 8

#: Maintained tracks (per pivot set / reduce) kept per lineage.
DEFAULT_TRACKS = 8

# The process-wide switch.  A plain module global (not a ContextVar) so
# the disabled check at kernel call sites is a single global load --
# the same discipline as repro.cache.core and repro.obs.core.
_ENABLED = False
_LINEAGE_CAP = DEFAULT_LINEAGES
_TRACK_CAP = DEFAULT_TRACKS

#: Track key for the subsumption-minimal (reduce) track; closure tracks
#: are keyed by their pivot frozenset, or None for all-letters closure.
_REDUCE_KEY = "reduce"


# ---------------------------------------------------------------------------
# Subsumption-minimal sets under single-clause deltas
# ---------------------------------------------------------------------------


class _MinimalSet:
    """The subset-minimal clauses of a base set, maintained under deltas.

    ``minimal`` is exactly ``{c in base : no proper subset of c is in
    base}`` -- the (unique) result set of :meth:`ClauseSet.reduce`'s
    size-ordered sweep.  Subset tests are pre-filtered by letter-bitmask
    signatures, like the scratch sweep.
    """

    __slots__ = ("base", "minimal", "_sigs")

    def __init__(self, clauses: Iterable[Clause]):
        self.base: set[Clause] = set(clauses)
        self._sigs: dict[Clause, int] = {
            c: clause_signature(c) for c in self.base
        }
        self.minimal: set[Clause] = set()
        for clause in sorted(self.base, key=len):
            if not self._subsumed(clause):
                self.minimal.add(clause)

    def _subsumed(self, clause: Clause) -> bool:
        """Is some *other* minimal clause a subset of ``clause``?"""
        sig = self._sigs[clause]
        sigs = self._sigs
        for kept in self.minimal:
            if kept is clause:
                continue
            kept_sig = sigs[kept]
            if kept_sig & sig == kept_sig and kept <= clause:
                return True
        return False

    def insert(self, clause: Clause) -> None:
        if clause in self.base:
            return
        self.base.add(clause)
        sig = self._sigs[clause] = clause_signature(clause)
        sigs = self._sigs
        for kept in self.minimal:
            kept_sig = sigs[kept]
            if kept_sig & sig == kept_sig and kept <= clause:
                return  # subsumed by an existing minimal: nothing changes
        # The new clause is minimal; it may strictly subsume old minimals.
        self.minimal = {
            kept
            for kept in self.minimal
            if not (sig & sigs[kept] == sig and clause < kept)
        }
        self.minimal.add(clause)

    def delete(self, clause: Clause) -> None:
        if clause not in self.base:
            return
        self.base.discard(clause)
        sig = self._sigs.pop(clause)
        if clause not in self.minimal:
            return
        self.minimal.discard(clause)
        # Promote the clauses whose only subsumer was the deleted minimal:
        # candidates are its proper supersets, swept in size order so
        # newly promoted minimals screen their own supersets.
        sigs = self._sigs
        candidates = [
            other
            for other in self.base
            if sig & sigs[other] == sig and clause < other
        ]
        for other in sorted(candidates, key=len):
            if not self._subsumed(other):
                self.minimal.add(other)


class _ReduceTrack:
    """A maintained subsumption-minimal form of the lineage's base set."""

    __slots__ = ("min",)

    def __init__(self, clauses: Iterable[Clause]):
        self.min = _MinimalSet(clauses)

    def apply(self, deletes: Iterable[Clause], inserts: Iterable[Clause]) -> None:
        for clause in deletes:
            self.min.delete(clause)
        for clause in inserts:
            self.min.insert(clause)


# ---------------------------------------------------------------------------
# Closure tracks: frontier-seeded saturation + DRed retraction
# ---------------------------------------------------------------------------


class _Track:
    """One maintained resolution closure for a fixed pivot set.

    ``pivots`` is a frozenset of letter indices, or ``None`` for
    closure under resolution on every letter (the prime-implicate
    substrate).  ``base`` is the current input clause set; ``index``
    holds its exact closure.  ``supports``/``children`` are the
    support edges every formed resolvent leaves behind -- recorded for
    *every* derivation attempt (including re-derivations of an
    already-present clause) and never dropped, which is what makes the
    DRed retraction exact across arbitrarily long delta histories.
    """

    __slots__ = (
        "pivots",
        "budget",
        "base",
        "index",
        "supports",
        "children",
        "minimal",
        "formed_total",
    )

    def __init__(
        self,
        clauses: Iterable[Clause],
        pivots: frozenset[int] | None,
        budget: int | None = None,
    ):
        self.pivots = pivots
        self.budget = budget
        self.base: set[Clause] = set()
        self.index = OccurrenceIndex()
        self.supports: dict[Clause, set[tuple[Clause, Clause, int]]] = {}
        self.children: dict[Clause, set[Clause]] = {}
        self.minimal: _MinimalSet | None = None
        self.formed_total = 0
        seed = list(clauses)
        self.base.update(seed)
        self._saturate_from(seed)

    # -- the saturation engine ------------------------------------------------

    def _edge(self, res: Clause, pos: Clause, neg: Clause, pivot: int) -> None:
        self.supports.setdefault(res, set()).add((pos, neg, pivot))
        self.children.setdefault(pos, set()).add(res)
        self.children.setdefault(neg, set()).add(res)

    def _note_added(self, clause: Clause) -> None:
        if self.minimal is not None:
            self.minimal.insert(clause)

    def _note_removed(self, clause: Clause) -> None:
        if self.minimal is not None:
            self.minimal.delete(clause)

    def _saturate_from(self, seed_clauses: Iterable[Clause]) -> tuple[int, int]:
        """Saturate with the worklist seeded by ``seed_clauses`` only.

        Mirrors :func:`repro.logic.resolution._saturate` (same pair
        invariant, same budget raise, same provenance recording) but
        runs against the maintained index and records support edges.
        Returns ``(frontier, formed)``: clauses processed and
        resolvents genuinely added.
        """
        from repro.logic.resolution import resolvent

        occ = self.index
        rec = provenance.recorder() if provenance._ENABLED else None
        if rec is not None:
            seeds = sorted(seed_clauses, key=clause_sort_key)
            for clause in seeds:
                rec.ensure(clause)
        else:
            seeds = list(seed_clauses)
        queue: deque[Clause] = deque()
        for clause in seeds:
            if occ.add(clause):
                queue.append(clause)
                self._note_added(clause)
        frontier = 0
        formed = 0
        pivots = self.pivots
        while queue:
            clause = queue.popleft()
            frontier += 1
            for literal in clause:
                index = abs(literal) - 1
                if pivots is not None and index not in pivots:
                    continue
                partners = occ.clauses_with(-literal)
                if not partners:
                    continue
                for partner in list(partners):
                    if literal > 0:
                        pos, neg = clause, partner
                    else:
                        pos, neg = partner, clause
                    res = resolvent(pos, neg, index)
                    if res is None:
                        continue
                    # The edge is recorded even when the resolvent is
                    # already present: retraction must know every
                    # derivation path, not just the first one found.
                    self._edge(res, pos, neg, index)
                    if occ.add(res):
                        queue.append(res)
                        formed += 1
                        self.formed_total += 1
                        self._note_added(res)
                        if rec is not None:
                            parents = (rec.ensure(pos), rec.ensure(neg))
                            rec.record(res, "resolve", parents, pivot=index)
                        if self.budget is not None and len(occ) > self.budget:
                            raise ClosureBudgetError(
                                f"resolution closure exceeded {self.budget}"
                                " clauses",
                                budget=self.budget,
                                formed=formed,
                            )
        if formed:
            # The same work counter the scratch saturation uses, so
            # incremental-vs-scratch kernel work is directly comparable
            # in bench run records.
            obs.inc("logic.resolution.resolvents_formed", formed)
        return frontier, formed

    # -- deltas ---------------------------------------------------------------

    def insert(self, clause: Clause) -> None:
        if clause in self.base:
            return
        self.base.add(clause)
        if clause in self.index:
            # Already derivable: the closure is unchanged (idempotence
            # of the least fixpoint); the clause is merely base now.
            obs.observe("logic.incremental.frontier_size", 0)
            return
        frontier, _formed = self._saturate_from((clause,))
        obs.observe("logic.incremental.frontier_size", frontier)
        reused = len(self.index) - frontier
        if reused > 0:
            obs.inc("logic.incremental.reused_clauses", reused)

    def delete(self, clause: Clause) -> None:
        if clause not in self.base:
            return
        self.base.discard(clause)
        if clause not in self.index:
            return
        # Phase 1 (over-delete): remove the clause and everything its
        # support edges transitively reach within the live index.
        cone: list[Clause] = []
        seen: set[Clause] = {clause}
        stack: list[Clause] = [clause]
        index = self.index
        children = self.children
        while stack:
            doomed = stack.pop()
            if doomed not in index:
                continue
            index.discard(doomed)
            self._note_removed(doomed)
            cone.append(doomed)
            for child in children.get(doomed, ()):
                if child not in seen:
                    seen.add(child)
                    stack.append(child)
        # Phase 2 (re-derive): a cone member returns iff it is a base
        # clause or some support pair has both parents currently alive;
        # each restoration wakes its dead children, so the loop is the
        # least fixpoint of "derivable from what survives".
        supports = self.supports
        work: deque[Clause] = deque(cone)
        while work:
            candidate = work.popleft()
            if candidate in index:
                continue
            alive = candidate in self.base
            if not alive:
                for pos, neg, _pivot in supports.get(candidate, ()):
                    if pos in index and neg in index:
                        alive = True
                        break
            if alive:
                index.add(candidate)
                self._note_added(candidate)
                for child in children.get(candidate, ()):
                    if child not in index and child in seen:
                        work.append(child)
        retracted = sum(1 for doomed in cone if doomed not in index)
        if retracted:
            obs.inc("logic.incremental.retractions", retracted)

    def apply(self, deletes: Iterable[Clause], inserts: Iterable[Clause]) -> None:
        """Apply one delta batch; deletes run first so the working set
        never grows past what the final state needs."""
        for clause in deletes:
            self.delete(clause)
        for clause in inserts:
            self.insert(clause)

    # -- queries --------------------------------------------------------------

    def closure(self) -> frozenset[Clause]:
        return frozenset(self.index)

    def prime_minimal(self) -> set[Clause]:
        """The subsumption-minimal clauses of the maintained closure
        (built lazily on the first prime-implicate query, maintained
        from the closure's add/retract stream afterwards)."""
        if self.minimal is None:
            self.minimal = _MinimalSet(self.index)
        return self.minimal.minimal


# ---------------------------------------------------------------------------
# Lineages
# ---------------------------------------------------------------------------


class IncrementalClosure:
    """The maintained closures of one evolving clause set.

    Wraps occurrence-indexed closure tracks (per pivot set, plus the
    all-letters track the prime implicates ride on) and a
    subsumption-minimal track, all kept valid under
    :meth:`insert_clause` / :meth:`delete_clause` deltas or wholesale
    :meth:`advance` to a nearby clause set.  Tracks are built lazily on
    first query and LRU-capped; a track whose maintenance exceeds its
    closure budget is evicted (``stale`` flips on) and the next query
    on it rebuilds from scratch.
    """

    __slots__ = ("_current", "_tracks", "stale")

    def __init__(self, clause_set: ClauseSet):
        self._current = clause_set
        self._tracks: OrderedDict[Any, _Track | _ReduceTrack] = OrderedDict()
        self.stale = False

    @property
    def current(self) -> ClauseSet:
        """The clause set the maintained closures are valid for."""
        return self._current

    @property
    def vocabulary(self):
        return self._current.vocabulary

    @property
    def track_keys(self) -> tuple[Any, ...]:
        """The live track keys (pivot frozensets, None, ``"reduce"``)."""
        return tuple(self._tracks)

    # -- deltas ---------------------------------------------------------------

    def advance(self, clause_set: ClauseSet) -> int:
        """Move the lineage to ``clause_set``, replaying the symmetric
        difference through every live track; returns the delta size."""
        old = self._current.clauses
        new = clause_set.clauses
        if old == new:
            self._current = clause_set
            return 0
        inserts = new - old
        deletes = old - new
        with obs.span(
            "logic.incremental.delta",
            inserts=len(inserts),
            deletes=len(deletes),
            tracks=len(self._tracks),
        ):
            obs.inc("logic.incremental.inserts", len(inserts))
            obs.inc("logic.incremental.deletes", len(deletes))
            for key in list(self._tracks):
                track = self._tracks[key]
                try:
                    track.apply(deletes, inserts)
                except ClosureBudgetError:
                    # Mid-delta overflow: the track is inconsistent, so
                    # evict it -- the next query rebuilds from scratch
                    # (and the memo-cache was never written to).
                    del self._tracks[key]
                    self.stale = True
                    obs.inc("logic.incremental.budget_evictions")
        self._current = clause_set
        return len(inserts) + len(deletes)

    def insert_clause(self, clause: Clause) -> "IncrementalClosure":
        """Add one clause to the maintained set (no-op if present)."""
        return self._step(self._current.with_clause(frozenset(clause)))

    def delete_clause(self, clause: Clause) -> "IncrementalClosure":
        """Remove one clause from the maintained set (no-op if absent)."""
        clause = frozenset(clause)
        if clause not in self._current.clauses:
            return self
        return self._step(
            ClauseSet._trusted(
                self._current.vocabulary, self._current.clauses - {clause}
            )
        )

    def _step(self, clause_set: ClauseSet) -> "IncrementalClosure":
        self.advance(clause_set)
        return self

    # -- tracks ---------------------------------------------------------------

    def _track(self, key: Any, budget: int | None = None):
        track = self._tracks.get(key)
        if track is None:
            obs.inc("logic.incremental.track_builds")
            if key == _REDUCE_KEY:
                track = _ReduceTrack(self._current.clauses)
            else:
                track = _Track(self._current.clauses, key, budget)
            self._tracks[key] = track
            while len(self._tracks) > _TRACK_CAP:
                self._tracks.popitem(last=False)
        else:
            self._tracks.move_to_end(key)
        return track

    def _raise_budget(self, key: Any, budget: int) -> None:
        """Lift a closure track's maintenance budget before advancing, so
        a query with a larger ``max_clauses`` is not spuriously evicted."""
        track = self._tracks.get(key)
        if isinstance(track, _Track) and track.budget is not None:
            track.budget = max(track.budget, budget)

    # -- queries --------------------------------------------------------------

    def rclosure(self, pivot_indices: Iterable[int]) -> ClauseSet:
        """The maintained closure under resolution on the given letters."""
        pivots = frozenset(pivot_indices)
        track = self._track(pivots)
        return ClauseSet._trusted(self._current.vocabulary, track.closure())

    def _check_budget(self, track: _Track, max_clauses: int) -> None:
        """Scratch-parity budget check: ``_saturate`` only tests the
        budget when a *resolvent* is added (seed clauses are exempt), so
        a closure with no derived clauses never raises regardless of its
        size.  The maintained mirror: raise iff the closure outgrows
        ``max_clauses`` and contains at least one derived clause."""
        size = len(track.index)
        if size > max_clauses and size > len(track.base):
            raise ClosureBudgetError(
                f"resolution closure exceeded {max_clauses} clauses",
                budget=max_clauses,
                formed=track.formed_total,
            )

    def resolution_closure(self, max_clauses: int = 100_000) -> ClauseSet:
        """The maintained all-letters closure (scratch-parity budget:
        raises iff a from-scratch saturation of the current set would)."""
        self._raise_budget(None, max_clauses)
        track = self._track(None, budget=max_clauses)
        self._check_budget(track, max_clauses)
        return ClauseSet._trusted(self._current.vocabulary, track.closure())

    def prime_implicates(self, max_clauses: int = 100_000) -> ClauseSet:
        """The maintained prime implicates (minimal clauses of the
        all-letters closure)."""
        self._raise_budget(None, max_clauses)
        track = self._track(None, budget=max_clauses)
        self._check_budget(track, max_clauses)
        return ClauseSet._trusted(
            self._current.vocabulary, frozenset(track.prime_minimal())
        )

    def reduce(self) -> ClauseSet:
        """The maintained subsumption-reduced form of the current set."""
        track = self._track(_REDUCE_KEY)
        minimal = track.min.minimal
        if len(minimal) == len(self._current.clauses):
            return self._current
        return ClauseSet._trusted(self._current.vocabulary, frozenset(minimal))

    def __repr__(self) -> str:
        return (
            f"IncrementalClosure({len(self._current)} clauses, "
            f"{len(self._tracks)} track(s){', stale' if self.stale else ''})"
        )


# ---------------------------------------------------------------------------
# The process-wide registry and enable flag
# ---------------------------------------------------------------------------


_LINEAGES: OrderedDict[int, IncrementalClosure] = OrderedDict()
_NEXT_LINEAGE_ID = 0


def enable_incremental(
    lineages: int | None = None, tracks: int | None = None
) -> None:
    """Turn incremental closure maintenance on (process-wide, opt-in).

    ``lineages`` / ``tracks`` bound the registry LRU and each lineage's
    track LRU.  Also installs the :meth:`ClauseSet.reduce` routing hook
    (a late-bound module global there, so the clauses module never
    imports this one).
    """
    global _ENABLED, _LINEAGE_CAP, _TRACK_CAP
    if lineages is not None:
        if lineages < 1:
            raise ValueError(f"lineage cap must be >= 1, got {lineages}")
        _LINEAGE_CAP = lineages
    if tracks is not None:
        if tracks < 1:
            raise ValueError(f"track cap must be >= 1, got {tracks}")
        _TRACK_CAP = tracks
    _ENABLED = True
    from repro.logic import clauses as clauses_mod

    clauses_mod._INCREMENTAL_REDUCE = route_reduce


def disable_incremental() -> None:
    """Turn incremental maintenance off.  Lineages are kept (re-enable
    to reuse); call :func:`reset_incremental` to free them."""
    global _ENABLED
    _ENABLED = False
    from repro.logic import clauses as clauses_mod

    clauses_mod._INCREMENTAL_REDUCE = None


def incremental_enabled() -> bool:
    """Whether kernel queries are routed through maintained closures."""
    return _ENABLED


def reset_incremental() -> None:
    """Drop every lineage (and its tracks and support edges)."""
    _LINEAGES.clear()


def incremental_stats() -> dict[str, int]:
    """Registry occupancy: ``{lineages, tracks, stale}``."""
    return {
        "lineages": len(_LINEAGES),
        "tracks": sum(len(l._tracks) for l in _LINEAGES.values()),
        "stale": sum(1 for l in _LINEAGES.values() if l.stale),
    }


def _delta_cap(size: int) -> int:
    """How large a symmetric difference is still worth replaying into an
    existing lineage; beyond it a fresh lineage (scratch build on first
    query) is cheaper."""
    return max(4, size // 4)


def _adopt(clause_set: ClauseSet) -> IncrementalClosure:
    """The nearest lineage for ``clause_set``, or a fresh one.

    Nearest = smallest symmetric difference among same-vocabulary
    lineages; adopted only when that delta is within :func:`_delta_cap`.
    A vocabulary change or a far-away set is a structural break and
    starts a new lineage (evicting LRU beyond the cap).
    """
    global _NEXT_LINEAGE_ID
    target = clause_set.clauses
    best_key = None
    best: IncrementalClosure | None = None
    best_delta = 0
    for key, lineage in _LINEAGES.items():
        if lineage.vocabulary != clause_set.vocabulary:
            continue
        delta = len(lineage.current.clauses.symmetric_difference(target))
        if best is None or delta < best_delta:
            best_key, best, best_delta = key, lineage, delta
    if best is not None and best_delta <= _delta_cap(len(target)):
        _LINEAGES.move_to_end(best_key)
        obs.inc("logic.incremental.lineage_hits")
        return best
    lineage = IncrementalClosure(clause_set)
    _NEXT_LINEAGE_ID += 1
    _LINEAGES[_NEXT_LINEAGE_ID] = lineage
    while len(_LINEAGES) > _LINEAGE_CAP:
        _LINEAGES.popitem(last=False)
    obs.inc("logic.incremental.adoptions")
    return lineage


def touch(clause_set: ClauseSet) -> IncrementalClosure | None:
    """Advance (or adopt) the lineage for ``clause_set`` eagerly.

    The session/BLU layers call this after each state transition so the
    maintained closures track the live state and the next kernel query
    lands on a zero-delta lineage.  Returns the lineage, or ``None``
    when incremental maintenance is off or the state is not clausal.
    """
    if not _ENABLED or not isinstance(clause_set, ClauseSet):
        return None
    lineage = _adopt(clause_set)
    lineage.advance(clause_set)
    return lineage


def _drop(lineage: IncrementalClosure) -> None:
    for key, candidate in list(_LINEAGES.items()):
        if candidate is lineage:
            del _LINEAGES[key]
            return


def _validated(kernel: str, key, lineage: IncrementalClosure, result):
    """Cross-check a routed result against the memo-cache, then publish.

    When the cache holds a from-scratch value for the same fingerprint
    key, the maintained result must match it bit-for-bit; a mismatch
    marks the lineage stale, drops it, and yields the scratch value.
    Otherwise the routed result is stored so scratch callers (and other
    processes' merges) see the same entry a scratch run would produce.
    """
    if cache._ENABLED:
        cached = cache.peek(kernel, key)
        if cached is not cache.MISS:
            if cached != result:
                obs.inc("logic.incremental.validation_failures")
                lineage.stale = True
                _drop(lineage)
                return cached
            obs.inc("logic.incremental.validations")
            return cached
        cache.store(kernel, key, result)
    obs.inc("logic.incremental.results")
    return result


# ---------------------------------------------------------------------------
# Kernel routing (called from resolution / implicates / clauses)
# ---------------------------------------------------------------------------


def route_rclosure(
    clause_set: ClauseSet, pivot_indices: frozenset[int]
) -> ClauseSet | None:
    """Serve ``rclosure`` from a maintained lineage (None when off)."""
    if not _ENABLED:
        return None
    lineage = _adopt(clause_set)
    lineage.advance(clause_set)
    result = lineage.rclosure(pivot_indices)
    key = (clause_set.vocabulary, clause_set.fingerprint, pivot_indices)
    return _validated("logic.rclosure", key, lineage, result)


def route_resolution_closure(
    clause_set: ClauseSet, max_clauses: int
) -> ClauseSet | None:
    """Serve ``resolution_closure`` from a maintained lineage.

    Scratch parity on budgets: raises :class:`ClosureBudgetError` iff
    the closure of the current set exceeds ``max_clauses``, whether
    that is discovered during the delta replay, a fresh track build,
    or the final size check.
    """
    if not _ENABLED:
        return None
    lineage = _adopt(clause_set)
    lineage._raise_budget(None, max_clauses)
    lineage.advance(clause_set)
    result = lineage.resolution_closure(max_clauses)
    key = (clause_set.vocabulary, clause_set.fingerprint, max_clauses)
    return _validated("logic.resolution_closure", key, lineage, result)


def route_prime_implicates(
    clause_set: ClauseSet, max_clauses: int
) -> ClauseSet | None:
    """Serve ``prime_implicates`` from a maintained lineage."""
    if not _ENABLED:
        return None
    lineage = _adopt(clause_set)
    lineage._raise_budget(None, max_clauses)
    lineage.advance(clause_set)
    result = lineage.prime_implicates(max_clauses)
    key = (clause_set.vocabulary, clause_set.fingerprint, max_clauses)
    return _validated("logic.prime_implicates", key, lineage, result)


def route_reduce(clause_set: ClauseSet) -> ClauseSet | None:
    """Serve :meth:`ClauseSet.reduce` from a maintained lineage."""
    if not _ENABLED:
        return None
    lineage = _adopt(clause_set)
    lineage.advance(clause_set)
    result = lineage.reduce()
    key = (clause_set.vocabulary, clause_set.fingerprint)
    return _validated("logic.reduce", key, lineage, result)
