"""repro -- a full reproduction of Hegner's PODS 1987 paper
*Specification and Implementation of Programs for Updating Incomplete
Information Databases*.

The library implements, from scratch:

* the propositional substrate (:mod:`repro.logic`);
* propositional database systems, morphisms, updates, Inset, and masks
  (:mod:`repro.db`);
* the **BLU** language with its instance-level (``BLU--I``) and clausal
  (``BLU--C``) implementations and the canonical emulation between them
  (:mod:`repro.blu`);
* the **HLU** user-level update language, defined entirely in terms of
  BLU, with the where-macro expansion (:mod:`repro.hlu`);
* the Section 5 first-order relational extension with typed nulls and
  semantic resolution (:mod:`repro.relational`);
* the Section 3.3 comparison baselines (:mod:`repro.baselines`);
* workload generators and the E1--E17 experiment harness
  (:mod:`repro.workloads`, :mod:`repro.bench`).

Quick start::

    from repro import IncompleteDatabase

    db = IncompleteDatabase.over(5)
    db.assert_("~A1 | A3", "A1 | A4", "A4 | A5", "~A1 | ~A2 | ~A5")
    db.insert("A1 | A2")              # the paper's Example 3.1.5
    assert db.is_certain("A1 | A2")
"""

from repro.db import DbSchema, WorldSet
from repro.hlu import IncompleteDatabase
from repro.logic import ClauseSet, Vocabulary, parse_formula
from repro.relational import RelationalDatabase, RelationalSchema

__version__ = "0.1.0"

__all__ = [
    "__version__",
    "Vocabulary",
    "ClauseSet",
    "parse_formula",
    "DbSchema",
    "WorldSet",
    "IncompleteDatabase",
    "RelationalSchema",
    "RelationalDatabase",
]
