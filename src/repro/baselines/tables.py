"""V-tables: the Imieliński-Lipski template model (paper §4, [12]).

Section 4's "second avenue": "we are looking at the template model, and
particularly the work on updates for it.  Although this model is not able
to represent all possible worlds, it can represent many important cases
arising in practice."  This module makes that claim checkable.

A **V-table** over a relational schema is a set of rows whose entries are
external constants or *variables* (marked nulls); every variable carries
a type.  Its possible worlds are obtained valuation-by-valuation under
the closed world assumption: for each assignment of variables to
constants of their types, the world contains exactly the instantiated
rows' facts (repeated variables co-vary; Codd nulls are the one-use
special case).

:func:`representable_world_sets` enumerates every world set a bounded
V-table can denote over a (tiny) schema, which yields machine-checked
witnesses for both directions of the paper's claim:

* many practically important states *are* tables (e.g. the result of the
  Jones update restricted to Jones's relation);
* some possible-world sets are *not* (e.g. "no phone at all, or both
  phones" -- pinned in ``tests/baselines/test_tables.py``).
"""

from __future__ import annotations

import itertools
from collections.abc import Iterable

from repro.db.instances import WorldSet
from repro.errors import SchemaError
from repro.obs import core as obs
from repro.relational.grounding import Grounding
from repro.relational.schema import RelationalSchema
from repro.relational.types import TypeExpr

__all__ = ["TableVariable", "VTable", "representable_world_sets", "is_representable"]


class TableVariable:
    """A typed marked null appearing in V-table rows.

    Identity is nominal: two variables with the same type are distinct
    (repeated *occurrences* of one variable co-vary; distinct variables
    vary independently).
    """

    __slots__ = ("name", "type")

    def __init__(self, name: str, type_expr: TypeExpr):
        self.name = name
        self.type = type_expr

    def __eq__(self, other):
        return isinstance(other, TableVariable) and other.name == self.name

    def __hash__(self):
        return hash(("TableVariable", self.name))

    def __repr__(self):
        return f"?{self.name}"


Entry = str | TableVariable


class VTable:
    """A V-table: rows of constants and typed variables, CWA semantics.

    >>> schema = RelationalSchema.build(
    ...     constants={"person": ["Jones"], "telno": ["T1", "T2"]},
    ...     relations={"Phone": [("N", "person"), ("T", "telno")]},
    ... )
    >>> x = TableVariable("x", schema.algebra.named("telno"))
    >>> table = VTable(schema, [("Phone", ("Jones", x))])
    >>> len(table.world_set())      # one world per value of x
    2
    """

    def __init__(
        self,
        schema: RelationalSchema,
        rows: Iterable[tuple[str, tuple[Entry, ...]]],
    ):
        self.schema = schema
        self.grounding = Grounding(schema)
        validated: list[tuple[str, tuple[Entry, ...]]] = []
        for relation, entries in rows:
            signature = schema.relation(relation)
            entries = tuple(entries)
            if len(entries) != signature.arity:
                raise SchemaError(
                    f"row for {relation} has {len(entries)} entries, "
                    f"expected {signature.arity}"
                )
            for attribute, entry in zip(signature.attributes, entries):
                if isinstance(entry, TableVariable):
                    if not (entry.type.members & attribute.type.members):
                        raise SchemaError(
                            f"variable {entry.name} cannot fill a "
                            f"{attribute.name} slot (disjoint types)"
                        )
                elif not attribute.admits(entry):
                    raise SchemaError(
                        f"constant {entry!r} violates typing at {relation}"
                    )
            validated.append((relation, entries))
        self.rows = tuple(validated)

    def variables(self) -> tuple[TableVariable, ...]:
        """The distinct variables, in first-appearance order."""
        seen: dict[str, TableVariable] = {}
        for _, entries in self.rows:
            for entry in entries:
                if isinstance(entry, TableVariable):
                    seen.setdefault(entry.name, entry)
        return tuple(seen.values())

    def world_of_valuation(self, valuation: dict[str, str]) -> int | None:
        """The (bit-packed, grounded) world for one variable assignment,
        or ``None`` when some instantiated row violates typing."""
        world = 0
        for relation, entries in self.rows:
            concrete = tuple(
                valuation[e.name] if isinstance(e, TableVariable) else e
                for e in entries
            )
            if not self.schema.relation(relation).admits(concrete):
                return None
            index = self.grounding.vocabulary.index_of(
                self.grounding.proposition_name(relation, concrete)
            )
            world |= 1 << index
        return world

    def world_set(self) -> WorldSet:
        """All possible worlds (closed world per valuation)."""
        obs.inc("baseline.tables.world_set.calls")
        variables = self.variables()
        domains = [
            sorted(
                variable.type.members & self.schema.algebra.universe
            )
            for variable in variables
        ]
        worlds = set()
        for values in itertools.product(*domains):
            valuation = {v.name: value for v, value in zip(variables, values)}
            world = self.world_of_valuation(valuation)
            if world is not None:
                worlds.add(world)
        return WorldSet(self.grounding.vocabulary, worlds)

    def __repr__(self):
        rendered = ", ".join(
            f"{relation}({', '.join(map(str, entries))})"
            for relation, entries in self.rows
        )
        return f"VTable[{rendered}]"


def _candidate_entries(schema: RelationalSchema, attribute_type, variables):
    yield from sorted(attribute_type.members)
    for variable in variables:
        if variable.type.members & attribute_type.members:
            yield variable


def representable_world_sets(
    schema: RelationalSchema,
    max_rows: int,
    max_variables: int,
) -> dict[frozenset[int], VTable]:
    """Every world set denotable by a V-table with at most ``max_rows``
    rows and ``max_variables`` universal-type variables.

    Exhaustive -- restrict to schemas with a handful of ground facts.
    Returns a map from (frozen) world set to one witnessing table.
    """
    variables = [
        TableVariable(f"x{i}", schema.algebra.universal)
        for i in range(max_variables)
    ]
    all_rows: list[tuple[str, tuple[Entry, ...]]] = []
    for relation_name in sorted(schema.relations):
        signature = schema.relations[relation_name]
        entry_choices = [
            list(_candidate_entries(schema, attribute.type, variables))
            for attribute in signature.attributes
        ]
        for entries in itertools.product(*entry_choices):
            all_rows.append((relation_name, tuple(entries)))
    found: dict[frozenset[int], VTable] = {}
    tables_checked = 0
    for row_count in range(max_rows + 1):
        for combo in itertools.combinations(all_rows, row_count):
            table = VTable(schema, combo)
            worlds = frozenset(table.world_set().worlds)
            found.setdefault(worlds, table)
            tables_checked += 1
    obs.inc("baseline.tables.enumerated", tables_checked)
    return found


def is_representable(
    world_set: WorldSet,
    schema: RelationalSchema,
    max_rows: int = 3,
    max_variables: int = 2,
) -> VTable | None:
    """A witnessing V-table for ``world_set``, or ``None`` if no table
    within the bounds denotes it."""
    return representable_world_sets(schema, max_rows, max_variables).get(
        frozenset(world_set.worlds)
    )
