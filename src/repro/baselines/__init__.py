"""Comparison baselines from Section 3.3 of the paper.

* :mod:`repro.baselines.wilkins` -- auxiliary-letter (history) updates;
* :mod:`repro.baselines.minimal_change` -- the FKUV "flock" approach;
* :mod:`repro.baselines.tabular` -- Abiteboul-Grahne primitives and the
  genmask expressiveness gap.
"""

from repro.baselines.minimal_change import (
    MinimalChangeDatabase,
    SemanticMinimalChangeDatabase,
    Theory,
    maximal_consistent_subsets,
    semantic_minimal_insert,
)
from repro.baselines.tabular import (
    TABULAR_PRIMITIVES,
    hlu_insert_transformer,
    search_for_transformer,
    t_difference,
    t_intersection,
    t_pointwise_and,
    t_pointwise_implies,
    t_pointwise_or,
    t_union,
)
from repro.baselines.tables import (
    TableVariable,
    VTable,
    is_representable,
    representable_world_sets,
)
from repro.baselines.wilkins import WilkinsDatabase

__all__ = [
    "WilkinsDatabase",
    "MinimalChangeDatabase",
    "SemanticMinimalChangeDatabase",
    "semantic_minimal_insert",
    "Theory",
    "maximal_consistent_subsets",
    "TABULAR_PRIMITIVES",
    "t_union",
    "t_intersection",
    "t_difference",
    "t_pointwise_and",
    "t_pointwise_or",
    "t_pointwise_implies",
    "hlu_insert_transformer",
    "search_for_transformer",
    "VTable",
    "TableVariable",
    "is_representable",
    "representable_world_sets",
]
