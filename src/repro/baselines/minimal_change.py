"""The minimal-change ("flock") update strategy (Section 3.3.2; after
Fagin, Kuper, Ullman and Vardi, "Updating Logical Databases").

Instead of masking the inserted formula's dependency letters, minimal
change "looks for minimal ways to alter the database so that the insertion
will be consistent": inserting ``phi`` into a theory ``T`` keeps every
*maximal* subset of ``T`` consistent with ``phi`` and adds ``phi`` to each.
Because distinct maximal subsets are alternatives, the state is a *flock*
-- a set of theories -- and the possible worlds are the union of each
member's models.

Hegner's §3.3.2 point, reproduced in experiment E15: this minimality is
*syntactic* -- logically equivalent presentations of the same theory can
update to different results -- and the result differs from mask-assert
insertion in general.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.db.instances import WorldSet
from repro.logic.cnf import formulas_to_clauses
from repro.logic.formula import Formula
from repro.logic.parser import parse_formula
from repro.logic.propositions import Vocabulary
from repro.logic.sat import entails_clauses, is_satisfiable

__all__ = [
    "Theory",
    "MinimalChangeDatabase",
    "maximal_consistent_subsets",
    "semantic_minimal_insert",
    "SemanticMinimalChangeDatabase",
]

Theory = tuple[Formula, ...]
"""A theory is an ordered tuple of sentences (syntax matters here!)."""


def _satisfiable_with(
    vocabulary: Vocabulary, sentences: Iterable[Formula], extra: Formula | None
) -> bool:
    formulas = list(sentences)
    if extra is not None:
        formulas.append(extra)
    return is_satisfiable(formulas_to_clauses(formulas, vocabulary))


def maximal_consistent_subsets(
    vocabulary: Vocabulary, theory: Theory, formula: Formula
) -> tuple[Theory, ...]:
    """All maximal subsets of ``theory`` consistent with ``formula``.

    Exhaustive over subsets (the flock approach is defined, not optimised,
    this way); intended for the small theories of tests and benches.
    Returns them as tuples preserving the theory's sentence order.
    If ``formula`` itself is unsatisfiable, there are none.
    """
    if not _satisfiable_with(vocabulary, (), formula):
        return ()
    sentences = list(theory)
    n = len(sentences)
    consistent_masks: list[int] = []
    for mask in range(1 << n):
        subset = [sentences[i] for i in range(n) if mask >> i & 1]
        if _satisfiable_with(vocabulary, subset, formula):
            consistent_masks.append(mask)
    maximal = [
        mask
        for mask in consistent_masks
        if not any(
            other != mask and other & mask == mask for other in consistent_masks
        )
    ]
    return tuple(
        tuple(sentences[i] for i in range(n) if mask >> i & 1)
        for mask in sorted(maximal)
    )


class MinimalChangeDatabase:
    """A flock of theories with minimal-change updates.

    >>> db = MinimalChangeDatabase(Vocabulary.standard(2), ["~A1"])
    >>> db.insert("A1")
    >>> db.is_certain("A1")
    True
    """

    def __init__(
        self,
        vocabulary: Vocabulary,
        theory: Iterable[Formula | str] = (),
    ):
        self._vocabulary = vocabulary
        initial: Theory = tuple(
            parse_formula(f) if isinstance(f, str) else f for f in theory
        )
        self._flock: tuple[Theory, ...] = (initial,)

    @property
    def vocabulary(self) -> Vocabulary:
        """The (fixed) vocabulary."""
        return self._vocabulary

    @property
    def flock(self) -> tuple[Theory, ...]:
        """The current alternatives (each a theory)."""
        return self._flock

    def insert(self, formula: Formula | str) -> None:
        """Minimal-change insertion, applied to every flock member."""
        formula = self._parse(formula)
        new_flock: list[Theory] = []
        for theory in self._flock:
            for kept in maximal_consistent_subsets(
                self._vocabulary, theory, formula
            ):
                candidate = kept + (formula,)
                if candidate not in new_flock:
                    new_flock.append(candidate)
        self._flock = tuple(new_flock) if new_flock else ((),)
        if not new_flock:
            # Inserting an unsatisfiable sentence: the flock is empty; we
            # represent that as a single inconsistent theory.
            self._flock = ((formula,),) if not _satisfiable_with(
                self._vocabulary, (), formula
            ) else ((),)

    def delete(self, formula: Formula | str) -> None:
        """Minimal-change deletion: keep maximal subsets *not entailing*
        the formula (no sentence is added)."""
        formula = self._parse(formula)
        query = formulas_to_clauses([formula], self._vocabulary)
        new_flock: list[Theory] = []
        for theory in self._flock:
            sentences = list(theory)
            n = len(sentences)
            good_masks = []
            for mask in range(1 << n):
                subset = [sentences[i] for i in range(n) if mask >> i & 1]
                subset_clauses = formulas_to_clauses(subset, self._vocabulary)
                if not entails_clauses(subset_clauses, query):
                    good_masks.append(mask)
            maximal = [
                mask
                for mask in good_masks
                if not any(o != mask and o & mask == mask for o in good_masks)
            ]
            for mask in sorted(maximal):
                candidate = tuple(sentences[i] for i in range(n) if mask >> i & 1)
                if candidate not in new_flock:
                    new_flock.append(candidate)
        self._flock = tuple(new_flock) if new_flock else ((),)

    # --- semantics ------------------------------------------------------------------

    def world_set(self) -> WorldSet:
        """The possible worlds: union over the flock members' models."""
        worlds = WorldSet.empty(self._vocabulary)
        for theory in self._flock:
            worlds = worlds.union(
                WorldSet.from_formulas(self._vocabulary, theory)
            )
        return worlds

    def is_certain(self, formula: Formula | str) -> bool:
        """True in every possible world of every flock member?"""
        return self.world_set().satisfies_everywhere(self._parse(formula))

    def is_possible(self, formula: Formula | str) -> bool:
        """True somewhere in the flock?"""
        return self.world_set().satisfies_somewhere(self._parse(formula))

    def _parse(self, formula: Formula | str) -> Formula:
        return parse_formula(formula) if isinstance(formula, str) else formula

    def __repr__(self) -> str:
        return f"MinimalChangeDatabase({len(self._flock)} theory/ies)"


# ---------------------------------------------------------------------------
# The semantic variant Hegner alludes to
# ---------------------------------------------------------------------------

def _hamming(left: int, right: int) -> int:
    return bin(left ^ right).count("1")


def semantic_minimal_insert(state: WorldSet, formula: Formula) -> WorldSet:
    """World-level minimal-change insertion.

    Section 3.3.2 remarks that "it is possible to obtain a semantic
    version of minimal change, at the expense of a greatly complicated
    masking function" but omits it for space.  This is the standard
    world-by-world construction (Dalal-style): each possible world moves
    to its *nearest* ``formula``-worlds under Hamming distance on the
    letters.  Unlike the flock it is representation-independent; unlike
    mask-assert it changes as little as possible per world instead of
    forgetting the formula's whole dependency set.
    """
    vocabulary = state.vocabulary
    targets = WorldSet.from_formulas(vocabulary, [formula]).worlds
    if not targets:
        return WorldSet.empty(vocabulary)
    if not state.worlds:
        # Inserting into the impossible state: minimal repair from nothing
        # is simply the formula's worlds.
        return WorldSet(vocabulary, targets)
    out: set[int] = set()
    for world in state.worlds:
        best = min(_hamming(world, target) for target in targets)
        out.update(
            target for target in targets if _hamming(world, target) == best
        )
    return WorldSet(vocabulary, out)


class SemanticMinimalChangeDatabase:
    """A session applying :func:`semantic_minimal_insert` (small
    vocabularies: the state is an explicit world set)."""

    def __init__(self, vocabulary: Vocabulary, theory: Iterable[Formula | str] = ()):
        self._vocabulary = vocabulary
        formulas = [
            parse_formula(f) if isinstance(f, str) else f for f in theory
        ]
        self._state = WorldSet.from_formulas(vocabulary, formulas)

    @property
    def vocabulary(self) -> Vocabulary:
        """The (fixed) vocabulary."""
        return self._vocabulary

    def world_set(self) -> WorldSet:
        """The current possible worlds."""
        return self._state

    def insert(self, formula: Formula | str) -> None:
        """Move every world minimally so the formula holds."""
        formula = self._parse(formula)
        self._state = semantic_minimal_insert(self._state, formula)

    def is_certain(self, formula: Formula | str) -> bool:
        """True in every possible world?"""
        return self._state.satisfies_everywhere(self._parse(formula))

    def is_possible(self, formula: Formula | str) -> bool:
        """True in some possible world?"""
        return self._state.satisfies_somewhere(self._parse(formula))

    def _parse(self, formula: Formula | str) -> Formula:
        return parse_formula(formula) if isinstance(formula, str) else formula

    def __repr__(self) -> str:
        return f"SemanticMinimalChangeDatabase({len(self._state)} world(s))"
