"""The Abiteboul-Grahne primitives at the propositional level (Section 3.3.3).

Hegner observes that of Abiteboul and Grahne's six table-update primitives,
three are set-theoretic -- union, intersection, difference -- matching
BLU's ``combine``, ``assert``, and (via complement) difference; the other
three are "possible-world by possible-world logical operations" ``and``,
``or``, ``implies``.  He then claims these six "are also sufficient in
power to realize HLU, although it appears that they are strictly less
powerful than those of BLU, in that genmask cannot be realized".

This module provides the six primitives over :class:`WorldSet` and a
bounded-depth expressiveness search used by experiment E14 to exhibit the
gap: no composition of the six primitives (up to the searched depth, with
semantic deduplication over *all* inputs of a small schema) computes the
mask-by-genmask transformer that HLU-insert needs.
"""

from __future__ import annotations

from collections.abc import Callable

from repro.db.instances import WorldSet
from repro.logic.propositions import Vocabulary
from repro.logic.structures import all_worlds
from repro.obs import core as obs

__all__ = [
    "t_union",
    "t_intersection",
    "t_difference",
    "t_pointwise_and",
    "t_pointwise_or",
    "t_pointwise_implies",
    "TABULAR_PRIMITIVES",
    "hlu_insert_transformer",
    "search_for_transformer",
]


def t_union(left: WorldSet, right: WorldSet) -> WorldSet:
    """Set union (= BLU combine)."""
    return left.union(right)


def t_intersection(left: WorldSet, right: WorldSet) -> WorldSet:
    """Set intersection (= BLU assert)."""
    return left.intersection(right)


def t_difference(left: WorldSet, right: WorldSet) -> WorldSet:
    """Set difference (intersection with absolute complement)."""
    return left.difference(right)


def _pointwise(
    left: WorldSet, right: WorldSet, combine_bits: Callable[[int, int], int]
) -> WorldSet:
    full = (1 << len(left.vocabulary)) - 1
    return WorldSet(
        left.vocabulary,
        (combine_bits(x, y) & full for x in left for y in right),
    )


def t_pointwise_and(left: WorldSet, right: WorldSet) -> WorldSet:
    """World-by-world conjunction: each pair of worlds meets bitwise."""
    return _pointwise(left, right, lambda x, y: x & y)


def t_pointwise_or(left: WorldSet, right: WorldSet) -> WorldSet:
    """World-by-world disjunction: bitwise join of each pair."""
    return _pointwise(left, right, lambda x, y: x | y)


def t_pointwise_implies(left: WorldSet, right: WorldSet) -> WorldSet:
    """World-by-world material implication, bitwise."""
    return _pointwise(left, right, lambda x, y: (~x) | y)


TABULAR_PRIMITIVES: dict[str, Callable[[WorldSet, WorldSet], WorldSet]] = {
    "union": t_union,
    "intersection": t_intersection,
    "difference": t_difference,
    "and": t_pointwise_and,
    "or": t_pointwise_or,
    "implies": t_pointwise_implies,
}
"""The six primitives, by name."""


def hlu_insert_transformer(state: WorldSet, payload: WorldSet) -> WorldSet:
    """The target function: HLU-insert at the instance level,
    ``assert(mask(s0, genmask(s1)), s1)``."""
    return state.saturate(payload.dependency_indices()).intersection(payload)


def _all_world_sets(vocabulary: Vocabulary) -> list[WorldSet]:
    count = 1 << len(vocabulary)
    return [
        WorldSet(vocabulary, (w for w in all_worlds(vocabulary) if bits >> w & 1))
        for bits in range(1 << count)
    ]


def search_for_transformer(
    vocabulary: Vocabulary,
    target: Callable[[WorldSet, WorldSet], WorldSet],
    max_rounds: int = 3,
    max_functions: int = 20000,
) -> bool:
    """Can a composition of the six primitives compute ``target``?

    Functions of two state arguments are represented extensionally: a
    tuple of outputs over *every* input pair of the (small) vocabulary.
    Starting from the two projections, each round composes every known
    function pair under every primitive, deduplicating semantically.
    Returns ``True`` if the target's table is reached within
    ``max_rounds``; ``False`` means "not expressible up to this depth"
    (the honest bounded claim of experiment E14; constants are not seeded,
    matching the primitives' binary signatures).
    """
    inputs: list[tuple[WorldSet, WorldSet]] = [
        (x, y)
        for x in _all_world_sets(vocabulary)
        for y in _all_world_sets(vocabulary)
    ]

    def table_of(function: Callable[[WorldSet, WorldSet], WorldSet]) -> tuple:
        return tuple(frozenset(function(x, y).worlds) for x, y in inputs)

    obs.inc("baseline.tabular.searches")
    target_table = table_of(target)
    known: dict[tuple, None] = {}
    frontier = [table_of(lambda x, y: x), table_of(lambda x, y: y)]
    for table in frontier:
        known.setdefault(table, None)
    if target_table in known:
        return True

    primitive_bits = {
        "union": lambda a, b: a | b,
        "intersection": lambda a, b: a & b,
        "difference": lambda a, b: a - b,
        "and": None,
        "or": None,
        "implies": None,
    }
    # Precompute pointwise ops on frozensets of world ints.
    full = (1 << len(vocabulary)) - 1

    def pw(op):
        def combined(a: frozenset, b: frozenset) -> frozenset:
            return frozenset(op(x, y) & full for x in a for y in b)

        return combined

    operations = [
        lambda a, b: a | b,
        lambda a, b: a & b,
        lambda a, b: a - b,
        pw(lambda x, y: x & y),
        pw(lambda x, y: x | y),
        pw(lambda x, y: (~x) | y),
    ]

    for _ in range(max_rounds):
        tables = list(known)
        added = False
        for left_table in tables:
            for right_table in tables:
                for operation in operations:
                    new_table = tuple(
                        operation(lv, rv)
                        for lv, rv in zip(left_table, right_table)
                    )
                    if new_table == target_table:
                        return True
                    if new_table not in known:
                        known[new_table] = None
                        obs.inc("baseline.tabular.functions_discovered")
                        added = True
                        if len(known) > max_functions:
                            return False
        if not added:
            return False  # closure reached without finding the target
    return target_table in known
