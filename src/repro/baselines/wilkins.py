"""The Wilkins update strategy (Section 3.3.1; Wilkins, STAN-CS-86-1096).

Hegner characterises Wilkins' algorithms as follows: update semantics
essentially identical to his own, *except* that the approach is syntactic
(Remark 1.4.7 -- inserting the tautology ``A1 | ~A1`` masks ``A1``), and
the implementation "introduces new auxiliary proposition letters at each
update", deferring the mask computation "via the retention of historical
information".  Updates are "linear in the sizes of the database and update
formulas"; the price is paid at query time, because the query solver must
reason over an ever-growing vocabulary, and "cleaning up" the knowledge
base means masking the auxiliaries -- an inherently hard problem.

The original report is unavailable; this reconstruction (documented in
DESIGN.md) realises exactly those properties:

* ``insert(phi)`` renames every *syntactic* letter of ``phi`` occurring in
  the database to a fresh auxiliary (history) letter -- one pass over the
  clause set -- and then adds ``phi``'s clauses.  The renamed letters are
  implicitly existentially quantified history: projecting the models onto
  the base letters gives mask-then-assert with the *syntactic* letter set.
* ``is_certain(psi)`` refutes over the grown vocabulary (DPLL).
* ``cleanup()`` eliminates all auxiliary letters by resolution
  (Davis-Putnam, i.e. the ``BLU--C[mask]`` algorithm) -- the expensive
  deferred mask.

Experiment E11 measures the trade-off; tests verify the semantic agreement
with Hegner's insert (when syntactic = semantic dependency) and the
Remark 1.4.7 divergence on tautologies.
"""

from __future__ import annotations

from repro.blu.clausal_mask import clausal_mask
from repro.logic.clauses import Clause, ClauseSet, literal_index, make_literal
from repro.logic.cnf import formula_to_clauses
from repro.logic.formula import Formula
from repro.logic.parser import parse_formula
from repro.logic.propositions import Vocabulary
from repro.logic.sat import entails_clauses, is_satisfiable

__all__ = ["WilkinsDatabase"]


class WilkinsDatabase:
    """An incomplete-information database with Wilkins-style updates.

    >>> db = WilkinsDatabase(Vocabulary.standard(3))
    >>> db.insert("A1 | A2")
    >>> db.aux_count
    2
    >>> db.is_certain("A1 | A2")
    True
    """

    def __init__(self, base_vocabulary: Vocabulary, state: ClauseSet | None = None):
        self._base = base_vocabulary
        self._vocabulary = base_vocabulary
        self._state = state if state is not None else ClauseSet.tautology(base_vocabulary)
        if self._state.vocabulary != self._vocabulary:
            from repro.errors import VocabularyMismatchError

            raise VocabularyMismatchError("initial state must be over the base vocabulary")
        self._aux_names: list[str] = []

    # --- accessors ------------------------------------------------------------

    @property
    def base_vocabulary(self) -> Vocabulary:
        """The user-visible letters."""
        return self._base

    @property
    def vocabulary(self) -> Vocabulary:
        """Base plus auxiliary (history) letters -- grows with updates."""
        return self._vocabulary

    @property
    def state(self) -> ClauseSet:
        """The clause set over the grown vocabulary."""
        return self._state

    @property
    def aux_count(self) -> int:
        """Number of auxiliary letters introduced so far."""
        return len(self._aux_names)

    # --- updates (linear time) ---------------------------------------------------

    def assert_(self, formula: Formula | str) -> None:
        """Monotone assertion: just add the clauses."""
        formula = self._parse(formula)
        addition = formula_to_clauses(formula, self._base)
        self._state = self._state.union(self._lift(addition))

    def insert(self, formula: Formula | str) -> None:
        """Wilkins insert: rename the formula's *syntactic* letters in the
        database to fresh history letters, then add the formula.

        One linear pass; no genmask, no resolution.
        """
        formula = self._parse(formula)
        letters = sorted(formula.props(), key=self._base.index_of)
        fresh = self._vocabulary.fresh_names(len(letters), stem="H")
        self._vocabulary = self._vocabulary.extended(fresh)
        self._aux_names.extend(fresh)

        renaming = {
            self._base.index_of(old): self._vocabulary.index_of(new)
            for old, new in zip(letters, fresh)
        }
        renamed: set[Clause] = set()
        for clause in self._state.clauses:
            renamed.add(
                frozenset(self._rename_literal(lit, renaming) for lit in clause)
            )
        addition = self._lift(formula_to_clauses(formula, self._base))
        self._state = ClauseSet(self._vocabulary, renamed).union(addition)

    def delete(self, formula: Formula | str) -> None:
        """Wilkins delete: insert the negation."""
        from repro.logic.formula import Not

        self.insert(Not(self._parse(formula)))

    # --- queries (cost grows with the vocabulary) -----------------------------------

    def is_certain(self, formula: Formula | str) -> bool:
        """Certain truth of a base-letter formula, by refutation over the
        full (grown) vocabulary."""
        formula = self._parse(formula)
        query = self._lift(formula_to_clauses(formula, self._base))
        return entails_clauses(self._state, query)

    def is_possible(self, formula: Formula | str) -> bool:
        """Possible truth of a base-letter formula."""
        formula = self._parse(formula)
        query = self._lift(formula_to_clauses(formula, self._base))
        return is_satisfiable(self._state.union(query))

    def is_consistent(self) -> bool:
        """Does some possible world remain?"""
        return is_satisfiable(self._state)

    # --- the deferred mask ----------------------------------------------------------

    def cleanup(self) -> None:
        """Eliminate every auxiliary letter by resolution (the deferred
        mask) and shrink back to the base vocabulary.  Inherently hard --
        this is exactly ``BLU--C[mask]`` on the history letters."""
        aux_indices = [self._vocabulary.index_of(n) for n in self._aux_names]
        masked = clausal_mask(self._state, aux_indices)
        base_clauses = [
            frozenset(
                self._relocate_base_literal(lit) for lit in clause
            )
            for clause in masked.clauses
        ]
        self._vocabulary = self._base
        self._aux_names = []
        self._state = ClauseSet(self._base, base_clauses)

    # --- internals ------------------------------------------------------------------

    def _parse(self, formula: Formula | str) -> Formula:
        return parse_formula(formula) if isinstance(formula, str) else formula

    def _lift(self, clause_set: ClauseSet) -> ClauseSet:
        """Re-home base-vocabulary clauses into the grown vocabulary.

        Base letters occupy the same leading indices in every grown
        vocabulary, so the literals carry over unchanged.
        """
        return ClauseSet(self._vocabulary, clause_set.clauses)

    @staticmethod
    def _rename_literal(literal: int, renaming: dict[int, int]) -> int:
        index = literal_index(literal)
        if index in renaming:
            return make_literal(renaming[index], positive=literal > 0)
        return literal

    def _relocate_base_literal(self, literal: int) -> int:
        index = literal_index(literal)
        if index >= len(self._base):
            raise AssertionError(
                "cleanup left an auxiliary letter in the state"
            )
        return literal
