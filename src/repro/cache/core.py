"""The kernel memo-cache: size-bounded LRU stores behind one enable flag.

The hot clausal kernels (``rclosure``, ``resolution_closure``,
``reduce``, ``count_models_exact``, ``prime_implicates``, and the blu
``mask``/``genmask`` call sites) are *pure functions of immutable
inputs*: a :class:`~repro.logic.clauses.ClauseSet` never changes after
construction, and every kernel output is itself immutable (a
``ClauseSet``, a ``frozenset``, or an ``int``).  Repeated-update
workloads (E10, E16, A4, the Abiteboul--Grahne and Wilkins baselines)
re-derive identical closures again and again; memoising them is a
correctness-preserving optimisation in the paper's Section 4 sense.

Design, mirroring ``repro.obs.core``:

* one process-wide enable flag (``_ENABLED``); instrumented kernels
  check it directly, so the disabled path costs a single global load --
  the cache is strictly **opt-in** and tier-1 counter totals are
  untouched while it is off;
* per-kernel :class:`KernelCache` stores (created lazily), each a
  size-bounded LRU over an :class:`~collections.OrderedDict` with
  hit/miss/eviction tallies;
* every hit/miss/eviction is *also* mirrored into ``repro.obs`` as
  ``cache.<kernel>.hits`` / ``.misses`` / ``.evictions`` counters, so
  traces and BENCH run records can report cache effectiveness next to
  kernel work.

Unlike the context-local obs state, the cache is deliberately
process-wide: memoised results are immutable values, so sharing them
across contexts is safe and is the whole point.  The store is not
guarded by a lock -- the REPL, the bench runner, and each ``--jobs``
worker process are single-threaded, and CPython dict operations keep
concurrent readers safe enough for a cache whose worst failure mode is
a spurious miss.
"""

from __future__ import annotations

from collections import OrderedDict
from collections.abc import Iterable, Mapping

from repro.obs import core as obs
from repro.obs import runtime

__all__ = [
    "DEFAULT_CAPACITY",
    "MISS",
    "KernelCache",
    "enable_cache",
    "disable_cache",
    "cache_enabled",
    "cache_capacity",
    "clear_caches",
    "cache_stats",
    "merge_stats",
    "lookup",
    "peek",
    "store",
]

#: Entries kept per kernel before LRU eviction kicks in.  Sized for the
#: experiment suite: the largest states are a few thousand clause sets.
DEFAULT_CAPACITY = 4096

#: Sentinel distinguishing "not cached" from legitimately falsy results
#: (``count_models_exact`` can return 0; an empty ClauseSet is falsy).
MISS = object()

#: Statistic fields every stats dict carries, in emission order.
STAT_KEYS = ("hits", "misses", "evictions", "entries", "capacity")

# The process-wide switch.  A plain module global (not a ContextVar) so
# the disabled check at kernel call sites is a single global load.
_ENABLED = False
_CAPACITY = DEFAULT_CAPACITY


class KernelCache:
    """One kernel's LRU memo store with hit/miss/eviction tallies."""

    __slots__ = ("name", "capacity", "hits", "misses", "evictions", "_entries")

    def __init__(self, name: str, capacity: int = DEFAULT_CAPACITY):
        if capacity < 0:
            raise ValueError(f"cache capacity must be >= 0, got {capacity}")
        self.name = name
        self.capacity = capacity
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self._entries: OrderedDict = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    def lookup(self, key):
        """The cached value for ``key``, or :data:`MISS`.

        A hit refreshes the entry's LRU position.  Tallies the outcome
        both locally and (when obs is enabled) as a ``cache.<name>.*``
        counter.
        """
        value = self._entries.get(key, MISS)
        if value is MISS:
            self.misses += 1
            obs.inc(f"cache.{self.name}.misses")
            runtime.count("cache.misses")
            return MISS
        self._entries.move_to_end(key)
        self.hits += 1
        obs.inc(f"cache.{self.name}.hits")
        runtime.count("cache.hits")
        return value

    def store(self, key, value) -> None:
        """Insert ``key -> value``, evicting least-recently-used entries.

        A capacity of 0 stores nothing (the cache degrades to a
        pass-through that still counts misses); re-storing an existing
        key refreshes its LRU position.
        """
        if self.capacity == 0:
            return
        if key in self._entries:
            self._entries.move_to_end(key)
            self._entries[key] = value
            return
        while len(self._entries) >= self.capacity:
            self._entries.popitem(last=False)
            self.evictions += 1
            obs.inc(f"cache.{self.name}.evictions")
            runtime.count("cache.evictions")
        self._entries[key] = value

    def resize(self, capacity: int) -> None:
        """Change the capacity, evicting LRU entries that no longer fit."""
        if capacity < 0:
            raise ValueError(f"cache capacity must be >= 0, got {capacity}")
        self.capacity = capacity
        while len(self._entries) > capacity:
            self._entries.popitem(last=False)
            self.evictions += 1
            obs.inc(f"cache.{self.name}.evictions")

    def clear(self) -> None:
        """Drop every entry and zero the tallies."""
        self._entries.clear()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def stats(self) -> dict[str, int]:
        """``{hits, misses, evictions, entries, capacity}`` for this kernel."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "entries": len(self._entries),
            "capacity": self.capacity,
        }


_CACHES: dict[str, KernelCache] = {}


def _cache(kernel: str) -> KernelCache:
    found = _CACHES.get(kernel)
    if found is None:
        found = _CACHES[kernel] = KernelCache(kernel, _CAPACITY)
    return found


def enable_cache(capacity: int | None = None) -> None:
    """Turn kernel memoisation on (process-wide).

    ``capacity`` bounds each per-kernel store (default
    :data:`DEFAULT_CAPACITY`); passing it resizes existing stores,
    evicting LRU entries that no longer fit.  Capacity 0 is legal and
    makes every lookup a miss while storing nothing.
    """
    global _ENABLED, _CAPACITY
    if capacity is not None:
        if capacity < 0:
            raise ValueError(f"cache capacity must be >= 0, got {capacity}")
        _CAPACITY = capacity
        for cache in _CACHES.values():
            cache.resize(capacity)
    _ENABLED = True


def disable_cache() -> None:
    """Turn kernel memoisation off.  Entries are kept (re-enable to reuse);
    call :func:`clear_caches` to free them."""
    global _ENABLED
    _ENABLED = False


def cache_enabled() -> bool:
    """Whether kernel results are currently being memoised."""
    return _ENABLED


def cache_capacity() -> int:
    """The per-kernel entry bound new stores are created with."""
    return _CAPACITY


def clear_caches() -> None:
    """Drop every entry and zero every tally in every kernel store."""
    for cache in _CACHES.values():
        cache.clear()


def cache_stats() -> dict[str, dict[str, int]]:
    """Per-kernel ``{hits, misses, evictions, entries, capacity}``.

    Only kernels that have seen at least one lookup appear; the mapping
    is sorted by kernel name so emitted stats are deterministic.
    """
    return {
        name: cache.stats()
        for name, cache in sorted(_CACHES.items())
        if cache.hits or cache.misses
    }


def merge_stats(
    many: Iterable[Mapping[str, Mapping[str, int]]],
) -> dict[str, dict[str, int]]:
    """Combine per-worker :func:`cache_stats` mappings into one.

    Hits, misses, evictions, and entries are summed (each worker process
    owns an independent store); capacity is the maximum, since it is a
    per-store bound rather than an additive total.
    """
    merged: dict[str, dict[str, int]] = {}
    for stats in many:
        for kernel, values in stats.items():
            slot = merged.setdefault(kernel, dict.fromkeys(STAT_KEYS, 0))
            for key in ("hits", "misses", "evictions", "entries"):
                slot[key] += int(values.get(key, 0))
            slot["capacity"] = max(slot["capacity"], int(values.get("capacity", 0)))
    return {name: merged[name] for name in sorted(merged)}


def lookup(kernel: str, key):
    """The memoised value for ``(kernel, key)``, or :data:`MISS`.

    Callers on hot paths should check ``core._ENABLED`` first and skip
    key construction entirely while the cache is off; this function
    re-checks so cold paths can call it unconditionally.
    """
    if not _ENABLED:
        return MISS
    return _cache(kernel).lookup(key)


def peek(kernel: str, key):
    """A side-effect-free probe: the memoised value or :data:`MISS`.

    Unlike :func:`lookup`, a peek tallies nothing and does not refresh
    the entry's LRU position -- it is for *validation*, not retrieval:
    :mod:`repro.logic.incremental` cross-checks maintained closures
    against from-scratch cached results without perturbing the hit/miss
    counters the bench gates compare.
    """
    if not _ENABLED:
        return MISS
    found = _CACHES.get(kernel)
    if found is None:
        return MISS
    return found._entries.get(key, MISS)


def store(kernel: str, key, value) -> None:
    """Memoise ``value`` for ``(kernel, key)`` (no-op while disabled)."""
    if _ENABLED:
        _cache(kernel).store(key, value)
