"""``repro.cache``: opt-in memoisation for the hot pure clausal kernels.

Every cached kernel is a pure function of immutable inputs
(:class:`~repro.logic.clauses.ClauseSet` values never mutate), keyed by
a canonical clause-set fingerprint -- a sorted-clause BLAKE2b digest
plus the letter-bitmask signature (:mod:`repro.cache.fingerprint`) --
paired with the vocabulary and any extra kernel arguments.  Stores are
size-bounded LRU with hit/miss/eviction tallies mirrored into
``repro.obs`` counters (:mod:`repro.cache.core`).  See DESIGN.md
section 1.10.

Typical use::

    from repro import cache

    cache.enable_cache()            # default capacity per kernel
    ... run repeated updates ...
    print(cache.cache_stats())      # {"logic.reduce": {"hits": ...}, ...}

Surfaced as ``benchmarks/run_experiments.py --cache`` and the REPL's
``:cache`` command.  The cache is off by default; with it off, kernel
behaviour and ``repro.obs`` counter totals are bit-identical to an
uncached build (guarded by ``tests/cache/test_differential.py``).
"""

from repro.cache.core import (
    DEFAULT_CAPACITY,
    MISS,
    STAT_KEYS,
    KernelCache,
    cache_capacity,
    cache_enabled,
    cache_stats,
    clear_caches,
    disable_cache,
    enable_cache,
    lookup,
    merge_stats,
    store,
)
from repro.cache.fingerprint import (
    Fingerprint,
    clause_set_fingerprint,
    fingerprint_of_clauses,
)

__all__ = [
    "DEFAULT_CAPACITY",
    "MISS",
    "STAT_KEYS",
    "KernelCache",
    "Fingerprint",
    "enable_cache",
    "disable_cache",
    "cache_enabled",
    "cache_capacity",
    "cache_stats",
    "clear_caches",
    "merge_stats",
    "lookup",
    "store",
    "clause_set_fingerprint",
    "fingerprint_of_clauses",
]
