"""Canonical clause-set fingerprints: the keys of the kernel memo-cache.

A fingerprint condenses a :class:`~repro.logic.clauses.ClauseSet`'s
*content* -- which clauses it holds, independent of construction order --
into a small hashable value::

    (clause_count, signature_mask, digest)

* ``clause_count`` -- number of (distinct, non-tautologous) clauses;
* ``signature_mask`` -- the OR of the per-clause letter-bitmask
  signatures introduced in :func:`repro.logic.clauses.clause_signature`:
  bit ``i`` is set iff letter ``i`` occurs somewhere in the set.  A
  cheap discriminator (two sets over different letters can never
  collide) and a useful debugging handle, but *not* sufficient on its
  own -- sets with the same letters in different clause shapes share a
  mask, which is exactly what the digest disambiguates;
* ``digest`` -- a 128-bit BLAKE2b hash over the **sorted** clause list,
  each clause itself sorted, literals encoded as fixed-width signed
  integers with an explicit clause separator.  Sorting makes the digest
  canonical: two equal clause sets produce byte-identical digests no
  matter how they were built, and 128 bits makes an accidental
  collision between *unequal* sets astronomically unlikely (~2^-64
  birthday bound even after 2^32 distinct sets).

The vocabulary is deliberately **not** part of the fingerprint; cache
keys pair the fingerprint with the (hashable) ``Vocabulary`` object, so
equal clause contents over different vocabularies never alias.

This module imports nothing from ``repro.logic`` (it is duck-typed over
``.clauses``), so ``repro.logic.clauses`` can import it without a cycle.
"""

from __future__ import annotations

import hashlib
from collections.abc import Iterable

__all__ = ["Fingerprint", "fingerprint_of_clauses", "clause_set_fingerprint"]

Fingerprint = tuple[int, int, bytes]
"""Type alias: ``(clause_count, signature_mask, digest)``."""

#: Literals are non-zero ints, so eight zero bytes can never be confused
#: with an encoded literal -- a safe clause separator.
_SEPARATOR = (0).to_bytes(8, "little", signed=True)


def fingerprint_of_clauses(clauses: Iterable[Iterable[int]]) -> Fingerprint:
    """Fingerprint an iterable of clauses (iterables of literal ints).

    The clauses are canonicalised (each clause sorted, then the clause
    list sorted) before hashing, so any presentation of the same set of
    clauses fingerprints identically.
    """
    canonical = sorted(tuple(sorted(clause)) for clause in clauses)
    signature_mask = 0
    digest = hashlib.blake2b(digest_size=16)
    for clause in canonical:
        for literal in clause:
            signature_mask |= 1 << (abs(literal) - 1)
            digest.update(literal.to_bytes(8, "little", signed=True))
        digest.update(_SEPARATOR)
    return (len(canonical), signature_mask, digest.digest())


def clause_set_fingerprint(clause_set) -> Fingerprint:
    """Fingerprint anything exposing a ``.clauses`` iterable of clauses.

    :meth:`repro.logic.clauses.ClauseSet.fingerprint` calls this lazily
    and caches the result on the (immutable) instance, so in practice
    each clause set pays the O(Length log Length) canonicalisation once.
    """
    return fingerprint_of_clauses(clause_set.clauses)
