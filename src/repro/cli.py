"""An interactive HLU shell over :class:`IncompleteDatabase`.

Run ``python -m repro.cli --letters 5`` (or the ``repro-hlu`` console
script) and type HLU programs in the paper's surface syntax::

    hlu> (assert {~A1 | A3, A1 | A4, A4 | A5, ~A1 | ~A2 | ~A5})
    hlu> (insert {A1 | A2})
    hlu> ? A1 | A2
    certain
    hlu> :state

Commands:

=================  ==================================================
``(...)``          apply an HLU program (assert/mask/insert/delete/
                   modify/where)
``? <formula>``    is the formula certain (true in every world)?
``?? <formula>``   is the formula possible (true in some world)?
``:state``         show the state in the backend representation
``:canonical``     show the state as prime implicates (canonical form)
``:worlds [n]``    list up to n possible worlds (default 8)
``:literals``      the literals certain in every world
``:history``       the updates applied so far
``:backend <b>``   switch to ``clausal`` or ``instance``
``:reset``         back to total ignorance
``:save <file>``   write the session (state + history) to a file
``:load <file>``   restore a session saved with :save
``:trace <c>``     ``on`` / ``off`` instrumentation; ``show`` the span
                   tree recorded so far; ``clear`` it
``:stats``         kernel counter deltas since the last ``:stats reset``
                   (needs ``:trace on``); ``:stats all`` for absolute
                   totals
``:profile [n]``   hotspot table of the spans recorded so far -- self
                   time, call counts, p50/p90/p99 -- top ``n`` rows
                   (default 15; needs ``:trace on``)
``:bench last``    summary of the most recent ``BENCH_*.json`` run
                   record (``:bench <file>`` for a specific one)
``:cache <c>``     ``on [capacity]`` / ``off`` kernel memoisation;
                   ``stats`` per-kernel hit/miss/eviction table;
                   ``clear`` drops every cached entry
``:watch [n]``     live telemetry view: per-op counts, windowed ops/s
                   and p50/p99, counters, gauges (auto-enables
                   ``repro.obs.runtime``); with ``n`` seconds and a
                   TTY, refreshes every ``n`` seconds until Ctrl-C
``:help``          this text
``:quit``          leave
=================  ==================================================

The module doubles as the home of the benchmark-diff and trace-analysis
tools::

    python -m repro.cli bench-diff BENCH_x.json [--against baseline.json]
    python -m repro.cli trace-report trace.jsonl [--limit N]
        [--folded out.folded] [--speedscope out.speedscope.json]
    python -m repro.cli telemetry telemetry.jsonl [--prometheus]

``bench-diff`` renders the run-vs-baseline regression table and exits
nonzero when gated metrics regressed (see README "Performance
trajectory"); ``trace-report`` schema-checks a ``--trace-out`` JSON-lines
file, prints its hotspot table, and can export flamegraph views (folded
stacks for ``flamegraph.pl``, JSON for speedscope); ``telemetry``
schema-checks a ``--telemetry-out`` JSONL feed and replays it as a
summary (workers, snapshot counts, final per-op table -- or the final
state as a Prometheus text exposition with ``--prometheus``).
"""

from __future__ import annotations

import argparse
import difflib
import sys

from repro import obs
from repro.errors import ReproError
from repro.hlu.session import IncompleteDatabase

__all__ = ["Shell", "main"]

_HELP = __doc__.split("Commands:", 1)[1]

_COMMANDS = (
    "state",
    "worlds",
    "literals",
    "canonical",
    "history",
    "backend",
    "reset",
    "save",
    "load",
    "trace",
    "stats",
    "profile",
    "bench",
    "cache",
    "watch",
    "help",
    "quit",
    "exit",
)


class Shell:
    """The REPL engine, decoupled from stdin/stdout for testability.

    :meth:`execute` takes one input line and returns the text to print
    (possibly empty); it never raises on user errors.
    """

    def __init__(self, letters: int | list[str] = 5, backend: str = "clausal"):
        self._letters = letters
        self._db = IncompleteDatabase.over(letters, backend=backend)
        self._stats_baseline: dict[str, int] = obs.counters().snapshot()
        self.done = False

    @property
    def db(self) -> IncompleteDatabase:
        """The live session."""
        return self._db

    def execute(self, line: str) -> str:
        line = line.strip()
        if not line or line.startswith(";"):
            return ""
        try:
            return self._dispatch(line)
        except ReproError as error:
            return f"error: {error}"

    def _dispatch(self, line: str) -> str:
        if line.startswith("??"):
            possible = self._db.is_possible(line[2:].strip())
            return "possible" if possible else "impossible"
        if line.startswith("?"):
            certain = self._db.is_certain(line[1:].strip())
            return "certain" if certain else "not certain"
        if line.startswith(":"):
            return self._command(line[1:])
        if line.startswith("("):
            self._db.run(line)
            status = "ok" if self._db.is_consistent() else "ok (state is now inconsistent!)"
            return status
        return f"error: unrecognised input {line!r} (try :help)"

    def _command(self, command: str) -> str:
        parts = command.split()
        name, args = parts[0], parts[1:]
        if name == "state":
            return str(self._db.state)
        if name == "worlds":
            limit = int(args[0]) if args else 8
            return self._db.worlds().describe(limit=limit)
        if name == "literals":
            literals = sorted(self._db.certain_literals())
            return ", ".join(literals) if literals else "(none)"
        if name == "canonical":
            return str(self._db.canonical_clauses())
        if name == "history":
            if not self._db.history:
                return "(no updates yet)"
            return "\n".join(
                f"{i:3}. {update}" for i, update in enumerate(self._db.history, 1)
            )
        if name == "backend":
            if not args:
                return self._db.backend
            self._db = self._db.with_backend(args[0])
            return f"switched to {args[0]}"
        if name == "reset":
            self._db = IncompleteDatabase.over(self._letters, backend=self._db.backend)
            return "reset to total ignorance"
        if name == "save":
            if not args:
                return "error: :save needs a file path"
            from repro.hlu.persistence import dump_session

            with open(args[0], "w") as handle:
                handle.write(dump_session(self._db))
            return f"saved to {args[0]}"
        if name == "load":
            if not args:
                return "error: :load needs a file path"
            from repro.hlu.persistence import load_session

            with open(args[0]) as handle:
                self._db = load_session(handle.read())
            return f"loaded {args[0]} ({len(self._db.history)} update(s) of history)"
        if name == "trace":
            return self._trace_command(args)
        if name == "stats":
            return self._stats_command(args)
        if name == "profile":
            return self._profile_command(args)
        if name == "bench":
            return self._bench_command(args)
        if name == "cache":
            return self._cache_command(args)
        if name == "watch":
            return self._watch_command(args)
        if name == "help":
            return _HELP.strip("\n")
        if name in ("quit", "exit", "q"):
            self.done = True
            return ""
        close = difflib.get_close_matches(name, _COMMANDS, n=1)
        hint = f" -- did you mean :{close[0]}?" if close else ""
        return f"error: unknown command :{name}{hint} (try :help)"

    def _trace_command(self, args: list[str]) -> str:
        mode = args[0] if args else "show"
        if mode == "on":
            obs.enable()
            return "tracing on"
        if mode == "off":
            obs.disable()
            return "tracing off"
        if mode == "show":
            from repro.obs.export import render_span_tree

            return render_span_tree(obs.tracer())
        if mode == "clear":
            obs.tracer().clear()
            return "trace cleared"
        return "error: :trace takes on, off, show, or clear"

    def _stats_command(self, args: list[str]) -> str:
        from repro.obs.export import counter_report

        if args and args[0] == "reset":
            self._stats_baseline = obs.counters().snapshot()
            return "counters reset"
        if args and args[0] == "all":
            totals = obs.counters().counts
            if not totals:
                if not obs.is_enabled():
                    return (
                        "(no counter activity -- instrumentation is off; "
                        "try :trace on)"
                    )
                return "(no counter activity recorded)"
            report = counter_report(
                totals,
                ident="STATS",
                title="kernel counters (absolute)",
                claim="absolute counter totals for this session",
            )
            return report.render().rstrip("\n")
        if args:
            return "error: :stats takes no argument, all, or reset"
        delta = obs.counters().delta(self._stats_baseline)
        if not delta:
            if not obs.is_enabled():
                return "(no counter activity -- instrumentation is off; try :trace on)"
            return "(no counter activity since the last reset)"
        report = counter_report(
            delta,
            ident="STATS",
            title="kernel counters",
            claim="counter deltas since the last :stats reset",
        )
        return report.render().rstrip("\n")

    def _profile_command(self, args: list[str]) -> str:
        from repro.obs.report import hotspot_report

        limit = 15
        if args:
            try:
                limit = int(args[0])
            except ValueError:
                return "error: :profile takes an optional row limit (a number)"
        tracer = obs.tracer()
        if not tracer.roots:
            if not obs.is_enabled():
                return "(no spans recorded -- instrumentation is off; try :trace on)"
            return "(no spans recorded)"
        return hotspot_report(tracer, limit=limit).render().rstrip("\n")

    def _cache_command(self, args: list[str]) -> str:
        from repro import cache

        mode = args[0] if args else "stats"
        if mode == "on":
            capacity = None
            if len(args) > 1:
                try:
                    capacity = int(args[1])
                except ValueError:
                    return "error: :cache on takes an optional capacity (a number)"
                if capacity < 0:
                    return "error: cache capacity must be >= 0"
            cache.enable_cache(capacity)
            return f"kernel cache on (capacity {cache.cache_capacity()} per kernel)"
        if mode == "off":
            cache.disable_cache()
            return "kernel cache off (entries kept; :cache clear to drop them)"
        if mode == "clear":
            cache.clear_caches()
            return "kernel cache cleared"
        if mode == "stats":
            stats = cache.cache_stats()
            state = "on" if cache.cache_enabled() else "off"
            if not stats:
                return f"(kernel cache {state}; no lookups recorded)"
            from repro.bench.harness import Report

            report = Report(
                ident="CACHE",
                title=f"kernel memo-cache ({state})",
                claim="per-kernel hit/miss/eviction tallies",
                columns=("kernel",) + cache.STAT_KEYS,
            )
            for kernel, values in stats.items():
                report.add_row(kernel, *(values[key] for key in cache.STAT_KEYS))
            return report.render().rstrip("\n")
        return "error: :cache takes on [capacity], off, stats, or clear"

    def _watch_command(self, args: list[str]) -> str:
        from repro.obs import live, runtime

        interval = None
        if args:
            try:
                interval = float(args[0])
            except ValueError:
                return "error: :watch takes an optional refresh interval in seconds"
            if interval <= 0:
                return "error: :watch interval must be > 0"
        newly_enabled = not runtime.is_enabled()
        if newly_enabled:
            runtime.enable()
        frame = live.render_watch(
            runtime.registry().snapshot(), title="live telemetry"
        )
        if newly_enabled:
            frame += "\n(telemetry was off -- now recording; run some updates)"
        if interval is None or not sys.stdout.isatty():
            return frame
        # Interactive refresh loop: repaint in place until Ctrl-C.
        import time

        display_height = 0
        try:
            while True:
                frame = live.render_watch(
                    runtime.registry().snapshot(), title="live telemetry"
                )
                lines = frame.split("\n")
                if display_height:
                    sys.stdout.write(f"\x1b[{display_height}F")
                sys.stdout.write("".join(f"\x1b[2K{line}\n" for line in lines))
                sys.stdout.flush()
                display_height = len(lines)
                time.sleep(interval)
        except KeyboardInterrupt:
            return ""

    def _bench_command(self, args: list[str]) -> str:
        from repro.obs import metrics

        target = args[0] if args else "last"
        if target == "last":
            from pathlib import Path

            directory = Path.cwd()
            found = metrics.latest_bench_file(directory)
            if found is None:
                return (
                    f"(no {metrics.BENCH_PREFIX}*.json run records in "
                    f"{directory}; record one with "
                    f"'python benchmarks/run_experiments.py')"
                )
            path = found
        else:
            path = target
        try:
            record = metrics.read_run_record(path)
        except ReproError as error:
            return f"error: {error}"
        report = metrics.summary_report(record, source=str(path))
        return report.render().rstrip("\n")


def bench_diff_main(argv: list[str]) -> int:
    """``python -m repro.cli bench-diff``: diff a run record vs a baseline.

    Exits 0 when no gated metric regressed, 1 when one did, 2 on a
    usage/data error (missing file, malformed record, schema mismatch).
    """
    from repro.obs import baseline as baseline_mod
    from repro.obs import metrics as metrics_mod

    parser = argparse.ArgumentParser(
        prog="repro-hlu bench-diff",
        description="Compare a BENCH_*.json run record against a baseline.",
    )
    parser.add_argument("run", help="the run record (BENCH_*.json) to check")
    parser.add_argument(
        "--against",
        metavar="FILE",
        default=None,
        help="baseline run record (default: benchmarks/baselines/baseline.json "
        "next to the installed repo, else required)",
    )
    parser.add_argument(
        "--gate",
        metavar="KINDS",
        default="seconds,counter,fit",
        help="comma-separated metric kinds that can fail the diff "
        "(subset of: seconds,counter,fit)",
    )
    parser.add_argument(
        "--include-neutral",
        action="store_true",
        help="show neutral counter/fit rows too",
    )
    options = parser.parse_args(argv)
    gate = frozenset(kind.strip() for kind in options.gate.split(",") if kind.strip())
    bad_kinds = gate - set(baseline_mod.METRIC_KINDS)
    if bad_kinds:
        parser.error(
            f"unknown gate kind(s): {', '.join(sorted(bad_kinds))} "
            f"(known: {', '.join(baseline_mod.METRIC_KINDS)})"
        )
    against = options.against
    if against is None:
        from pathlib import Path

        against = Path.cwd() / baseline_mod.DEFAULT_BASELINE_RELPATH
    try:
        run = metrics_mod.read_run_record(options.run)
        base = baseline_mod.load_baseline(against)
        comparison = baseline_mod.compare(run, base)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    print(comparison.report(include_neutral=options.include_neutral).render())
    regressions = comparison.regressions(gate)
    if regressions:
        print(
            f"{len(regressions)} gated regression(s) "
            f"(gate: {', '.join(sorted(gate))})"
        )
        return 1
    print("no regressions against the baseline")
    return 0


def trace_report_main(argv: list[str]) -> int:
    """``python -m repro.cli trace-report``: analyse a ``--trace-out`` file.

    Schema-checks the JSON-lines trace (exit 2 on drift or unreadable
    input), prints the hotspot table -- per-span-name self time, call
    counts, and p50/p90/p99 of per-call self times -- and optionally
    writes flamegraph exports: ``--folded`` (collapsed folded-stack text
    for ``flamegraph.pl``) and ``--speedscope`` (speedscope JSON).
    """
    import json

    from repro.obs.export import spans_from_jsonl, validate_jsonl
    from repro.obs.profile import folded_stacks, speedscope_document
    from repro.obs.report import hotspot_report

    parser = argparse.ArgumentParser(
        prog="repro-hlu trace-report",
        description="Hotspot table and flamegraph exports for a recorded trace.",
    )
    parser.add_argument(
        "trace", help="JSON-lines trace file (run_experiments.py --trace-out)"
    )
    parser.add_argument(
        "--limit",
        type=int,
        default=15,
        metavar="N",
        help="show the N hottest span names (default 15)",
    )
    parser.add_argument(
        "--folded",
        metavar="FILE",
        default=None,
        help="also write collapsed folded stacks (flamegraph.pl format)",
    )
    parser.add_argument(
        "--speedscope",
        metavar="FILE",
        default=None,
        help="also write a speedscope-compatible JSON profile",
    )
    parser.add_argument(
        "--no-validate",
        action="store_true",
        help="skip the JSON-lines schema check (e.g. for traces from "
        "older builds)",
    )
    options = parser.parse_args(argv)
    try:
        with open(options.trace) as handle:
            text = handle.read()
    except OSError as exc:
        print(f"error: cannot read trace file: {exc}", file=sys.stderr)
        return 2
    if not options.no_validate:
        errors = validate_jsonl(text)
        if errors:
            for error in errors:
                print(f"error: {options.trace}: {error}", file=sys.stderr)
            return 2
    try:
        spans = spans_from_jsonl(text)
    except (ValueError, KeyError, TypeError) as exc:
        print(f"error: cannot parse trace file {options.trace}: {exc}", file=sys.stderr)
        return 2
    print(hotspot_report(spans, limit=options.limit).render())
    if options.folded is not None:
        with open(options.folded, "w") as handle:
            handle.write(folded_stacks(spans))
        print(f"folded stacks written to {options.folded}")
    if options.speedscope is not None:
        with open(options.speedscope, "w") as handle:
            json.dump(speedscope_document(spans, name=options.trace), handle)
            handle.write("\n")
        print(f"speedscope profile written to {options.speedscope}")
    return 0


def telemetry_main(argv: list[str]) -> int:
    """``python -m repro.cli telemetry``: replay a telemetry JSONL feed.

    Schema-checks the feed (exit 2 on drift or unreadable input), prints
    its provenance (schema, window, workers, snapshot counts) and the
    final per-op summary -- windowed ops/s and p50/p99 from the last
    snapshot of each worker, merged exactly.  ``--prometheus`` instead
    renders that final merged state in Prometheus text exposition
    format, for eyeballing what a ``/metrics`` endpoint would serve.
    """
    from repro.obs import live
    from repro.obs import runtime

    parser = argparse.ArgumentParser(
        prog="repro-hlu telemetry",
        description="Summarise a telemetry feed (run_experiments.py --telemetry-out).",
    )
    parser.add_argument(
        "feed", help="JSONL telemetry feed (run_experiments.py --telemetry-out)"
    )
    parser.add_argument(
        "--prometheus",
        action="store_true",
        help="render the final merged state as a Prometheus text exposition",
    )
    parser.add_argument(
        "--no-validate",
        action="store_true",
        help="skip the feed schema check (e.g. for feeds from older builds)",
    )
    options = parser.parse_args(argv)
    try:
        with open(options.feed) as handle:
            text = handle.read()
    except OSError as exc:
        print(f"error: cannot read feed file: {exc}", file=sys.stderr)
        return 2
    if not options.no_validate:
        errors = runtime.validate_feed(text)
        if errors:
            for error in errors:
                print(f"error: {options.feed}: {error}", file=sys.stderr)
            return 2
    meta, snapshots = runtime.read_feed(text)
    if not snapshots:
        print(f"{options.feed}: feed has no snapshots")
        return 0

    # The final state: each worker's last snapshot, merged exactly (a
    # pre-merged "merged" record, when present, already is that).
    finals: dict[str, dict] = {}
    for snap in snapshots:
        finals[str(snap.get("worker") or "main")] = snap
    if "merged" in finals and len(finals) > 1:
        final = finals.pop("merged")
    elif len(finals) == 1:
        final = next(iter(finals.values()))
    else:
        final = runtime.merge_snapshots(list(finals.values()))

    if options.prometheus:
        print(runtime.prometheus_from_snapshot(final), end="")
        return 0

    if meta is not None:
        workers = meta.get("workers") or (
            [meta["worker"]] if meta.get("worker") else []
        )
        print(
            f"{options.feed}: feed schema {meta.get('schema')}, "
            f"window {meta.get('window_seconds')}s x {meta.get('slots')} slot(s)"
        )
        if workers:
            print(f"workers: {', '.join(str(w) for w in workers)}")
    per_worker: dict[str, int] = {}
    for snap in snapshots:
        label = str(snap.get("worker") or "main")
        per_worker[label] = per_worker.get(label, 0) + 1
    print(
        f"{len(snapshots)} snapshot(s): "
        + ", ".join(f"{label} x{n}" for label, n in sorted(per_worker.items()))
    )
    print()
    print(live.render_watch(final, title=f"final state ({options.feed})"))
    return 0


def main(argv: list[str] | None = None) -> int:
    """Console entry point."""
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "bench-diff":
        return bench_diff_main(argv[1:])
    if argv and argv[0] == "trace-report":
        return trace_report_main(argv[1:])
    if argv and argv[0] == "telemetry":
        return telemetry_main(argv[1:])
    parser = argparse.ArgumentParser(
        prog="repro-hlu", description="Interactive HLU shell (Hegner, PODS 1987)"
    )
    parser.add_argument(
        "--letters",
        default="5",
        help="vocabulary: a count (standard A1..An) or comma-separated names",
    )
    parser.add_argument(
        "--backend", choices=("clausal", "instance"), default="clausal"
    )
    parser.add_argument(
        "--script", help="run HLU programs from a file, then exit", default=None
    )
    options = parser.parse_args(argv)

    letters: int | list[str]
    if options.letters.isdigit():
        letters = int(options.letters)
    else:
        letters = [name.strip() for name in options.letters.split(",")]
    shell = Shell(letters, backend=options.backend)

    if options.script:
        with open(options.script) as handle:
            for line in handle:
                output = shell.execute(line)
                if output:
                    print(output)
        return 0

    print("HLU shell -- :help for commands, :quit to leave")
    while not shell.done:
        try:
            line = input("hlu> ")
        except EOFError:
            break
        output = shell.execute(line)
        if output:
            print(output)
    return 0


if __name__ == "__main__":
    sys.exit(main())
