"""An interactive HLU shell over :class:`IncompleteDatabase`.

Run ``python -m repro.cli --letters 5`` (or the ``repro-hlu`` console
script) and type HLU programs in the paper's surface syntax::

    hlu> (assert {~A1 | A3, A1 | A4, A4 | A5, ~A1 | ~A2 | ~A5})
    hlu> (insert {A1 | A2})
    hlu> ? A1 | A2
    certain
    hlu> :state

Commands:

=================  ==================================================
``(...)``          apply an HLU program (assert/mask/insert/delete/
                   modify/where)
``? <formula>``    is the formula certain (true in every world)?
``?? <formula>``   is the formula possible (true in some world)?
``:state``         show the state in the backend representation
``:canonical``     show the state as prime implicates (canonical form)
``:worlds [n]``    list up to n possible worlds (default 8)
``:literals``      the literals certain in every world
``:history``       the updates applied so far
``:backend <b>``   switch to ``clausal`` or ``instance``
``:reset``         back to total ignorance
``:save <file>``   write the session (state + history) to a file
``:load <file>``   restore a session saved with :save
``:trace <c>``     ``on`` / ``off`` instrumentation; ``show`` the span
                   tree recorded so far; ``clear`` it
``:stats``         kernel counter deltas since the last ``:stats reset``
                   (needs ``:trace on``); ``:stats all`` for absolute
                   totals
``:profile [n]``   hotspot table of the spans recorded so far -- self
                   time, call counts, p50/p90/p99 -- top ``n`` rows
                   (default 15; needs ``:trace on``)
``:bench last``    summary of the most recent ``BENCH_*.json`` run
                   record (``:bench <file>`` for a specific one)
``:trend [e]``     per-experiment sparkline trends from the perf
                   history in ``benchmarks/history/`` (optionally
                   limited to the named experiment idents)
``:cache <c>``     ``on [capacity]`` / ``off`` kernel memoisation;
                   ``stats`` per-kernel hit/miss/eviction table;
                   ``clear`` drops every cached entry
``:watch [n]``     live telemetry view: per-op counts, windowed ops/s
                   and p50/p99, counters, gauges (auto-enables
                   ``repro.obs.runtime``); with ``n`` seconds and a
                   TTY, refreshes every ``n`` seconds until Ctrl-C
``:why [f]``       an independently verified derivation of why formula
                   ``f`` is certain (by refutation); with no argument,
                   of why the state is inconsistent (the empty clause)
``:audit <c>``     ``on [file]`` / ``off`` the session audit trail;
                   ``:audit [n]`` shows the last ``n`` in-memory
                   records (default 10); ``save <file>`` writes them
                   out; ``replay`` re-applies and checks the trail
``:help``          this text
``:quit``          leave
=================  ==================================================

The module doubles as the home of the benchmark-diff, trace-analysis,
and explain/audit tools::

    python -m repro.cli bench-diff BENCH_x.json [--against baseline.json]
        [--attribute [--trace t.jsonl] [--base-trace b.jsonl]]
    python -m repro.cli perf-history record BENCH_x.json [--label L]
    python -m repro.cli perf-history trend [EXPERIMENT ...] [--metric M]
    python -m repro.cli perf-history bisect [EXPERIMENT ...]
    python -m repro.cli trace-report trace.jsonl [--limit N]
        [--folded out.folded] [--speedscope out.speedscope.json]
    python -m repro.cli telemetry telemetry.jsonl [--prometheus]
    python -m repro.cli explain session.txt [--certain F | --clause C]
        [--max-clauses N] [--json]
    python -m repro.cli audit audit.jsonl [--replay] [--limit N]
    python -m repro.cli serve --socket /tmp/repro.sock
        [--telemetry-out feed.jsonl] [--audit-out trail.jsonl]
    python -m repro.cli loadgen --connect /tmp/repro.sock | --self-host
        [--clients N] [--duration S] [--scenario mixed|stream|repair]
        [--live] [--bench-out BENCH_srv.json]

``bench-diff`` renders the run-vs-baseline regression table and exits
nonzero when gated metrics regressed (see README "Performance
trajectory"); with ``--attribute`` it also prints the ranked
regression-suspect table (per-span self-time deltas when traces are
supplied, per-kernel counter deltas, quantile shifts); ``perf-history``
maintains the append-only longitudinal log in ``benchmarks/history/``
(``record`` appends a run, ``trend`` renders sparkline trends, and
``bisect`` names the first commit where a metric left its noise band);
``trace-report`` schema-checks a ``--trace-out`` JSON-lines
file, prints its hotspot table, and can export flamegraph views (folded
stacks for ``flamegraph.pl``, JSON for speedscope); ``telemetry``
schema-checks a ``--telemetry-out`` JSONL feed and replays it as a
summary (workers, snapshot counts, final per-op table -- or the final
state as a Prometheus text exposition with ``--prometheus``);
``explain`` loads a saved session file and prints a derivation -- of why
a formula is certain, a clause is in the closure, or the state is
inconsistent -- re-checked by the independent verifier (exit 1 when no
derivation exists, 2 when verification fails); ``audit`` schema-checks a
session audit trail (exit 2 on drift) and, with ``--replay``, rebuilds
every session, re-applies each operation, and exits 2 when any recorded
fingerprint or outcome disagrees; ``serve`` runs the concurrent update
service (newline-delimited JSON over a Unix or TCP socket, graceful
drain on SIGTERM -- see :mod:`repro.server`); ``loadgen`` drives N
seeded concurrent clients at it and can record the run as a schema-v4
``BENCH`` record with ops/s and latency percentiles.
"""

from __future__ import annotations

import argparse
import difflib
import sys

from repro import obs
from repro.errors import ReproError
from repro.hlu.session import IncompleteDatabase

__all__ = ["Shell", "main"]

_HELP = __doc__.split("Commands:", 1)[1]

_COMMANDS = (
    "state",
    "worlds",
    "literals",
    "canonical",
    "history",
    "backend",
    "reset",
    "save",
    "load",
    "trace",
    "stats",
    "profile",
    "bench",
    "trend",
    "cache",
    "watch",
    "why",
    "audit",
    "help",
    "quit",
    "exit",
)


class Shell:
    """The REPL engine, decoupled from stdin/stdout for testability.

    :meth:`execute` takes one input line and returns the text to print
    (possibly empty); it never raises on user errors.
    """

    def __init__(self, letters: int | list[str] = 5, backend: str = "clausal"):
        self._letters = letters
        self._db = IncompleteDatabase.over(letters, backend=backend)
        self._stats_baseline: dict[str, int] = obs.counters().snapshot()
        self.done = False

    @property
    def db(self) -> IncompleteDatabase:
        """The live session."""
        return self._db

    def execute(self, line: str) -> str:
        line = line.strip()
        if not line or line.startswith(";"):
            return ""
        try:
            return self._dispatch(line)
        except ReproError as error:
            return f"error: {error}"

    def _dispatch(self, line: str) -> str:
        if line.startswith("??"):
            possible = self._db.is_possible(line[2:].strip())
            return "possible" if possible else "impossible"
        if line.startswith("?"):
            certain = self._db.is_certain(line[1:].strip())
            return "certain" if certain else "not certain"
        if line.startswith(":"):
            return self._command(line[1:])
        if line.startswith("("):
            self._db.run(line)
            status = "ok" if self._db.is_consistent() else "ok (state is now inconsistent!)"
            return status
        return f"error: unrecognised input {line!r} (try :help)"

    def _command(self, command: str) -> str:
        parts = command.split()
        name, args = parts[0], parts[1:]
        if name == "state":
            return str(self._db.state)
        if name == "worlds":
            limit = int(args[0]) if args else 8
            return self._db.worlds().describe(limit=limit)
        if name == "literals":
            literals = sorted(self._db.certain_literals())
            return ", ".join(literals) if literals else "(none)"
        if name == "canonical":
            return str(self._db.canonical_clauses())
        if name == "history":
            if not self._db.history:
                return "(no updates yet)"
            return "\n".join(
                f"{i:3}. {update}" for i, update in enumerate(self._db.history, 1)
            )
        if name == "backend":
            if not args:
                return self._db.backend
            self._db = self._db.with_backend(args[0])
            return f"switched to {args[0]}"
        if name == "reset":
            self._db = IncompleteDatabase.over(self._letters, backend=self._db.backend)
            return "reset to total ignorance"
        if name == "save":
            if not args:
                return "error: :save needs a file path"
            from repro.hlu.persistence import dump_session

            with open(args[0], "w") as handle:
                handle.write(dump_session(self._db))
            return f"saved to {args[0]}"
        if name == "load":
            if not args:
                return "error: :load needs a file path"
            from repro.hlu.persistence import load_session

            with open(args[0]) as handle:
                self._db = load_session(handle.read())
            return f"loaded {args[0]} ({len(self._db.history)} update(s) of history)"
        if name == "trace":
            return self._trace_command(args)
        if name == "stats":
            return self._stats_command(args)
        if name == "profile":
            return self._profile_command(args)
        if name == "bench":
            return self._bench_command(args)
        if name == "trend":
            return self._trend_command(args)
        if name == "cache":
            return self._cache_command(args)
        if name == "watch":
            return self._watch_command(args)
        if name == "why":
            return self._why_command(args)
        if name == "audit":
            return self._audit_command(args)
        if name == "help":
            return _HELP.strip("\n")
        if name in ("quit", "exit", "q"):
            self.done = True
            return ""
        close = difflib.get_close_matches(name, _COMMANDS, n=1)
        hint = f" -- did you mean :{close[0]}?" if close else ""
        return f"error: unknown command :{name}{hint} (try :help)"

    def _trace_command(self, args: list[str]) -> str:
        mode = args[0] if args else "show"
        if mode == "on":
            obs.enable()
            return "tracing on"
        if mode == "off":
            obs.disable()
            return "tracing off"
        if mode == "show":
            from repro.obs.export import render_span_tree

            return render_span_tree(obs.tracer())
        if mode == "clear":
            obs.tracer().clear()
            return "trace cleared"
        return "error: :trace takes on, off, show, or clear"

    def _stats_command(self, args: list[str]) -> str:
        from repro.obs.export import counter_report

        if args and args[0] == "reset":
            self._stats_baseline = obs.counters().snapshot()
            return "counters reset"
        if args and args[0] == "all":
            totals = obs.counters().counts
            if not totals:
                if not obs.is_enabled():
                    return (
                        "(no counter activity -- instrumentation is off; "
                        "try :trace on)"
                    )
                return "(no counter activity recorded)"
            report = counter_report(
                totals,
                ident="STATS",
                title="kernel counters (absolute)",
                claim="absolute counter totals for this session",
            )
            return report.render().rstrip("\n")
        if args:
            return "error: :stats takes no argument, all, or reset"
        delta = obs.counters().delta(self._stats_baseline)
        if not delta:
            if not obs.is_enabled():
                return "(no counter activity -- instrumentation is off; try :trace on)"
            return "(no counter activity since the last reset)"
        report = counter_report(
            delta,
            ident="STATS",
            title="kernel counters",
            claim="counter deltas since the last :stats reset",
        )
        return report.render().rstrip("\n")

    def _profile_command(self, args: list[str]) -> str:
        from repro.obs.report import hotspot_report

        limit = 15
        if args:
            try:
                limit = int(args[0])
            except ValueError:
                return "error: :profile takes an optional row limit (a number)"
        tracer = obs.tracer()
        if not tracer.roots:
            if not obs.is_enabled():
                return "(no spans recorded -- instrumentation is off; try :trace on)"
            return "(no spans recorded)"
        return hotspot_report(tracer, limit=limit).render().rstrip("\n")

    def _cache_command(self, args: list[str]) -> str:
        from repro import cache

        mode = args[0] if args else "stats"
        if mode == "on":
            capacity = None
            if len(args) > 1:
                try:
                    capacity = int(args[1])
                except ValueError:
                    return "error: :cache on takes an optional capacity (a number)"
                if capacity < 0:
                    return "error: cache capacity must be >= 0"
            cache.enable_cache(capacity)
            return f"kernel cache on (capacity {cache.cache_capacity()} per kernel)"
        if mode == "off":
            cache.disable_cache()
            return "kernel cache off (entries kept; :cache clear to drop them)"
        if mode == "clear":
            cache.clear_caches()
            return "kernel cache cleared"
        if mode == "stats":
            stats = cache.cache_stats()
            state = "on" if cache.cache_enabled() else "off"
            if not stats:
                return f"(kernel cache {state}; no lookups recorded)"
            from repro.bench.harness import Report

            report = Report(
                ident="CACHE",
                title=f"kernel memo-cache ({state})",
                claim="per-kernel hit/miss/eviction tallies",
                columns=("kernel",) + cache.STAT_KEYS,
            )
            for kernel, values in stats.items():
                report.add_row(kernel, *(values[key] for key in cache.STAT_KEYS))
            return report.render().rstrip("\n")
        return "error: :cache takes on [capacity], off, stats, or clear"

    def _watch_command(self, args: list[str]) -> str:
        from repro.obs import live, runtime

        interval = None
        if args:
            try:
                interval = float(args[0])
            except ValueError:
                return "error: :watch takes an optional refresh interval in seconds"
            if interval <= 0:
                return "error: :watch interval must be > 0"
        newly_enabled = not runtime.is_enabled()
        if newly_enabled:
            runtime.enable()
        frame = live.render_watch(
            runtime.registry().snapshot(), title="live telemetry"
        )
        if newly_enabled:
            frame += "\n(telemetry was off -- now recording; run some updates)"
        if interval is None or not sys.stdout.isatty():
            return frame
        # Interactive refresh loop: repaint in place until Ctrl-C.
        import time

        display_height = 0
        try:
            while True:
                frame = live.render_watch(
                    runtime.registry().snapshot(), title="live telemetry"
                )
                lines = frame.split("\n")
                if display_height:
                    sys.stdout.write(f"\x1b[{display_height}F")
                sys.stdout.write("".join(f"\x1b[2K{line}\n" for line in lines))
                sys.stdout.flush()
                display_height = len(lines)
                time.sleep(interval)
        except KeyboardInterrupt:
            return ""

    def _why_command(self, args: list[str]) -> str:
        from repro.logic.clauses import clause_to_str
        from repro.logic.cnf import formula_to_clauses
        from repro.logic.parser import parse_formula
        from repro.obs import provenance

        clause_set = self._db.clauses()
        if not args:
            steps = provenance.explain_inconsistency(clause_set)
            if steps is None:
                return (
                    "state is consistent -- no derivation of the empty "
                    "clause exists (try :why <formula>)"
                )
            return self._render_proof("why the state is inconsistent", steps)
        formula = parse_formula(" ".join(args))
        query = formula_to_clauses(formula, self._db.vocabulary)
        targets = query.sorted_clauses()
        if not targets:
            return "certain (the formula is a tautology -- nothing to derive)"
        blocks = []
        for target in targets:
            rendered = clause_to_str(self._db.vocabulary, target)
            steps = provenance.explain_entailment(clause_set, target)
            if steps is None:
                return (
                    f"not certain: no refutation derives {rendered} "
                    "(a world violating it is possible)"
                )
            blocks.append(self._render_proof(f"why {rendered} is certain", steps))
        return "\n\n".join(blocks)

    def _render_proof(self, title: str, steps) -> str:
        from repro.obs import provenance

        defects = provenance.verify_derivation(
            steps, target=steps[-1].clause, axioms=self._db.clauses().clauses
        )
        proof = provenance.render_derivation(steps, self._db.vocabulary)
        status = (
            "independently verified"
            if not defects
            else "VERIFICATION FAILED: " + "; ".join(defects)
        )
        return f"{title}:\n{proof}\n({len(steps)} step(s), {status})"

    def _audit_command(self, args: list[str]) -> str:
        from repro.errors import AuditError
        from repro.hlu import audit as audit_mod

        mode = args[0] if args else "show"
        if mode == "on":
            if len(args) > 1:
                audit_mod.enable(args[1])
                self._db.attach_audit()
                return f"audit on -> {args[1]} (append-only JSONL)"
            audit_mod.enable()
            self._db.attach_audit()
            return "audit on (in-memory; :audit save <file> to write it out)"
        if mode == "off":
            if not audit_mod.is_enabled():
                return "audit is already off"
            audit_mod.disable()
            return "audit off"
        if mode == "save":
            if len(args) < 2:
                return "error: :audit save needs a file path"
            sink = audit_mod.sink()
            if not isinstance(sink, audit_mod.AuditTrail):
                return (
                    "error: :audit save needs the in-memory trail "
                    "(a file sink already persists its records)"
                )
            sink.save(args[1])
            return f"saved {len(sink)} audit record(s) to {args[1]}"
        if mode == "replay":
            sink = audit_mod.sink()
            if not isinstance(sink, audit_mod.AuditTrail):
                return (
                    "error: :audit replay needs the in-memory trail "
                    "(use 'python -m repro.cli audit FILE --replay' on files)"
                )
            try:
                return audit_mod.replay_audit(sink).render()
            except AuditError as error:
                return f"error: {error}"
        if mode == "show":
            limit = 10
        else:
            try:
                limit = int(mode)
            except ValueError:
                return (
                    "error: :audit takes on [file], off, save <file>, "
                    "replay, or a record count"
                )
        sink = audit_mod.sink()
        if sink is None:
            return "(audit is off; :audit on to start recording)"
        if not isinstance(sink, audit_mod.AuditTrail):
            return "(audit records are streaming to a file; :audit off closes it)"
        records = sink.records[-limit:] if limit > 0 else []
        if not records:
            return "(no audit records yet)"
        lines = []
        for record in records:
            if record["kind"] == "session":
                lines.append(
                    f"{record['session']}  session  backend={record['backend']} "
                    f"{len(record['letters'])} letter(s), "
                    f"{len(record['initial'])} clause(s)"
                )
                continue
            head = f"{record['session']} #{record['seq']}  {record['op']}"
            if record["args"]:
                head += f" {record['args']}"
            post = record.get("post")
            shape = (
                f" {record['pre']['n']}->{post['n']} clause(s)" if post else ""
            )
            error = f" ({record['error']})" if "error" in record else ""
            lines.append(
                f"{head}  -> {record['outcome']}{shape} "
                f"[{record['wall_ms']:.2f}ms]{error}"
            )
        return "\n".join(lines)

    def _bench_command(self, args: list[str]) -> str:
        from repro.obs import metrics

        target = args[0] if args else "last"
        if target == "last":
            from pathlib import Path

            directory = Path.cwd()
            found = metrics.latest_bench_file(directory)
            if found is None:
                return (
                    f"(no {metrics.BENCH_PREFIX}*.json run records in "
                    f"{directory}; record one with "
                    f"'python benchmarks/run_experiments.py')"
                )
            path = found
        else:
            path = target
        try:
            record = metrics.read_run_record(path)
        except ReproError as error:
            return f"error: {error}"
        report = metrics.summary_report(record, source=str(path))
        return report.render().rstrip("\n")

    def _trend_command(self, args: list[str]) -> str:
        from pathlib import Path

        from repro.obs import history as history_mod

        directory = Path.cwd() / history_mod.DEFAULT_HISTORY_RELPATH
        try:
            entries = history_mod.read_history(directory)
        except ReproError as error:
            return f"error: {error}"
        report = history_mod.trend_report(
            entries,
            experiments=args or None,
            source=str(history_mod.history_path(directory)),
        )
        if not report.rows:
            wanted = ", ".join(args) if args else "(any)"
            return f"(no history for experiment(s) {wanted})"
        return report.render().rstrip("\n")


def _input_error(path: object, problem: object) -> int:
    """The uniform CLI input failure: one stderr line, exit code 2.

    Every file-reading subcommand funnels unreadable/missing/malformed
    input through here, so the shape is always ``error: <path>: ...``
    and never a raw traceback.
    """
    print(f"error: {path}: {problem}", file=sys.stderr)
    return 2


def _read_input_file(path: str) -> str:
    """Read a CLI input file as text; raises ``OSError`` or
    ``UnicodeDecodeError`` (both handled by callers via
    :func:`_input_error`)."""
    with open(path, encoding="utf-8") as handle:
        return handle.read()


def bench_diff_main(argv: list[str]) -> int:
    """``python -m repro.cli bench-diff``: diff a run record vs a baseline.

    Exits 0 when no gated metric regressed, 1 when one did, 2 on a
    usage/data error (missing file, malformed record, schema mismatch).
    With ``--attribute`` the ranked-suspect table
    (:mod:`repro.obs.attribution`) prints under the regression table --
    per-experiment counter deltas always, per-span self-time deltas and
    quantile shifts when ``--trace``/``--base-trace`` supply the two
    recorded traces.
    """
    from repro.obs import baseline as baseline_mod
    from repro.obs import metrics as metrics_mod

    parser = argparse.ArgumentParser(
        prog="repro-hlu bench-diff",
        description="Compare a BENCH_*.json run record against a baseline.",
    )
    parser.add_argument("run", help="the run record (BENCH_*.json) to check")
    parser.add_argument(
        "--against",
        metavar="FILE",
        default=None,
        help="baseline run record (default: benchmarks/baselines/baseline.json "
        "next to the installed repo, else required)",
    )
    parser.add_argument(
        "--gate",
        metavar="KINDS",
        default="seconds,counter,fit",
        help="comma-separated metric kinds that can fail the diff "
        "(subset of: seconds,counter,fit)",
    )
    parser.add_argument(
        "--include-neutral",
        action="store_true",
        help="show neutral counter/fit rows too",
    )
    parser.add_argument(
        "--attribute",
        action="store_true",
        help="also print the ranked regression-suspect table "
        "(repro.obs.attribution)",
    )
    parser.add_argument(
        "--trace",
        metavar="FILE",
        default=None,
        help="this run's --trace-out JSONL, for span-level attribution "
        "(requires --attribute)",
    )
    parser.add_argument(
        "--base-trace",
        metavar="FILE",
        default=None,
        help="the baseline run's --trace-out JSONL (requires --attribute)",
    )
    options = parser.parse_args(argv)
    gate = frozenset(kind.strip() for kind in options.gate.split(",") if kind.strip())
    bad_kinds = gate - set(baseline_mod.METRIC_KINDS)
    if bad_kinds:
        parser.error(
            f"unknown gate kind(s): {', '.join(sorted(bad_kinds))} "
            f"(known: {', '.join(baseline_mod.METRIC_KINDS)})"
        )
    if (options.trace or options.base_trace) and not options.attribute:
        parser.error("--trace/--base-trace require --attribute")
    against = options.against
    if against is None:
        from pathlib import Path

        against = Path.cwd() / baseline_mod.DEFAULT_BASELINE_RELPATH
    try:
        run = metrics_mod.read_run_record(options.run)
    except ReproError as error:
        return _input_error(options.run, error)
    try:
        base = baseline_mod.load_baseline(against)
    except ReproError as error:
        return _input_error(against, error)
    try:
        comparison = baseline_mod.compare(run, base)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    print(comparison.report(include_neutral=options.include_neutral).render())

    if options.attribute:
        from repro.obs import attribution as attribution_mod
        from repro.obs.export import spans_from_jsonl

        traces = {}
        for trace_path in (options.trace, options.base_trace):
            if trace_path is None:
                traces[trace_path] = None
                continue
            try:
                traces[trace_path] = spans_from_jsonl(_read_input_file(trace_path))
            except (OSError, UnicodeDecodeError) as exc:
                return _input_error(trace_path, exc)
            except (ValueError, KeyError, TypeError) as exc:
                return _input_error(trace_path, f"malformed trace: {exc}")
        run_spans = traces[options.trace]
        base_spans = traces[options.base_trace]
        attributed = attribution_mod.attribute(
            run, base, run_spans=run_spans, base_spans=base_spans
        )
        print(attributed.report().render())

    regressions = comparison.regressions(gate)
    if regressions:
        print(
            f"{len(regressions)} gated regression(s) "
            f"(gate: {', '.join(sorted(gate))})"
        )
        return 1
    print("no regressions against the baseline")
    return 0


def trace_report_main(argv: list[str]) -> int:
    """``python -m repro.cli trace-report``: analyse a ``--trace-out`` file.

    Schema-checks the JSON-lines trace (exit 2 on drift or unreadable
    input), prints the hotspot table -- per-span-name self time, call
    counts, and p50/p90/p99 of per-call self times -- and optionally
    writes flamegraph exports: ``--folded`` (collapsed folded-stack text
    for ``flamegraph.pl``) and ``--speedscope`` (speedscope JSON).
    """
    import json

    from repro.obs.export import spans_from_jsonl, validate_jsonl
    from repro.obs.profile import folded_stacks, speedscope_document
    from repro.obs.report import hotspot_report

    parser = argparse.ArgumentParser(
        prog="repro-hlu trace-report",
        description="Hotspot table and flamegraph exports for a recorded trace.",
    )
    parser.add_argument(
        "trace", help="JSON-lines trace file (run_experiments.py --trace-out)"
    )
    parser.add_argument(
        "--limit",
        type=int,
        default=15,
        metavar="N",
        help="show the N hottest span names (default 15)",
    )
    parser.add_argument(
        "--folded",
        metavar="FILE",
        default=None,
        help="also write collapsed folded stacks (flamegraph.pl format)",
    )
    parser.add_argument(
        "--speedscope",
        metavar="FILE",
        default=None,
        help="also write a speedscope-compatible JSON profile",
    )
    parser.add_argument(
        "--no-validate",
        action="store_true",
        help="skip the JSON-lines schema check (e.g. for traces from "
        "older builds)",
    )
    options = parser.parse_args(argv)
    try:
        text = _read_input_file(options.trace)
    except (OSError, UnicodeDecodeError) as exc:
        return _input_error(options.trace, exc)
    if not options.no_validate:
        errors = validate_jsonl(text)
        if errors:
            for error in errors:
                print(f"error: {options.trace}: {error}", file=sys.stderr)
            return 2
    try:
        spans = spans_from_jsonl(text)
    except (ValueError, KeyError, TypeError) as exc:
        print(f"error: cannot parse trace file {options.trace}: {exc}", file=sys.stderr)
        return 2
    print(hotspot_report(spans, limit=options.limit).render())
    if options.folded is not None:
        with open(options.folded, "w") as handle:
            handle.write(folded_stacks(spans))
        print(f"folded stacks written to {options.folded}")
    if options.speedscope is not None:
        with open(options.speedscope, "w") as handle:
            json.dump(speedscope_document(spans, name=options.trace), handle)
            handle.write("\n")
        print(f"speedscope profile written to {options.speedscope}")
    return 0


def telemetry_main(argv: list[str]) -> int:
    """``python -m repro.cli telemetry``: replay a telemetry JSONL feed.

    Schema-checks the feed (exit 2 on drift or unreadable input), prints
    its provenance (schema, window, workers, snapshot counts) and the
    final per-op summary -- windowed ops/s and p50/p99 from the last
    snapshot of each worker, merged exactly.  ``--prometheus`` instead
    renders that final merged state in Prometheus text exposition
    format, for eyeballing what a ``/metrics`` endpoint would serve.
    """
    from repro.obs import live
    from repro.obs import runtime

    parser = argparse.ArgumentParser(
        prog="repro-hlu telemetry",
        description="Summarise a telemetry feed (run_experiments.py --telemetry-out).",
    )
    parser.add_argument(
        "feed", help="JSONL telemetry feed (run_experiments.py --telemetry-out)"
    )
    parser.add_argument(
        "--prometheus",
        action="store_true",
        help="render the final merged state as a Prometheus text exposition",
    )
    parser.add_argument(
        "--no-validate",
        action="store_true",
        help="skip the feed schema check (e.g. for feeds from older builds)",
    )
    options = parser.parse_args(argv)
    try:
        text = _read_input_file(options.feed)
    except (OSError, UnicodeDecodeError) as exc:
        return _input_error(options.feed, exc)
    if not options.no_validate:
        errors = runtime.validate_feed(text)
        if errors:
            for error in errors:
                print(f"error: {options.feed}: {error}", file=sys.stderr)
            return 2
    meta, snapshots = runtime.read_feed(text)
    if not snapshots:
        print(f"{options.feed}: feed has no snapshots")
        return 0

    # The final state: each worker's last snapshot, merged exactly (a
    # pre-merged "merged" record, when present, already is that).
    finals: dict[str, dict] = {}
    for snap in snapshots:
        finals[str(snap.get("worker") or "main")] = snap
    if "merged" in finals and len(finals) > 1:
        final = finals.pop("merged")
    elif len(finals) == 1:
        final = next(iter(finals.values()))
    else:
        final = runtime.merge_snapshots(list(finals.values()))

    if options.prometheus:
        print(runtime.prometheus_from_snapshot(final), end="")
        return 0

    if meta is not None:
        workers = meta.get("workers") or (
            [meta["worker"]] if meta.get("worker") else []
        )
        print(
            f"{options.feed}: feed schema {meta.get('schema')}, "
            f"window {meta.get('window_seconds')}s x {meta.get('slots')} slot(s)"
        )
        if workers:
            print(f"workers: {', '.join(str(w) for w in workers)}")
    per_worker: dict[str, int] = {}
    for snap in snapshots:
        label = str(snap.get("worker") or "main")
        per_worker[label] = per_worker.get(label, 0) + 1
    print(
        f"{len(snapshots)} snapshot(s): "
        + ", ".join(f"{label} x{n}" for label, n in sorted(per_worker.items()))
    )
    print()
    print(live.render_watch(final, title=f"final state ({options.feed})"))
    return 0


def explain_main(argv: list[str]) -> int:
    """``python -m repro.cli explain``: a verified derivation for a session.

    Loads a session file (written by the REPL's ``:save`` or
    :func:`repro.hlu.persistence.dump_session`) and derives -- then
    re-checks with the independent verifier -- why a formula is certain
    (``--certain``, by refutation), why a clause is in the resolution
    closure (``--clause``), or, by default, why the state is
    inconsistent.  Exits 0 with the rendered (or ``--json``) proof, 1
    when no derivation exists (the formula is not certain / the clause
    not derivable / the state consistent), 2 on unreadable input, an
    exhausted ``--max-clauses`` budget, or a derivation the verifier
    rejects.
    """
    import json

    from repro.errors import ClosureBudgetError
    from repro.hlu.persistence import load_session
    from repro.logic.clauses import clause_to_str
    from repro.logic.cnf import formula_to_clauses
    from repro.logic.parser import parse_formula
    from repro.obs import provenance

    parser = argparse.ArgumentParser(
        prog="repro-hlu explain",
        description="Derive, and independently verify, why a saved session "
        "state entails a formula, contains a clause, or is inconsistent.",
    )
    parser.add_argument(
        "session", help="a session file (REPL :save / hlu.persistence)"
    )
    question = parser.add_mutually_exclusive_group()
    question.add_argument(
        "--certain",
        metavar="FORMULA",
        default=None,
        help="explain why this formula is certain (one refutation per "
        "clause of its CNF)",
    )
    question.add_argument(
        "--clause",
        metavar="CLAUSE",
        default=None,
        help="explain why this clause is in the resolution closure",
    )
    parser.add_argument(
        "--max-clauses",
        type=int,
        default=100_000,
        metavar="N",
        help="saturation budget for the explanation (default 100000)",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit each derivation as one schema-versioned JSON document "
        "per line instead of the rendered proof",
    )
    options = parser.parse_args(argv)
    try:
        db = load_session(_read_input_file(options.session))
    except (OSError, UnicodeDecodeError) as exc:
        return _input_error(options.session, exc)
    except ReproError as exc:
        return _input_error(options.session, exc)
    clause_set = db.clauses()
    vocabulary = db.vocabulary

    proofs: list[tuple[str, list]] = []
    try:
        if options.clause is not None:
            query = formula_to_clauses(parse_formula(options.clause), vocabulary)
            targets = query.sorted_clauses()
            if len(targets) != 1:
                print(
                    "error: --clause needs a single disjunction of literals "
                    f"(got {len(targets)} clause(s))",
                    file=sys.stderr,
                )
                return 2
            target = targets[0]
            rendered = clause_to_str(vocabulary, target)
            steps = provenance.explain_in_closure(
                clause_set, target, max_clauses=options.max_clauses
            )
            if steps is None:
                print(
                    f"{rendered} is not in the resolution closure "
                    "(an entailed-but-subsumed clause needs --certain)"
                )
                return 1
            proofs.append((f"why {rendered} is in the closure", steps))
        elif options.certain is not None:
            query = formula_to_clauses(parse_formula(options.certain), vocabulary)
            targets = query.sorted_clauses()
            if not targets:
                print("certain (the formula is a tautology -- nothing to derive)")
                return 0
            for target in targets:
                rendered = clause_to_str(vocabulary, target)
                steps = provenance.explain_entailment(
                    clause_set, target, max_clauses=options.max_clauses
                )
                if steps is None:
                    print(
                        f"not certain: no refutation derives {rendered} "
                        "(a world violating it is possible)"
                    )
                    return 1
                proofs.append((f"why {rendered} is certain", steps))
        else:
            steps = provenance.explain_inconsistency(
                clause_set, max_clauses=options.max_clauses
            )
            if steps is None:
                print(
                    f"{options.session}: state is consistent -- no derivation "
                    "of the empty clause exists"
                )
                return 1
            proofs.append(("why the state is inconsistent", steps))
    except ReproError as exc:
        if isinstance(exc, ClosureBudgetError):
            print(f"error: {exc} (raise --max-clauses?)", file=sys.stderr)
        else:
            print(f"error: {exc}", file=sys.stderr)
        return 2

    failed = False
    for title, steps in proofs:
        defects = provenance.verify_derivation(
            steps, target=steps[-1].clause, axioms=clause_set.clauses
        )
        if defects:
            failed = True
            for defect in defects:
                print(f"error: {title}: {defect}", file=sys.stderr)
            continue
        if options.json:
            print(json.dumps(provenance.derivation_to_json(steps), sort_keys=True))
        else:
            print(f"{title}:")
            print(provenance.render_derivation(steps, vocabulary))
            print(f"({len(steps)} step(s), independently verified)")
    return 2 if failed else 0


def audit_main(argv: list[str]) -> int:
    """``python -m repro.cli audit``: validate / summarise / replay a trail.

    Schema-checks and structurally validates an audit JSONL file (exit 2
    on drift or malformed records), prints a summary, and -- with
    ``--replay`` -- rebuilds every recorded session, re-applies each
    operation, and checks the recorded pre/post fingerprints and query
    outcomes, exiting 2 on any disagreement.
    """
    from repro.errors import AuditError
    from repro.hlu import audit as audit_mod

    parser = argparse.ArgumentParser(
        prog="repro-hlu audit",
        description="Validate, summarise, and replay a session audit trail.",
    )
    parser.add_argument(
        "trail",
        help="audit JSONL file (REPL ':audit on FILE' or "
        "run_experiments.py --audit-out)",
    )
    parser.add_argument(
        "--replay",
        action="store_true",
        help="rebuild every session and re-apply each operation, checking "
        "the recorded fingerprints and outcomes",
    )
    parser.add_argument(
        "--limit",
        type=int,
        default=0,
        metavar="N",
        help="also print the last N operation records",
    )
    options = parser.parse_args(argv)
    try:
        records = audit_mod.read_audit(options.trail)
    except (OSError, UnicodeDecodeError) as exc:
        return _input_error(options.trail, exc)
    except AuditError as exc:
        return _input_error(options.trail, exc)
    problems = audit_mod.validate_audit(records)
    if problems:
        for problem in problems:
            print(f"error: {options.trail}: {problem}", file=sys.stderr)
        return 2
    sessions = [r for r in records if r["kind"] == "session"]
    ops = [r for r in records if r["kind"] == "op"]
    outcomes: dict[str, int] = {}
    for record in ops:
        outcomes[record["outcome"]] = outcomes.get(record["outcome"], 0) + 1
    summary = ", ".join(f"{name} x{n}" for name, n in sorted(outcomes.items()))
    print(
        f"{options.trail}: schema {audit_mod.AUDIT_SCHEMA_VERSION}, "
        f"{len(sessions)} session(s), {len(ops)} op(s)"
        + (f" ({summary})" if summary else "")
    )
    for record in ops[-options.limit:] if options.limit > 0 else []:
        head = f"  {record['session']} #{record['seq']} {record['op']}"
        if record["args"]:
            head += f" {record['args']}"
        print(f"{head} -> {record['outcome']} [{record['wall_ms']:.2f}ms]")
    if options.replay:
        try:
            report = audit_mod.replay_audit(records)
        except AuditError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        print(report.render())
        if not report.ok:
            return 2
    return 0


def incremental_diff_main(argv: list[str]) -> int:
    """``python -m repro.cli incremental-diff``: differential closure gate.

    Runs seeded random insert/delete walks and checks, at every step,
    that the incrementally maintained kernels (resolution closure, prime
    implicates, reduce, pivot-restricted closure) agree bit-for-bit with
    scratch recomputation -- including budget overflows, which must
    raise on exactly the same states.  Exits 0 when every comparison
    agrees, 1 on any divergence.
    """
    import random

    from repro.cache import core as cache_mod
    from repro.errors import ClosureBudgetError
    from repro.logic import incremental
    from repro.logic.clauses import ClauseSet, make_literal
    from repro.logic.implicates import prime_implicates
    from repro.logic.propositions import Vocabulary
    from repro.logic.resolution import rclosure, resolution_closure

    parser = argparse.ArgumentParser(
        prog="repro-hlu incremental-diff",
        description="Randomized incremental-vs-scratch closure differential.",
    )
    parser.add_argument(
        "--sequences",
        type=int,
        default=60,
        metavar="N",
        help="number of random update sequences to run (default 60)",
    )
    parser.add_argument(
        "--steps",
        type=int,
        default=8,
        metavar="N",
        help="insert/delete steps per sequence (default 8)",
    )
    parser.add_argument(
        "--max-letters",
        type=int,
        default=9,
        metavar="N",
        help="vocabulary sizes are drawn from 3..N (default 9)",
    )
    parser.add_argument(
        "--budget-every",
        type=int,
        default=5,
        metavar="K",
        help="every Kth sequence runs under a tight closure budget to "
        "exercise overflow parity (0 disables; default 5)",
    )
    parser.add_argument("--seed", type=int, default=2029)
    options = parser.parse_args(argv)
    if options.sequences < 1 or options.steps < 1 or options.max_letters < 3:
        parser.error("--sequences/--steps must be >= 1, --max-letters >= 3")

    def outcome(fn):
        """Result of ``fn()``, with budget overflow as a comparable token."""
        try:
            return fn()
        except ClosureBudgetError as error:
            return ("budget", error.budget)

    def walk(rng: random.Random, letters: int, steps: int):
        vocabulary = Vocabulary.standard(letters)
        current: set[frozenset[int]] = set()
        states = []
        for _ in range(steps):
            if current and rng.random() < 0.4:
                current.discard(rng.choice(sorted(current, key=sorted)))
            else:
                width = rng.randint(1, min(3, letters))
                chosen = rng.sample(range(letters), width)
                current.add(
                    frozenset(
                        make_literal(i, rng.random() < 0.5) for i in chosen
                    )
                )
            states.append(ClauseSet(vocabulary, current))
        return states

    cache_was_on = cache_mod.cache_enabled()
    incremental_was_on = incremental.incremental_enabled()
    cache_mod.disable_cache()
    incremental.disable_incremental()
    incremental.reset_incremental()
    mismatches = 0
    comparisons = 0
    try:
        for sequence in range(options.sequences):
            rng = random.Random(options.seed + sequence)
            letters = rng.randint(3, options.max_letters)
            budget = None
            if options.budget_every and sequence % options.budget_every == 0:
                budget = rng.randint(2, 6)
            pivots = tuple(
                sorted(rng.sample(range(letters), rng.randint(1, 2)))
            )
            incremental.reset_incremental()
            for step, state in enumerate(
                walk(rng, letters, options.steps)
            ):
                kernels = [
                    ("reduce", lambda s=state: s.reduce()),
                    ("rclosure", lambda s=state: rclosure(s, pivots)),
                ]
                if budget is None:
                    kernels += [
                        (
                            "resolution_closure",
                            lambda s=state: resolution_closure(s),
                        ),
                        (
                            "prime_implicates",
                            lambda s=state: prime_implicates(s),
                        ),
                    ]
                else:
                    kernels.append(
                        (
                            f"resolution_closure[{budget}]",
                            lambda s=state: resolution_closure(
                                s, max_clauses=budget
                            ),
                        )
                    )
                for name, kernel in kernels:
                    incremental.disable_incremental()
                    expected = outcome(kernel)
                    incremental.enable_incremental()
                    routed = outcome(kernel)
                    comparisons += 1
                    if routed != expected:
                        mismatches += 1
                        print(
                            f"MISMATCH seq {sequence} step {step} "
                            f"{name}: state {state} -> scratch "
                            f"{expected!r} vs incremental {routed!r}",
                            file=sys.stderr,
                        )
    finally:
        incremental.disable_incremental()
        incremental.reset_incremental()
        if cache_was_on:
            cache_mod.enable_cache()
        if incremental_was_on:
            incremental.enable_incremental()
    print(
        f"incremental-diff: {options.sequences} sequence(s) x "
        f"{options.steps} step(s), {comparisons} comparison(s), "
        f"{mismatches} mismatch(es)"
    )
    if mismatches:
        return 1
    print("incremental maintenance agrees with scratch recomputation")
    return 0


def perf_history_main(argv: list[str]) -> int:
    """``python -m repro.cli perf-history``: the longitudinal perf log.

    ``record RUN`` appends one BENCH run record to the append-only
    history store (default ``benchmarks/history/history.jsonl``);
    ``trend`` renders per-experiment sparkline tables and exits 1 when a
    metric has drifted out of its noise band; ``bisect`` names the first
    recorded commit where each drifting metric left the band (exit 0
    when it found one, 1 when everything is stable).  All subcommands
    exit 2 on missing, unreadable, or schema-drifted input.
    """
    from pathlib import Path

    from repro.obs import history as history_mod
    from repro.obs import metrics as metrics_mod

    parser = argparse.ArgumentParser(
        prog="repro-hlu perf-history",
        description="Record and interrogate the longitudinal benchmark history.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    def add_dir(sub: argparse.ArgumentParser) -> None:
        sub.add_argument(
            "--dir",
            metavar="DIR",
            default=None,
            help="history directory or .jsonl file "
            "(default: benchmarks/history/ under the current directory)",
        )

    record_parser = subparsers.add_parser(
        "record", help="append a BENCH run record to the history"
    )
    record_parser.add_argument("run", help="the BENCH_*.json run record to append")
    add_dir(record_parser)
    record_parser.add_argument(
        "--label",
        default="full",
        help="entry label, e.g. full/smoke/baseline (default: full)",
    )

    def add_query_args(sub: argparse.ArgumentParser, metric_default: str | None) -> None:
        sub.add_argument(
            "experiments",
            nargs="*",
            metavar="EXPERIMENT",
            help="experiment ident(s); default: every experiment in the "
            "most recent entry",
        )
        add_dir(sub)
        sub.add_argument(
            "--metric",
            default=metric_default,
            metavar="METRIC",
            help="seconds, counter:NAME or fit:NAME"
            + (
                " (default: seconds)"
                if metric_default
                else " (default: scan every recorded metric)"
            ),
        )
        sub.add_argument(
            "--last",
            type=int,
            default=0,
            metavar="N",
            help="only consider the N most recent runs (default: all)",
        )
        sub.add_argument(
            "--machine",
            default=None,
            metavar="KEY",
            help="filter to one machine key; 'current' resolves this "
            "machine's key (default: no filter)",
        )

    trend_parser = subparsers.add_parser(
        "trend", help="per-experiment sparkline trend table with drift verdicts"
    )
    add_query_args(trend_parser, "seconds")
    bisect_parser = subparsers.add_parser(
        "bisect", help="name the first commit where a metric left its noise band"
    )
    add_query_args(bisect_parser, None)

    options = parser.parse_args(argv)
    directory = options.dir or (Path.cwd() / history_mod.DEFAULT_HISTORY_RELPATH)

    if options.command == "record":
        try:
            record = metrics_mod.read_run_record(options.run)
        except ReproError as error:
            return _input_error(options.run, error)
        try:
            entry = history_mod.append_history(
                record, directory=directory, label=options.label
            )
        except OSError as error:
            return _input_error(directory, error)
        target = history_mod.history_path(directory)
        print(
            f"recorded {entry.short_sha} ({entry.label}, machine "
            f"{entry.machine}) -> {target}"
        )
        return 0

    machine = options.machine
    if machine == "current":
        machine = history_mod.machine_key(metrics_mod.machine_fingerprint())
    try:
        entries = history_mod.read_history(directory)
    except ReproError as error:
        return _input_error(history_mod.history_path(directory), error)
    experiments = list(options.experiments) or (
        list(entries[-1].record.idents) if entries else []
    )

    if options.command == "trend":
        report = history_mod.trend_report(
            entries,
            experiments=experiments or None,
            metric=options.metric,
            last=options.last,
            machine=machine,
            source=str(history_mod.history_path(directory)),
        )
        print(report.render())
        return 0 if report.holds else 1

    changepoints = []
    for ident in experiments:
        metrics = (
            [options.metric]
            if options.metric
            else history_mod.available_metrics(entries, ident)
        )
        for metric in metrics:
            trend = history_mod.experiment_trend(
                entries,
                ident,
                metric=metric,
                last=options.last,
                machine=machine,
            )
            changepoint = history_mod.detect_changepoint(trend)
            if changepoint is not None:
                changepoints.append(changepoint)
    if not changepoints:
        print(
            f"no changepoint across {len(entries)} run(s): every tracked "
            f"metric stayed inside its noise band"
        )
        return 1
    for changepoint in changepoints:
        point = changepoint.point
        print(
            f"{changepoint.experiment} {changepoint.metric}: "
            f"{changepoint.status} at {point.short_sha} "
            f"({point.recorded}, {point.label}) -- "
            f"{changepoint.before:.6g} -> {changepoint.after:.6g} "
            f"({changepoint.relative:+.0%})"
        )
    return 0


def main(argv: list[str] | None = None) -> int:
    """Console entry point."""
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "bench-diff":
        return bench_diff_main(argv[1:])
    if argv and argv[0] == "perf-history":
        return perf_history_main(argv[1:])
    if argv and argv[0] == "incremental-diff":
        return incremental_diff_main(argv[1:])
    if argv and argv[0] == "trace-report":
        return trace_report_main(argv[1:])
    if argv and argv[0] == "telemetry":
        return telemetry_main(argv[1:])
    if argv and argv[0] == "explain":
        return explain_main(argv[1:])
    if argv and argv[0] == "audit":
        return audit_main(argv[1:])
    if argv and argv[0] == "serve":
        from repro.server.service import serve_main

        return serve_main(argv[1:])
    if argv and argv[0] == "loadgen":
        from repro.server.loadgen import loadgen_main

        return loadgen_main(argv[1:])
    parser = argparse.ArgumentParser(
        prog="repro-hlu", description="Interactive HLU shell (Hegner, PODS 1987)"
    )
    parser.add_argument(
        "--letters",
        default="5",
        help="vocabulary: a count (standard A1..An) or comma-separated names",
    )
    parser.add_argument(
        "--backend", choices=("clausal", "instance"), default="clausal"
    )
    parser.add_argument(
        "--script", help="run HLU programs from a file, then exit", default=None
    )
    options = parser.parse_args(argv)

    letters: int | list[str]
    if options.letters.isdigit():
        letters = int(options.letters)
    else:
        letters = [name.strip() for name in options.letters.split(",")]
    shell = Shell(letters, backend=options.backend)

    if options.script:
        with open(options.script) as handle:
            for line in handle:
                output = shell.execute(line)
                if output:
                    print(output)
        return 0

    print("HLU shell -- :help for commands, :quit to leave")
    while not shell.done:
        try:
            line = input("hlu> ")
        except EOFError:
            break
        output = shell.execute(line)
        if output:
            print(output)
    return 0


if __name__ == "__main__":
    sys.exit(main())
