"""Derivation provenance: a recorded DAG of *why* each clause exists.

The rest of the obs stack observes cost (spans, counters, telemetry);
this module observes *meaning*.  When enabled, the saturation kernels
(:func:`repro.logic.resolution._saturate`, ``unit_resolve``) and the
decision-level-0 unit propagation of the DPLL solver record every clause
they touch into a context-local :class:`DerivationRecorder`: each clause
gets a stable integer id, and every derived clause points at its parent
ids plus the inference rule that produced it.  From that DAG we extract
*minimal derivations* -- the ancestor cone of a target clause, in
topological (id) order -- answering "why is this clause in the closure",
and, for an inconsistent state, producing a checkable derivation of the
empty clause (an unsat core witness).

Derivations are self-contained proof objects: :func:`verify_derivation`
re-checks every step with plain frozenset operations, independently of
the kernels that produced it, so a recorded explanation can be trusted
without trusting the resolution engine.

Rules recorded (``DerivationNode.rule``):

* ``"input"`` -- a clause of the set being saturated;
* ``"assumption"`` -- a unit clause assumed for a refutation (the negated
  query literals of an entailment check, or a SAT assumption);
* ``"given"`` -- a unit handed to ``unitres`` (Algorithm 2.3.8);
* ``"resolve"`` -- a resolvent; ``parents`` is ``(positive, negative)``
  and ``pivot`` the 0-based vocabulary index resolved on;
* ``"unitprop"`` -- a unit-propagation consequence: ``parents[0]`` is the
  source clause, ``parents[1:]`` are unit clauses whose negations were
  struck from it.

Mirrors the enable-flag discipline of :mod:`repro.obs.core`: one
process-wide module global checked at every hook, so the disabled path
costs a single global load, and the recorder itself lives in a
:class:`contextvars.ContextVar` so threads and contexts do not share
DAGs.  The explain drivers (:func:`explain_in_closure`,
:func:`explain_entailment`, :func:`explain_inconsistency`) bypass the
kernel memo-cache on purpose: a cache hit skips saturation and would
record nothing.

Caveat for ambient (globally enabled) recording: the recorder interns
clauses first-derivation-wins, so a clause derived in an earlier
saturation keeps its original justification.  The explain drivers always
install a fresh recorder (:func:`recording`), which is what makes their
derivations verifiable against the axioms of the current question.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Sequence
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass
from typing import Any

from repro.errors import ProvenanceError

__all__ = [
    "PROVENANCE_SCHEMA_VERSION",
    "RULES",
    "DerivationNode",
    "DerivationRecorder",
    "enable",
    "disable",
    "is_enabled",
    "recording",
    "recorder",
    "reset",
    "derivation_to_json",
    "derivation_from_json",
    "verify_derivation",
    "render_derivation",
    "explain_in_closure",
    "explain_entailment",
    "explain_inconsistency",
]

#: Bumped when the exported derivation shape changes; checked on import.
PROVENANCE_SCHEMA_VERSION = 1

#: Every inference rule a :class:`DerivationNode` may carry.
RULES = ("input", "assumption", "given", "resolve", "unitprop")

#: A clause is a frozenset of non-zero ints (see ``repro.logic.clauses``);
#: re-declared here so this module stays import-cycle-free with the logic
#: kernels that call into it.
Clause = frozenset[int]

_EMPTY_CLAUSE: Clause = frozenset()

# The process-wide switch, mirroring repro.obs.core: a plain module
# global so the disabled check at each kernel hook is one global load.
_ENABLED = False


def enable() -> None:
    """Turn derivation recording on (process-wide)."""
    global _ENABLED
    _ENABLED = True


def disable() -> None:
    """Turn derivation recording off (process-wide)."""
    global _ENABLED
    _ENABLED = False


def is_enabled() -> bool:
    """Whether the kernels are currently recording derivations."""
    return _ENABLED


@dataclass(frozen=True)
class DerivationNode:
    """One clause in the derivation DAG.

    ``cid`` is the clause's stable id within its recorder; ``parents``
    are the ids of the clauses it was inferred from (empty for premises);
    ``pivot`` is the 0-based vocabulary index resolved on (``"resolve"``
    steps only).
    """

    cid: int
    clause: Clause
    rule: str
    parents: tuple[int, ...] = ()
    pivot: int | None = None


class DerivationRecorder:
    """Interns clauses to stable ids and records how each was derived.

    First derivation wins: re-deriving an already-recorded clause returns
    its existing id and keeps its original justification, which keeps the
    DAG acyclic and every parent id strictly smaller than its child's --
    so sorting any ancestor set by id is a topological order.

    >>> rec = DerivationRecorder()
    >>> a = rec.record(frozenset({1}), "input")
    >>> b = rec.record(frozenset({-1}), "input")
    >>> _ = rec.record(frozenset(), "resolve", (a, b), pivot=0)
    >>> [step.rule for step in rec.derivation(frozenset())]
    ['input', 'input', 'resolve']
    >>> verify_derivation(rec.derivation(frozenset()), target=frozenset())
    []
    """

    __slots__ = ("_ids", "_nodes")

    def __init__(self) -> None:
        self._ids: dict[Clause, int] = {}
        self._nodes: list[DerivationNode] = []

    def __len__(self) -> int:
        return len(self._nodes)

    def __iter__(self) -> Iterator[DerivationNode]:
        return iter(self._nodes)

    @property
    def nodes(self) -> Sequence[DerivationNode]:
        """Every recorded node, in id order."""
        return self._nodes

    def id_of(self, clause: Clause) -> int | None:
        """The id of an already-recorded clause, or ``None``."""
        return self._ids.get(clause)

    def node(self, cid: int) -> DerivationNode:
        """The node with the given id."""
        return self._nodes[cid]

    def record(
        self,
        clause: Clause,
        rule: str,
        parents: tuple[int, ...] = (),
        pivot: int | None = None,
    ) -> int:
        """Record one derivation; returns the clause's (new or old) id."""
        existing = self._ids.get(clause)
        if existing is not None:
            return existing
        cid = len(self._nodes)
        self._nodes.append(DerivationNode(cid, clause, rule, parents, pivot))
        self._ids[clause] = cid
        return cid

    def ensure(self, clause: Clause) -> int:
        """The clause's id, recording it as an ``"input"`` premise if new.

        Defensive entry point for kernels: a clause that reaches a hook
        without having been recorded (e.g. handed in from outside the
        saturation) still gets a well-founded node.
        """
        existing = self._ids.get(clause)
        if existing is not None:
            return existing
        return self.record(clause, "input")

    def derivation(self, clause: Clause) -> list[DerivationNode] | None:
        """The minimal derivation of ``clause``: its ancestor cone.

        Returns the nodes the target transitively depends on (including
        itself), sorted by id -- a topological order, so the result is a
        step-by-step proof ending in the target.  ``None`` when the
        clause was never recorded.
        """
        target = self._ids.get(clause)
        if target is None:
            return None
        needed: set[int] = set()
        stack = [target]
        while stack:
            cid = stack.pop()
            if cid in needed:
                continue
            needed.add(cid)
            stack.extend(self._nodes[cid].parents)
        return [self._nodes[cid] for cid in sorted(needed)]


# ---------------------------------------------------------------------------
# Context-local recorder
# ---------------------------------------------------------------------------


_RECORDER: ContextVar[DerivationRecorder | None] = ContextVar(
    "repro_provenance_recorder", default=None
)


def recorder() -> DerivationRecorder:
    """The current context's recorder (created on first use)."""
    current = _RECORDER.get()
    if current is None:
        current = DerivationRecorder()
        _RECORDER.set(current)
    return current


def reset() -> DerivationRecorder:
    """Install (and return) a fresh recorder for the current context."""
    fresh = DerivationRecorder()
    _RECORDER.set(fresh)
    return fresh


@contextmanager
def recording() -> Iterator[DerivationRecorder]:
    """Record into a fresh recorder for the extent of a with-block.

    Enables recording and installs a fresh recorder; both the enable flag
    and the previous recorder are restored on exit.  This is how the
    explain drivers isolate one question's DAG from ambient recording.
    """
    global _ENABLED
    previous_flag = _ENABLED
    token = _RECORDER.set(DerivationRecorder())
    _ENABLED = True
    try:
        fresh = _RECORDER.get()
        assert fresh is not None
        yield fresh
    finally:
        _ENABLED = previous_flag
        _RECORDER.reset(token)


# ---------------------------------------------------------------------------
# Export / import
# ---------------------------------------------------------------------------


def _canonical_literals(clause: Clause) -> list[int]:
    return sorted(clause, key=lambda lit: (abs(lit), lit < 0))


def derivation_to_json(steps: Iterable[DerivationNode]) -> dict[str, Any]:
    """A derivation as a JSON-ready document (schema-versioned).

    Clauses are emitted as sorted literal lists, so equal derivations
    serialise identically regardless of set-iteration order.
    """
    out: list[dict[str, Any]] = []
    for step in steps:
        record: dict[str, Any] = {
            "id": step.cid,
            "clause": _canonical_literals(step.clause),
            "rule": step.rule,
            "parents": list(step.parents),
        }
        if step.pivot is not None:
            record["pivot"] = step.pivot
        out.append(record)
    return {"schema": PROVENANCE_SCHEMA_VERSION, "steps": out}


def derivation_from_json(document: Any) -> list[DerivationNode]:
    """Parse a document produced by :func:`derivation_to_json`.

    Raises :class:`ProvenanceError` on schema drift or a malformed step.
    """
    if not isinstance(document, dict):
        raise ProvenanceError("derivation document must be a JSON object")
    schema = document.get("schema")
    if schema != PROVENANCE_SCHEMA_VERSION:
        raise ProvenanceError(
            f"derivation schema {schema!r} is not the supported "
            f"version {PROVENANCE_SCHEMA_VERSION}"
        )
    raw_steps = document.get("steps")
    if not isinstance(raw_steps, list):
        raise ProvenanceError("derivation document has no 'steps' list")
    steps: list[DerivationNode] = []
    for position, raw in enumerate(raw_steps):
        if not isinstance(raw, dict):
            raise ProvenanceError(f"step {position} is not an object")
        try:
            cid = int(raw["id"])
            literals = [int(lit) for lit in raw["clause"]]
            rule = raw["rule"]
            parents = tuple(int(p) for p in raw["parents"])
        except (KeyError, TypeError, ValueError) as error:
            raise ProvenanceError(f"step {position} is malformed: {error}") from error
        if rule not in RULES:
            raise ProvenanceError(f"step {position} has unknown rule {rule!r}")
        if any(lit == 0 for lit in literals):
            raise ProvenanceError(f"step {position} contains the literal 0")
        pivot_raw = raw.get("pivot")
        pivot = int(pivot_raw) if pivot_raw is not None else None
        steps.append(DerivationNode(cid, frozenset(literals), rule, parents, pivot))
    return steps


# ---------------------------------------------------------------------------
# The independent verifier
# ---------------------------------------------------------------------------


def verify_derivation(
    steps: Sequence[DerivationNode],
    target: Clause | None = None,
    axioms: Iterable[Clause] | None = None,
) -> list[str]:
    """Re-check every step of a derivation; returns the list of defects.

    An empty list means the derivation is valid: every step's clause is
    exactly what its rule applied to its (earlier) parents yields, and --
    when given -- the final step derives ``target`` and every ``"input"``
    premise is among ``axioms``.  Deliberately independent of the
    resolution kernels: each rule is re-checked with plain frozenset
    operations, so this function can referee the recorder's output.
    """
    errors: list[str] = []
    by_id: dict[int, Clause] = {}
    axiom_set: set[Clause] | None = None
    if axioms is not None:
        axiom_set = {frozenset(c) for c in axioms}
    for position, step in enumerate(steps):
        where = f"step {position} (id {step.cid})"
        if step.cid in by_id:
            errors.append(f"{where}: duplicate clause id")
        missing = [p for p in step.parents if p not in by_id]
        if missing:
            errors.append(f"{where}: parent id(s) {missing} not derived earlier")
            by_id[step.cid] = step.clause
            continue
        if step.rule in ("input", "assumption", "given"):
            if step.parents:
                errors.append(f"{where}: premise rule {step.rule!r} must have no parents")
            if step.rule == "input" and axiom_set is not None and step.clause not in axiom_set:
                errors.append(f"{where}: input clause is not among the axioms")
        elif step.rule == "resolve":
            if len(step.parents) != 2:
                errors.append(f"{where}: resolve needs exactly two parents")
            elif step.pivot is None:
                errors.append(f"{where}: resolve step carries no pivot")
            else:
                positive = step.pivot + 1
                pos_parent = by_id[step.parents[0]]
                neg_parent = by_id[step.parents[1]]
                if positive not in pos_parent:
                    errors.append(f"{where}: positive parent lacks the pivot literal")
                elif -positive not in neg_parent:
                    errors.append(f"{where}: negative parent lacks the negated pivot")
                else:
                    merged = (pos_parent - {positive}) | (neg_parent - {-positive})
                    if any(-lit in merged for lit in merged):
                        errors.append(f"{where}: resolvent is tautologous")
                    elif merged != step.clause:
                        errors.append(
                            f"{where}: clause differs from the computed resolvent"
                        )
        elif step.rule == "unitprop":
            if not step.parents:
                errors.append(f"{where}: unitprop needs a source clause parent")
            else:
                source = by_id[step.parents[0]]
                units: set[int] = set()
                malformed = False
                for parent in step.parents[1:]:
                    unit_clause = by_id[parent]
                    if len(unit_clause) != 1:
                        errors.append(
                            f"{where}: unit parent id {parent} is not a unit clause"
                        )
                        malformed = True
                        break
                    units.add(next(iter(unit_clause)))
                if not malformed:
                    expected = frozenset(lit for lit in source if -lit not in units)
                    if step.clause != expected:
                        errors.append(
                            f"{where}: clause differs from the source with the "
                            "falsified literals struck"
                        )
        else:
            errors.append(f"{where}: unknown rule {step.rule!r}")
        by_id[step.cid] = step.clause
    if target is not None:
        if not steps:
            errors.append("derivation is empty")
        elif steps[-1].clause != frozenset(target):
            errors.append("final step does not derive the target clause")
    return errors


def render_derivation(steps: Sequence[DerivationNode], vocabulary: Any) -> str:
    """A human-readable proof listing, one line per step.

    ``vocabulary`` is a :class:`repro.logic.propositions.Vocabulary`;
    imported lazily so this module stays cycle-free with the kernels.
    """
    from repro.logic.clauses import clause_to_str

    lines = []
    for step in steps:
        rendered = clause_to_str(vocabulary, step.clause)
        if step.rule == "resolve" and step.pivot is not None:
            how = (
                f"resolve({step.parents[0]}, {step.parents[1]}) "
                f"on {vocabulary.name_of(step.pivot)}"
            )
        elif step.parents:
            how = f"{step.rule}({', '.join(str(p) for p in step.parents)})"
        else:
            how = step.rule
        lines.append(f"[{step.cid}] {rendered}    {how}")
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Explain drivers
# ---------------------------------------------------------------------------
#
# Each driver answers one question with a fresh recorder and a direct
# _saturate call (never the memoised wrappers: a cache hit records
# nothing).  ``max_clauses`` guards the exponential saturation; exceeding
# it raises repro.errors.ClosureBudgetError.


def explain_in_closure(
    clause_set: Any, clause: Clause, max_clauses: int = 100_000
) -> list[DerivationNode] | None:
    """Why is ``clause`` in the resolution closure of ``clause_set``?

    Returns a verified-checkable derivation ending in ``clause``, or
    ``None`` when the clause is not in the closure (note: not in the
    *closure* -- an entailed-but-not-derivable clause needs
    :func:`explain_entailment`'s refutation instead).
    """
    from repro.logic.resolution import _saturate

    target = frozenset(clause)
    with recording() as active:
        _saturate(
            clause_set.clauses, None, max_clauses=max_clauses, stop_on=target
        )
        return active.derivation(target)


def explain_entailment(
    clause_set: Any, clause: Clause, max_clauses: int = 100_000
) -> list[DerivationNode] | None:
    """Why does ``clause_set`` entail ``clause``?

    By refutation: assume the negation of every literal of ``clause`` as
    ``"assumption"`` units and derive the empty clause.  Returns the
    refutation (a conditional proof: premises are the inputs plus the
    assumptions), or ``None`` when the clause is not entailed.
    """
    from repro.logic.resolution import _saturate

    assumptions = [frozenset((-lit,)) for lit in clause]
    with recording() as active:
        for unit in assumptions:
            active.record(unit, "assumption")
        _saturate(
            list(clause_set.clauses) + assumptions,
            None,
            max_clauses=max_clauses,
            stop_on=_EMPTY_CLAUSE,
        )
        return active.derivation(_EMPTY_CLAUSE)


def explain_inconsistency(
    clause_set: Any, max_clauses: int = 100_000
) -> list[DerivationNode] | None:
    """Why is ``clause_set`` inconsistent?  A derivation of the empty
    clause from the inputs (an unsat-core witness), or ``None`` when the
    set is satisfiable (resolution is refutation-complete, so full
    saturation deriving no empty clause *is* a consistency proof)."""
    from repro.logic.resolution import _saturate

    with recording() as active:
        _saturate(
            clause_set.clauses, None, max_clauses=max_clauses, stop_on=_EMPTY_CLAUSE
        )
        return active.derivation(_EMPTY_CLAUSE)
