"""Tracing spans and kernel counters for the BLU/HLU stack.

The paper's complexity theorems (2.3.4, 2.3.6, 2.3.9) are claims about
*work done* -- resolvents generated, clauses retained, letters
eliminated -- not about wall-clock seconds.  This module is the
measurement substrate that lets the rest of the library report that work:

* a context-local :class:`Tracer` holding a span stack -- ``with
  span("blu.c.mask", letters=3):`` records wall time, nesting, and
  attributes as a tree of :class:`Span` values;
* a context-local :class:`Counters` registry of monotonic counters
  (:func:`inc`) and value histograms (:func:`observe`).

Everything sits behind a single module-level enable flag.  Instrumented
kernels call the module-level :func:`span` / :func:`inc` /
:func:`observe` helpers, which check the flag first, so the disabled
path costs one global load per call site -- a near-no-op, guarded by an
overhead test in ``tests/obs/test_core.py``.

State is held in a :class:`contextvars.ContextVar`, so threads and
``contextvars`` contexts each see their own tracer and counters while
sharing the one process-wide enable flag.  Zero dependencies.
"""

from __future__ import annotations

import time
from collections.abc import Iterator, Mapping
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass, field

__all__ = [
    "Span",
    "Tracer",
    "Histogram",
    "Counters",
    "enable",
    "disable",
    "is_enabled",
    "enabled",
    "tracer",
    "counters",
    "span",
    "inc",
    "observe",
    "reset",
]

# The process-wide switch.  A plain module global (not a ContextVar) so
# the disabled check in span()/inc()/observe() is a single global load.
_ENABLED = False


def enable() -> None:
    """Turn instrumentation on (process-wide)."""
    global _ENABLED
    _ENABLED = True


def disable() -> None:
    """Turn instrumentation off (process-wide)."""
    global _ENABLED
    _ENABLED = False


def is_enabled() -> bool:
    """Whether spans and counters are currently being recorded."""
    return _ENABLED


@contextmanager
def enabled() -> Iterator[None]:
    """Enable instrumentation for the dynamic extent of a with-block,
    restoring the previous flag on exit."""
    global _ENABLED
    previous = _ENABLED
    _ENABLED = True
    try:
        yield
    finally:
        _ENABLED = previous


# ---------------------------------------------------------------------------
# Spans
# ---------------------------------------------------------------------------


@dataclass
class Span:
    """One timed, attributed region of work; spans nest into a tree."""

    name: str
    attributes: dict[str, object] = field(default_factory=dict)
    start: float = 0.0
    elapsed: float = 0.0
    children: list["Span"] = field(default_factory=list)

    def set(self, **attributes: object) -> "Span":
        """Attach attributes discovered mid-span (e.g. output sizes)."""
        self.attributes.update(attributes)
        return self

    def walk(self, depth: int = 0) -> Iterator[tuple[int, "Span"]]:
        """Depth-first ``(depth, span)`` over this span and its subtree."""
        yield depth, self
        for child in self.children:
            yield from child.walk(depth + 1)


class _NullSpan:
    """The shared do-nothing span handed out while instrumentation is off."""

    __slots__ = ()
    name = ""
    attributes: dict[str, object] = {}
    elapsed = 0.0

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info: object) -> bool:
        return False

    def set(self, **attributes: object) -> "_NullSpan":
        return self


_NULL_SPAN = _NullSpan()


class Tracer:
    """A span stack recording a forest of completed spans.

    Use through the module-level :func:`span` helper; the tracer itself
    never checks the enable flag.
    """

    def __init__(self) -> None:
        self.roots: list[Span] = []
        self._stack: list[Span] = []

    @property
    def depth(self) -> int:
        """How many spans are currently open."""
        return len(self._stack)

    @contextmanager
    def span(self, name: str, **attributes: object) -> Iterator[Span]:
        record = Span(name, dict(attributes))
        parent = self._stack[-1] if self._stack else None
        (parent.children if parent is not None else self.roots).append(record)
        self._stack.append(record)
        record.start = time.perf_counter()
        try:
            yield record
        finally:
            record.elapsed = time.perf_counter() - record.start
            self._stack.pop()

    def walk(self) -> Iterator[tuple[int, Span]]:
        """Depth-first ``(depth, span)`` over every recorded root."""
        for root in self.roots:
            yield from root.walk()

    def clear(self) -> None:
        """Drop all recorded spans (open spans keep recording)."""
        self.roots = []


# ---------------------------------------------------------------------------
# Counters
# ---------------------------------------------------------------------------


@dataclass
class Histogram:
    """Streaming summary of an observed value: count / total / min / max."""

    count: int = 0
    total: float = 0.0
    minimum: float = float("inf")
    maximum: float = float("-inf")

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0


class Counters:
    """Named monotonic counters plus value histograms."""

    def __init__(self) -> None:
        self._counts: dict[str, int] = {}
        self._histograms: dict[str, Histogram] = {}

    def inc(self, name: str, amount: int = 1) -> None:
        self._counts[name] = self._counts.get(name, 0) + amount

    def observe(self, name: str, value: float) -> None:
        histogram = self._histograms.get(name)
        if histogram is None:
            histogram = self._histograms[name] = Histogram()
        histogram.observe(value)

    def get(self, name: str) -> int:
        """The current value of a counter (0 if never incremented)."""
        return self._counts.get(name, 0)

    def histogram(self, name: str) -> Histogram | None:
        return self._histograms.get(name)

    @property
    def counts(self) -> dict[str, int]:
        return dict(self._counts)

    @property
    def histograms(self) -> dict[str, Histogram]:
        return dict(self._histograms)

    def snapshot(self) -> dict[str, int]:
        """A frozen copy of the counter values (histograms excluded)."""
        return dict(self._counts)

    def delta(self, since: Mapping[str, int]) -> dict[str, int]:
        """Counter increments since a :meth:`snapshot`, zeros dropped."""
        out: dict[str, int] = {}
        for name, value in self._counts.items():
            change = value - since.get(name, 0)
            if change:
                out[name] = change
        return out

    def reset(self) -> None:
        """Zero every counter and drop every histogram."""
        self._counts.clear()
        self._histograms.clear()


# ---------------------------------------------------------------------------
# Context-local state and the module-level helpers the kernels call
# ---------------------------------------------------------------------------


class _ObsState:
    __slots__ = ("tracer", "counters")

    def __init__(self) -> None:
        self.tracer = Tracer()
        self.counters = Counters()


_STATE: ContextVar[_ObsState | None] = ContextVar("repro_obs_state", default=None)


def _state() -> _ObsState:
    state = _STATE.get()
    if state is None:
        state = _ObsState()
        _STATE.set(state)
    return state


def tracer() -> Tracer:
    """The current context's tracer."""
    return _state().tracer


def counters() -> Counters:
    """The current context's counter registry."""
    return _state().counters


def span(name: str, **attributes: object):
    """Open a span under the current context's tracer.

    Returns the shared null span while instrumentation is disabled, so
    ``with span(...):`` at a call site costs one flag check.  Note the
    keyword arguments are evaluated by the caller either way -- keep
    span attributes cheap (sizes and names, not rendered states).
    """
    if not _ENABLED:
        return _NULL_SPAN
    return _state().tracer.span(name, **attributes)


def inc(name: str, amount: int = 1) -> None:
    """Add to a monotonic counter (no-op while disabled)."""
    if _ENABLED:
        _state().counters.inc(name, amount)


def observe(name: str, value: float) -> None:
    """Record one histogram observation (no-op while disabled)."""
    if _ENABLED:
        _state().counters.observe(name, value)


def reset() -> None:
    """Clear the current context's recorded spans and counters."""
    state = _STATE.get()
    if state is not None:
        state.tracer.clear()
        state.counters.reset()
