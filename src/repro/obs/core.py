"""Tracing spans and kernel counters for the BLU/HLU stack.

The paper's complexity theorems (2.3.4, 2.3.6, 2.3.9) are claims about
*work done* -- resolvents generated, clauses retained, letters
eliminated -- not about wall-clock seconds.  This module is the
measurement substrate that lets the rest of the library report that work:

* a context-local :class:`Tracer` holding a span stack -- ``with
  span("blu.c.mask", letters=3):`` records wall time, nesting, and
  attributes as a tree of :class:`Span` values;
* a context-local :class:`Counters` registry of monotonic counters
  (:func:`inc`) and value histograms (:func:`observe`).

Everything sits behind a single module-level enable flag.  Instrumented
kernels call the module-level :func:`span` / :func:`inc` /
:func:`observe` helpers, which check the flag first, so the disabled
path costs one global load per call site -- a near-no-op, guarded by an
overhead test in ``tests/obs/test_core.py``.

State is held in a :class:`contextvars.ContextVar`, so threads and
``contextvars`` contexts each see their own tracer and counters while
sharing the one process-wide enable flag.  Zero dependencies.
"""

from __future__ import annotations

import itertools
import math
import time
from collections.abc import Iterator, Mapping
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass, field

__all__ = [
    "Span",
    "Tracer",
    "Histogram",
    "Counters",
    "MemorySample",
    "enable",
    "disable",
    "is_enabled",
    "enabled",
    "tracer",
    "counters",
    "current_span",
    "span",
    "inc",
    "observe",
    "reset",
    "track_memory",
]

# The process-wide switch.  A plain module global (not a ContextVar) so
# the disabled check in span()/inc()/observe() is a single global load.
_ENABLED = False


def enable() -> None:
    """Turn instrumentation on (process-wide)."""
    global _ENABLED
    _ENABLED = True


def disable() -> None:
    """Turn instrumentation off (process-wide)."""
    global _ENABLED
    _ENABLED = False


def is_enabled() -> bool:
    """Whether spans and counters are currently being recorded."""
    return _ENABLED


@contextmanager
def enabled() -> Iterator[None]:
    """Enable instrumentation for the dynamic extent of a with-block,
    restoring the previous flag on exit."""
    global _ENABLED
    previous = _ENABLED
    _ENABLED = True
    try:
        yield
    finally:
        _ENABLED = previous


# ---------------------------------------------------------------------------
# Spans
# ---------------------------------------------------------------------------


#: Process-wide span id source.  Ids exist for *correlation* -- structured
#: log records (``repro.obs.logging``) carry the id of the span that was
#: open when they were emitted -- so they are unique per process, not per
#: tracer, and survive tracer clears.
_SPAN_IDS = itertools.count(1)


@dataclass
class Span:
    """One timed, attributed region of work; spans nest into a tree.

    ``sid`` is a process-unique id assigned when the span is opened; log
    records emitted inside the span carry it for correlation.  (The
    exporter's ``id`` field is a separate, per-document numbering.)
    """

    name: str
    attributes: dict[str, object] = field(default_factory=dict)
    start: float = 0.0
    elapsed: float = 0.0
    children: list["Span"] = field(default_factory=list)
    sid: int = 0

    def set(self, **attributes: object) -> "Span":
        """Attach attributes discovered mid-span (e.g. output sizes)."""
        self.attributes.update(attributes)
        return self

    def walk(self, depth: int = 0) -> Iterator[tuple[int, "Span"]]:
        """Depth-first ``(depth, span)`` over this span and its subtree."""
        yield depth, self
        for child in self.children:
            yield from child.walk(depth + 1)


class _NullSpan:
    """The shared do-nothing span handed out while instrumentation is off."""

    __slots__ = ()
    name = ""
    attributes: dict[str, object] = {}
    elapsed = 0.0

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info: object) -> bool:
        return False

    def set(self, **attributes: object) -> "_NullSpan":
        return self


_NULL_SPAN = _NullSpan()


class Tracer:
    """A span stack recording a forest of completed spans.

    Use through the module-level :func:`span` helper; the tracer itself
    never checks the enable flag.
    """

    def __init__(self) -> None:
        self.roots: list[Span] = []
        self._stack: list[Span] = []

    @property
    def depth(self) -> int:
        """How many spans are currently open."""
        return len(self._stack)

    @property
    def current(self) -> Span | None:
        """The innermost span still open, or ``None``."""
        return self._stack[-1] if self._stack else None

    @contextmanager
    def span(self, name: str, **attributes: object) -> Iterator[Span]:
        record = Span(name, dict(attributes), sid=next(_SPAN_IDS))
        parent = self._stack[-1] if self._stack else None
        (parent.children if parent is not None else self.roots).append(record)
        self._stack.append(record)
        record.start = time.perf_counter()
        try:
            yield record
        finally:
            record.elapsed = time.perf_counter() - record.start
            self._stack.pop()

    def walk(self) -> Iterator[tuple[int, Span]]:
        """Depth-first ``(depth, span)`` over every recorded root."""
        for root in self.roots:
            yield from root.walk()

    def clear(self) -> None:
        """Drop all recorded spans and re-anchor any still-open ones.

        Spans that are open at the moment of the clear become the new
        forest (outermost as the root, each inner open span nested under
        it), with their already-finished children dropped.  Work recorded
        *after* the clear therefore lands in a reachable tree instead of
        dangling off a span that was silently discarded with the old
        roots.
        """
        self.roots = []
        parent: Span | None = None
        for open_span in self._stack:
            open_span.children = []
            if parent is None:
                self.roots.append(open_span)
            else:
                parent.children.append(open_span)
            parent = open_span


# ---------------------------------------------------------------------------
# Counters
# ---------------------------------------------------------------------------


#: Bucket index for non-positive observations (below every positive
#: power-of-two bucket; math.frexp of the smallest subnormal is -1073).
_ZERO_BUCKET = -1074


@dataclass
class Histogram:
    """Streaming summary of an observed value with quantile estimates.

    Beyond count / total / min / max, every observation lands in a
    power-of-two log bucket (``value in [2**(e-1), 2**e)`` goes to bucket
    ``e``; non-positive values share one underflow bucket), so
    :meth:`quantile` can answer p50/p90/p99 from a bounded structure:
    the estimate is the geometric midpoint of the bucket holding the
    requested rank, clamped to the observed min/max.  The relative error
    is bounded by the bucket width (a factor of ``sqrt(2)`` each way),
    and estimates are monotone in ``q`` by construction.
    """

    count: int = 0
    total: float = 0.0
    minimum: float = float("inf")
    maximum: float = float("-inf")
    buckets: dict[int, int] = field(default_factory=dict)

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value
        bucket = math.frexp(value)[1] if value > 0 else _ZERO_BUCKET
        self.buckets[bucket] = self.buckets.get(bucket, 0) + 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float | None:
        """Estimated ``q``-quantile of the observations (``None`` if empty)."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile fraction must be in [0, 1], got {q}")
        if not self.count:
            return None
        rank = max(1, math.ceil(q * self.count))
        cumulative = 0
        for bucket in sorted(self.buckets):
            cumulative += self.buckets[bucket]
            if cumulative >= rank:
                if bucket == _ZERO_BUCKET or bucket > 1023:
                    # Underflow bucket (estimate from below) or a bucket
                    # whose midpoint would overflow a float: the clamp
                    # supplies the estimate.
                    estimate = 0.0 if bucket == _ZERO_BUCKET else self.maximum
                else:
                    estimate = 2.0 ** (bucket - 0.5)
                return min(max(estimate, self.minimum), self.maximum)
        # Reached only for degraded histograms restored from exports that
        # predate buckets: fall back to the observed maximum.
        return self.maximum

    def merge(self, other: "Histogram") -> "Histogram":
        """Fold another histogram's observations into this one.

        Exact for everything the structure stores -- count, total,
        min/max, and per-bucket tallies are all additive -- so merging
        per-worker histograms (``run_experiments.py --jobs``) yields the
        same summary a single process observing every value would hold.

        Edge cases matter to window rotation and feed restore: merging an
        *empty* histogram is a no-op (its min/max sentinels -- or the
        bogus finite values a degraded export might restore them to --
        must not poison the target's range), merging into an empty
        histogram adopts the other's min/max verbatim, and mismatched
        bucket sets union rather than raise.  Returns ``self`` so window
        merges chain.
        """
        if other.count == 0:
            return self
        if self.count == 0:
            self.minimum = other.minimum
            self.maximum = other.maximum
        else:
            if other.minimum < self.minimum:
                self.minimum = other.minimum
            if other.maximum > self.maximum:
                self.maximum = other.maximum
        self.count += other.count
        self.total += other.total
        for bucket, n in other.buckets.items():
            self.buckets[bucket] = self.buckets.get(bucket, 0) + n
        return self

    @property
    def p50(self) -> float | None:
        return self.quantile(0.50)

    @property
    def p90(self) -> float | None:
        return self.quantile(0.90)

    @property
    def p99(self) -> float | None:
        return self.quantile(0.99)


class Counters:
    """Named monotonic counters plus value histograms."""

    def __init__(self) -> None:
        self._counts: dict[str, int] = {}
        self._histograms: dict[str, Histogram] = {}

    def inc(self, name: str, amount: int = 1) -> None:
        self._counts[name] = self._counts.get(name, 0) + amount

    def observe(self, name: str, value: float) -> None:
        histogram = self._histograms.get(name)
        if histogram is None:
            histogram = self._histograms[name] = Histogram()
        histogram.observe(value)

    def get(self, name: str) -> int:
        """The current value of a counter (0 if never incremented)."""
        return self._counts.get(name, 0)

    def histogram(self, name: str) -> Histogram | None:
        return self._histograms.get(name)

    @property
    def counts(self) -> dict[str, int]:
        return dict(self._counts)

    @property
    def histograms(self) -> dict[str, Histogram]:
        return dict(self._histograms)

    def snapshot(self) -> dict[str, int]:
        """A frozen copy of the counter values (histograms excluded)."""
        return dict(self._counts)

    def delta(self, since: Mapping[str, int]) -> dict[str, int]:
        """Counter increments since a :meth:`snapshot`, zeros dropped."""
        out: dict[str, int] = {}
        for name, value in self._counts.items():
            change = value - since.get(name, 0)
            if change:
                out[name] = change
        return out

    def merge(self, other: "Counters") -> None:
        """Fold another registry into this one (counts summed,
        histograms merged).  The basis of multi-process trace merging:
        each ``--jobs`` worker records into its own registry and the
        parent folds them together."""
        for name, value in other._counts.items():
            self.inc(name, value)
        for name, histogram in other._histograms.items():
            mine = self._histograms.get(name)
            if mine is None:
                mine = self._histograms[name] = Histogram()
            mine.merge(histogram)

    def reset(self) -> None:
        """Zero every counter and drop every histogram."""
        self._counts.clear()
        self._histograms.clear()


# ---------------------------------------------------------------------------
# Context-local state and the module-level helpers the kernels call
# ---------------------------------------------------------------------------


class _ObsState:
    __slots__ = ("tracer", "counters")

    def __init__(self) -> None:
        self.tracer = Tracer()
        self.counters = Counters()


_STATE: ContextVar[_ObsState | None] = ContextVar("repro_obs_state", default=None)


def _state() -> _ObsState:
    state = _STATE.get()
    if state is None:
        state = _ObsState()
        _STATE.set(state)
    return state


def tracer() -> Tracer:
    """The current context's tracer."""
    return _state().tracer


def counters() -> Counters:
    """The current context's counter registry."""
    return _state().counters


def current_span() -> Span | None:
    """The innermost span open in the current context, or ``None``.

    The correlation hook for structured logging: a log record emitted
    mid-span carries this span's name and ``sid``.
    """
    state = _STATE.get()
    if state is None:
        return None
    return state.tracer.current


def span(name: str, **attributes: object):
    """Open a span under the current context's tracer.

    Returns the shared null span while instrumentation is disabled, so
    ``with span(...):`` at a call site costs one flag check.  Note the
    keyword arguments are evaluated by the caller either way -- keep
    span attributes cheap (sizes and names, not rendered states).
    """
    if not _ENABLED:
        return _NULL_SPAN
    return _state().tracer.span(name, **attributes)


def inc(name: str, amount: int = 1) -> None:
    """Add to a monotonic counter (no-op while disabled)."""
    if _ENABLED:
        _state().counters.inc(name, amount)


def observe(name: str, value: float) -> None:
    """Record one histogram observation (no-op while disabled)."""
    if _ENABLED:
        _state().counters.observe(name, value)


def reset() -> None:
    """Clear the current context's recorded spans and counters."""
    state = _STATE.get()
    if state is not None:
        state.tracer.clear()
        state.counters.reset()


# ---------------------------------------------------------------------------
# Memory tracking (opt-in; tracemalloc is process-wide and not free)
# ---------------------------------------------------------------------------


@dataclass
class MemorySample:
    """Allocation totals observed over one :func:`track_memory` block.

    ``peak_bytes`` is the high-water mark of traced allocations inside
    the block; ``current_bytes`` is what was still allocated when the
    block exited (retained state, e.g. the grown clause set).
    """

    current_bytes: int = 0
    peak_bytes: int = 0

    def to_json(self) -> dict[str, int]:
        return {"current_bytes": self.current_bytes, "peak_bytes": self.peak_bytes}


@contextmanager
def track_memory() -> Iterator[MemorySample]:
    """Measure allocations of a with-block via :mod:`tracemalloc`.

    Explicitly opt-in and independent of the tracing enable flag, because
    tracemalloc instruments every allocation in the process (a real
    slowdown, unlike spans).  If tracemalloc is already tracing, only the
    peak is reset so nested/outer tracking keeps working; otherwise
    tracing is started for the block and stopped afterwards.  The sample
    is filled in when the block exits.
    """
    import tracemalloc

    already_tracing = tracemalloc.is_tracing()
    if already_tracing:
        baseline = tracemalloc.get_traced_memory()[0]
        tracemalloc.reset_peak()
    else:
        baseline = 0
        tracemalloc.start()
    sample = MemorySample()
    try:
        yield sample
    finally:
        current, peak = tracemalloc.get_traced_memory()
        sample.current_bytes = max(0, current - baseline)
        sample.peak_bytes = max(0, peak - baseline)
        if not already_tracing:
            tracemalloc.stop()
