"""Differential profiling: from "the gate tripped" to "this kernel, this much".

``repro.obs.baseline`` classifies *that* a run regressed; this module
answers *where*.  Given two BENCH run records -- and, when available,
the two recorded traces behind them -- :func:`attribute` aligns them per
experiment and produces a ranked suspect list:

* **span suspects** -- per-span-name *self-time* deltas between the two
  trace profiles (absolute seconds and share of the experiment's
  wall-time regression), computed on the per-experiment sub-forests
  under the ``experiment.<ident>`` root spans;
* **quantile suspects** -- per-call self-time distribution shifts read
  off the log-bucketed :class:`~repro.obs.core.Histogram`\\ s: a p50/p90/
  p99 that moved by at least one power-of-two bucket (ratio >= 2, twice
  the histogram's sqrt(2) error bound) is a real shape change even when
  call-count changes mask it in the totals;
* **counter suspects** -- per-kernel counter deltas
  (``logic.reduce.subset_tests``, ``cache.*`` hit-rate shifts,
  ``logic.incremental.*`` frontier sizes, ...), exact by design.

Significance is decided by the *shared* gate rules
(:func:`repro.obs.baseline.classify_seconds` /
:func:`~repro.obs.baseline.classify_counter`), with the experiment-level
verdict widened by the recorded repeat spread -- so attribution can
never call something significant that the regression gate would wave
through as noise.  Span and quantile suspects are only hunted inside
experiments whose own wall time or counters moved: two clean
back-to-back runs (identical counters, wall times inside the noise
band) attribute to *nothing*, by construction.

Surfaced as ``python -m repro.cli bench-diff RUN --attribute
[--trace T --base-trace B]``, which prints the suspect table under the
regression table.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping, Sequence
from dataclasses import dataclass, field

from repro.obs.baseline import (
    Thresholds,
    classify_counter,
    classify_seconds,
)
from repro.obs.core import Span
from repro.obs.metrics import ExperimentMetrics, RunRecord
from repro.obs.profile import Profile, experiment_forests, profile_spans

__all__ = [
    "QUANTILE_SHIFT_RATIO",
    "QUANTILES",
    "Suspect",
    "ExperimentAttribution",
    "Attribution",
    "diff_profiles",
    "diff_counters",
    "attribute",
]

#: A per-call quantile must move by at least one power-of-two histogram
#: bucket (x2) to count as a shift: the log-bucket estimate carries a
#: sqrt(2) error bound each way, so anything smaller is indistinguishable
#: from bucketing noise.
QUANTILE_SHIFT_RATIO = 2.0

#: Which per-call self-time quantiles the shift detector inspects.
QUANTILES = (0.5, 0.9, 0.99)

#: Pseudo-experiment ident for traces without ``experiment.*`` roots.
WHOLE_RUN = "(run)"


@dataclass(frozen=True)
class Suspect:
    """One ranked cause candidate for a regression."""

    experiment: str
    kind: str  # "span" | "quantile" | "counter"
    name: str
    baseline: float | None
    current: float | None
    delta: float
    #: For spans: fraction of the experiment's wall-time regression this
    #: self-time delta explains.  For counters and quantiles: relative
    #: change against the baseline value.
    share: float
    significant: bool
    detail: str = ""


@dataclass
class ExperimentAttribution:
    """One experiment's verdict plus its ranked suspects."""

    ident: str
    status: str  # regressed | improved | neutral (shared seconds rule)
    baseline_seconds: float | None
    current_seconds: float | None
    detail: str = ""
    suspects: list[Suspect] = field(default_factory=list)

    @property
    def regression(self) -> float:
        """Wall-time regression in seconds (0.0 when not regressed)."""
        if self.baseline_seconds is None or self.current_seconds is None:
            return 0.0
        return max(0.0, self.current_seconds - self.baseline_seconds)

    @property
    def top(self) -> Suspect | None:
        """The highest-ranked significant suspect, if any."""
        for suspect in self.suspects:
            if suspect.significant:
                return suspect
        return None


@dataclass
class Attribution:
    """The whole differential: per-experiment verdicts and suspects."""

    thresholds: Thresholds
    experiments: list[ExperimentAttribution] = field(default_factory=list)

    def regressed(self) -> list[ExperimentAttribution]:
        return [exp for exp in self.experiments if exp.status == "regressed"]

    def significant_suspects(self) -> list[Suspect]:
        return [
            suspect
            for exp in self.experiments
            for suspect in exp.suspects
            if suspect.significant
        ]

    @property
    def has_significant(self) -> bool:
        return bool(self.significant_suspects())

    def report(self, limit: int = 3):
        """The suspect table as a :class:`~repro.bench.harness.Report`.

        One row per suspect, top ``limit`` per experiment, regressed
        experiments first; the observed line names the top suspect of
        every regressed experiment.
        """
        from repro.bench.harness import Report  # local: harness imports obs.core

        report = Report(
            ident="ATTR",
            title="regression attribution (ranked suspects)",
            claim="which span / counter moved, per regressed experiment",
            columns=(
                "experiment", "suspect", "kind", "baseline", "current",
                "delta", "share", "verdict",
            ),
        )

        def fmt(value: float | None, kind: str) -> str:
            if value is None:
                return "-"
            if kind == "counter":
                return str(int(value))
            return f"{value * 1000:.3f}ms"

        ordered = sorted(
            self.experiments,
            key=lambda e: (e.status != "regressed", -e.regression, e.ident),
        )
        for exp in ordered:
            shown = [s for s in exp.suspects if s.significant][: max(0, limit)]
            for suspect in shown:
                report.add_row(
                    exp.ident,
                    suspect.name,
                    suspect.kind,
                    fmt(suspect.baseline, suspect.kind),
                    fmt(suspect.current, suspect.kind),
                    (
                        f"{suspect.delta:+d}"
                        if suspect.kind == "counter"
                        else f"{suspect.delta * 1000:+.3f}ms"
                    ),
                    f"{suspect.share:+.0%}",
                    "significant" + (f" ({suspect.detail})" if suspect.detail else ""),
                )
        tops = [
            f"{exp.ident} -> {exp.top.name} ({exp.top.kind})"
            for exp in ordered
            if exp.status == "regressed" and exp.top is not None
        ]
        regressed = len(self.regressed())
        observed = (
            f"{regressed} regressed experiment(s), "
            f"{len(self.significant_suspects())} significant suspect(s)"
        )
        if tops:
            observed += "; top: " + ", ".join(tops)
        report.observed = observed
        report.holds = not self.has_significant
        return report


def _rank(suspects: list[Suspect], seconds_regressed: bool) -> list[Suspect]:
    """Significant first; time evidence leads when wall time regressed."""
    if seconds_regressed:
        priority = {"span": 0, "quantile": 1, "counter": 2}
    else:
        priority = {"counter": 0, "span": 1, "quantile": 2}

    def key(suspect: Suspect):
        if suspect.kind == "counter":
            score = abs(suspect.share)
        else:
            score = abs(suspect.delta)
        return (not suspect.significant, priority[suspect.kind], -score, suspect.name)

    return sorted(suspects, key=key)


def diff_profiles(
    current: Profile,
    baseline: Profile,
    thresholds: Thresholds = Thresholds(),
    experiment: str = WHOLE_RUN,
    regression: float | None = None,
) -> list[Suspect]:
    """Span and quantile suspects between two aligned profiles.

    ``regression`` is the experiment's wall-time regression in seconds
    (denominator of the share-of-regression column); when ``None`` the
    total positive self-time delta stands in.
    """
    suspects: list[Suspect] = []
    names = set(current.entries) | set(baseline.entries)
    deltas: dict[str, tuple[float, float, float]] = {}
    for name in names:
        cur = current.entries.get(name)
        base = baseline.entries.get(name)
        cur_self = cur.self_time if cur is not None else 0.0
        base_self = base.self_time if base is not None else 0.0
        deltas[name] = (base_self, cur_self, cur_self - base_self)
    if regression is None or regression <= 0:
        regression = sum(max(0.0, d) for _, _, d in deltas.values())
    for name, (base_self, cur_self, delta) in sorted(deltas.items()):
        status, detail = classify_seconds(cur_self, base_self, thresholds)
        share = delta / regression if regression > 0 else 0.0
        if status == "improved":
            detail = detail or "self time fell"
        suspects.append(
            Suspect(
                experiment=experiment,
                kind="span",
                name=name,
                baseline=base_self,
                current=cur_self,
                delta=delta,
                share=share,
                significant=status != "neutral",
                detail=detail,
            )
        )
        # Quantile shift: the per-call distribution moved even if the
        # totals (possibly rebalanced by call counts) did not.
        cur = current.entries.get(name)
        base = baseline.entries.get(name)
        if cur is None or base is None:
            continue
        worst: tuple[float, float, float, float] | None = None  # ratio, q, b, c
        for q in QUANTILES:
            base_q = base.self_times.quantile(q)
            cur_q = cur.self_times.quantile(q)
            if not base_q or not cur_q or base_q <= 0 or cur_q <= 0:
                continue
            ratio = cur_q / base_q
            if max(ratio, 1 / ratio) < QUANTILE_SHIFT_RATIO:
                continue
            if worst is None or max(ratio, 1 / ratio) > max(worst[0], 1 / worst[0]):
                worst = (ratio, q, base_q, cur_q)
        floor = thresholds.seconds_floor
        if worst is not None and max(cur_self, base_self) >= floor:
            ratio, q, base_q, cur_q = worst
            suspects.append(
                Suspect(
                    experiment=experiment,
                    kind="quantile",
                    name=f"{name} p{int(q * 100)}",
                    baseline=base_q,
                    current=cur_q,
                    delta=cur_q - base_q,
                    share=ratio - 1.0,
                    significant=True,
                    detail=f"per-call x{ratio:.1f}",
                )
            )
    return suspects


def diff_counters(
    current: Mapping[str, int],
    baseline: Mapping[str, int],
    experiment: str = WHOLE_RUN,
) -> list[Suspect]:
    """Counter suspects: exact deltas, share = relative change."""
    suspects: list[Suspect] = []
    for name in sorted(set(current) | set(baseline)):
        cur = current.get(name)
        base = baseline.get(name)
        if cur is None or base is None:
            # Added/removed counters are structural, not regressions; the
            # baseline comparator already reports them as added/removed.
            continue
        status, detail = classify_counter(cur, base)
        if status == "neutral":
            continue
        relative = (cur - base) / abs(base) if base else float("inf")
        suspects.append(
            Suspect(
                experiment=experiment,
                kind="counter",
                name=name,
                baseline=float(base),
                current=float(cur),
                delta=cur - base,
                share=relative,
                significant=True,
                detail=detail,
            )
        )
    return suspects


def _experiment_profiles(
    spans: Iterable[Span] | None,
) -> dict[str, Profile]:
    if spans is None:
        return {}
    return {
        ident: profile_spans(forest)
        for ident, forest in experiment_forests(list(spans)).items()
    }


def _pooled_spread(run: ExperimentMetrics, base: ExperimentMetrics) -> float:
    return max(run.seconds_stddev, base.seconds_stddev)


def attribute(
    run: RunRecord,
    baseline: RunRecord,
    run_spans: Iterable[Span] | None = None,
    base_spans: Iterable[Span] | None = None,
    thresholds: Thresholds = Thresholds(),
) -> Attribution:
    """Align two runs (and optionally their traces) into ranked suspects.

    Experiments are aligned by ident (intersection only); per-experiment
    trace profiles come from the ``experiment.<ident>`` sub-forests of
    the supplied span lists.  Span/quantile hunting only happens inside
    experiments whose wall time left the (spread-widened) noise band or
    whose counters moved -- see the module docstring for why this makes
    clean-vs-clean attribution empty by construction.
    """
    attribution = Attribution(thresholds=thresholds)
    run_profiles = _experiment_profiles(run_spans)
    base_profiles = _experiment_profiles(base_spans)
    for exp in run.experiments:
        base = baseline.experiment(exp.ident)
        if base is None:
            continue
        status, detail = classify_seconds(
            exp.median_seconds,
            base.median_seconds,
            thresholds,
            spread=_pooled_spread(exp, base),
        )
        record = ExperimentAttribution(
            ident=exp.ident,
            status=status,
            baseline_seconds=base.median_seconds,
            current_seconds=exp.median_seconds,
            detail=detail,
        )
        suspects = diff_counters(exp.counters, base.counters, experiment=exp.ident)
        counters_moved = any(s.significant for s in suspects)
        if status != "neutral" or counters_moved:
            run_profile = run_profiles.get(exp.ident)
            base_profile = base_profiles.get(exp.ident)
            if run_profile is not None and base_profile is not None:
                suspects.extend(
                    diff_profiles(
                        run_profile,
                        base_profile,
                        thresholds,
                        experiment=exp.ident,
                        regression=record.regression or None,
                    )
                )
        record.suspects = _rank(suspects, seconds_regressed=status == "regressed")
        attribution.experiments.append(record)
    # Traces without experiment.* roots (ad-hoc sessions): diff them as
    # one whole-run pseudo-experiment, gated on the forest wall time.
    if "" in run_profiles and "" in base_profiles:
        run_profile, base_profile = run_profiles[""], base_profiles[""]
        status, detail = classify_seconds(
            run_profile.wall, base_profile.wall, thresholds
        )
        record = ExperimentAttribution(
            ident=WHOLE_RUN,
            status=status,
            baseline_seconds=base_profile.wall,
            current_seconds=run_profile.wall,
            detail=detail,
        )
        if status != "neutral":
            record.suspects = _rank(
                diff_profiles(
                    run_profile,
                    base_profile,
                    thresholds,
                    experiment=WHOLE_RUN,
                    regression=record.regression or None,
                ),
                seconds_regressed=status == "regressed",
            )
        attribution.experiments.append(record)
    return attribution
