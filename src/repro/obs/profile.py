"""Trace analysis: self-time profiles and flamegraph views of span forests.

PR 1's collection layer records *where time was spent* as a raw span
tree; this module turns that tree into answers.  Three views, all
computable from a live :class:`~repro.obs.core.Tracer` or from a
``--trace-out`` JSON-lines file:

* :func:`profile_spans` / :func:`profile_from_jsonl` -- per-span-name
  aggregation: call count, total time, **self time** (total minus the
  time attributed to child spans), a quantile histogram of per-call self
  times, and roll-ups of numeric span attributes.  Self time is the
  quantity that finds hotspots: a parent that merely waits on an
  instrumented kernel scores near zero, the kernel scores its real cost.
* :func:`folded_stacks` -- the collapsed folded-stack text format
  consumed by ``flamegraph.pl`` and every compatible renderer: one line
  per unique span path, ``root;child;leaf <weight>``, weighted by self
  time in integer microseconds.
* :func:`speedscope_document` -- a speedscope-compatible JSON document
  (``"type": "evented"`` profile) for interactive timeline/left-heavy
  exploration in https://www.speedscope.app.

Totals double-count recursive nesting by design (a name nested under
itself contributes its elapsed at every level); self time does not, so
per-name self times always sum to the forest's wall time.
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass, field

from repro.obs.core import Histogram, Span, Tracer
from repro.obs.export import spans_from_jsonl

__all__ = [
    "EXPERIMENT_SPAN_PREFIX",
    "SpanStats",
    "Profile",
    "profile_spans",
    "profile_from_jsonl",
    "experiment_forests",
    "folded_stacks",
    "speedscope_document",
]

#: ``run_experiments.py`` wraps every experiment in a root span named
#: ``experiment.<ident>``; :func:`experiment_forests` keys on it.
EXPERIMENT_SPAN_PREFIX = "experiment."


def _roots(spans: Iterable[Span] | Tracer) -> list[Span]:
    return spans.roots if isinstance(spans, Tracer) else list(spans)


@dataclass
class SpanStats:
    """Aggregate timing for every span sharing one name."""

    name: str
    calls: int = 0
    total: float = 0.0
    self_time: float = 0.0
    #: Per-call self times; quantiles (p50/p90/p99) come from here.
    self_times: Histogram = field(default_factory=Histogram)
    #: Sums of numeric span attributes (e.g. ``clauses_in`` totals).
    attributes: dict[str, float] = field(default_factory=dict)

    @property
    def mean_self(self) -> float:
        return self.self_time / self.calls if self.calls else 0.0


@dataclass
class Profile:
    """A whole forest's per-span-name statistics."""

    entries: dict[str, SpanStats] = field(default_factory=dict)
    #: Sum of root-span elapsed times (the forest's wall clock).
    wall: float = 0.0
    #: How many spans were aggregated.
    spans: int = 0

    def sorted_by_self(self) -> list[SpanStats]:
        """Entries hottest-first (self time descending, name tiebreak)."""
        return sorted(
            self.entries.values(), key=lambda e: (-e.self_time, e.name)
        )

    def top(self, n: int) -> list[SpanStats]:
        return self.sorted_by_self()[: max(0, n)]

    @property
    def total_self(self) -> float:
        return sum(entry.self_time for entry in self.entries.values())


def profile_spans(spans: Iterable[Span] | Tracer) -> Profile:
    """Aggregate a span forest into per-name call/total/self statistics."""
    profile = Profile()
    for root in _roots(spans):
        profile.wall += root.elapsed
        for _, node in root.walk():
            entry = profile.entries.get(node.name)
            if entry is None:
                entry = profile.entries[node.name] = SpanStats(node.name)
            child_time = sum(child.elapsed for child in node.children)
            # Clamp: child clocks can overshoot the parent's by timer
            # granularity; negative self time is never meaningful.
            self_time = max(0.0, node.elapsed - child_time)
            entry.calls += 1
            entry.total += node.elapsed
            entry.self_time += self_time
            entry.self_times.observe(self_time)
            for key, value in node.attributes.items():
                if isinstance(value, bool) or not isinstance(value, (int, float)):
                    continue
                entry.attributes[key] = entry.attributes.get(key, 0) + value
            profile.spans += 1
    return profile


def profile_from_jsonl(text: str) -> Profile:
    """Aggregate the spans of a ``--trace-out`` JSON-lines file."""
    return profile_spans(spans_from_jsonl(text))


def experiment_forests(
    spans: Iterable[Span] | Tracer,
) -> dict[str, list[Span]]:
    """Group a span forest by its ``experiment.<ident>`` root spans.

    ``run_experiments.py`` opens one ``experiment.<ident>`` span per
    experiment, so a recorded trace splits cleanly into per-experiment
    sub-forests -- the unit the differential attributor diffs.  Roots
    not named ``experiment.*`` (REPL sessions, ad-hoc traces) collect
    under the empty key ``""``.
    """
    forests: dict[str, list[Span]] = {}
    for root in _roots(spans):
        if root.name.startswith(EXPERIMENT_SPAN_PREFIX):
            key = root.name[len(EXPERIMENT_SPAN_PREFIX):]
        else:
            key = ""
        forests.setdefault(key, []).append(root)
    return forests


# ---------------------------------------------------------------------------
# Flamegraph exports
# ---------------------------------------------------------------------------


def folded_stacks(spans: Iterable[Span] | Tracer) -> str:
    """The forest as collapsed folded-stack text (``flamegraph.pl`` input).

    One line per unique root-to-span path -- ``a;b;c <weight>`` --
    weighted by the path's accumulated self time in integer microseconds
    (the conventional unit for wall-clock flamegraphs).  Semicolons in
    span names would corrupt the stack separator, so they are replaced
    with ``:``.
    """
    weights: dict[tuple[str, ...], float] = {}

    def visit(node: Span, path: tuple[str, ...]) -> None:
        path = path + (node.name.replace(";", ":"),)
        child_time = sum(child.elapsed for child in node.children)
        self_us = max(0.0, node.elapsed - child_time) * 1e6
        weights[path] = weights.get(path, 0.0) + self_us
        for child in node.children:
            visit(child, path)

    for root in _roots(spans):
        visit(root, ())
    lines = [
        f"{';'.join(path)} {int(round(weight))}"
        for path, weight in sorted(weights.items())
    ]
    return "\n".join(lines) + ("\n" if lines else "")


def speedscope_document(
    spans: Iterable[Span] | Tracer, name: str = "repro trace"
) -> dict[str, object]:
    """The forest as a speedscope ``evented`` profile document.

    Open/close event timestamps come from the recorded span starts and
    elapsed times, re-based to the earliest root and clamped so the event
    stream is monotone and properly nested even under timer jitter --
    the two invariants speedscope validates on load.
    """
    roots = _roots(spans)
    frames: list[dict[str, str]] = []
    frame_index: dict[str, int] = {}
    events: list[dict[str, object]] = []
    origin = min((root.start for root in roots), default=0.0)
    cursor = 0.0

    def frame_of(span_name: str) -> int:
        index = frame_index.get(span_name)
        if index is None:
            index = frame_index[span_name] = len(frames)
            frames.append({"name": span_name})
        return index

    def visit(node: Span, parent_close: float | None) -> None:
        nonlocal cursor
        opened = max(node.start - origin, cursor)
        closed = node.start - origin + node.elapsed
        if parent_close is not None:
            closed = min(closed, parent_close)
        closed = max(closed, opened)
        events.append({"type": "O", "frame": frame_of(node.name), "at": opened})
        cursor = opened
        for child in node.children:
            visit(child, closed)
        closed = max(closed, cursor)
        events.append({"type": "C", "frame": frame_of(node.name), "at": closed})
        cursor = closed

    for root in roots:
        visit(root, None)
    return {
        "$schema": "https://www.speedscope.app/file-format-schema.json",
        "shared": {"frames": frames},
        "profiles": [
            {
                "type": "evented",
                "name": name,
                "unit": "seconds",
                "startValue": 0,
                "endValue": cursor,
                "events": events,
            }
        ],
        "name": name,
        "exporter": "repro.obs.profile",
        "activeProfileIndex": 0,
    }
