"""Baseline store and regression comparator for ``BENCH_*.json`` records.

A *baseline* is just a promoted run record (same schema) kept at
``benchmarks/baselines/baseline.json``.  :func:`compare` classifies every
metric of a fresh run against it as improved / regressed / neutral with
noise-aware, per-class rules:

* **seconds** -- compared on the median of repeats, with a relative
  tolerance (wall clocks are noisy) and an absolute floor below which
  two timings are never distinguished;
* **counters** -- deterministic work counts (seeded workloads), so the
  gate is exact: any increase is a regression, any decrease an
  improvement, no tolerance either way;
* **fits** -- growth exponents drifting beyond an absolute tolerance in
  *either* direction are flagged (a slope falling from 1.0 to 0.4 is as
  suspicious as one rising to 1.6): they are shape claims, not speed.
* **throughput** -- service load runs (the schema-4 ``throughput``
  block): ops/s with a relative band, latency percentiles with
  *percentile-aware* bands -- the p99 band is wider than the p50 band,
  because a tail quantile estimated from a few seconds of load is far
  noisier than the median.  Reported in every diff but **not** in
  :data:`DEFAULT_GATE`: load numbers from shared CI runners swing too
  much to block merges by default; gate them explicitly with
  ``--gate ...,throughput`` where the environment warrants it.

``python -m repro.cli bench-diff run.json [--against baseline.json]``
renders the classification through the bench ``Report`` table renderer;
``benchmarks/run_experiments.py --check-regressions`` turns it into a CI
gate, and ``--update-baseline`` promotes a run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

from repro.errors import MetricsError, MetricsVersionError
from repro.obs.metrics import (
    RunRecord,
    read_run_record,
    write_run_record,
)

__all__ = [
    "DEFAULT_BASELINE_RELPATH",
    "DEFAULT_GATE",
    "METRIC_KINDS",
    "SPREAD_SIGMAS",
    "Thresholds",
    "MetricDelta",
    "Comparison",
    "classify_seconds",
    "classify_counter",
    "classify_fit",
    "classify_throughput",
    "classify_latency",
    "compare",
    "load_baseline",
    "promote_baseline",
]

#: Where the committed baseline lives, relative to the repo root.
DEFAULT_BASELINE_RELPATH = Path("benchmarks") / "baselines" / "baseline.json"

#: Metric classes, and which of them gate CI by default.  Throughput is
#: compared and reported but deliberately left out of the default gate
#: (load numbers are environment-noisy); opt in with an explicit gate
#: set where the runners are quiet enough.
METRIC_KINDS = ("seconds", "counter", "fit", "throughput")
DEFAULT_GATE = frozenset(("seconds", "counter", "fit"))


@dataclass(frozen=True)
class Thresholds:
    """Noise model for the comparator.

    ``seconds_rtol`` is the relative tolerance on median seconds (0.5 =
    flag only a >50% swing); ``seconds_floor`` is the absolute floor in
    seconds below which timings are pure noise and never compared;
    ``fit_atol`` is the absolute tolerance on fitted exponents.
    Counters take no threshold -- they are exact by design.

    The throughput family is percentile-aware: ``throughput_rtol``
    bounds relative ops/s drift, and each latency percentile gets its
    own widening relative band (``latency_rtol_p50`` < ``p90`` < ``p99``
    -- a windowed p99 over a short load run jitters far more than the
    median), with ``latency_floor`` the absolute seconds below which
    latencies are never compared.
    """

    seconds_rtol: float = 0.5
    seconds_floor: float = 0.005
    fit_atol: float = 0.35
    throughput_rtol: float = 0.4
    latency_rtol_p50: float = 0.75
    latency_rtol_p90: float = 1.0
    latency_rtol_p99: float = 1.5
    latency_floor: float = 0.0005

    def latency_rtol(self, percentile: str) -> float:
        """The relative tolerance for one latency percentile key."""
        try:
            return {
                "p50": self.latency_rtol_p50,
                "p90": self.latency_rtol_p90,
                "p99": self.latency_rtol_p99,
            }[percentile]
        except KeyError:
            raise MetricsError(
                f"no latency band for percentile {percentile!r} "
                f"(known: p50, p90, p99)"
            ) from None


#: How many standard deviations of recorded repeat spread widen the
#: noise band when a caller supplies one (``classify_seconds(spread=...)``).
#: The gate itself passes ``spread=0.0``, so supplying measured spread can
#: only make a verdict *more* conservative, never flag something the gate
#: would call neutral.
SPREAD_SIGMAS = 3.0


def classify_seconds(
    current: float,
    baseline: float,
    thresholds: Thresholds = Thresholds(),
    *,
    spread: float = 0.0,
) -> tuple[str, str]:
    """THE definition of a significant wall-time change: ``(status, detail)``.

    Shared by the baseline gate (:func:`compare`), the differential
    attributor (:mod:`repro.obs.attribution`), and the history
    changepoint detector (:mod:`repro.obs.history`) so the three can
    never disagree on what "significant" means.  ``status`` is
    ``regressed`` / ``improved`` / ``neutral``.

    The noise band is multiplicative (``seconds_rtol`` each way, with an
    absolute ``seconds_floor`` below which timings are never compared),
    optionally widened by ``spread`` -- a standard deviation of recorded
    repeat samples, scaled by :data:`SPREAD_SIGMAS`.  With ``spread=0``
    this is bit-identical to the historical gate rule.
    """
    floor = thresholds.seconds_floor
    if current < floor and baseline < floor:
        return "neutral", "below noise floor"
    tolerance = 1.0 + thresholds.seconds_rtol
    band = SPREAD_SIGMAS * max(0.0, spread)
    if current > baseline * tolerance + band:
        return "regressed", ""
    if current < baseline / tolerance - band:
        return "improved", ""
    return "neutral", ""


def classify_throughput(
    current: float,
    baseline: float,
    thresholds: Thresholds = Thresholds(),
) -> tuple[str, str]:
    """The ops/s rule: lower throughput regresses, higher improves.

    Mirrors :func:`classify_seconds` with the direction inverted (more
    operations per second is better) and its own relative band.
    """
    if baseline <= 0.0 and current <= 0.0:
        return "neutral", "no throughput either side"
    tolerance = 1.0 + thresholds.throughput_rtol
    if current * tolerance < baseline:
        return "regressed", ""
    if current > baseline * tolerance:
        return "improved", ""
    return "neutral", ""


def classify_latency(
    current: float | None,
    baseline: float | None,
    percentile: str,
    thresholds: Thresholds = Thresholds(),
) -> tuple[str, str]:
    """The percentile-aware latency rule: ``(status, detail)``.

    Each percentile carries its own relative band (tail quantiles are
    noisier than the median, so the p99 band is the widest), and
    latencies under ``latency_floor`` seconds are never compared -- at
    sub-floor scales the socket and scheduler own the number, not the
    kernel under test.
    """
    if current is None or baseline is None:
        return "neutral", "percentile unavailable"
    floor = thresholds.latency_floor
    if current < floor and baseline < floor:
        return "neutral", "below latency floor"
    tolerance = 1.0 + thresholds.latency_rtol(percentile)
    if current > baseline * tolerance:
        return "regressed", f"{percentile} band +{tolerance - 1.0:.0%}"
    if current < baseline / tolerance:
        return "improved", f"{percentile} band +{tolerance - 1.0:.0%}"
    return "neutral", ""


def classify_counter(current: float, baseline: float) -> tuple[str, str]:
    """The exact counter rule: any increase regresses, any decrease improves.

    Counters are deterministic work counts on seeded workloads, so there
    is no tolerance in either direction.
    """
    if current > baseline:
        return "regressed", "exact gate"
    if current < baseline:
        return "improved", "exact gate"
    return "neutral", ""


def classify_fit(
    current: float | None,
    baseline: float | None,
    thresholds: Thresholds = Thresholds(),
) -> tuple[str, str]:
    """The fit-exponent rule: drift beyond ``fit_atol`` either way flags.

    Fits are shape claims, not speed: a slope falling from 1.0 to 0.4 is
    as suspicious as one rising to 1.6, so both directions classify as
    ``regressed``.
    """
    if current is None or baseline is None:
        return "neutral", "fit unavailable"
    if abs(current - baseline) > thresholds.fit_atol:
        return "regressed", f"exponent drifted > {thresholds.fit_atol}"
    return "neutral", ""


@dataclass(frozen=True)
class MetricDelta:
    """One metric's classification against the baseline."""

    experiment: str
    metric: str  # "seconds", "counter:<name>", or "fit:<name>"
    kind: str  # one of METRIC_KINDS
    baseline: float | None
    current: float | None
    status: str  # improved | regressed | neutral | added | removed
    detail: str = ""

    @property
    def is_regression(self) -> bool:
        return self.status == "regressed"


@dataclass
class Comparison:
    """Every metric delta between a run and a baseline."""

    run: RunRecord
    baseline: RunRecord
    thresholds: Thresholds
    deltas: list[MetricDelta] = field(default_factory=list)

    def of_status(self, status: str) -> list[MetricDelta]:
        return [d for d in self.deltas if d.status == status]

    def regressions(self, gate: frozenset[str] = DEFAULT_GATE) -> list[MetricDelta]:
        """Regressed metrics whose kind is in the gate set."""
        return [d for d in self.deltas if d.is_regression and d.kind in gate]

    def improvements(self) -> list[MetricDelta]:
        return self.of_status("improved")

    def summary(self, gate: frozenset[str] = DEFAULT_GATE) -> str:
        counts = {
            status: len(self.of_status(status))
            for status in ("improved", "regressed", "neutral", "added", "removed")
        }
        gated = len(self.regressions(gate))
        parts = [f"{n} {status}" for status, n in counts.items() if n]
        head = ", ".join(parts) if parts else "no metrics compared"
        return f"{head}; {gated} gated regression(s)"

    def report(self, include_neutral: bool = False):
        """The comparison as a :class:`~repro.bench.harness.Report` table.

        Neutral counter/fit rows are suppressed by default (they dominate
        numerically and carry no information); seconds rows always show
        so the table reads as a per-experiment timing diff.
        """
        from repro.bench.harness import Report

        report = Report(
            ident="DIFF",
            title="run vs baseline",
            claim=(
                f"run {self.run.created} (git {self.run.git_sha or '?'}) vs "
                f"baseline {self.baseline.created} "
                f"(git {self.baseline.git_sha or '?'})"
            ),
            columns=("experiment", "metric", "baseline", "current", "change", "status"),
        )

        def fmt(value: float | None, kind: str) -> str:
            if value is None:
                return "-"
            if kind == "counter":
                return str(int(value))
            return f"{value:.4f}" if kind == "seconds" else f"{value:.3f}"

        for delta in self.deltas:
            if (
                not include_neutral
                and delta.status == "neutral"
                and delta.kind != "seconds"
            ):
                continue
            if delta.baseline not in (None, 0) and delta.current is not None:
                relative = (delta.current - delta.baseline) / abs(delta.baseline)
                change = f"{relative:+.0%}"
            elif delta.baseline is not None and delta.current is not None:
                change = f"{delta.current - delta.baseline:+g}"
            else:
                change = "-"
            report.add_row(
                delta.experiment,
                delta.metric,
                fmt(delta.baseline, delta.kind),
                fmt(delta.current, delta.kind),
                change,
                delta.status + (f" ({delta.detail})" if delta.detail else ""),
            )
        report.observed = self.summary()
        report.holds = not self.regressions()
        return report


def _compare_seconds(
    ident: str, current: float, baseline: float, thresholds: Thresholds
) -> MetricDelta:
    status, detail = classify_seconds(current, baseline, thresholds)
    return MetricDelta(
        ident, "seconds", "seconds", baseline, current, status, detail=detail
    )


def _compare_counters(
    ident: str, current: dict[str, int], baseline: dict[str, int]
) -> list[MetricDelta]:
    deltas = []
    for name in sorted(set(current) | set(baseline)):
        metric = f"counter:{name}"
        if name not in baseline:
            deltas.append(
                MetricDelta(ident, metric, "counter", None, current[name], "added")
            )
        elif name not in current:
            deltas.append(
                MetricDelta(ident, metric, "counter", baseline[name], None, "removed")
            )
        else:
            status, detail = classify_counter(current[name], baseline[name])
            deltas.append(
                MetricDelta(
                    ident, metric, "counter", baseline[name], current[name],
                    status, detail=detail,
                )
            )
    return deltas


def _compare_fits(
    ident: str,
    current: dict[str, float | None],
    baseline: dict[str, float | None],
    thresholds: Thresholds,
) -> list[MetricDelta]:
    deltas = []
    for name in sorted(set(current) | set(baseline)):
        metric = f"fit:{name}"
        cur = current.get(name)
        base = baseline.get(name)
        if name not in baseline:
            deltas.append(MetricDelta(ident, metric, "fit", None, cur, "added"))
        elif name not in current:
            deltas.append(MetricDelta(ident, metric, "fit", base, None, "removed"))
        else:
            status, detail = classify_fit(cur, base, thresholds)
            deltas.append(
                MetricDelta(ident, metric, "fit", base, cur, status, detail=detail)
            )
    return deltas


def _compare_throughput(
    current: dict[str, object] | None,
    baseline: dict[str, object] | None,
    thresholds: Thresholds,
) -> list[MetricDelta]:
    """Deltas for the schema-4 ``throughput`` blocks, when comparable.

    A block on only one side is ``added``/``removed`` (neutral for
    gating, like a skipped experiment); mismatched scenarios are never
    compared -- a ``stream`` run against a ``mixed`` baseline would
    manufacture fake regressions.
    """
    ident = "throughput"
    if current is None and baseline is None:
        return []
    if baseline is None:
        assert current is not None
        return [
            MetricDelta(
                ident, "ops_per_second", "throughput", None,
                float(current["ops_per_second"]), "added",  # type: ignore[arg-type]
                detail="no throughput in baseline",
            )
        ]
    if current is None:
        return [
            MetricDelta(
                ident, "ops_per_second", "throughput",
                float(baseline["ops_per_second"]), None, "removed",  # type: ignore[arg-type]
                detail="no throughput in this run",
            )
        ]
    if current.get("scenario") != baseline.get("scenario"):
        return [
            MetricDelta(
                ident, "ops_per_second", "throughput",
                float(baseline["ops_per_second"]),  # type: ignore[arg-type]
                float(current["ops_per_second"]),  # type: ignore[arg-type]
                "neutral",
                detail=(
                    f"scenario mismatch ({baseline.get('scenario')!r} vs "
                    f"{current.get('scenario')!r}); not compared"
                ),
            )
        ]
    deltas = []
    base_total = float(baseline["ops_per_second"])  # type: ignore[arg-type]
    cur_total = float(current["ops_per_second"])  # type: ignore[arg-type]
    status, detail = classify_throughput(cur_total, base_total, thresholds)
    deltas.append(
        MetricDelta(
            ident, "ops_per_second", "throughput", base_total, cur_total,
            status, detail=detail,
        )
    )
    cur_ops = dict(current.get("operations") or {})  # type: ignore[arg-type]
    base_ops = dict(baseline.get("operations") or {})  # type: ignore[arg-type]
    for op in sorted(set(cur_ops) | set(base_ops)):
        if op not in base_ops:
            deltas.append(
                MetricDelta(
                    ident, f"{op}:ops_per_second", "throughput", None,
                    float(cur_ops[op]["ops_per_second"]), "added",
                )
            )
            continue
        if op not in cur_ops:
            deltas.append(
                MetricDelta(
                    ident, f"{op}:ops_per_second", "throughput",
                    float(base_ops[op]["ops_per_second"]), None, "removed",
                )
            )
            continue
        base_rate = float(base_ops[op]["ops_per_second"])
        cur_rate = float(cur_ops[op]["ops_per_second"])
        status, detail = classify_throughput(cur_rate, base_rate, thresholds)
        deltas.append(
            MetricDelta(
                ident, f"{op}:ops_per_second", "throughput", base_rate,
                cur_rate, status, detail=detail,
            )
        )
        cur_latency = cur_ops[op]["latency_seconds"]
        base_latency = base_ops[op]["latency_seconds"]
        for percentile in ("p50", "p90", "p99"):
            cur_value = cur_latency.get(percentile)
            base_value = base_latency.get(percentile)
            status, detail = classify_latency(
                cur_value, base_value, percentile, thresholds
            )
            deltas.append(
                MetricDelta(
                    ident, f"{op}:latency:{percentile}", "throughput",
                    base_value, cur_value, status, detail=detail,
                )
            )
    return deltas


def compare(
    run: RunRecord,
    baseline: RunRecord,
    thresholds: Thresholds = Thresholds(),
) -> Comparison:
    """Classify every metric of ``run`` against ``baseline``.

    Experiments present on only one side produce ``added`` / ``removed``
    deltas (neutral for gating: a ``--smoke`` subset run must not trip
    over the experiments it deliberately skipped).  Any pair of
    *supported* schema versions compares fine -- the fields the
    comparator reads (seconds, counters, fits) exist unchanged in every
    supported version, and demanding exact equality would force a
    baseline re-promotion on every additive schema bump.  A version
    outside :data:`~repro.obs.metrics.SUPPORTED_SCHEMA_VERSIONS` (a
    hand-edited record; loaders reject them) still raises
    :class:`~repro.errors.MetricsVersionError`.
    """
    from repro.obs.metrics import SUPPORTED_SCHEMA_VERSIONS

    for label, record in (("run", run), ("baseline", baseline)):
        if record.schema_version not in SUPPORTED_SCHEMA_VERSIONS:
            raise MetricsVersionError(
                f"cannot compare: {label} record has schema_version "
                f"{record.schema_version}; this build reads versions "
                f"{SUPPORTED_SCHEMA_VERSIONS}. Re-seed the baseline with "
                f"'python benchmarks/run_experiments.py --update-baseline'."
            )
    comparison = Comparison(run=run, baseline=baseline, thresholds=thresholds)
    for exp in run.experiments:
        base = baseline.experiment(exp.ident)
        if base is None:
            comparison.deltas.append(
                MetricDelta(
                    exp.ident, "seconds", "seconds", None, exp.median_seconds,
                    "added", detail="not in baseline",
                )
            )
            continue
        comparison.deltas.append(
            _compare_seconds(
                exp.ident, exp.median_seconds, base.median_seconds, thresholds
            )
        )
        comparison.deltas.extend(
            _compare_counters(exp.ident, exp.counters, base.counters)
        )
        comparison.deltas.extend(
            _compare_fits(exp.ident, exp.fits, base.fits, thresholds)
        )
    covered = {exp.ident for exp in run.experiments}
    for base_exp in baseline.experiments:
        if base_exp.ident not in covered:
            comparison.deltas.append(
                MetricDelta(
                    base_exp.ident, "seconds", "seconds",
                    base_exp.median_seconds, None, "removed",
                    detail="not in this run",
                )
            )
    comparison.deltas.extend(
        _compare_throughput(run.throughput, baseline.throughput, thresholds)
    )
    return comparison


def load_baseline(path: str | Path) -> RunRecord:
    """Load a promoted baseline (a validated run record)."""
    source = Path(path)
    if not source.exists():
        raise MetricsError(
            f"no baseline at {source}; seed one with "
            f"'python benchmarks/run_experiments.py --update-baseline'"
        )
    return read_run_record(source)


def promote_baseline(record: RunRecord, path: str | Path) -> Path:
    """Promote a run record to be the baseline at ``path`` (atomic write)."""
    return write_run_record(record, path)
