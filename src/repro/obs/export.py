"""Exporters for recorded spans and counters.

Three views of the same telemetry:

* :func:`render_span_tree` -- human-readable indented tree (the REPL's
  ``:trace show``);
* :func:`export_jsonl` / :func:`spans_from_jsonl` -- flat JSON-lines for
  tooling (``run_experiments.py --trace-out``), with enough structure
  (``id`` / ``parent``) to round-trip the span tree;
* :func:`counter_report` -- a counter summary table reusing the
  :class:`~repro.bench.harness.Report` renderer, so counter tables look
  like every other table the harness prints.

:func:`validate_jsonl` is the small schema check the CI smoke job runs
against emitted trace files, so exporter drift fails CI instead of
silently corrupting bench artifacts.
"""

from __future__ import annotations

import json
from collections.abc import Iterable, Mapping, Sequence

from repro.obs.core import Counters, Histogram, Span, Tracer

__all__ = [
    "render_span_tree",
    "export_jsonl",
    "spans_from_jsonl",
    "counters_from_jsonl",
    "merge_jsonl",
    "validate_jsonl",
    "counter_report",
]


def _format_attributes(attributes: Mapping[str, object]) -> str:
    if not attributes:
        return ""
    inner = ", ".join(f"{k}={v}" for k, v in attributes.items())
    return f"  [{inner}]"


def render_span_tree(spans: Iterable[Span] | Tracer) -> str:
    """The span forest as indented plain text, one line per span."""
    roots = spans.roots if isinstance(spans, Tracer) else list(spans)
    lines: list[str] = []
    for root in roots:
        for depth, node in root.walk():
            lines.append(
                f"{'  ' * depth}{node.name}  {node.elapsed * 1000:.3f}ms"
                f"{_format_attributes(node.attributes)}"
            )
    return "\n".join(lines) if lines else "(no spans recorded)"


# ---------------------------------------------------------------------------
# JSON-lines
# ---------------------------------------------------------------------------

# One JSON object per line.  Record types:
#   {"type": "span", "id": int, "parent": int|null, "name": str,
#    "start": float, "elapsed": float, "attributes": {...}}
#   {"type": "counter", "name": str, "value": int}
#   {"type": "histogram", "name": str, "count": int, "total": float,
#    "min": float|null, "max": float|null, "buckets": {"<exp>": int}}
# A zero-count histogram has min/max null (the in-memory sentinels are
# +/-inf, which are not valid strict JSON); ``buckets`` maps the log-
# bucket exponent (see obs.core.Histogram) to its observation count.

_SPAN_KEYS = {"type", "id", "parent", "name", "start", "elapsed", "attributes"}
_COUNTER_KEYS = {"type", "name", "value"}
_HISTOGRAM_KEYS = {"type", "name", "count", "total", "min", "max", "buckets"}


def export_jsonl(
    spans: Iterable[Span] | Tracer, counters: Counters | None = None
) -> str:
    """Spans (and optionally counters) as JSON-lines text."""
    roots = spans.roots if isinstance(spans, Tracer) else list(spans)
    lines: list[str] = []
    next_id = 0

    def emit(node: Span, parent_id: int | None) -> None:
        nonlocal next_id
        span_id = next_id
        next_id += 1
        lines.append(
            json.dumps(
                {
                    "type": "span",
                    "id": span_id,
                    "parent": parent_id,
                    "name": node.name,
                    "start": node.start,
                    "elapsed": node.elapsed,
                    "attributes": {str(k): v for k, v in node.attributes.items()},
                },
                default=str,
                sort_keys=True,
            )
        )
        for child in node.children:
            emit(child, span_id)

    for root in roots:
        emit(root, None)
    if counters is not None:
        for name in sorted(counters.counts):
            lines.append(
                json.dumps(
                    {"type": "counter", "name": name, "value": counters.get(name)},
                    sort_keys=True,
                )
            )
        for name, histogram in sorted(counters.histograms.items()):
            lines.append(
                json.dumps(
                    {
                        "type": "histogram",
                        "name": name,
                        "count": histogram.count,
                        "total": histogram.total,
                        "min": histogram.minimum if histogram.count else None,
                        "max": histogram.maximum if histogram.count else None,
                        "buckets": {
                            str(exp): n for exp, n in sorted(histogram.buckets.items())
                        },
                    },
                    sort_keys=True,
                )
            )
    return "\n".join(lines) + ("\n" if lines else "")


def spans_from_jsonl(text: str) -> list[Span]:
    """Rebuild the span forest from :func:`export_jsonl` output."""
    by_id: dict[int, Span] = {}
    roots: list[Span] = []
    for line in text.splitlines():
        if not line.strip():
            continue
        record = json.loads(line)
        if record.get("type") != "span":
            continue
        node = Span(
            name=record["name"],
            attributes=dict(record["attributes"]),
            start=record["start"],
            elapsed=record["elapsed"],
        )
        by_id[record["id"]] = node
        parent = record["parent"]
        if parent is None:
            roots.append(node)
        else:
            by_id[parent].children.append(node)
    return roots


def counters_from_jsonl(text: str) -> Counters:
    """Rebuild a counter registry from :func:`export_jsonl` output."""
    counters = Counters()
    for line in text.splitlines():
        if not line.strip():
            continue
        record = json.loads(line)
        if record.get("type") == "counter":
            counters.inc(record["name"], record["value"])
        elif record.get("type") == "histogram":
            minimum = record["min"]
            maximum = record["max"]
            histogram = Histogram(
                count=record["count"],
                total=record["total"],
                minimum=float("inf") if minimum is None else minimum,
                maximum=float("-inf") if maximum is None else maximum,
                # Older exports carry no buckets; quantiles then degrade
                # to the min/max clamp instead of failing to load.
                buckets={
                    int(exp): n for exp, n in record.get("buckets", {}).items()
                },
            )
            counters._histograms[record["name"]] = histogram
    return counters


def merge_jsonl(texts: Sequence[str]) -> str:
    """Merge several :func:`export_jsonl` documents into one.

    Built for ``run_experiments.py --jobs``: each worker process emits
    its own trace, and the parent folds them into a single artifact.
    Span forests are concatenated in the order given (ids are freshly
    assigned, so colliding per-worker ids cannot corrupt the tree);
    counters are summed and histograms merged via
    :meth:`~repro.obs.core.Counters.merge`.  The result validates under
    :func:`validate_jsonl` whenever the inputs did.
    """
    roots: list[Span] = []
    merged = Counters()
    saw_counters = False
    for text in texts:
        roots.extend(spans_from_jsonl(text))
        part = counters_from_jsonl(text)
        if part.counts or part.histograms:
            saw_counters = True
        merged.merge(part)
    return export_jsonl(roots, merged if saw_counters else None)


def _is_int_string(value: object) -> bool:
    if not isinstance(value, str):
        return False
    try:
        int(value)
    except ValueError:
        return False
    return True


def validate_jsonl(text: str) -> list[str]:
    """Schema-check JSON-lines trace output; returns error strings.

    An empty list means the text is valid.  Checks every line parses,
    record types and keys are known, span parents reference earlier
    spans, and value types are sane.
    """
    errors: list[str] = []
    seen_span_ids: set[int] = set()
    for lineno, line in enumerate(text.splitlines(), 1):
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            errors.append(f"line {lineno}: not valid JSON ({exc})")
            continue
        if not isinstance(record, dict):
            errors.append(f"line {lineno}: record is not an object")
            continue
        kind = record.get("type")
        if kind == "span":
            if set(record) != _SPAN_KEYS:
                errors.append(f"line {lineno}: span keys {sorted(record)} != expected")
                continue
            if not isinstance(record["id"], int):
                errors.append(f"line {lineno}: span id must be an int")
                continue
            if not isinstance(record["name"], str) or not record["name"]:
                errors.append(f"line {lineno}: span name must be a non-empty string")
            if not isinstance(record["attributes"], dict):
                errors.append(f"line {lineno}: span attributes must be an object")
            for key in ("start", "elapsed"):
                if not isinstance(record[key], (int, float)):
                    errors.append(f"line {lineno}: span {key} must be a number")
            parent = record["parent"]
            if parent is not None and parent not in seen_span_ids:
                errors.append(
                    f"line {lineno}: span parent {parent} not seen before child"
                )
            seen_span_ids.add(record["id"])
        elif kind == "counter":
            if set(record) != _COUNTER_KEYS:
                errors.append(f"line {lineno}: counter keys {sorted(record)} != expected")
            elif not isinstance(record["name"], str) or not isinstance(
                record["value"], int
            ):
                errors.append(f"line {lineno}: counter needs str name and int value")
        elif kind == "histogram":
            if set(record) != _HISTOGRAM_KEYS:
                errors.append(
                    f"line {lineno}: histogram keys {sorted(record)} != expected"
                )
                continue
            if not isinstance(record["count"], int) or record["count"] < 0:
                errors.append(
                    f"line {lineno}: histogram count must be a non-negative int"
                )
                continue
            empty = record["count"] == 0
            for key in ("min", "max"):
                value = record[key]
                if empty:
                    if value is not None:
                        errors.append(
                            f"line {lineno}: empty histogram must have null {key}"
                        )
                elif not isinstance(value, (int, float)) or isinstance(value, bool):
                    errors.append(
                        f"line {lineno}: histogram {key} must be a number"
                    )
            buckets = record["buckets"]
            if not isinstance(buckets, dict):
                errors.append(f"line {lineno}: histogram buckets must be an object")
            else:
                for exp, n in buckets.items():
                    if not _is_int_string(exp) or isinstance(n, bool) or not isinstance(n, int):
                        errors.append(
                            f"line {lineno}: histogram bucket {exp!r}: {n!r} must "
                            f"map an integer-string exponent to an int count"
                        )
                        break
                else:
                    total = sum(buckets.values())
                    if total != record["count"]:
                        errors.append(
                            f"line {lineno}: histogram buckets sum to {total}, "
                            f"count says {record['count']}"
                        )
        else:
            errors.append(f"line {lineno}: unknown record type {kind!r}")
    return errors


# ---------------------------------------------------------------------------
# Counter tables
# ---------------------------------------------------------------------------


def counter_report(
    counters: Counters | Mapping[str, int],
    ident: str = "OBS",
    title: str = "kernel counters",
    claim: str = "work done by the instrumented BLU/HLU kernels",
):
    """Counter values as a :class:`~repro.bench.harness.Report` table.

    Accepts either a :class:`Counters` registry (histograms included as
    ``n/mean/min/max`` summary rows) or a plain name-to-value mapping
    (e.g. a :meth:`Counters.delta`).
    """
    from repro.bench.harness import Report  # local import: harness imports obs.core

    report = Report(ident=ident, title=title, claim=claim, columns=("counter", "value"))
    if isinstance(counters, Counters):
        counts: Mapping[str, int] = counters.counts
        histograms = counters.histograms
    else:
        counts = counters
        histograms = {}
    for name in sorted(counts):
        report.add_row(name, counts[name])
    for name, histogram in sorted(histograms.items()):
        if not histogram.count:
            report.add_row(name, "n=0")
            continue
        report.add_row(
            name,
            f"n={histogram.count} mean={histogram.mean:.1f} "
            f"min={histogram.minimum:g} max={histogram.maximum:g} "
            f"p50={histogram.p50:g} p90={histogram.p90:g} p99={histogram.p99:g}",
        )
    return report
