"""The live run dashboard: render telemetry snapshots as a terminal view.

Pure rendering plus two small I/O helpers, deliberately separated so the
interesting parts are testable without a TTY:

* :func:`render_dashboard` -- a multi-line frame: one row per worker
  (status, ops/s, windowed p50/p99 latency, cache hit rate) and a
  fleet-totals row merged exactly from the per-worker histograms;
* :func:`render_watch` -- the compact single-registry view behind the
  REPL's ``:watch``;
* :class:`LiveDisplay` -- writes frames to a stream; in ANSI mode it
  redraws in place (cursor-up + erase-line), in headless mode (no TTY,
  ``TERM=dumb``, or ``REPRO_LIVE_HEADLESS=1``) it emits one plain
  summary line per update so CI logs stay readable;
* :class:`FeedTailer` -- incremental reader for a worker's feed file,
  tolerant of partially written last lines.

Every number rendered here comes out of a snapshot dict produced by
:meth:`repro.obs.runtime.MetricsRegistry.snapshot` (or
:func:`repro.obs.runtime.merge_snapshots`), so the dashboard, the JSONL
feed, and the Prometheus exposition can never disagree.
"""

from __future__ import annotations

import json
import os
from collections.abc import Mapping, Sequence
from dataclasses import dataclass, field
from typing import IO, Any

from repro.obs.runtime import merge_snapshots

__all__ = [
    "WorkerView",
    "DashboardModel",
    "ops_per_second",
    "latency_quantiles",
    "cache_hit_rate",
    "render_dashboard",
    "render_watch",
    "is_headless",
    "LiveDisplay",
    "FeedTailer",
    "tail_snapshots",
]


# ---------------------------------------------------------------------------
# Snapshot digests
# ---------------------------------------------------------------------------


def ops_per_second(snapshot: Mapping[str, Any] | None) -> float:
    """Total windowed ops/s: the sum over every rate meter."""
    if not snapshot:
        return 0.0
    return sum(
        float(meter.get("rate", 0.0))
        for meter in snapshot.get("meters", {}).values()
    )


def latency_quantiles(
    snapshot: Mapping[str, Any] | None,
) -> tuple[float | None, float | None]:
    """Windowed ``(p50, p99)`` seconds across every ``*.seconds`` histogram.

    Exact merge of the windows' log buckets (not an average of
    quantiles), via :func:`repro.obs.runtime.merge_snapshots` semantics.
    """
    if not snapshot:
        return None, None
    from repro.obs.core import Histogram
    from repro.obs.runtime import _histogram_from_snapshot

    merged = Histogram()
    for name, hist in snapshot.get("histograms", {}).items():
        if not name.endswith(".seconds"):
            continue
        merged.merge(_histogram_from_snapshot(hist.get("window", {})))
    if merged.count == 0:
        return None, None
    return merged.p50, merged.p99


def cache_hit_rate(snapshot: Mapping[str, Any] | None) -> float | None:
    """Kernel-cache hit fraction, or ``None`` before any lookup."""
    if not snapshot:
        return None
    counters = snapshot.get("counters", {})
    hits = int(counters.get("cache.hits", 0))
    misses = int(counters.get("cache.misses", 0))
    lookups = hits + misses
    if lookups == 0:
        return None
    return hits / lookups


# ---------------------------------------------------------------------------
# The model the runner maintains
# ---------------------------------------------------------------------------


@dataclass
class WorkerView:
    """One worker's latest known state."""

    label: str
    status: str = "pending"  # pending | running | done | failed
    snapshot: dict[str, Any] | None = None


@dataclass
class DashboardModel:
    """Everything a frame needs: per-worker views, in insertion order."""

    title: str = "live telemetry"
    workers: dict[str, WorkerView] = field(default_factory=dict)

    def worker(self, label: str) -> WorkerView:
        view = self.workers.get(label)
        if view is None:
            view = self.workers[label] = WorkerView(label)
        return view

    def merged_snapshot(self) -> dict[str, Any] | None:
        snapshots = [
            view.snapshot for view in self.workers.values() if view.snapshot
        ]
        if not snapshots:
            return None
        if len(snapshots) == 1:
            return dict(snapshots[0])
        return merge_snapshots(snapshots)


# ---------------------------------------------------------------------------
# Rendering
# ---------------------------------------------------------------------------


def _ms(seconds: float | None) -> str:
    if seconds is None:
        return "--"
    return f"{seconds * 1000:.2f}ms"


def _pct(fraction: float | None) -> str:
    if fraction is None:
        return "--"
    return f"{fraction * 100:.0f}%"


_STATUS_MARK = {"pending": ".", "running": ">", "done": "ok", "failed": "XX"}


def render_dashboard(model: DashboardModel, width: int = 78) -> str:
    """One dashboard frame as plain text (no control codes).

    Layout::

        == live telemetry ==================================
        worker    status    ops/s      p50       p99    cache
        E6        ok       1234.5   0.52ms    2.10ms      87%
        ...
        TOTAL     2/3      2469.0   0.55ms    2.31ms      85%
    """
    header = f"== {model.title} "
    lines = [header + "=" * max(0, width - len(header))]
    columns = f"{'worker':<10} {'status':<7} {'ops/s':>9} {'p50':>10} {'p99':>10} {'cache':>6}"
    lines.append(columns)
    lines.append("-" * len(columns))
    done = 0
    for view in model.workers.values():
        if view.status == "done":
            done += 1
        p50, p99 = latency_quantiles(view.snapshot)
        lines.append(
            f"{view.label:<10.10} "
            f"{_STATUS_MARK.get(view.status, view.status):<7} "
            f"{ops_per_second(view.snapshot):>9.1f} "
            f"{_ms(p50):>10} {_ms(p99):>10} "
            f"{_pct(cache_hit_rate(view.snapshot)):>6}"
        )
    merged = model.merged_snapshot()
    p50, p99 = latency_quantiles(merged)
    lines.append("-" * len(columns))
    lines.append(
        f"{'TOTAL':<10} "
        f"{f'{done}/{len(model.workers)}':<7} "
        f"{ops_per_second(merged):>9.1f} "
        f"{_ms(p50):>10} {_ms(p99):>10} "
        f"{_pct(cache_hit_rate(merged)):>6}"
    )
    if merged:
        gauges = merged.get("gauges", {})
        rss = gauges.get("proc.rss_bytes")
        if rss is not None:
            lines.append(f"rss {float(rss) / (1024 * 1024):.1f}MB")
    return "\n".join(lines)


def render_watch(snapshot: Mapping[str, Any] | None, title: str = "telemetry") -> str:
    """The REPL ``:watch`` view: one registry, one compact table.

    Rate meters pair with their ``<name>.seconds`` windowed histograms;
    counters and gauges follow.
    """
    if not snapshot or (
        not snapshot.get("meters")
        and not snapshot.get("counters")
        and not snapshot.get("gauges")
        and not snapshot.get("histograms")
    ):
        return "(no telemetry recorded yet)"
    lines = [f"-- {title} (uptime {float(snapshot.get('uptime', 0.0)):.1f}s) --"]
    meters = snapshot.get("meters", {})
    histograms = snapshot.get("histograms", {})
    if meters:
        columns = f"{'op':<24} {'count':>8} {'ops/s':>9} {'p50':>10} {'p99':>10}"
        lines.append(columns)
        for name in sorted(meters):
            meter = meters[name]
            window = histograms.get(f"{name}.seconds", {}).get("window", {})
            lines.append(
                f"{name:<24.24} {meter.get('count', 0):>8} "
                f"{float(meter.get('rate', 0.0)):>9.1f} "
                f"{_ms(window.get('p50')):>10} {_ms(window.get('p99')):>10}"
            )
    shown_hists = {f"{name}.seconds" for name in meters}
    other_hists = sorted(set(histograms) - shown_hists)
    if other_hists:
        lines.append(f"{'histogram':<24} {'count':>8} {'mean':>9} {'p50':>10} {'p99':>10}")
        for name in other_hists:
            hist = histograms[name]
            count = int(hist.get("count", 0))
            mean = float(hist.get("total", 0.0)) / count if count else 0.0
            window = hist.get("window", {})
            lines.append(
                f"{name:<24.24} {count:>8} {mean:>9.2f} "
                f"{_fmt_plain(window.get('p50')):>10} {_fmt_plain(window.get('p99')):>10}"
            )
    counters = snapshot.get("counters", {})
    if counters:
        lines.append("counters: " + "  ".join(
            f"{name}={counters[name]}" for name in sorted(counters)
        ))
    hit_rate = cache_hit_rate(snapshot)
    if hit_rate is not None:
        lines.append(f"cache hit rate: {_pct(hit_rate)}")
    gauges = snapshot.get("gauges", {})
    if gauges:
        lines.append("gauges: " + "  ".join(
            f"{name}={float(gauges[name]):g}" for name in sorted(gauges)
        ))
    return "\n".join(lines)


def _fmt_plain(value: float | None) -> str:
    return "--" if value is None else f"{value:.2f}"


# ---------------------------------------------------------------------------
# Terminal output
# ---------------------------------------------------------------------------


def is_headless(stream: IO[str] | None = None) -> bool:
    """Whether live redraw should fall back to plain line output.

    True when ``REPRO_LIVE_HEADLESS`` is set non-empty, ``TERM`` is
    ``dumb``, or the stream is not a TTY -- i.e. everywhere ANSI cursor
    movement would smear control codes into a log file.
    """
    if os.environ.get("REPRO_LIVE_HEADLESS"):
        return True
    if os.environ.get("TERM") == "dumb":
        return True
    if stream is None:
        return True
    isatty = getattr(stream, "isatty", None)
    return not (isatty and isatty())


class LiveDisplay:
    """Writes dashboard frames to a stream, redrawing in place when it can.

    ANSI mode repaints the frame by moving the cursor up over the
    previous one (erasing each line), so the dashboard stays put while
    the run scrolls nothing.  Headless mode prints one compact summary
    line per update -- the CI-safe fallback the ``--live`` smoke test
    exercises.
    """

    def __init__(self, stream: IO[str], headless: bool | None = None):
        self._stream = stream
        self.headless = is_headless(stream) if headless is None else headless
        self._last_height = 0

    def update(self, model: DashboardModel) -> None:
        if self.headless:
            merged = model.merged_snapshot()
            done = sum(1 for v in model.workers.values() if v.status == "done")
            p50, p99 = latency_quantiles(merged)
            self._stream.write(
                f"[live] {done}/{len(model.workers)} done "
                f"ops/s={ops_per_second(merged):.1f} "
                f"p50={_ms(p50)} p99={_ms(p99)} "
                f"cache={_pct(cache_hit_rate(merged))}\n"
            )
            self._stream.flush()
            return
        frame = render_dashboard(model)
        lines = frame.split("\n")
        if self._last_height:
            self._stream.write(f"\x1b[{self._last_height}F")
        self._stream.write("".join(f"\x1b[2K{line}\n" for line in lines))
        self._stream.flush()
        self._last_height = len(lines)

    def close(self, model: DashboardModel | None = None) -> None:
        """Final frame (both modes render the full dashboard once)."""
        if model is not None:
            if self.headless:
                self._stream.write(render_dashboard(model) + "\n")
                self._stream.flush()
            else:
                self.update(model)
        self._last_height = 0


class FeedTailer:
    """Incrementally reads snapshot records from a growing feed file.

    ``poll()`` returns the records appended since the last call, parsing
    only complete lines (a writer mid-line is simply picked up next
    time) and skipping records that do not parse.  Missing files mean
    "worker not started yet", not an error.
    """

    def __init__(self, path: str):
        self.path = path
        self._offset = 0

    def poll(self) -> list[dict[str, Any]]:
        try:
            with open(self.path) as handle:
                handle.seek(self._offset)
                chunk = handle.read()
        except OSError:
            return []
        if not chunk:
            return []
        last_newline = chunk.rfind("\n")
        if last_newline < 0:
            return []
        complete, self._offset = chunk[: last_newline + 1], self._offset + last_newline + 1
        records: list[dict[str, Any]] = []
        for line in complete.splitlines():
            if not line.strip():
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                continue
            if isinstance(record, dict):
                records.append(record)
        return records

    def latest_snapshot(self) -> dict[str, Any] | None:
        """The newest snapshot in the unread tail, or ``None``."""
        snapshot = None
        for record in self.poll():
            if record.get("type") == "snapshot":
                snapshot = record
        return snapshot


def tail_snapshots(
    tailers: Sequence[FeedTailer], model: DashboardModel
) -> None:
    """Fold each tailer's newest snapshot into the model (by feed name)."""
    for tailer in tailers:
        latest = tailer.latest_snapshot()
        if latest is not None:
            label = str(latest.get("worker") or tailer.path)
            view = model.worker(label)
            view.snapshot = latest
            if view.status == "pending":
                view.status = "running"
