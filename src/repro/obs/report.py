"""Hotspot tables: profiles rendered through the harness ``Report``.

The analysis layer (:mod:`repro.obs.profile`) produces numbers; this
module turns them into the same plain-text tables every experiment
prints, so ``python -m repro.cli trace-report``, the REPL's ``:profile``,
and ad-hoc scripts all show hotspots in one familiar shape.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.obs.core import Span, Tracer
from repro.obs.profile import Profile, profile_spans

__all__ = ["hotspot_report"]


def _ms(seconds: float | None) -> str:
    return "-" if seconds is None else f"{seconds * 1000:.3f}"


def hotspot_report(
    profile: Profile | Tracer | Iterable[Span],
    limit: int = 15,
    ident: str = "PROF",
    title: str = "trace hotspots (by self time)",
    claim: str = "where the recorded wall time was actually spent",
):
    """The hottest span names as a :class:`~repro.bench.harness.Report`.

    Accepts a ready :class:`~repro.obs.profile.Profile`, a live
    :class:`~repro.obs.core.Tracer`, or a span forest.  Rows are sorted
    by accumulated self time, one per span name, with per-call self-time
    quantiles from the profile's log-bucketed histograms.
    """
    from repro.bench.harness import Report  # local import: harness imports obs.core

    if not isinstance(profile, Profile):
        profile = profile_spans(profile)
    report = Report(
        ident=ident,
        title=title,
        claim=claim,
        columns=(
            "span",
            "calls",
            "total ms",
            "self ms",
            "self %",
            "p50 ms",
            "p90 ms",
            "p99 ms",
        ),
    )
    total_self = profile.total_self
    shown = profile.top(limit)
    for entry in shown:
        share = entry.self_time / total_self if total_self else 0.0
        report.add_row(
            entry.name,
            entry.calls,
            _ms(entry.total),
            _ms(entry.self_time),
            f"{share:.1%}",
            _ms(entry.self_times.p50),
            _ms(entry.self_times.p90),
            _ms(entry.self_times.p99),
        )
    hidden = len(profile.entries) - len(shown)
    observed = (
        f"{profile.spans} span(s) over {len(profile.entries)} name(s), "
        f"wall {profile.wall * 1000:.3f}ms"
    )
    if shown:
        observed += f"; top self time: {shown[0].name}"
    if hidden > 0:
        observed += f" ({hidden} cooler name(s) not shown)"
    report.observed = observed
    return report
