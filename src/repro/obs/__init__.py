"""``repro.obs``: zero-dependency tracing spans and kernel counters.

The observability layer for the whole stack.  Kernels call the
module-level helpers (:func:`span`, :func:`inc`, :func:`observe`), which
are near-no-ops until :func:`enable` is called; exporters render the
recorded telemetry as a span tree, JSON-lines, or a counter table.  See
DESIGN.md section "Observability".

Typical use::

    from repro import obs
    from repro.obs.export import render_span_tree, counter_report

    obs.enable()
    db.insert("A1 | A2")
    print(render_span_tree(obs.tracer()))
    print(counter_report(obs.counters()).render())
"""

from repro.obs.core import (
    Counters,
    Histogram,
    MemorySample,
    Span,
    Tracer,
    counters,
    current_span,
    disable,
    enable,
    enabled,
    inc,
    is_enabled,
    observe,
    reset,
    span,
    tracer,
    track_memory,
)
from repro.obs.export import (
    counter_report,
    counters_from_jsonl,
    export_jsonl,
    merge_jsonl,
    render_span_tree,
    spans_from_jsonl,
    validate_jsonl,
)
from repro.obs.profile import (
    Profile,
    SpanStats,
    folded_stacks,
    profile_from_jsonl,
    profile_spans,
    speedscope_document,
)
from repro.obs.report import hotspot_report
from repro.obs import attribution, baseline, history, live, metrics, provenance, runtime
from repro.obs import logging as structured_logging

__all__ = [
    "Span",
    "Tracer",
    "Histogram",
    "Counters",
    "MemorySample",
    "enable",
    "disable",
    "is_enabled",
    "enabled",
    "tracer",
    "counters",
    "span",
    "inc",
    "observe",
    "reset",
    "track_memory",
    "render_span_tree",
    "export_jsonl",
    "spans_from_jsonl",
    "counters_from_jsonl",
    "merge_jsonl",
    "validate_jsonl",
    "counter_report",
    "Profile",
    "SpanStats",
    "profile_spans",
    "profile_from_jsonl",
    "folded_stacks",
    "speedscope_document",
    "hotspot_report",
    "current_span",
    "metrics",
    "baseline",
    "history",
    "attribution",
    "runtime",
    "live",
    "structured_logging",
    "provenance",
]
