"""Live runtime telemetry: a process-wide registry of windowed metrics.

The tracing layer (:mod:`repro.obs.core`) is *post-hoc*: spans, counters,
and histograms accumulate for the whole run and are flushed once at the
end.  Long-lived workloads -- the incremental-update streams and
concurrent-session services the ROADMAP targets -- need the complement:
*current* throughput and *current* tail latency, observable while the
process is still working.  This module provides that substrate:

* :class:`MetricsRegistry` -- named gauges, monotonic counters,
  :class:`RateMeter` throughput meters, and :class:`WindowedHistogram`
  sliding-window quantile summaries (a ring of the cumulative
  log-bucketed :class:`~repro.obs.core.Histogram`, rotated on a
  configurable window and merged via ``Histogram.merge``);
* module-level hook helpers (:func:`count`, :func:`observe`,
  :func:`set_gauge`, :func:`timed`) that the hot layers call; like
  ``obs.core`` they sit behind one process-wide enable flag, so the
  disabled path costs a single global load per call site and the seed
  ``obs`` counters are bit-identical while telemetry is off;
* :class:`ResourceSampler` / :class:`TelemetryPump` -- a background
  thread sampling RSS / GC / tracemalloc gauges and streaming periodic
  snapshots;
* three exports of the same registry state: a schema-versioned JSONL
  telemetry feed (:class:`TelemetryWriter`, :func:`validate_feed`,
  :func:`read_feed`, :func:`merge_feeds`), a Prometheus text exposition
  (:func:`render_prometheus` -- a future server can mount the output at
  ``/metrics`` verbatim), and structured log records (see
  :mod:`repro.obs.logging`).

Unlike the context-local tracer, the registry is deliberately
process-wide and lock-guarded: the sampler thread, the live-dashboard
pump, and the instrumented workload all feed the same store, and a
snapshot must be consistent across them.
"""

from __future__ import annotations

import json
import math
import threading
import time
from collections import deque
from collections.abc import Callable, Iterable, Mapping, Sequence
from typing import IO, Any

from repro.obs.core import Histogram

__all__ = [
    "DEFAULT_WINDOW_SECONDS",
    "DEFAULT_SLOTS",
    "FEED_SCHEMA_VERSION",
    "SUPPORTED_FEED_SCHEMAS",
    "RateMeter",
    "WindowedHistogram",
    "MetricsRegistry",
    "ResourceSampler",
    "TelemetryWriter",
    "TelemetryPump",
    "enable",
    "disable",
    "is_enabled",
    "registry",
    "set_registry",
    "reset",
    "count",
    "observe",
    "set_gauge",
    "timed",
    "record_op",
    "snapshot_histogram",
    "merge_snapshots",
    "prometheus_from_snapshot",
    "render_prometheus",
    "validate_feed",
    "read_feed",
    "merge_feeds",
]

#: Default sliding-window span for rate meters and windowed histograms.
DEFAULT_WINDOW_SECONDS = 10.0

#: Ring slots per window: rotation granularity is ``window / slots``.
DEFAULT_SLOTS = 5

#: Telemetry feed schema (independent of the BENCH record schema).
FEED_SCHEMA_VERSION = 1
SUPPORTED_FEED_SCHEMAS = (1,)

# The process-wide switch, mirroring repro.obs.core / repro.cache.core:
# a plain module global so the disabled check at hook call sites is a
# single global load.
_ENABLED = False


# ---------------------------------------------------------------------------
# Windowed primitives
# ---------------------------------------------------------------------------


class RateMeter:
    """A monotonic event counter with a sliding-window rate.

    ``total`` only ever grows; :meth:`rate` answers "events per second
    over (at most) the trailing window" from a ring of per-slot tallies.
    Rotation is lazy -- driven by the ``now`` passed to :meth:`tick` /
    :meth:`rate` -- so an idle meter costs nothing.
    """

    __slots__ = ("total", "_slot_seconds", "_slots", "_closed", "_current", "_slot_start")

    def __init__(
        self,
        window_seconds: float = DEFAULT_WINDOW_SECONDS,
        slots: int = DEFAULT_SLOTS,
        now: float = 0.0,
    ):
        if window_seconds <= 0 or slots < 1:
            raise ValueError("window_seconds must be > 0 and slots >= 1")
        self.total = 0
        self._slots = slots
        self._slot_seconds = window_seconds / slots
        self._closed: deque[int] = deque(maxlen=slots)
        self._current = 0
        self._slot_start = now

    def _rotate(self, now: float) -> None:
        gap = now - self._slot_start
        if gap < self._slot_seconds:
            return
        steps = int(gap // self._slot_seconds)
        self._closed.append(self._current)
        self._current = 0
        for _ in range(min(steps - 1, self._slots)):
            self._closed.append(0)
        self._slot_start += steps * self._slot_seconds

    def tick(self, amount: int = 1, now: float = 0.0) -> None:
        """Record ``amount`` events at time ``now``."""
        self._rotate(now)
        self._current += amount
        self.total += amount

    def rate(self, now: float = 0.0) -> float:
        """Events per second over the live portion of the window."""
        self._rotate(now)
        events = self._current + sum(self._closed)
        covered = len(self._closed) * self._slot_seconds + max(
            0.0, now - self._slot_start
        )
        if covered <= 0.0:
            return 0.0
        return events / covered


class WindowedHistogram:
    """A sliding-window quantile summary over the log-bucketed Histogram.

    Maintains a cumulative :class:`~repro.obs.core.Histogram` (whole
    lifetime) plus a ring of per-slot histograms; :meth:`window` merges
    the live slots via ``Histogram.merge`` into one bounded summary whose
    p50/p90/p99 reflect only the trailing window.
    """

    __slots__ = ("cumulative", "_slot_seconds", "_slots", "_closed", "_current", "_slot_start")

    def __init__(
        self,
        window_seconds: float = DEFAULT_WINDOW_SECONDS,
        slots: int = DEFAULT_SLOTS,
        now: float = 0.0,
    ):
        if window_seconds <= 0 or slots < 1:
            raise ValueError("window_seconds must be > 0 and slots >= 1")
        self.cumulative = Histogram()
        self._slots = slots
        self._slot_seconds = window_seconds / slots
        self._closed: deque[Histogram] = deque(maxlen=slots)
        self._current = Histogram()
        self._slot_start = now

    def _rotate(self, now: float) -> None:
        gap = now - self._slot_start
        if gap < self._slot_seconds:
            return
        steps = int(gap // self._slot_seconds)
        self._closed.append(self._current)
        self._current = Histogram()
        for _ in range(min(steps - 1, self._slots)):
            self._closed.append(Histogram())
        self._slot_start += steps * self._slot_seconds

    def observe(self, value: float, now: float = 0.0) -> None:
        self._rotate(now)
        self._current.observe(value)
        self.cumulative.observe(value)

    def window(self, now: float = 0.0) -> Histogram:
        """The live slots merged into one histogram (trailing window only)."""
        self._rotate(now)
        merged = Histogram()
        for closed in self._closed:
            merged.merge(closed)
        merged.merge(self._current)
        return merged


# ---------------------------------------------------------------------------
# The registry
# ---------------------------------------------------------------------------


def snapshot_histogram(histogram: Histogram) -> dict[str, Any]:
    """One histogram as the JSON-safe shape used in feed snapshots."""
    empty = histogram.count == 0
    return {
        "count": histogram.count,
        "total": histogram.total,
        "min": None if empty else histogram.minimum,
        "max": None if empty else histogram.maximum,
        "p50": histogram.p50,
        "p90": histogram.p90,
        "p99": histogram.p99,
        "buckets": {str(exp): n for exp, n in sorted(histogram.buckets.items())},
    }


def _histogram_from_snapshot(payload: Mapping[str, Any]) -> Histogram:
    minimum = payload.get("min")
    maximum = payload.get("max")
    return Histogram(
        count=int(payload.get("count", 0)),
        total=float(payload.get("total", 0.0)),
        minimum=float("inf") if minimum is None else float(minimum),
        maximum=float("-inf") if maximum is None else float(maximum),
        buckets={int(exp): n for exp, n in payload.get("buckets", {}).items()},
    )


class MetricsRegistry:
    """Named gauges, counters, rate meters, and windowed histograms.

    Thread-safe (one lock around every mutation and snapshot) because a
    sampler/pump thread and the instrumented workload feed it
    concurrently.  All time comes from the injected ``clock`` so tests
    can drive rotation deterministically.
    """

    def __init__(
        self,
        window_seconds: float = DEFAULT_WINDOW_SECONDS,
        slots: int = DEFAULT_SLOTS,
        clock: Callable[[], float] = time.monotonic,
    ):
        self.window_seconds = window_seconds
        self.slots = slots
        self._clock = clock
        self._lock = threading.Lock()
        self._counters: dict[str, int] = {}
        self._gauges: dict[str, float] = {}
        self._meters: dict[str, RateMeter] = {}
        self._histograms: dict[str, WindowedHistogram] = {}
        self._created = clock()
        self._seq = 0

    def _now(self, now: float | None) -> float:
        return self._clock() if now is None else now

    # --- recording -------------------------------------------------------

    def count(self, name: str, amount: int = 1) -> None:
        """Add to a monotonic counter."""
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + amount

    def set_gauge(self, name: str, value: float) -> None:
        """Set a point-in-time gauge (last write wins)."""
        with self._lock:
            self._gauges[name] = value

    def tick(self, name: str, amount: int = 1, now: float | None = None) -> None:
        """Record events on the named rate meter."""
        now = self._now(now)
        with self._lock:
            meter = self._meters.get(name)
            if meter is None:
                meter = self._meters[name] = RateMeter(
                    self.window_seconds, self.slots, now
                )
            meter.tick(amount, now)

    def observe(self, name: str, value: float, now: float | None = None) -> None:
        """Record one observation into the named windowed histogram."""
        now = self._now(now)
        with self._lock:
            histogram = self._histograms.get(name)
            if histogram is None:
                histogram = self._histograms[name] = WindowedHistogram(
                    self.window_seconds, self.slots, now
                )
            histogram.observe(value, now)

    def record_op(self, name: str, seconds: float, now: float | None = None) -> None:
        """One completed operation: ticks ``<name>`` and observes
        ``<name>.seconds`` -- the shape every per-op hook uses, so the
        dashboard can pair each throughput meter with its latency
        quantiles."""
        now = self._now(now)
        self.tick(name, 1, now)
        self.observe(f"{name}.seconds", seconds, now)

    # --- reading ---------------------------------------------------------

    def snapshot(self, now: float | None = None) -> dict[str, Any]:
        """The whole registry as one JSON-safe snapshot record."""
        now = self._now(now)
        with self._lock:
            self._seq += 1
            return {
                "type": "snapshot",
                "seq": self._seq,
                "now": now,
                "uptime": max(0.0, now - self._created),
                "counters": dict(self._counters),
                "gauges": dict(self._gauges),
                "meters": {
                    name: {"count": meter.total, "rate": meter.rate(now)}
                    for name, meter in sorted(self._meters.items())
                },
                "histograms": {
                    name: {
                        **snapshot_histogram(hist.cumulative),
                        "window": snapshot_histogram(hist.window(now)),
                    }
                    for name, hist in sorted(self._histograms.items())
                },
            }

    def reset(self) -> None:
        """Drop every metric (the enable flag is untouched)."""
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._meters.clear()
            self._histograms.clear()
            self._created = self._clock()
            self._seq = 0

    def render_prometheus(self, now: float | None = None) -> str:
        """The registry in Prometheus text exposition format (0.0.4).

        Counters become ``repro_<name>_total``, gauges plain gauges,
        rate meters a counter plus a ``_rate`` gauge, and windowed
        histograms summaries (windowed p50/p90/p99 as ``quantile``
        labels, cumulative ``_sum`` / ``_count``).  A future update
        service can serve this verbatim at ``/metrics``.
        """
        return prometheus_from_snapshot(self.snapshot(now))


def prometheus_from_snapshot(snap: Mapping[str, Any]) -> str:
    """Render any snapshot record (live or replayed from a feed) as a
    Prometheus text exposition -- the same bytes
    :meth:`MetricsRegistry.render_prometheus` would serve."""
    lines: list[str] = []

    def emit(name: str, kind: str, help_text: str, samples: list[str]) -> None:
        lines.append(f"# HELP {name} {help_text}")
        lines.append(f"# TYPE {name} {kind}")
        lines.extend(samples)

    for name, value in sorted(snap.get("counters", {}).items()):
        metric = f"{_prom_name(name)}_total"
        emit(metric, "counter", f"monotonic counter {name}", [f"{metric} {value}"])
    for name, value in sorted(snap.get("gauges", {}).items()):
        metric = _prom_name(name)
        emit(metric, "gauge", f"gauge {name}", [f"{metric} {_prom_value(value)}"])
    for name, meter in sorted(snap.get("meters", {}).items()):
        metric = f"{_prom_name(name)}_ops_total"
        emit(metric, "counter", f"operations {name}", [f"{metric} {meter['count']}"])
        rate_metric = f"{_prom_name(name)}_ops_rate"
        emit(
            rate_metric,
            "gauge",
            f"windowed ops/s {name}",
            [f"{rate_metric} {_prom_value(meter['rate'])}"],
        )
    for name, hist in sorted(snap.get("histograms", {}).items()):
        metric = _prom_name(name)
        samples = []
        window = hist.get("window", {})
        for label, key in (("0.5", "p50"), ("0.9", "p90"), ("0.99", "p99")):
            quantile = window.get(key)
            if quantile is not None:
                samples.append(
                    f'{metric}{{quantile="{label}"}} {_prom_value(quantile)}'
                )
        samples.append(f"{metric}_sum {_prom_value(hist['total'])}")
        samples.append(f"{metric}_count {hist['count']}")
        emit(metric, "summary", f"windowed quantile summary {name}", samples)
    return "\n".join(lines) + ("\n" if lines else "")


def _prom_name(name: str) -> str:
    cleaned = "".join(ch if ch.isalnum() or ch == "_" else "_" for ch in name)
    if cleaned and cleaned[0].isdigit():
        cleaned = f"_{cleaned}"
    return f"repro_{cleaned}"


def _prom_value(value: float) -> str:
    if isinstance(value, float) and math.isnan(value):
        return "NaN"
    return repr(float(value)) if isinstance(value, float) else str(value)


# ---------------------------------------------------------------------------
# Merging (per-worker feeds -> one fleet view)
# ---------------------------------------------------------------------------


def merge_snapshots(snapshots: Sequence[Mapping[str, Any]]) -> dict[str, Any]:
    """Fold per-worker snapshot records into one combined view.

    Counters, meter counts, and rates are summed; gauges are summed too
    (RSS across workers is the fleet's footprint); histograms are merged
    *exactly* from their transported buckets via ``Histogram.merge``, so
    the combined p50/p99 is what a single registry observing every value
    would answer, not an average of averages.
    """
    counters: dict[str, int] = {}
    gauges: dict[str, float] = {}
    meters: dict[str, dict[str, float]] = {}
    cumulative: dict[str, Histogram] = {}
    windows: dict[str, Histogram] = {}
    totals: dict[str, float] = {}
    newest = 0.0
    seq = 0
    for snap in snapshots:
        newest = max(newest, float(snap.get("now", 0.0)))
        seq = max(seq, int(snap.get("seq", 0)))
        for name, value in snap.get("counters", {}).items():
            counters[name] = counters.get(name, 0) + int(value)
        for name, value in snap.get("gauges", {}).items():
            gauges[name] = gauges.get(name, 0.0) + float(value)
        for name, meter in snap.get("meters", {}).items():
            slot = meters.setdefault(name, {"count": 0, "rate": 0.0})
            slot["count"] += int(meter.get("count", 0))
            slot["rate"] += float(meter.get("rate", 0.0))
        for name, hist in snap.get("histograms", {}).items():
            cumulative.setdefault(name, Histogram()).merge(
                _histogram_from_snapshot(hist)
            )
            windows.setdefault(name, Histogram()).merge(
                _histogram_from_snapshot(hist.get("window", {}))
            )
            totals[name] = totals.get(name, 0.0) + float(hist.get("total", 0.0))
    return {
        "type": "snapshot",
        "seq": seq,
        "now": newest,
        "uptime": max(
            (float(snap.get("uptime", 0.0)) for snap in snapshots), default=0.0
        ),
        "counters": counters,
        "gauges": gauges,
        "meters": meters,
        "histograms": {
            name: {
                **snapshot_histogram(cumulative[name]),
                "window": snapshot_histogram(windows[name]),
            }
            for name in sorted(cumulative)
        },
    }


# ---------------------------------------------------------------------------
# The module-level hook surface the hot layers call
# ---------------------------------------------------------------------------


_REGISTRY = MetricsRegistry()


def registry() -> MetricsRegistry:
    """The process-wide registry the hook helpers feed."""
    return _REGISTRY


def set_registry(new: MetricsRegistry) -> MetricsRegistry:
    """Swap the process-wide registry (returns the previous one)."""
    global _REGISTRY
    previous = _REGISTRY
    _REGISTRY = new
    return previous


def enable() -> None:
    """Turn live telemetry on (process-wide)."""
    global _ENABLED
    _ENABLED = True


def disable() -> None:
    """Turn live telemetry off (the registry keeps its data)."""
    global _ENABLED
    _ENABLED = False


def is_enabled() -> bool:
    """Whether the hot-layer hooks are currently recording."""
    return _ENABLED


def reset() -> None:
    """Drop every recorded metric in the process-wide registry."""
    _REGISTRY.reset()


def count(name: str, amount: int = 1) -> None:
    """Monotonic-counter hook (no-op while telemetry is off)."""
    if _ENABLED:
        _REGISTRY.count(name, amount)


def observe(name: str, value: float) -> None:
    """Windowed-histogram hook (no-op while telemetry is off)."""
    if _ENABLED:
        _REGISTRY.observe(name, value)


def set_gauge(name: str, value: float) -> None:
    """Gauge hook (no-op while telemetry is off)."""
    if _ENABLED:
        _REGISTRY.set_gauge(name, value)


def record_op(name: str, seconds: float) -> None:
    """Completed-operation hook (no-op while telemetry is off)."""
    if _ENABLED:
        _REGISTRY.record_op(name, seconds)


class _NullTimer:
    """Shared do-nothing timer handed out while telemetry is off."""

    __slots__ = ()

    def __enter__(self) -> "_NullTimer":
        return self

    def __exit__(self, *exc_info: object) -> bool:
        return False


_NULL_TIMER = _NullTimer()


class _Timer:
    __slots__ = ("name", "start")

    def __init__(self, name: str):
        self.name = name
        self.start = 0.0

    def __enter__(self) -> "_Timer":
        self.start = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> bool:
        _REGISTRY.record_op(self.name, time.perf_counter() - self.start)
        return False


def timed(name: str):
    """``with timed("hlu.update"):`` -- throughput + latency for one op.

    Returns the shared null timer while telemetry is off, so a hot call
    site costs one global load; enabled, the exit records both the rate
    meter tick and the windowed latency observation.
    """
    if not _ENABLED:
        return _NULL_TIMER
    return _Timer(name)


# ---------------------------------------------------------------------------
# Background sampling (RSS / GC / tracemalloc gauges)
# ---------------------------------------------------------------------------


def _rss_bytes() -> int | None:
    """Resident set size of this process, best effort, stdlib only."""
    try:
        with open("/proc/self/statm") as handle:
            fields = handle.read().split()
        import resource

        page = resource.getpagesize()
        return int(fields[1]) * page
    except (OSError, IndexError, ValueError):
        try:
            import resource

            peak_kb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
            return int(peak_kb) * 1024
        except Exception:
            return None


class ResourceSampler:
    """Samples process gauges into a registry: RSS, GC tallies, and (when
    tracemalloc is already tracing) traced current/peak bytes.

    ``sample_once`` is separable from the thread so the pump (or a test)
    can drive it synchronously.
    """

    def __init__(self, target: MetricsRegistry | None = None):
        self._registry = target if target is not None else _REGISTRY

    def sample_once(self) -> None:
        import gc

        rss = _rss_bytes()
        if rss is not None:
            self._registry.set_gauge("proc.rss_bytes", float(rss))
        gen0, gen1, gen2 = gc.get_count()
        self._registry.set_gauge("gc.gen0_objects", float(gen0))
        self._registry.set_gauge(
            "gc.collections",
            float(sum(stat.get("collections", 0) for stat in gc.get_stats())),
        )
        import tracemalloc

        if tracemalloc.is_tracing():
            current, peak = tracemalloc.get_traced_memory()
            self._registry.set_gauge("tracemalloc.current_bytes", float(current))
            self._registry.set_gauge("tracemalloc.peak_bytes", float(peak))


# ---------------------------------------------------------------------------
# The streaming feed
# ---------------------------------------------------------------------------

_META_REQUIRED = {"type", "schema", "window_seconds", "slots", "worker"}
_SNAPSHOT_REQUIRED = {
    "type",
    "seq",
    "now",
    "uptime",
    "counters",
    "gauges",
    "meters",
    "histograms",
}


class TelemetryWriter:
    """Streams registry snapshots to a JSONL feed, one record per line.

    The first line is a schema-versioned ``meta`` record; every
    subsequent line is a ``snapshot``.  Lines are flushed as written so a
    tailer (the live dashboard) sees them immediately.

    Safe under concurrent producers: a writer is typically fed by both a
    :class:`TelemetryPump` thread and the workload's own flush points
    (e.g. a final snapshot on shutdown), and ``io.TextIOWrapper`` makes
    no atomicity promise for ``write`` -- so one lock serialises the
    whole emit-a-record sequence.  Without it two concurrent first
    snapshots can each emit a meta line, or interleave partial lines,
    both of which fail :func:`validate_feed`.  Snapshots are taken
    *inside* the lock so ``seq`` order always matches line order.
    """

    def __init__(
        self,
        sink: str | IO[str],
        source: MetricsRegistry | None = None,
        worker: str | None = None,
    ):
        self._registry = source if source is not None else _REGISTRY
        self._worker = worker
        if isinstance(sink, str):
            self._handle: IO[str] = open(sink, "w")
            self._owns_handle = True
        else:
            self._handle = sink
            self._owns_handle = False
        self._wrote_meta = False
        self._io_lock = threading.Lock()

    def _write(self, record: Mapping[str, Any]) -> None:
        # Callers hold ``_io_lock``: the dump+write+flush must not
        # interleave with another record's.
        self._handle.write(json.dumps(record, sort_keys=True, default=str) + "\n")
        self._handle.flush()

    def _ensure_meta(self) -> None:
        if self._wrote_meta:
            return
        self._write(
            {
                "type": "meta",
                "schema": FEED_SCHEMA_VERSION,
                "window_seconds": self._registry.window_seconds,
                "slots": self._registry.slots,
                "worker": self._worker,
            }
        )
        self._wrote_meta = True

    def write_snapshot(self, now: float | None = None) -> dict[str, Any]:
        """Append one snapshot record (meta line emitted lazily first)."""
        with self._io_lock:
            self._ensure_meta()
            snap = self._registry.snapshot(now)
            if self._worker is not None:
                snap["worker"] = self._worker
            self._write(snap)
        return snap

    def close(self) -> None:
        with self._io_lock:
            self._ensure_meta()  # an empty feed is still valid and attributable
            if self._owns_handle:
                self._handle.close()


class TelemetryPump(threading.Thread):
    """Background thread: sample resource gauges, then stream a snapshot,
    every ``interval`` seconds until :meth:`stop`.

    This is what makes telemetry *live* inside a busy worker: the
    workload thread only pays the cheap hook calls, and the pump turns
    the registry into a feed on its own clock.
    """

    def __init__(
        self,
        writer: TelemetryWriter,
        interval: float = 0.5,
        sampler: ResourceSampler | None = None,
    ):
        super().__init__(name="repro-telemetry-pump", daemon=True)
        self._writer = writer
        self._interval = interval
        self._sampler = sampler
        self._stop_event = threading.Event()

    def run(self) -> None:
        while not self._stop_event.wait(self._interval):
            self.pump_once()

    def pump_once(self) -> None:
        if self._sampler is not None:
            self._sampler.sample_once()
        self._writer.write_snapshot()

    def stop(self, final_snapshot: bool = True) -> None:
        """Stop the loop; by default flush one last snapshot so the feed
        always ends with the complete totals."""
        self._stop_event.set()
        if self.is_alive():
            self.join(timeout=5.0)
        if final_snapshot:
            self.pump_once()


# ---------------------------------------------------------------------------
# Feed reading and validation
# ---------------------------------------------------------------------------


def read_feed(text: str) -> tuple[dict[str, Any] | None, list[dict[str, Any]]]:
    """Parse a feed into ``(meta, snapshots)``; unknown records are skipped."""
    meta: dict[str, Any] | None = None
    snapshots: list[dict[str, Any]] = []
    for line in text.splitlines():
        if not line.strip():
            continue
        record = json.loads(line)
        if not isinstance(record, dict):
            continue
        if record.get("type") == "meta" and meta is None:
            meta = record
        elif record.get("type") == "snapshot":
            snapshots.append(record)
    return meta, snapshots


def _check_histogram_payload(payload: Any, where: str) -> list[str]:
    errors: list[str] = []
    if not isinstance(payload, dict):
        return [f"{where}: histogram must be an object"]
    for key in ("count", "total", "min", "max", "p50", "p90", "p99", "buckets"):
        if key not in payload:
            errors.append(f"{where}: histogram missing key {key!r}")
    count = payload.get("count")
    if not isinstance(count, int) or count < 0:
        errors.append(f"{where}: histogram count must be a non-negative int")
        return errors
    empty = count == 0
    for key in ("min", "max"):
        value = payload.get(key)
        if empty:
            if value is not None:
                errors.append(f"{where}: empty histogram must have null {key}")
        elif not isinstance(value, (int, float)) or isinstance(value, bool):
            errors.append(f"{where}: histogram {key} must be a number")
    buckets = payload.get("buckets")
    if not isinstance(buckets, dict):
        errors.append(f"{where}: histogram buckets must be an object")
    else:
        total = 0
        for exp, n in buckets.items():
            try:
                int(exp)
            except (TypeError, ValueError):
                errors.append(f"{where}: bucket key {exp!r} is not an integer string")
                return errors
            if isinstance(n, bool) or not isinstance(n, int):
                errors.append(f"{where}: bucket count {n!r} must be an int")
                return errors
            total += n
        if total != count:
            errors.append(
                f"{where}: buckets sum to {total}, count says {count}"
            )
    return errors


def validate_feed(text: str) -> list[str]:
    """Schema-check a telemetry feed; an empty list means it is valid.

    Mirrors :func:`repro.obs.export.validate_jsonl` in spirit: every line
    must parse, the first record must be a supported ``meta``, snapshot
    sections must carry the right shapes, and histogram buckets must sum
    to their counts -- so exporter drift fails CI instead of silently
    corrupting telemetry artifacts.
    """
    errors: list[str] = []
    saw_meta = False
    for lineno, line in enumerate(text.splitlines(), 1):
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            errors.append(f"line {lineno}: not valid JSON ({exc})")
            continue
        if not isinstance(record, dict):
            errors.append(f"line {lineno}: record is not an object")
            continue
        kind = record.get("type")
        if kind == "meta":
            saw_meta = True  # malformed meta is still a meta record
            missing = _META_REQUIRED - set(record)
            if missing:
                errors.append(
                    f"line {lineno}: meta missing key(s) {sorted(missing)}"
                )
            if "schema" in record and record["schema"] not in SUPPORTED_FEED_SCHEMAS:
                errors.append(
                    f"line {lineno}: unsupported feed schema {record['schema']!r} "
                    f"(supported: {SUPPORTED_FEED_SCHEMAS})"
                )
        elif kind == "snapshot":
            if not saw_meta:
                errors.append(f"line {lineno}: snapshot before any meta record")
            missing = _SNAPSHOT_REQUIRED - set(record)
            if missing:
                errors.append(
                    f"line {lineno}: snapshot missing key(s) {sorted(missing)}"
                )
                continue
            if not isinstance(record["counters"], dict) or not all(
                isinstance(k, str) and isinstance(v, int) and not isinstance(v, bool)
                for k, v in record["counters"].items()
            ):
                errors.append(f"line {lineno}: counters must map str -> int")
            if not isinstance(record["gauges"], dict) or not all(
                isinstance(v, (int, float)) and not isinstance(v, bool)
                for v in record["gauges"].values()
            ):
                errors.append(f"line {lineno}: gauges must map str -> number")
            meters = record["meters"]
            if not isinstance(meters, dict):
                errors.append(f"line {lineno}: meters must be an object")
            else:
                for name, meter in meters.items():
                    if (
                        not isinstance(meter, dict)
                        or not isinstance(meter.get("count"), int)
                        or not isinstance(meter.get("rate"), (int, float))
                    ):
                        errors.append(
                            f"line {lineno}: meter {name!r} needs int count "
                            f"and numeric rate"
                        )
                        break
            histograms = record["histograms"]
            if not isinstance(histograms, dict):
                errors.append(f"line {lineno}: histograms must be an object")
            else:
                for name, payload in histograms.items():
                    where = f"line {lineno}: histogram {name!r}"
                    errors.extend(_check_histogram_payload(payload, where))
                    if isinstance(payload, dict) and "window" in payload:
                        errors.extend(
                            _check_histogram_payload(
                                payload["window"], f"{where} window"
                            )
                        )
                    elif isinstance(payload, dict):
                        errors.append(f"{where}: missing window section")
        else:
            errors.append(f"line {lineno}: unknown record type {kind!r}")
    if not saw_meta and text.strip():
        errors.append("feed has no meta record")
    return errors


def merge_feeds(texts: Iterable[str]) -> str:
    """Merge several per-worker feeds into one artifact.

    One meta record (workers listed), then every worker's snapshots in
    feed order, each keeping its ``worker`` label, finally one combined
    ``snapshot`` merged from each worker's *last* snapshot -- the
    fleet-wide totals a single process would have reported.  The result
    validates under :func:`validate_feed` whenever the inputs did.
    """
    metas: list[dict[str, Any]] = []
    all_snapshots: list[dict[str, Any]] = []
    finals: list[dict[str, Any]] = []
    workers: list[str] = []
    for text in texts:
        meta, snapshots = read_feed(text)
        if meta is not None:
            metas.append(meta)
            if meta.get("worker"):
                workers.append(str(meta["worker"]))
        all_snapshots.extend(snapshots)
        if snapshots:
            finals.append(snapshots[-1])
    window = metas[0]["window_seconds"] if metas else DEFAULT_WINDOW_SECONDS
    slots = metas[0]["slots"] if metas else DEFAULT_SLOTS
    lines = [
        json.dumps(
            {
                "type": "meta",
                "schema": FEED_SCHEMA_VERSION,
                "window_seconds": window,
                "slots": slots,
                "worker": None,
                "workers": workers,
            },
            sort_keys=True,
        )
    ]
    for snap in all_snapshots:
        lines.append(json.dumps(snap, sort_keys=True, default=str))
    if finals:
        combined = merge_snapshots(finals)
        combined["worker"] = "merged"
        lines.append(json.dumps(combined, sort_keys=True, default=str))
    return "\n".join(lines) + "\n"


def render_prometheus(now: float | None = None) -> str:
    """The process-wide registry in Prometheus text exposition format."""
    return _REGISTRY.render_prometheus(now)
