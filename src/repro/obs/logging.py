"""Structured JSON-line log records, correlated with the active trace span.

Stdlib-``logging``-compatible: :class:`JsonLineFormatter` is a plain
``logging.Formatter`` subclass, so it drops into any handler, and
:func:`configure` wires a ready-to-use logger writing one JSON object per
line.  Every record carries:

* ``ts`` -- UNIX epoch seconds (``record.created``);
* ``level`` / ``logger`` / ``message``;
* ``span`` / ``span_id`` -- the name and process-unique ``sid`` of the
  innermost :mod:`repro.obs` span open on the emitting context, when one
  is (the correlation hook: grep a telemetry feed's ops against the log
  lines emitted inside the same span);
* ``extra`` -- any non-reserved attributes passed via ``logger.info(...,
  extra={...})``, JSON-encoded with a ``str`` fallback;
* ``exc`` -- the formatted traceback, when the record carries one.

Zero new dependencies, and no import-time side effects on the root
logger: nothing is configured until :func:`configure` is called.
"""

from __future__ import annotations

import io
import json
import logging
from typing import IO

from repro.obs import core

__all__ = [
    "LOG_SCHEMA_VERSION",
    "JsonLineFormatter",
    "configure",
    "get_logger",
    "capture_buffer",
]

#: Bumped when the record shape changes; carried on every line so replay
#: tooling can gate on it.
LOG_SCHEMA_VERSION = 1

# Library-style default: a NullHandler on the package root logger keeps
# unconfigured WARNING-level records (e.g. rejected-update echoes) off
# stderr -- stdlib logging would otherwise print them via its lastResort
# handler.  A :func:`configure` call attaches the real handler; this
# touches only the "repro" logger, never the root logger.
logging.getLogger("repro").addHandler(logging.NullHandler())

#: Attributes every LogRecord carries; anything else came in via ``extra``.
_RESERVED = frozenset(
    vars(
        logging.LogRecord("reserved", logging.INFO, __file__, 0, "", (), None)
    )
) | {"message", "asctime", "taskName"}


class JsonLineFormatter(logging.Formatter):
    """Formats each record as one sorted-key JSON object."""

    def format(self, record: logging.LogRecord) -> str:
        payload: dict[str, object] = {
            "schema": LOG_SCHEMA_VERSION,
            "ts": record.created,
            "level": record.levelname.lower(),
            "logger": record.name,
            "message": record.getMessage(),
        }
        span = core.current_span()
        if span is not None:
            payload["span"] = span.name
            payload["span_id"] = span.sid
        extra = {
            key: value
            for key, value in vars(record).items()
            if key not in _RESERVED
        }
        if extra:
            payload["extra"] = extra
        if record.exc_info:
            payload["exc"] = self.formatException(record.exc_info)
        return json.dumps(payload, sort_keys=True, default=str)


#: Marker attribute so re-configuration replaces our handler instead of
#: stacking duplicates.
_HANDLER_TAG = "_repro_obs_logging"


def configure(
    stream: IO[str] | None = None,
    level: int = logging.INFO,
    name: str = "repro",
) -> logging.Logger:
    """Attach a JSON-lines handler to the named logger and return it.

    Idempotent: calling again (e.g. to redirect to a new stream) replaces
    the previously attached handler rather than adding a second one.
    Propagation is disabled so records do not double-print through the
    root logger.
    """
    logger = logging.getLogger(name)
    for handler in list(logger.handlers):
        if getattr(handler, _HANDLER_TAG, False):
            logger.removeHandler(handler)
            handler.close()
    handler = logging.StreamHandler(stream) if stream is not None else (
        logging.StreamHandler()
    )
    setattr(handler, _HANDLER_TAG, True)
    handler.setFormatter(JsonLineFormatter())
    logger.addHandler(handler)
    logger.setLevel(level)
    logger.propagate = False
    return logger


def get_logger(name: str = "repro") -> logging.Logger:
    """The named logger (configured or not); sugar for instrumented code."""
    return logging.getLogger(name)


def capture_buffer(
    level: int = logging.INFO, name: str = "repro"
) -> tuple[logging.Logger, io.StringIO]:
    """A configured logger writing into a fresh in-memory buffer.

    Convenience for tests and the REPL: returns ``(logger, buffer)``.
    """
    buffer = io.StringIO()
    return configure(buffer, level=level, name=name), buffer
