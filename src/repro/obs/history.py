"""Longitudinal performance history: the append-only BENCH trajectory.

``repro.obs.metrics`` captures one run as a ``BENCH_*.json`` record and
``repro.obs.baseline`` diffs it against a single promoted baseline; this
module keeps *every* run, so a regression question changes from "did
something slip?" to "which commit, on which machine, by how much?".

The store is a schema-versioned JSON-lines file --
``benchmarks/history/history.jsonl`` by default -- where each line wraps
one full run record together with its trajectory key::

    {
      "schema_version": 1,
      "recorded": "2026-08-07T12:34:56Z",   # append time, UTC ISO-8601
      "label": "full" | "smoke" | ...,       # what kind of run this was
      "git_sha": "abc123..." | null,         # from the wrapped record
      "machine": "9f2c61d0a8b4",             # machine_key(fingerprint)
      "record": { ...BENCH run record... }   # schema-versioned itself
    }

Appends are atomic (one ``O_APPEND`` write per line), loads are
validated line by line (a corrupt line names its line number; a newer
``schema_version`` raises :class:`~repro.errors.MetricsVersionError`
instead of being misread), and the file is append-only by construction:
nothing in this module ever rewrites it.

On top of the store sit the two longitudinal queries:

* :func:`experiment_trend` -- one metric of one experiment as an ordered
  series of :class:`TrendPoint`\\ s (median wall seconds with recorded
  repeat spread, a counter, or a fitted exponent), optionally filtered
  to one machine key;
* :func:`detect_changepoint` -- the first entry where the metric left
  its noise band *and stayed out*: the earliest split whose every
  subsequent point classifies non-neutral (same direction) against the
  median of the points before it, using exactly the
  :func:`repro.obs.baseline.classify_seconds` /
  :func:`~repro.obs.baseline.classify_counter` /
  :func:`~repro.obs.baseline.classify_fit` rules the regression gate
  uses -- widened by the recorded repeat spread, so one noisy sample
  cannot fake a drift and the gate and the detector can never disagree
  about what "significant" means.

``python -m repro.cli perf-history record|trend|bisect`` and the REPL's
``:trend`` surface these; ``run_experiments.py --history`` auto-appends
fresh runs.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from collections.abc import Iterable, Mapping, Sequence
from dataclasses import dataclass, field
from pathlib import Path

from repro.errors import MetricsError, MetricsVersionError
from repro.obs.baseline import (
    Thresholds,
    classify_counter,
    classify_fit,
    classify_seconds,
)
from repro.obs.metrics import (
    RunRecord,
    run_record_from_json,
    run_record_to_json,
)

__all__ = [
    "HISTORY_SCHEMA_VERSION",
    "DEFAULT_HISTORY_RELPATH",
    "HISTORY_FILENAME",
    "HistoryEntry",
    "machine_key",
    "history_path",
    "entry_from_record",
    "entry_to_json",
    "entry_from_json",
    "append_history",
    "read_history",
    "TrendPoint",
    "MetricTrend",
    "metric_value",
    "available_metrics",
    "experiment_trend",
    "Changepoint",
    "detect_changepoint",
    "sparkline",
    "trend_report",
]

HISTORY_SCHEMA_VERSION = 1

#: Where the committed history lives, relative to the repo root.
DEFAULT_HISTORY_RELPATH = Path("benchmarks") / "history"

#: The store file inside the history directory.  Scratch stores that
#: must not be committed go next to it as ``*.local.jsonl`` (gitignored).
HISTORY_FILENAME = "history.jsonl"

#: Fingerprint fields that identify a machine for trend purposes.  The
#: full ``platform`` string is deliberately excluded: kernel patch
#: releases churn it without changing performance identity.
_MACHINE_KEY_FIELDS = ("implementation", "python", "machine", "cpu_count", "hostname")


def machine_key(fingerprint: Mapping[str, object]) -> str:
    """A short stable digest of a run's machine fingerprint.

    Two entries with the same key are comparable runs of the same
    environment; the trajectory key is ``(git_sha, machine_key)``.
    """
    blob = "\x00".join(
        f"{name}={fingerprint.get(name)!r}" for name in _MACHINE_KEY_FIELDS
    )
    return hashlib.blake2b(blob.encode(), digest_size=6).hexdigest()


@dataclass
class HistoryEntry:
    """One appended run: the trajectory key plus the full run record."""

    schema_version: int
    recorded: str
    label: str
    git_sha: str | None
    machine: str
    record: RunRecord

    @property
    def short_sha(self) -> str:
        return (self.git_sha or "?")[:7]


def history_path(source: str | Path) -> Path:
    """Resolve a history *directory or file* argument to the store file."""
    path = Path(source)
    if path.suffix == ".jsonl":
        return path
    return path / HISTORY_FILENAME


def entry_from_record(
    record: RunRecord,
    label: str = "full",
    recorded: str | None = None,
) -> HistoryEntry:
    """Wrap a run record as a history entry keyed on its own identity."""
    if recorded is None:
        recorded = time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime())
    return HistoryEntry(
        schema_version=HISTORY_SCHEMA_VERSION,
        recorded=recorded,
        label=str(label),
        git_sha=record.git_sha,
        machine=machine_key(record.fingerprint),
        record=record,
    )


def entry_to_json(entry: HistoryEntry) -> dict[str, object]:
    return {
        "schema_version": entry.schema_version,
        "recorded": entry.recorded,
        "label": entry.label,
        "git_sha": entry.git_sha,
        "machine": entry.machine,
        "record": run_record_to_json(entry.record),
    }


def entry_from_json(data: object, where: str = "history entry") -> HistoryEntry:
    """Parse and validate one history line (raises on any drift)."""
    if not isinstance(data, Mapping):
        raise MetricsError(
            f"{where}: must be a JSON object, got {type(data).__name__}"
        )
    version = data.get("schema_version")
    if not isinstance(version, int) or isinstance(version, bool):
        raise MetricsError(f"{where}: missing integer schema_version")
    if version > HISTORY_SCHEMA_VERSION:
        raise MetricsVersionError(
            f"{where}: schema_version {version} is newer than this build's "
            f"{HISTORY_SCHEMA_VERSION}; upgrade before reading this history"
        )
    if version < 1:
        raise MetricsError(f"{where}: schema_version must be >= 1, got {version}")
    recorded = data.get("recorded")
    if not isinstance(recorded, str):
        raise MetricsError(f"{where}: recorded must be a string timestamp")
    label = data.get("label")
    if not isinstance(label, str):
        raise MetricsError(f"{where}: label must be a string")
    git_sha = data.get("git_sha")
    if git_sha is not None and not isinstance(git_sha, str):
        raise MetricsError(f"{where}: git_sha must be a string or null")
    machine = data.get("machine")
    if not isinstance(machine, str) or not machine:
        raise MetricsError(f"{where}: machine must be a non-empty string")
    if "record" not in data:
        raise MetricsError(f"{where}: missing wrapped run record")
    try:
        record = run_record_from_json(data["record"])
    except MetricsVersionError:
        raise
    except MetricsError as exc:
        raise MetricsError(f"{where}: bad wrapped run record: {exc}") from exc
    return HistoryEntry(
        schema_version=version,
        recorded=recorded,
        label=label,
        git_sha=git_sha,
        machine=machine,
        record=record,
    )


def append_history(
    record: RunRecord,
    directory: str | Path = DEFAULT_HISTORY_RELPATH,
    label: str = "full",
    recorded: str | None = None,
) -> HistoryEntry:
    """Append one run record to the store (atomic single-write append).

    The line is serialised first and written with one ``O_APPEND`` write,
    so concurrent appenders interleave whole lines, never fragments, and
    a crash can at worst lose the line being written -- existing history
    is never touched.
    """
    entry = entry_from_record(record, label=label, recorded=recorded)
    line = json.dumps(entry_to_json(entry), sort_keys=False) + "\n"
    target = history_path(directory)
    target.parent.mkdir(parents=True, exist_ok=True)
    fd = os.open(
        target, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644
    )
    try:
        os.write(fd, line.encode())
    finally:
        os.close(fd)
    return entry


def read_history(source: str | Path = DEFAULT_HISTORY_RELPATH) -> list[HistoryEntry]:
    """Load and validate every entry of a history store, oldest first.

    Raises :class:`~repro.errors.MetricsError` with the offending line
    number on corruption, :class:`~repro.errors.MetricsVersionError` on
    entries (or wrapped records) from a newer schema, and a pointed
    "seed one" message when the store does not exist yet.
    """
    target = history_path(source)
    if not target.exists():
        raise MetricsError(
            f"no performance history at {target}; record one with "
            f"'python -m repro.cli perf-history record BENCH_x.json' or "
            f"'python benchmarks/run_experiments.py --history'"
        )
    try:
        text = target.read_text(encoding="utf-8")
    except OSError as exc:
        raise MetricsError(f"cannot read history {target}: {exc}") from exc
    except UnicodeDecodeError as exc:
        raise MetricsError(f"history {target} is not UTF-8 text: {exc}") from exc
    entries: list[HistoryEntry] = []
    for number, line in enumerate(text.splitlines(), 1):
        if not line.strip():
            continue
        try:
            data = json.loads(line)
        except json.JSONDecodeError as exc:
            raise MetricsError(
                f"{target}: line {number} is not valid JSON ({exc}); the "
                f"store is append-only -- restore the file from git"
            ) from exc
        entries.append(entry_from_json(data, where=f"{target}: line {number}"))
    return entries


# ---------------------------------------------------------------------------
# Trend extraction
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class TrendPoint:
    """One history entry's value of one metric."""

    position: int  # index into the (filtered) history, oldest = 0
    recorded: str
    git_sha: str | None
    machine: str
    label: str
    value: float | None
    #: Recorded repeat-sample spread (stddev); 0.0 for exact metrics.
    spread: float = 0.0

    @property
    def short_sha(self) -> str:
        return (self.git_sha or "?")[:7]


@dataclass
class MetricTrend:
    """An ordered series of one experiment's metric over the history."""

    experiment: str
    metric: str  # "seconds", "counter:<name>", or "fit:<name>"
    kind: str  # seconds | counter | fit
    points: list[TrendPoint] = field(default_factory=list)

    def values(self) -> list[float]:
        return [p.value for p in self.points if p.value is not None]

    @property
    def first(self) -> float | None:
        values = self.values()
        return values[0] if values else None

    @property
    def last(self) -> float | None:
        values = self.values()
        return values[-1] if values else None

    @property
    def spread(self) -> float:
        return max((p.spread for p in self.points), default=0.0)


def _metric_kind(metric: str) -> str:
    if metric == "seconds":
        return "seconds"
    if metric.startswith("counter:"):
        return "counter"
    if metric.startswith("fit:"):
        return "fit"
    raise MetricsError(
        f"unknown metric {metric!r} (expected 'seconds', 'counter:<name>', "
        f"or 'fit:<name>')"
    )


def metric_value(experiment, metric: str) -> tuple[float | None, float]:
    """``(value, spread)`` of one metric of one ExperimentMetrics slice."""
    kind = _metric_kind(metric)
    if kind == "seconds":
        return experiment.median_seconds, experiment.seconds_stddev
    if kind == "counter":
        name = metric.split(":", 1)[1]
        value = experiment.counters.get(name)
        return (float(value) if value is not None else None), 0.0
    name = metric.split(":", 1)[1]
    value = experiment.fits.get(name)
    return (float(value) if value is not None else None), 0.0


def available_metrics(entries: Iterable[HistoryEntry], experiment: str) -> list[str]:
    """Every metric the history has seen for one experiment."""
    metrics = {"seconds"}
    for entry in entries:
        exp = entry.record.experiment(experiment)
        if exp is None:
            continue
        metrics.update(f"counter:{name}" for name in exp.counters)
        metrics.update(f"fit:{name}" for name in exp.fits)
    return sorted(metrics)


def experiment_trend(
    entries: Sequence[HistoryEntry],
    experiment: str,
    metric: str = "seconds",
    last: int = 0,
    machine: str | None = None,
) -> MetricTrend:
    """One metric of one experiment as an ordered trend.

    ``machine`` filters to one :func:`machine_key` (cross-machine wall
    times are not comparable; counters and fits are).  ``last`` keeps
    only the N most recent points (0 = all).
    """
    kind = _metric_kind(metric)
    trend = MetricTrend(experiment=experiment, metric=metric, kind=kind)
    selected = [
        entry for entry in entries if machine is None or entry.machine == machine
    ]
    if last > 0:
        selected = selected[-last:]
    for position, entry in enumerate(selected):
        exp = entry.record.experiment(experiment)
        if exp is None:
            continue
        value, spread = metric_value(exp, metric)
        trend.points.append(
            TrendPoint(
                position=position,
                recorded=entry.recorded,
                git_sha=entry.git_sha,
                machine=entry.machine,
                label=entry.label,
                value=value,
                spread=spread,
            )
        )
    return trend


# ---------------------------------------------------------------------------
# Changepoint / drift detection
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Changepoint:
    """The first history point where a metric left its noise band."""

    experiment: str
    metric: str
    kind: str
    point: TrendPoint  # the first off-band point (the suspect commit)
    before: float  # median of the points before the changepoint
    after: float  # median of the changepoint and everything after it
    status: str  # regressed | improved
    detail: str = ""

    @property
    def delta(self) -> float:
        return self.after - self.before

    @property
    def relative(self) -> float:
        return self.delta / abs(self.before) if self.before else float("inf")


def _median(values: Sequence[float]) -> float:
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2


def _classify(
    kind: str, current: float, baseline: float, thresholds: Thresholds, spread: float
) -> tuple[str, str]:
    if kind == "seconds":
        return classify_seconds(current, baseline, thresholds, spread=spread)
    if kind == "counter":
        return classify_counter(current, baseline)
    return classify_fit(current, baseline, thresholds)


def detect_changepoint(
    trend: MetricTrend, thresholds: Thresholds = Thresholds()
) -> Changepoint | None:
    """The first point where the metric left its noise band *and stayed out*.

    For every candidate split the reference is the median of the points
    before it; the split is a changepoint iff every point from the
    candidate onward classifies non-neutral in the same direction
    against that reference -- using the shared gate rules
    (:func:`~repro.obs.baseline.classify_seconds` widened by the
    recorded repeat spread, the exact counter rule, the fit tolerance).
    A single off-band sample followed by a return to the band is a blip,
    not a drift, and is never flagged.  Returns ``None`` for a stable
    (or too-short) trend.
    """
    points = [p for p in trend.points if p.value is not None]
    if len(points) < 2:
        return None
    values = [float(p.value) for p in points]  # type: ignore[arg-type]
    spread = max(p.spread for p in points)
    for split in range(1, len(points)):
        before = _median(values[:split])
        # A blip inside the prefix poisons its median (e.g. [a, BLIP] has
        # a median halfway up the spike, making the return-to-normal look
        # like an improvement), so the prefix must itself be stable.
        stable_prefix = all(
            _classify(trend.kind, value, before, thresholds, spread)[0] == "neutral"
            for value in values[:split]
        )
        if not stable_prefix:
            continue
        statuses = {
            _classify(trend.kind, value, before, thresholds, spread)[0]
            for value in values[split:]
        }
        if "neutral" in statuses or len(statuses) != 1:
            continue
        status = statuses.pop()
        after = _median(values[split:])
        _, detail = _classify(trend.kind, after, before, thresholds, spread)
        return Changepoint(
            experiment=trend.experiment,
            metric=trend.metric,
            kind=trend.kind,
            point=points[split],
            before=before,
            after=after,
            status=status,
            detail=detail,
        )
    return None


# ---------------------------------------------------------------------------
# Rendering
# ---------------------------------------------------------------------------

_SPARK_BLOCKS = "▁▂▃▄▅▆▇█"


def sparkline(values: Sequence[float | None]) -> str:
    """The series as a unicode sparkline (``·`` for missing points)."""
    present = [v for v in values if v is not None]
    if not present:
        return ""
    low, high = min(present), max(present)
    span = high - low
    chars = []
    for value in values:
        if value is None:
            chars.append("·")
        elif span <= 0:
            chars.append(_SPARK_BLOCKS[3])
        else:
            index = int((value - low) / span * (len(_SPARK_BLOCKS) - 1))
            chars.append(_SPARK_BLOCKS[index])
    return "".join(chars)


def _fmt_value(value: float | None, kind: str) -> str:
    if value is None:
        return "-"
    if kind == "counter":
        return str(int(value))
    return f"{value:.4f}" if kind == "seconds" else f"{value:.3f}"


def trend_report(
    entries: Sequence[HistoryEntry],
    experiments: Sequence[str] | None = None,
    metric: str = "seconds",
    last: int = 0,
    machine: str | None = None,
    thresholds: Thresholds = Thresholds(),
    source: str = "",
):
    """Per-experiment trend table (sparkline, endpoints, drift verdict).

    Renders through the harness :class:`~repro.bench.harness.Report`, the
    same table shape every other surface prints.  ``experiments``
    defaults to everything the most recent entry covers.
    """
    from repro.bench.harness import Report  # local: harness imports obs.core

    if experiments is None:
        experiments = entries[-1].record.idents if entries else []
    title = "performance history"
    if source:
        title += f" ({source})"
    machines = sorted({entry.machine for entry in entries})
    report = Report(
        ident="TREND",
        title=title,
        claim=(
            f"{len(entries)} run(s), metric {metric}, "
            f"machine(s) {', '.join(machines) if machines else '-'}"
        ),
        columns=(
            "experiment", "runs", "trend", "first", "last", "change", "drift"
        ),
    )
    drifts = 0
    for ident in experiments:
        trend = experiment_trend(
            entries, ident, metric=metric, last=last, machine=machine
        )
        if not trend.points:
            continue
        changepoint = detect_changepoint(trend, thresholds)
        first, latest = trend.first, trend.last
        if first not in (None, 0) and latest is not None:
            change = f"{(latest - first) / abs(first):+.0%}"
        else:
            change = "-"
        if changepoint is None:
            drift = "-"
        else:
            drifts += 1
            drift = (
                f"{changepoint.status} at {changepoint.point.short_sha} "
                f"({_fmt_value(changepoint.before, trend.kind)} -> "
                f"{_fmt_value(changepoint.after, trend.kind)})"
            )
        report.add_row(
            ident,
            len(trend.points),
            sparkline([p.value for p in trend.points]),
            _fmt_value(first, trend.kind),
            _fmt_value(latest, trend.kind),
            change,
            drift,
        )
    report.observed = (
        f"{len(report.rows)} experiment(s) with history; "
        f"{drifts} drifting on metric {metric}"
    )
    report.holds = drifts == 0
    return report
