"""Persistent performance run records: the ``BENCH_*.json`` trajectory.

Every full experiment run can be captured as one schema-versioned JSON
document -- per-experiment wall times (raw repeat samples included),
kernel-counter totals from ``repro.obs``, fitted growth exponents, a
machine/environment fingerprint, and the git SHA -- written atomically at
the repo root as ``BENCH_<timestamp>.json``.  The sequence of those
files is the project's performance trajectory; ``repro.obs.baseline``
diffs any record against a promoted baseline so "made the hot path
faster" becomes a checkable claim instead of a commit-message one.

Schema (version 4)::

    {
      "schema_version": 4,
      "created": "2026-08-05T12:34:56Z",        # UTC, ISO-8601
      "git_sha": "abc123..." | null,
      "fingerprint": {
        "platform": str, "python": str, "implementation": str,
        "machine": str, "cpu_count": int | null, "hostname": str
      },
      "cache": {                                # kernel memo-cache stats,
        "enabled": true | false,                # null when the run made
        "kernels": {                            # no cache decision at all
          "logic.rclosure": {"hits": int, "misses": int, "evictions": int,
                             "entries": int, "capacity": int},
          ...
        }
      } | null,
      "throughput": {                           # service load-run summary,
        "duration_seconds": float,              # null for ordinary
        "clients": int,                         # experiment runs
        "scenario": str,
        "total_ops": int,
        "errors": int,
        "ops_per_second": float,
        "operations": {
          "update": {"count": int, "errors": int, "ops_per_second": float,
                     "latency_seconds": {"mean": float, "p50": float | null,
                                         "p90": float | null,
                                         "p99": float | null,
                                         "max": float | null}},
          ...
        }
      } | null,
      "experiments": [
        {
          "ident": "E1", "title": str, "holds": true | false | null,
          "seconds": {"best": float, "median": float, "mean": float,
                      "min": float, "max": float, "stddev": float,
                      "repeats": int, "samples": [float, ...]},
          "counters": {str: int, ...},
          "fits": {str: float | null, ...},     # non-finite -> null
          "memory": {"current_bytes": int,      # tracemalloc totals, only
                     "peak_bytes": int} | null  # when run with --mem
        },
        ...
      ]
    }

Version 2 added the opt-in per-experiment ``memory`` block
(``run_experiments.py --mem``); version 3 added the top-level ``cache``
block (``run_experiments.py --cache``; see ``repro.cache``); version 4
added the top-level ``throughput`` block -- the concurrent-service load
runs of :mod:`repro.server.loadgen`, with windowed ops/s and per-op
latency percentiles.  Older records still load -- a missing block reads
as ``null`` -- while records from *newer* schemas raise
:class:`~repro.errors.MetricsVersionError` instead of being misread.

Counters are exact, deterministic work counts (seeded workloads), so the
regression gate holds them to exact equality; seconds and fit exponents
get noise-aware tolerances (see ``repro.obs.baseline``); memory is
recorded for trend reading but never gated (allocator behaviour is too
environment-dependent for an exact gate).
"""

from __future__ import annotations

import json
import math
import os
import platform
import socket
import subprocess
import tempfile
import time
import warnings
from collections.abc import Iterable, Mapping, Sequence
from dataclasses import dataclass, field
from pathlib import Path

from repro.errors import MetricsError, MetricsVersionError

__all__ = [
    "SCHEMA_VERSION",
    "SUPPORTED_SCHEMA_VERSIONS",
    "BENCH_PREFIX",
    "ExperimentMetrics",
    "RunRecord",
    "machine_fingerprint",
    "current_git_sha",
    "record_from_reports",
    "run_record_to_json",
    "run_record_from_json",
    "write_run_record",
    "read_run_record",
    "bench_filename",
    "find_bench_files",
    "latest_bench_file",
    "summary_report",
]

SCHEMA_VERSION = 4

#: Versions this build can read.  Version 1 predates the ``memory``
#: block, version 2 the ``cache`` block, and version 3 the
#: ``throughput`` block; loading an older record just leaves the
#: corresponding field as ``None``.
SUPPORTED_SCHEMA_VERSIONS = (1, 2, 3, 4)

#: Run-record files are ``BENCH_<UTC timestamp>.json`` at the repo root.
BENCH_PREFIX = "BENCH_"

_MEMORY_KEYS = frozenset({"current_bytes", "peak_bytes"})

_TIMING_KEY_ORDER = (
    "best",
    "median",
    "mean",
    "min",
    "max",
    "stddev",
    "repeats",
    "samples",
)
_TIMING_KEYS = frozenset(_TIMING_KEY_ORDER)


@dataclass
class ExperimentMetrics:
    """One experiment's slice of a run record."""

    ident: str
    title: str
    holds: bool | None
    seconds: dict[str, object]
    counters: dict[str, int] = field(default_factory=dict)
    fits: dict[str, float | None] = field(default_factory=dict)
    #: ``{"current_bytes": int, "peak_bytes": int}`` when the run tracked
    #: memory (``--mem``); ``None`` otherwise and for schema-1 records.
    memory: dict[str, int] | None = None

    @property
    def median_seconds(self) -> float:
        return float(self.seconds["median"])

    @property
    def best_seconds(self) -> float:
        return float(self.seconds["best"])

    @property
    def seconds_stddev(self) -> float:
        """Population stddev of the recorded repeat samples (0.0 for one)."""
        return float(self.seconds.get("stddev", 0.0) or 0.0)

    @property
    def seconds_samples(self) -> list[float]:
        """The raw repeat samples behind :attr:`median_seconds`."""
        samples = self.seconds.get("samples") or []
        return [float(s) for s in samples]


@dataclass
class RunRecord:
    """A whole run: environment identity plus every experiment's metrics."""

    schema_version: int
    created: str
    git_sha: str | None
    fingerprint: dict[str, object]
    experiments: list[ExperimentMetrics]
    #: ``{"enabled": bool, "kernels": {kernel: {hits, misses, ...}}}``
    #: when the run recorded a kernel-cache decision (schema >= 3);
    #: ``None`` for older records.
    cache: dict[str, object] | None = None
    #: The service load-run summary (schema >= 4): total and per-op
    #: ops/s plus latency percentiles, as written by
    #: ``repro.server.loadgen``.  ``None`` for ordinary experiment runs
    #: and for older records.
    throughput: dict[str, object] | None = None

    def experiment(self, ident: str) -> ExperimentMetrics | None:
        for exp in self.experiments:
            if exp.ident == ident:
                return exp
        return None

    @property
    def idents(self) -> list[str]:
        return [exp.ident for exp in self.experiments]


# ---------------------------------------------------------------------------
# Environment identity
# ---------------------------------------------------------------------------


def machine_fingerprint() -> dict[str, object]:
    """Where this run happened: enough to judge cross-machine comparisons."""
    return {
        "platform": platform.platform(),
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "machine": platform.machine(),
        "cpu_count": os.cpu_count(),
        "hostname": socket.gethostname(),
    }


def current_git_sha(root: str | Path | None = None) -> str | None:
    """The repo's HEAD SHA, or ``None`` outside a usable git checkout."""
    try:
        completed = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=str(root) if root is not None else None,
            capture_output=True,
            text=True,
            timeout=5,
        )
    except (OSError, subprocess.TimeoutExpired):
        return None
    if completed.returncode != 0:
        return None
    sha = completed.stdout.strip()
    return sha or None


# ---------------------------------------------------------------------------
# Building records from experiment reports
# ---------------------------------------------------------------------------


def _timing_json(seconds: object) -> dict[str, object]:
    """Normalise a harness Timing / float / samples-dict to timing JSON."""
    from repro.bench.harness import Timing  # local: harness imports obs.core

    if isinstance(seconds, Timing):
        return seconds.to_json()
    if isinstance(seconds, Mapping):
        missing = _TIMING_KEYS - set(seconds)
        if missing:
            raise MetricsError(
                f"timing record is missing keys {sorted(missing)}: {seconds!r}"
            )
        return {key: seconds[key] for key in _TIMING_KEY_ORDER}
    if isinstance(seconds, (int, float)):
        return Timing([float(seconds)]).to_json()
    raise MetricsError(f"cannot interpret {seconds!r} as a timing")


def record_from_reports(
    reports_with_seconds: Iterable[tuple[object, object]],
    *,
    git_sha: str | None | object = ...,
    root: str | Path | None = None,
    cache: Mapping[str, object] | None = None,
    throughput: Mapping[str, object] | None = None,
) -> RunRecord:
    """Build a :class:`RunRecord` from ``(Report, seconds)`` pairs.

    ``seconds`` may be a harness :class:`~repro.bench.harness.Timing`, a
    plain float (one sample), or an already-serialised timing dict.  The
    report's ``counters`` and ``metrics`` channels become the record's
    counter totals and fit exponents.  ``cache`` is the optional
    kernel-cache block (``{"enabled": bool, "kernels": cache_stats()}``);
    ``throughput`` the optional load-run block (see
    ``repro.server.loadgen.report_to_throughput``).
    """
    experiments = []
    for report, seconds in reports_with_seconds:
        memory = getattr(report, "memory", None)
        experiments.append(
            ExperimentMetrics(
                ident=report.ident,
                title=report.title,
                holds=report.holds,
                seconds=_timing_json(seconds),
                counters=dict(report.counters),
                fits={str(k): v for k, v in report.metrics.items()},
                memory=dict(memory) if memory is not None else None,
            )
        )
    return RunRecord(
        schema_version=SCHEMA_VERSION,
        created=time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        git_sha=current_git_sha(root) if git_sha is ... else git_sha,
        fingerprint=machine_fingerprint(),
        experiments=experiments,
        cache=dict(cache) if cache is not None else None,
        throughput=dict(throughput) if throughput is not None else None,
    )


# ---------------------------------------------------------------------------
# JSON (de)serialisation
# ---------------------------------------------------------------------------


def _clean_fit(ident: str, name: str, value: object) -> float | None:
    if value is None:
        return None
    number = float(value)
    if not math.isfinite(number):
        warnings.warn(
            f"run record {ident}: fit {name!r} is non-finite ({number}); "
            f"serialising as null",
            stacklevel=3,
        )
        return None
    return number


def _cache_json(cache: Mapping[str, object] | None) -> dict[str, object] | None:
    if cache is None:
        return None
    kernels = cache.get("kernels") or {}
    return {
        "enabled": bool(cache.get("enabled")),
        "kernels": {
            str(kernel): {str(k): int(v) for k, v in sorted(dict(stats).items())}
            for kernel, stats in sorted(dict(kernels).items())
        },
    }


_LATENCY_KEYS = ("mean", "p50", "p90", "p99", "max")
_OPERATION_KEYS = frozenset({"count", "errors", "ops_per_second", "latency_seconds"})
_THROUGHPUT_REQUIRED = frozenset(
    {
        "duration_seconds",
        "clients",
        "scenario",
        "total_ops",
        "errors",
        "ops_per_second",
        "operations",
    }
)


def _throughput_json(
    throughput: Mapping[str, object] | None,
) -> dict[str, object] | None:
    if throughput is None:
        return None
    payload = dict(throughput)
    operations = payload.get("operations") or {}
    payload["operations"] = {
        str(op): dict(stats) for op, stats in sorted(dict(operations).items())
    }
    return payload


def run_record_to_json(record: RunRecord) -> dict[str, object]:
    """The record as a plain JSON-ready dict (non-finite fits -> null)."""
    return {
        "schema_version": record.schema_version,
        "created": record.created,
        "git_sha": record.git_sha,
        "fingerprint": dict(record.fingerprint),
        "cache": _cache_json(record.cache),
        "throughput": _throughput_json(record.throughput),
        "experiments": [
            {
                "ident": exp.ident,
                "title": exp.title,
                "holds": exp.holds,
                "seconds": _timing_json(exp.seconds),
                "counters": {k: int(v) for k, v in sorted(exp.counters.items())},
                "fits": {
                    k: _clean_fit(exp.ident, k, v)
                    for k, v in sorted(exp.fits.items())
                },
                "memory": (
                    {k: int(exp.memory[k]) for k in sorted(_MEMORY_KEYS)}
                    if exp.memory is not None
                    else None
                ),
            }
            for exp in record.experiments
        ],
    }


def _require(mapping: Mapping, key: str, kinds, where: str):
    if key not in mapping:
        raise MetricsError(f"{where}: missing required key {key!r}")
    value = mapping[key]
    if not isinstance(value, kinds):
        raise MetricsError(
            f"{where}: key {key!r} has type {type(value).__name__}, "
            f"expected {kinds!r}"
        )
    return value


def run_record_from_json(data: object) -> RunRecord:
    """Parse and validate a run-record JSON document.

    Raises :class:`~repro.errors.MetricsError` with a pointed message on
    any structural problem; an unknown ``schema_version`` is rejected
    here so downstream code only ever sees version-:data:`SCHEMA_VERSION`
    records.
    """
    if not isinstance(data, Mapping):
        raise MetricsError(
            f"run record must be a JSON object, got {type(data).__name__}"
        )
    version = _require(data, "schema_version", int, "run record")
    if version not in SUPPORTED_SCHEMA_VERSIONS:
        raise MetricsVersionError(
            f"run record has schema_version {version}; this build reads "
            f"versions {SUPPORTED_SCHEMA_VERSIONS} -- regenerate the record "
            f"with benchmarks/run_experiments.py"
        )
    created = _require(data, "created", str, "run record")
    git_sha = data.get("git_sha")
    if git_sha is not None and not isinstance(git_sha, str):
        raise MetricsError("run record: git_sha must be a string or null")
    fingerprint = _require(data, "fingerprint", Mapping, "run record")
    # Absent before schema 3; null when the run recorded no cache block.
    raw_cache = data.get("cache")
    cache: dict[str, object] | None = None
    if raw_cache is not None:
        if not isinstance(raw_cache, Mapping) or "enabled" not in raw_cache:
            raise MetricsError(
                "run record: cache must be null or an object with an "
                f"'enabled' key (got {raw_cache!r})"
            )
        enabled = raw_cache["enabled"]
        if not isinstance(enabled, bool):
            raise MetricsError("run record: cache.enabled must be a boolean")
        raw_kernels = raw_cache.get("kernels") or {}
        if not isinstance(raw_kernels, Mapping):
            raise MetricsError("run record: cache.kernels must be an object")
        kernels: dict[str, dict[str, int]] = {}
        for kernel, stats in raw_kernels.items():
            if not isinstance(stats, Mapping):
                raise MetricsError(
                    f"run record: cache.kernels[{kernel!r}] must be an object"
                )
            for name, value in stats.items():
                if isinstance(value, bool) or not isinstance(value, int):
                    raise MetricsError(
                        f"run record: cache.kernels[{kernel!r}].{name} must "
                        f"be an int (got {value!r})"
                    )
            kernels[str(kernel)] = {str(k): int(v) for k, v in stats.items()}
        cache = {"enabled": enabled, "kernels": kernels}
    # Absent before schema 4; null for ordinary experiment runs.
    throughput = _parse_throughput(data.get("throughput"))
    raw_experiments = _require(data, "experiments", Sequence, "run record")
    if isinstance(raw_experiments, (str, bytes)):
        raise MetricsError("run record: experiments must be a list")
    experiments = []
    seen: set[str] = set()
    for position, raw in enumerate(raw_experiments):
        where = f"experiments[{position}]"
        if not isinstance(raw, Mapping):
            raise MetricsError(f"{where}: must be an object")
        ident = _require(raw, "ident", str, where)
        if ident in seen:
            raise MetricsError(f"{where}: duplicate experiment ident {ident!r}")
        seen.add(ident)
        title = _require(raw, "title", str, where)
        holds = raw.get("holds")
        if holds is not None and not isinstance(holds, bool):
            raise MetricsError(f"{where}: holds must be true, false, or null")
        seconds = _require(raw, "seconds", Mapping, where)
        missing = _TIMING_KEYS - set(seconds)
        if missing:
            raise MetricsError(
                f"{where}: seconds is missing keys {sorted(missing)}"
            )
        counters = _require(raw, "counters", Mapping, where)
        for name, value in counters.items():
            if not isinstance(name, str) or isinstance(value, bool) or not isinstance(value, int):
                raise MetricsError(
                    f"{where}: counters must map str -> int "
                    f"(offending entry {name!r}: {value!r})"
                )
        fits = _require(raw, "fits", Mapping, where)
        parsed_fits: dict[str, float | None] = {}
        for name, value in fits.items():
            if value is None:
                parsed_fits[str(name)] = None
            elif isinstance(value, (int, float)) and not isinstance(value, bool):
                parsed_fits[str(name)] = float(value)
            else:
                raise MetricsError(
                    f"{where}: fits must map str -> number or null "
                    f"(offending entry {name!r}: {value!r})"
                )
        # Absent entirely in schema-1 records; null when the run did not
        # track memory.  Both read back as None.
        raw_memory = raw.get("memory")
        memory: dict[str, int] | None = None
        if raw_memory is not None:
            if not isinstance(raw_memory, Mapping) or set(raw_memory) != _MEMORY_KEYS:
                raise MetricsError(
                    f"{where}: memory must be null or an object with keys "
                    f"{sorted(_MEMORY_KEYS)} (got {raw_memory!r})"
                )
            for name, value in raw_memory.items():
                if isinstance(value, bool) or not isinstance(value, int):
                    raise MetricsError(
                        f"{where}: memory {name} must be an int byte count "
                        f"(got {value!r})"
                    )
            memory = {k: int(raw_memory[k]) for k in sorted(_MEMORY_KEYS)}
        experiments.append(
            ExperimentMetrics(
                ident=ident,
                title=title,
                holds=holds,
                seconds=dict(seconds),
                counters={str(k): int(v) for k, v in counters.items()},
                fits=parsed_fits,
                memory=memory,
            )
        )
    return RunRecord(
        schema_version=version,
        created=created,
        git_sha=git_sha,
        fingerprint=dict(fingerprint),
        experiments=experiments,
        cache=cache,
        throughput=throughput,
    )


def _number(value: object) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def _parse_throughput(raw: object) -> dict[str, object] | None:
    """Validate the optional schema-4 ``throughput`` block.

    Strict on the keys the baseline comparator reads (counts, ops/s,
    latency percentiles); additional descriptive keys (``read_fraction``,
    ``seed``, ``backend``, ...) pass through untouched.
    """
    if raw is None:
        return None
    if not isinstance(raw, Mapping):
        raise MetricsError("run record: throughput must be null or an object")
    missing = _THROUGHPUT_REQUIRED - set(raw)
    if missing:
        raise MetricsError(
            f"run record: throughput is missing keys {sorted(missing)}"
        )
    if not _number(raw["duration_seconds"]) or float(raw["duration_seconds"]) <= 0:
        raise MetricsError(
            "run record: throughput.duration_seconds must be a positive number"
        )
    for key in ("clients", "total_ops", "errors"):
        value = raw[key]
        if isinstance(value, bool) or not isinstance(value, int) or value < 0:
            raise MetricsError(
                f"run record: throughput.{key} must be a non-negative int"
            )
    if not isinstance(raw["scenario"], str) or not raw["scenario"]:
        raise MetricsError(
            "run record: throughput.scenario must be a non-empty string"
        )
    if not _number(raw["ops_per_second"]):
        raise MetricsError(
            "run record: throughput.ops_per_second must be a number"
        )
    operations = raw["operations"]
    if not isinstance(operations, Mapping):
        raise MetricsError("run record: throughput.operations must be an object")
    parsed_ops: dict[str, dict[str, object]] = {}
    for op, stats in operations.items():
        where = f"throughput.operations[{op!r}]"
        if not isinstance(stats, Mapping):
            raise MetricsError(f"run record: {where} must be an object")
        missing = _OPERATION_KEYS - set(stats)
        if missing:
            raise MetricsError(
                f"run record: {where} is missing keys {sorted(missing)}"
            )
        for key in ("count", "errors"):
            value = stats[key]
            if isinstance(value, bool) or not isinstance(value, int) or value < 0:
                raise MetricsError(
                    f"run record: {where}.{key} must be a non-negative int"
                )
        if not _number(stats["ops_per_second"]):
            raise MetricsError(
                f"run record: {where}.ops_per_second must be a number"
            )
        latency = stats["latency_seconds"]
        if not isinstance(latency, Mapping):
            raise MetricsError(
                f"run record: {where}.latency_seconds must be an object"
            )
        missing = set(_LATENCY_KEYS) - set(latency)
        if missing:
            raise MetricsError(
                f"run record: {where}.latency_seconds is missing keys "
                f"{sorted(missing)}"
            )
        for key in _LATENCY_KEYS:
            value = latency[key]
            # Percentiles are null for an empty histogram window.
            if value is not None and not _number(value):
                raise MetricsError(
                    f"run record: {where}.latency_seconds.{key} must be a "
                    f"number or null"
                )
        parsed_ops[str(op)] = dict(stats)
    result = dict(raw)
    result["operations"] = parsed_ops
    return result


# ---------------------------------------------------------------------------
# Files
# ---------------------------------------------------------------------------


def write_run_record(record: RunRecord, path: str | Path) -> Path:
    """Serialise ``record`` to ``path`` atomically (tmp file + rename).

    A crashed or concurrent run can never leave a half-written
    ``BENCH_*.json`` behind: the document is written to a temporary file
    in the destination directory and moved into place with
    :func:`os.replace`.
    """
    destination = Path(path)
    payload = json.dumps(run_record_to_json(record), indent=2, sort_keys=False)
    destination.parent.mkdir(parents=True, exist_ok=True)
    handle, tmp_name = tempfile.mkstemp(
        prefix=destination.name + ".", suffix=".tmp", dir=destination.parent
    )
    try:
        with os.fdopen(handle, "w") as tmp:
            tmp.write(payload + "\n")
        os.replace(tmp_name, destination)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
    return destination


def read_run_record(path: str | Path) -> RunRecord:
    """Load and validate a run record from disk."""
    source = Path(path)
    try:
        text = source.read_text()
    except OSError as exc:
        raise MetricsError(f"cannot read run record {source}: {exc}") from exc
    except UnicodeDecodeError as exc:
        raise MetricsError(
            f"run record {source} is not UTF-8 text: {exc}"
        ) from exc
    try:
        data = json.loads(text)
    except json.JSONDecodeError as exc:
        raise MetricsError(f"run record {source} is not valid JSON: {exc}") from exc
    return run_record_from_json(data)


def bench_filename(created: str | None = None) -> str:
    """``BENCH_<timestamp>.json`` for now (or a record's ``created`` time)."""
    if created is None:
        stamp = time.strftime("%Y%m%d_%H%M%S", time.gmtime())
    else:
        stamp = created.replace("-", "").replace(":", "").replace("T", "_")
        stamp = stamp.rstrip("Z")
    return f"{BENCH_PREFIX}{stamp}.json"


def find_bench_files(directory: str | Path = ".") -> list[Path]:
    """All ``BENCH_*.json`` files in ``directory``, oldest first.

    Sorted by filename (the embedded UTC timestamp), so the order is the
    trajectory order regardless of filesystem mtimes.
    """
    root = Path(directory)
    if not root.is_dir():
        return []
    return sorted(root.glob(f"{BENCH_PREFIX}*.json"), key=lambda p: p.name)


def latest_bench_file(directory: str | Path = ".") -> Path | None:
    """The most recent ``BENCH_*.json`` in ``directory``, if any."""
    found = find_bench_files(directory)
    return found[-1] if found else None


# ---------------------------------------------------------------------------
# Human-readable summary (REPL ``:bench last``)
# ---------------------------------------------------------------------------


def summary_report(record: RunRecord, source: str = ""):
    """The record as a :class:`~repro.bench.harness.Report` table."""
    from repro.bench.harness import Report  # local: harness imports obs.core

    title = "benchmark run record"
    if source:
        title += f" ({source})"
    report = Report(
        ident="BENCH",
        title=title,
        claim=(
            f"recorded {record.created}, git {record.git_sha or 'unknown'}, "
            f"{record.fingerprint.get('platform', '?')}"
        ),
        columns=("experiment", "median s", "counters", "fits", "peak mem", "verdict"),
    )
    for exp in record.experiments:
        fits = (
            ", ".join(
                f"{name}={value:.2f}" if value is not None else f"{name}=null"
                for name, value in sorted(exp.fits.items())
            )
            or "-"
        )
        verdict = {True: "holds", False: "DIVERGES", None: "-"}[exp.holds]
        if exp.memory is None:
            peak = "-"
        else:
            peak = f"{exp.memory['peak_bytes'] / (1024 * 1024):.1f}MB"
        report.add_row(
            exp.ident,
            f"{exp.median_seconds:.4f}",
            sum(exp.counters.values()),
            fits,
            peak,
            verdict,
        )
    report.observed = (
        f"{len(record.experiments)} experiment(s); "
        f"{sum(1 for e in record.experiments if e.holds is False)} diverging"
    )
    return report
