"""Exception hierarchy for the ``repro`` package.

All exceptions raised deliberately by this library derive from
:class:`ReproError`, so callers can catch library failures with a single
``except`` clause while letting genuine programming errors (``TypeError``
and friends) propagate.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ParseError",
    "VocabularyError",
    "VocabularyMismatchError",
    "SortError",
    "ArityError",
    "SchemaError",
    "IllegalUpdateError",
    "InconsistentLiteralsError",
    "UnknownConstantError",
    "TypeAlgebraError",
    "MacroExpansionError",
    "EvaluationError",
    "ClosureBudgetError",
    "ProvenanceError",
    "AuditError",
    "MetricsError",
    "MetricsVersionError",
    "ProtocolError",
]


class ReproError(Exception):
    """Base class for every error raised by the ``repro`` library."""


class ParseError(ReproError):
    """A textual formula, s-expression, or program failed to parse.

    Carries the offending ``text`` and the ``position`` (character offset)
    where the failure was detected, when known.
    """

    def __init__(self, message: str, text: str | None = None, position: int | None = None):
        super().__init__(message)
        self.text = text
        self.position = position


class VocabularyError(ReproError):
    """A proposition name or index is not part of the vocabulary in use."""


class VocabularyMismatchError(ReproError):
    """Two objects built over different vocabularies were combined.

    Every semantic object in this library (world sets, clause sets,
    morphisms, masks) carries the vocabulary it is defined over; mixing
    vocabularies silently would produce meaningless possible-world sets,
    so it is always an error.
    """


class SortError(ReproError):
    """A BLU/HLU term is not well-sorted (Definition 2.1.1 of the paper)."""


class ArityError(SortError):
    """An operator was applied to the wrong number of arguments."""


class SchemaError(ReproError):
    """A database or relational schema is internally inconsistent."""


class IllegalUpdateError(ReproError):
    """An update request cannot be interpreted (e.g. inconsistent formula)."""


class InconsistentLiteralsError(IllegalUpdateError):
    """A literal set containing both ``A`` and ``~A`` was used where a
    consistent set is required (Definitions 1.3.4 and 1.4.4)."""


class UnknownConstantError(SchemaError):
    """A relational constant symbol is not registered in the dictionary."""


class TypeAlgebraError(SchemaError):
    """An operation on the Boolean algebra of types was ill-formed."""


class MacroExpansionError(ReproError):
    """``where1``/``where2`` macro expansion failed (Section 3.2)."""


class EvaluationError(ReproError):
    """A BLU/HLU term could not be evaluated in the chosen implementation."""


class ClosureBudgetError(ReproError, MemoryError):
    """A saturation kernel exceeded its ``max_clauses`` working-set budget.

    Resolution closure is exponential in the worst case, so the kernels
    take an explicit clause budget and abort (rather than silently
    truncate) when the working set outgrows it.  Subclasses
    ``MemoryError`` for compatibility with callers that treated the
    budget as an out-of-memory condition before this class existed.

    ``budget`` is the limit that was exceeded and ``formed`` how many
    resolvents had been generated when the kernel gave up.
    """

    def __init__(self, message: str, budget: int | None = None, formed: int | None = None):
        super().__init__(message)
        self.budget = budget
        self.formed = formed


class ProvenanceError(ReproError):
    """A derivation record is malformed, unverifiable, or from an
    incompatible provenance schema version."""


class AuditError(ReproError):
    """A session audit trail is malformed, from an incompatible audit
    schema version, or failed to replay to the recorded fingerprints."""


class MetricsError(ReproError):
    """A benchmark run record (``BENCH_*.json``) is malformed or invalid."""


class ProtocolError(ReproError):
    """A wire request to the update service is malformed or unsupported.

    ``code`` is the machine-readable error code the service echoes back
    to the client (see :mod:`repro.server.protocol`); ``request_id`` is
    the offending request's id when one could be extracted, so the
    client can correlate the failure with its pipeline.
    """

    def __init__(self, message: str, code: str = "bad-request", request_id: object = None):
        super().__init__(message)
        self.code = code
        self.request_id = request_id


class MetricsVersionError(MetricsError):
    """A run record and a baseline disagree on the run-record schema version.

    Comparing records across schema versions would silently mis-read
    fields, so the comparator refuses; regenerate the older side (usually
    by re-running ``benchmarks/run_experiments.py --update-baseline``).
    """
