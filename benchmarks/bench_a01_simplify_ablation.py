"""Ablation A1: subsumption reduction (``simplify``) in BLU--C.

Section 4 anticipates "correctness-preserving optimizations"; the library
applies tautology elimination + subsumption reduction to operator outputs
by default.  This ablation measures what that buys on a realistic update
stream: with simplification off, intermediate states retain subsumed
clauses and each mask step pays for them.
"""

import random

import pytest

from repro.blu.clausal_impl import ClausalImplementation
from repro.hlu.interpreter import run_update
from repro.hlu import language
from repro.logic.clauses import ClauseSet
from repro.logic.propositions import Vocabulary
from repro.workloads.generators import update_stream

VOCAB = Vocabulary.standard(14)


def run_stream(simplify: bool, count: int) -> ClauseSet:
    impl = ClausalImplementation(VOCAB, simplify=simplify)
    state = ClauseSet.tautology(VOCAB)
    rng = random.Random(17)
    for payload in update_stream(rng, VOCAB, count, width=2):
        state = run_update(impl, state, language.insert(payload))
    return state


@pytest.mark.parametrize("simplify", [True, False], ids=["simplified", "raw"])
def test_update_stream_with_and_without_simplification(benchmark, simplify):
    state = benchmark(run_stream, simplify, 12)
    # Both settings are correct: same models.
    from repro.logic.semantics import models_of_clauses

    reference = run_stream(not simplify, 12)
    assert models_of_clauses(state) == models_of_clauses(reference)


def test_simplification_keeps_states_smaller(benchmark):
    def compare():
        simplified = run_stream(True, 12)
        raw = run_stream(False, 12)
        return simplified.length, raw.length

    simplified_length, raw_length = benchmark.pedantic(
        compare, rounds=1, iterations=1
    )
    benchmark.extra_info["simplified_length"] = simplified_length
    benchmark.extra_info["raw_length"] = raw_length
    assert simplified_length <= raw_length
