"""E13 -- Section 5.1.1: grounding blowup vs the internal-constant form."""

import pytest

from benchmarks.conftest import run_report
from repro.bench.experiments import e13_relational_grounding
from repro.relational.atoms import OpenAtom
from repro.relational.constants import CategoryExpr
from repro.relational.grounding import Grounding
from repro.relational.session import RelationalDatabase
from repro.workloads.generators import directory_schema


@pytest.mark.parametrize("phone_count", [4, 16, 64])
def test_grounded_disjunction_construction(benchmark, phone_count):
    schema = directory_schema(phone_count)
    grounding = Grounding(schema)
    telno = schema.algebra.named("telno")

    def build():
        u = schema.dictionary.activate(CategoryExpr(telno))
        return grounding.atom_formula(OpenAtom("R", ("P1", "D1", u)))

    formula = benchmark(build)
    assert len(formula.props()) == phone_count


@pytest.mark.parametrize("phone_count", [4, 8])
def test_grounded_update_execution(benchmark, phone_count):
    schema = directory_schema(phone_count)
    telno = schema.algebra.named("telno")

    def run():
        db = RelationalDatabase(schema, backend="clausal")
        db.tell(("R", "P1", "D1", "T1"))
        u = db.unknown(telno)
        db.tell(db.atom("R", "P1", "D1", u))
        return db

    db = benchmark(run)
    assert not db.certain("R", "P1", "D1", "T1")


@pytest.mark.parametrize("phone_count", [16, 256])
def test_compact_update_execution(benchmark, phone_count):
    """The internal-constant representation handles domains the grounded
    route cannot: the compact update cost is domain-independent."""
    schema = directory_schema(phone_count)
    telno = schema.algebra.named("telno")

    def run():
        db = RelationalDatabase(schema, grounded=False)
        db.tell(("R", "P1", "D1", "T1"))
        u = db.unknown(telno)
        db.tell(db.atom("R", "P1", "D1", u))
        return db.compact_size()

    size = benchmark(run)
    assert size == 8  # two stored atoms, independent of the domain size


def test_e13_shape(benchmark):
    run_report(benchmark, e13_relational_grounding)
