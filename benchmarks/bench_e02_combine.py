"""E2 -- Theorem 2.3.4(b.ii): BLU--C combine is Theta(Length1 x Length2)."""

import pytest

from benchmarks.conftest import clause_set_pair, run_report
from repro.bench.experiments import e02_combine_quadratic
from repro.blu.clausal_impl import clausal_combine


@pytest.mark.parametrize("length", [150, 300, 600])
def test_combine_scaling(benchmark, rng, vocab64, length):
    left, right = clause_set_pair(rng, vocab64, length)
    result = benchmark(clausal_combine, left, right, False)
    # Output is (at most) the full pairwise product.
    assert len(result) <= len(left) * len(right)


@pytest.mark.parametrize("ratio", [1, 4])
def test_combine_asymmetric_product(benchmark, rng, vocab64, ratio):
    """Theta(L1 x L2), not Theta((L1 + L2)^2): growing one side scales
    the work linearly in that side."""
    left, _ = clause_set_pair(rng, vocab64, 200)
    right, _ = clause_set_pair(rng, vocab64, 200 * ratio)
    benchmark(clausal_combine, left, right, False)


def test_e02_shape(benchmark):
    run_report(benchmark, e02_combine_quadratic)
