"""E12 -- Theorem 3.1.4: HLU (via BLU) vs the Definition 1.4.5 semantics."""

import pytest

from benchmarks.conftest import run_report
from repro.bench.experiments import e12_hlu_equivalence
from repro.blu.instance_impl import InstanceImplementation
from repro.db.instances import WorldSet
from repro.db.literal_base import insert_update
from repro.hlu import language
from repro.hlu.interpreter import run_update
from repro.logic.propositions import Vocabulary

VOCAB = Vocabulary.standard(3)
IMPL = InstanceImplementation(VOCAB)


@pytest.mark.parametrize("text", ["A1 | A2", "A1 <-> A2"])
def test_insert_equivalence_cost_blu_route(benchmark, text):
    state = WorldSet(VOCAB, {0b000, 0b101})
    result = benchmark(run_update, IMPL, state, language.insert(text))
    assert result == insert_update(VOCAB, [text]).apply_world_set(state)


@pytest.mark.parametrize("text", ["A1 | A2", "A1 <-> A2"])
def test_insert_equivalence_cost_inset_route(benchmark, text):
    state = WorldSet(VOCAB, {0b000, 0b101})
    update = insert_update(VOCAB, [text])
    result = benchmark(update.apply_world_set, state)
    assert result == run_update(IMPL, state, language.insert(text))


def test_e12_shape(benchmark):
    run_report(benchmark, e12_hlu_equivalence)
