"""E14 -- Section 3.3.3: the Abiteboul-Grahne expressiveness gap."""


from benchmarks.conftest import run_report
from repro.baselines.tabular import (
    hlu_insert_transformer,
    search_for_transformer,
    t_union,
)
from repro.bench.experiments import e14_tabular_gap
from repro.logic.propositions import Vocabulary

VOCAB = Vocabulary.standard(2)


def test_search_finds_primitive(benchmark):
    assert benchmark(search_for_transformer, VOCAB, t_union, 1)


def test_search_rejects_genmask_insert(benchmark):
    found = benchmark.pedantic(
        search_for_transformer,
        args=(VOCAB, hlu_insert_transformer),
        kwargs={"max_rounds": 2, "max_functions": 5000},
        rounds=1,
        iterations=1,
    )
    assert not found


def test_e14_shape(benchmark):
    run_report(benchmark, e14_tabular_gap)
