"""Ablation A5: incremental closure maintenance on update sequences.

An update-sequence workload (random single-clause insert/delete walk,
querying the resolution closure and prime implicates after every step)
run under three regimes:

* scratch: every query re-saturates from nothing;
* cached: the fingerprint-keyed memo cache (a state revisited verbatim
  is free, a state off by one clause pays full price);
* incremental: live lineages maintained by delta-driven saturation --
  each step pays only its frontier.

The incremental arm must be bit-identical to scratch at every step;
that equality is asserted inside each benchmarked run.
"""

import random

import pytest

from repro.cache import core as cache_mod
from repro.logic import incremental
from repro.logic.clauses import ClauseSet, make_literal
from repro.logic.implicates import prime_implicates
from repro.logic.propositions import Vocabulary
from repro.logic.resolution import resolution_closure

VOCAB = Vocabulary.standard(7)
STEPS = 18
SEED = 29


def walk():
    rng = random.Random(SEED)
    current: set[frozenset[int]] = set()
    states = []
    while len(states) < STEPS:
        if current and rng.random() < 0.3:
            current.discard(rng.choice(sorted(current, key=sorted)))
        else:
            width = rng.randint(1, 3)
            letters = rng.sample(range(7), width)
            current.add(
                frozenset(make_literal(i, rng.random() < 0.5) for i in letters)
            )
        states.append(ClauseSet(VOCAB, current))
    return states


STATES = walk()


def query_sequence():
    return [
        (resolution_closure(state), prime_implicates(state))
        for state in STATES
    ]


@pytest.fixture(autouse=True)
def _pristine_switches():
    cache_was_on = cache_mod.cache_enabled()
    incremental_was_on = incremental.incremental_enabled()
    cache_mod.disable_cache()
    cache_mod.clear_caches()
    incremental.disable_incremental()
    incremental.reset_incremental()
    yield
    cache_mod.clear_caches()
    incremental.reset_incremental()
    if cache_was_on:
        cache_mod.enable_cache()
    else:
        cache_mod.disable_cache()
    if incremental_was_on:
        incremental.enable_incremental()
    else:
        incremental.disable_incremental()


def test_update_sequence_scratch(benchmark):
    results = benchmark(query_sequence)
    assert len(results) == STEPS


def test_update_sequence_cached(benchmark):
    def run():
        cache_mod.clear_caches()
        cache_mod.enable_cache()
        try:
            return query_sequence()
        finally:
            cache_mod.disable_cache()

    results = benchmark(run)
    assert results == query_sequence()


def test_update_sequence_incremental(benchmark):
    def run():
        incremental.reset_incremental()
        incremental.enable_incremental()
        try:
            return query_sequence()
        finally:
            incremental.disable_incremental()

    results = benchmark(run)
    assert results == query_sequence()
