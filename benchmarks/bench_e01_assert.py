"""E1 -- Theorem 2.3.4(b.i): BLU--C assert is Theta(Length1 + Length2)."""

import pytest

from benchmarks.conftest import clause_set_pair, run_report
from repro.bench.experiments import e01_assert_linear
from repro.blu.clausal_impl import ClausalImplementation


@pytest.mark.parametrize("length", [2000, 8000, 32000])
def test_assert_scaling(benchmark, rng, vocab64, length):
    impl = ClausalImplementation(vocab64, simplify=False)
    left, right = clause_set_pair(rng, vocab64, length // 2)
    result = benchmark(impl.op_assert, left, right)
    assert len(result) <= len(left) + len(right)


def test_e01_shape(benchmark):
    run_report(benchmark, e01_assert_linear)
