"""E7 -- Worked Example 3.2.5: (where {A5} (insert {A1 | A2}))."""

from benchmarks.conftest import run_report
from repro.bench.experiments import PAPER_STATE_STRS, e07_example_325
from repro.hlu import language
from repro.hlu.session import IncompleteDatabase


def make_db() -> IncompleteDatabase:
    return IncompleteDatabase.over(5).assert_(*PAPER_STATE_STRS)


def test_where_insert_update(benchmark):
    update = language.where("A5", language.insert("A1 | A2"))

    def run():
        return make_db().apply(update)

    db = benchmark(run)
    assert db.is_certain("A5 -> (A1 | A2)")


def test_macro_expansion_cost(benchmark):
    update = language.where("A5", language.insert("A1 | A2"))
    program, arguments = benchmark(update.compile)
    assert program.parameters == ("s0", "s1", "s1.0")
    assert len(arguments) == 2


def test_e07_shape(benchmark):
    run_report(benchmark, e07_example_325)
