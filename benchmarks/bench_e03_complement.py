"""E3 -- Theorem 2.3.4(b.iii): complement is Theta(eps^Length), eps = e^(1/e).

The distribution procedure C yields prod(|clause|) output clauses; for a
fixed total Length the product is maximised at clause width ~ e, which is
why width-3 clause sets are the worst case.
"""

import pytest

from benchmarks.conftest import run_report
from repro.bench.experiments import e03_complement_exponential
from repro.blu.clausal_impl import clausal_complement
from repro.logic.clauses import ClauseSet, clause_of, make_literal
from repro.logic.propositions import Vocabulary


def disjoint_instance(width: int, clause_count: int) -> ClauseSet:
    vocabulary = Vocabulary.standard(width * clause_count)
    return ClauseSet(
        vocabulary,
        (
            clause_of(make_literal(width * i + j) for j in range(width))
            for i in range(clause_count)
        ),
    )


@pytest.mark.parametrize("clause_count", [4, 6, 8])
def test_complement_growth_width3(benchmark, clause_count):
    state = disjoint_instance(3, clause_count)
    result = benchmark(clausal_complement, state, False)
    assert len(result) == 3 ** clause_count


@pytest.mark.parametrize("width", [2, 3, 4])
def test_complement_width_comparison(benchmark, width):
    """Same Length (12), different widths: width 3 produces the most
    output clauses (3^4 = 81 > 2^6 = 64 > 4^3 = 64)."""
    state = disjoint_instance(width, 12 // width)
    result = benchmark(clausal_complement, state, False)
    assert len(result) == width ** (12 // width)


def test_e03_shape(benchmark):
    run_report(benchmark, e03_complement_exponential)
