"""Service throughput benchmark: the load driver as a bench-suite citizen.

Self-hosts the update service (:mod:`repro.server.service`) on a
temporary Unix socket, drives it with N seeded concurrent clients per
scenario (:mod:`repro.server.loadgen`), and writes the runs as one
schema-v4 ``BENCH`` record -- a ``bench_srv_<scenario>`` experiment per
scenario plus the top-level ``throughput`` block for the primary one --
so load runs live in the same trajectory (``bench-diff``,
``perf-history``) as the paper experiments.

Usage::

    python benchmarks/bench_srv_throughput.py                 # mixed, 4x10s
    python benchmarks/bench_srv_throughput.py --scenarios mixed,stream \
        --clients 8 --duration 20 --out BENCH_srv.json
    python benchmarks/bench_srv_throughput.py --check-regressions \
        --against benchmarks/baselines/baseline_srv.json \
        --gate counter,throughput

``--check-regressions`` diffs the run against a promoted baseline with
the percentile-aware throughput bands of :mod:`repro.obs.baseline` and
exits 1 on gated regressions; the default gate excludes the noisy
``throughput`` kind, so CI opts in explicitly where runners allow it.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.bench.harness import Timing  # noqa: E402
from repro.obs import baseline as baseline_mod  # noqa: E402
from repro.obs import metrics as metrics_mod  # noqa: E402
from repro.server import loadgen  # noqa: E402


def parse_args(argv: list[str] | None = None) -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument(
        "--scenarios",
        default="mixed",
        help="comma-separated scenarios to run "
        f"(any of: {', '.join(loadgen.SCENARIOS)}; default: mixed)",
    )
    parser.add_argument("--clients", type=int, default=4, metavar="N")
    parser.add_argument("--duration", type=float, default=10.0, metavar="SECONDS")
    parser.add_argument("--read-fraction", type=float, default=0.5, metavar="F")
    parser.add_argument("--letters", type=int, default=10, metavar="N")
    parser.add_argument("--width", type=int, default=2, metavar="W")
    parser.add_argument(
        "--backend", choices=("clausal", "instance"), default="clausal"
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--live", action="store_true", help="live throughput table while driving"
    )
    parser.add_argument(
        "--out",
        metavar="FILE",
        default=None,
        help="write the BENCH schema-v4 record here "
        "(default: BENCH_srv_<timestamp>.json in the repo root)",
    )
    parser.add_argument(
        "--check-regressions",
        action="store_true",
        help="diff against the baseline and exit 1 on gated regressions",
    )
    parser.add_argument(
        "--against",
        metavar="FILE",
        default=str(REPO_ROOT / "benchmarks" / "baselines" / "baseline_srv.json"),
        help="baseline record for --check-regressions",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="promote this run to be the --against baseline",
    )
    parser.add_argument(
        "--gate",
        default="counter,throughput",
        help="metric kinds that gate --check-regressions "
        f"(subset of: {','.join(baseline_mod.METRIC_KINDS)}; "
        "default: counter,throughput)",
    )
    return parser.parse_args(argv)


def main(argv: list[str] | None = None) -> int:
    options = parse_args(argv)
    scenarios = [s.strip() for s in options.scenarios.split(",") if s.strip()]
    unknown = [s for s in scenarios if s not in loadgen.SCENARIOS]
    if not scenarios or unknown:
        print(
            f"bench_srv_throughput: unknown scenario(s) {unknown} "
            f"(known: {', '.join(loadgen.SCENARIOS)})",
            file=sys.stderr,
        )
        return 2
    gate_kinds = frozenset(
        kind.strip() for kind in options.gate.split(",") if kind.strip()
    )
    bad = gate_kinds - set(baseline_mod.METRIC_KINDS)
    if bad:
        print(
            f"bench_srv_throughput: unknown gate kind(s) {sorted(bad)} "
            f"(known: {','.join(baseline_mod.METRIC_KINDS)})",
            file=sys.stderr,
        )
        return 2

    experiments = []
    reports = {}
    for scenario in scenarios:
        config = loadgen.LoadConfig(
            clients=options.clients,
            duration=options.duration,
            scenario=scenario,
            read_fraction=options.read_fraction,
            letters=options.letters,
            width=options.width,
            backend=options.backend,
            seed=options.seed,
        )
        report = loadgen.run_load(config, self_host=True, live=options.live)
        reports[scenario] = report
        print(loadgen.render_report(report))
        print()
        if report["client_failures"]:
            print(
                f"bench_srv_throughput: {report['client_failures']} client(s) "
                f"failed in scenario {scenario!r}",
                file=sys.stderr,
            )
            return 1
        experiments.append(
            metrics_mod.ExperimentMetrics(
                ident=f"bench_srv_{scenario}",
                title=(
                    f"service throughput: {config.clients} clients, "
                    f"scenario {scenario}"
                ),
                holds=report["errors"] == 0,
                seconds=Timing([report["duration_seconds"]]).to_json(),
                counters={
                    "total_ops": report["total_ops"],
                    "errors": report["errors"],
                },
            )
        )

    # The throughput block carries the *primary* (first) scenario; the
    # others still land as experiments, so their op counts are tracked.
    record = metrics_mod.RunRecord(
        schema_version=metrics_mod.SCHEMA_VERSION,
        created=time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        git_sha=metrics_mod.current_git_sha(REPO_ROOT),
        fingerprint=metrics_mod.machine_fingerprint(),
        experiments=experiments,
        throughput=loadgen.report_to_throughput(reports[scenarios[0]]),
    )
    out = options.out or str(
        REPO_ROOT / metrics_mod.bench_filename().replace("BENCH_", "BENCH_srv_")
    )
    metrics_mod.write_run_record(record, out)
    print(f"wrote BENCH record to {out}")

    if options.update_baseline:
        baseline_mod.promote_baseline(record, options.against)
        print(f"promoted baseline -> {options.against}")
        return 0

    if options.check_regressions:
        against = Path(options.against)
        if not against.exists():
            print(
                f"no baseline at {against}; promote one with "
                f"--update-baseline first",
                file=sys.stderr,
            )
            return 1
        comparison = baseline_mod.compare(
            record, baseline_mod.load_baseline(against)
        )
        print(comparison.report().render())
        gated = comparison.regressions(gate_kinds)
        if gated:
            print(
                f"bench_srv_throughput: {len(gated)} gated regression(s)",
                file=sys.stderr,
            )
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
