"""Shared fixtures for the benchmark suite.

Every benchmark here regenerates one of the paper's formal claims (the
paper has no empirical tables -- see DESIGN.md section 2 for the
experiment index).  Micro-benchmarks time the underlying operation at
several sizes so the pytest-benchmark table itself exhibits the scaling;
``*_shape`` benchmarks run the corresponding E-report once and assert its
verdict, attaching the observed summary as ``extra_info``.
"""

import random

import pytest

from repro.logic.propositions import Vocabulary
from repro.workloads.generators import clause_set_of_length


@pytest.fixture(scope="session")
def vocab64():
    return Vocabulary.standard(64)


@pytest.fixture(scope="session")
def vocab5():
    return Vocabulary.standard(5)


@pytest.fixture()
def rng():
    return random.Random(2026)


def clause_set_pair(rng, vocabulary, length):
    """Two independent random clause sets of the given Length each."""
    return (
        clause_set_of_length(rng, vocabulary, length),
        clause_set_of_length(rng, vocabulary, length),
    )


def run_report(benchmark, experiment, **kwargs):
    """Run an experiment function once under the benchmark fixture and
    assert its shape verdict."""
    report = benchmark.pedantic(experiment, kwargs=kwargs, rounds=1, iterations=1)
    benchmark.extra_info["claim"] = report.claim
    benchmark.extra_info["observed"] = report.observed
    assert report.holds, f"{report.ident} diverged:\n{report.render()}"
    return report
