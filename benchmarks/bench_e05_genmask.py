"""E5 -- Theorem 2.3.9(b,c): genmask is exponential; dependence is NP-complete."""

import pytest

from benchmarks.conftest import run_report
from repro.bench.experiments import e05_genmask_exponential
from repro.blu.clausal_genmask import clausal_genmask, depends_on
from repro.logic.clauses import ClauseSet, clause_of, make_literal
from repro.logic.propositions import Vocabulary


def independent_letter_instance(k: int) -> ClauseSet:
    """Phi_k = {(z | A_i), (~z | A_i)}: z occurs but is independent, so
    the dependence test for z has no early exit -- the worst case."""
    vocabulary = Vocabulary.standard(k + 1)
    z = k
    clauses = []
    for i in range(k):
        clauses.append(clause_of([make_literal(z), make_literal(i)]))
        clauses.append(clause_of([make_literal(z, False), make_literal(i)]))
    return ClauseSet(vocabulary, clauses)


@pytest.mark.parametrize("letters", [6, 8, 10])
def test_genmask_worst_case_scaling(benchmark, letters):
    state = independent_letter_instance(letters)
    result = benchmark(clausal_genmask, state)
    # z (index = letters) must be recognised as independent.
    assert letters not in result
    assert result == frozenset(range(letters))


@pytest.mark.parametrize("letters", [8, 10])
def test_single_independence_check_is_the_expensive_part(benchmark, letters):
    state = independent_letter_instance(letters)
    dependent = benchmark(depends_on, state, letters)
    assert dependent is False


def test_e05_shape(benchmark):
    run_report(benchmark, e05_genmask_exponential)
