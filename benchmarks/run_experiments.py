#!/usr/bin/env python3
"""Run the full E1--E17 experiment suite and print claim-vs-measured tables.

This is the report generator behind EXPERIMENTS.md::

    python benchmarks/run_experiments.py            # all experiments
    python benchmarks/run_experiments.py E3 E11     # a selection
"""

from __future__ import annotations

import sys
import time

from repro.bench import experiments


def main(argv: list[str]) -> int:
    wanted = {name.upper() for name in argv[1:]}
    runners = [
        experiments.e01_assert_linear,
        experiments.e02_combine_quadratic,
        experiments.e03_complement_exponential,
        experiments.e04_mask_blowup,
        experiments.e05_genmask_exponential,
        experiments.e06_example_315,
        experiments.e07_example_325,
        experiments.e08_inset_example,
        experiments.e09_congruence_theorem,
        experiments.e10_emulation,
        experiments.e11_wilkins_tradeoff,
        experiments.e12_hlu_equivalence,
        experiments.e13_relational_grounding,
        experiments.e14_tabular_gap,
        experiments.e15_minimal_change,
        experiments.e16_hlu_bottleneck,
        experiments.e17_template_coverage,
    ]
    failures = 0
    for runner in runners:
        ident = runner.__name__.split("_")[0].upper().replace("E0", "E")
        if wanted and ident not in wanted:
            continue
        start = time.perf_counter()
        report = runner()
        elapsed = time.perf_counter() - start
        print(report.render())
        print(f"(ran in {elapsed:.1f}s)\n")
        if not report.holds:
            failures += 1
    if failures:
        print(f"{failures} experiment(s) diverged from the paper's claims")
        return 1
    print("all selected experiments reproduce the paper's claimed shapes")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
