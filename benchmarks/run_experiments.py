#!/usr/bin/env python3
"""Run the full E1--E17 experiment suite and print claim-vs-measured tables.

This is the report generator behind EXPERIMENTS.md::

    python benchmarks/run_experiments.py                 # all experiments
    python benchmarks/run_experiments.py E3 E11          # a selection
    python benchmarks/run_experiments.py E1 --trace-out trace.jsonl

``--trace-out FILE`` enables the ``repro.obs`` instrumentation for the
whole run and writes every recorded span and counter as JSON-lines
(schema-checked by ``tests/test_trace_smoke.py``).
"""

from __future__ import annotations

import argparse
import sys
import time

from repro import obs
from repro.bench import experiments


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="run_experiments",
        description="Regenerate the paper's claims (experiments E1--E17).",
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        metavar="EXPERIMENT",
        help="experiment idents to run (e.g. E3 E11); default: all",
    )
    parser.add_argument(
        "--trace-out",
        metavar="FILE",
        default=None,
        help="enable repro.obs and write spans + counters as JSON-lines",
    )
    options = parser.parse_args(argv)
    wanted = {name.upper() for name in options.experiments}
    runners = [
        experiments.e01_assert_linear,
        experiments.e02_combine_quadratic,
        experiments.e03_complement_exponential,
        experiments.e04_mask_blowup,
        experiments.e05_genmask_exponential,
        experiments.e06_example_315,
        experiments.e07_example_325,
        experiments.e08_inset_example,
        experiments.e09_congruence_theorem,
        experiments.e10_emulation,
        experiments.e11_wilkins_tradeoff,
        experiments.e12_hlu_equivalence,
        experiments.e13_relational_grounding,
        experiments.e14_tabular_gap,
        experiments.e15_minimal_change,
        experiments.e16_hlu_bottleneck,
        experiments.e17_template_coverage,
    ]
    known = {
        runner.__name__.split("_")[0].upper().replace("E0", "E") for runner in runners
    }
    unknown = sorted(wanted - known)
    if unknown:
        parser.error(f"unknown experiment(s): {', '.join(unknown)} (known: E1..E17)")
    tracing = options.trace_out is not None
    trace_handle = None
    if tracing:
        try:
            trace_handle = open(options.trace_out, "w")
        except OSError as exc:
            parser.error(f"cannot write --trace-out file: {exc}")
        obs.reset()
        obs.enable()
    failures = 0
    try:
        for runner in runners:
            ident = runner.__name__.split("_")[0].upper().replace("E0", "E")
            if wanted and ident not in wanted:
                continue
            start = time.perf_counter()
            if tracing:
                with obs.span(f"experiment.{ident}"):
                    report = runner()
            else:
                report = runner()
            elapsed = time.perf_counter() - start
            print(report.render())
            print(f"(ran in {elapsed:.1f}s)\n")
            if not report.holds:
                failures += 1
    finally:
        if tracing:
            obs.disable()
            from repro.obs.export import export_jsonl

            with trace_handle:
                trace_handle.write(export_jsonl(obs.tracer(), obs.counters()))
            print(f"trace written to {options.trace_out}")
    if failures:
        print(f"{failures} experiment(s) diverged from the paper's claims")
        return 1
    print("all selected experiments reproduce the paper's claimed shapes")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
