#!/usr/bin/env python3
"""Run the E1--E17 / A1--A4 experiment suite and print claim-vs-measured tables.

This is the report generator behind EXPERIMENTS.md::

    python benchmarks/run_experiments.py                 # all experiments
    python benchmarks/run_experiments.py E3 A1           # a selection
    python benchmarks/run_experiments.py --smoke         # fast correctness tier
    python benchmarks/run_experiments.py E1 --trace-out trace.jsonl
    python benchmarks/run_experiments.py E16 --profile-out e16.folded --mem
    python benchmarks/run_experiments.py --smoke --cache --jobs 2

``--trace-out FILE`` enables the ``repro.obs`` instrumentation for the
whole run and writes every recorded span and counter as JSON-lines
(schema-checked by ``tests/test_trace_smoke.py``).  ``--profile-out
FILE`` likewise enables instrumentation and writes a flamegraph view of
the run: collapsed folded stacks (``flamegraph.pl`` format), or a
speedscope JSON profile when FILE ends in ``.json``.  ``--mem`` tracks
per-experiment memory via ``tracemalloc`` (a real slowdown, so opt-in):
peak/current bytes land in the run record's ``memory`` block and on the
``experiment.*`` spans.  Analyse any ``--trace-out`` file afterwards
with ``python -m repro.cli trace-report``.

``--cache`` turns on the kernel memo-cache (``repro.cache``) for the
run; per-kernel hit/miss/eviction stats land in the run record's
``cache`` block (schema 3).  ``--jobs N`` fans the selected experiments
out over ``N`` worker processes: wall times are measured inside each
worker, per-worker traces are merged into one ``--trace-out`` /
``--profile-out`` artifact (counters summed, histograms merged), and
per-worker cache stats are summed into the record.

``--live`` turns on live runtime telemetry (``repro.obs.runtime``) and
renders an in-place ANSI dashboard on stderr while the run works:
per-worker status, windowed ops/s, p50/p99 latency, and kernel-cache
hit rate (headless environments -- no TTY, ``TERM=dumb``, or
``REPRO_LIVE_HEADLESS=1`` -- get one plain summary line per refresh
instead).  ``--telemetry-out FILE`` streams the schema-versioned JSONL
telemetry feed to a file (per-worker feeds are merged, keeping each
worker's snapshots plus one combined record); replay or summarise it
afterwards with ``python -m repro.cli telemetry FILE``.

``--audit-out FILE`` enables the session audit trail
(``repro.hlu.audit``) for the whole run: every database session an
experiment opens records its operations -- args, pre/post fingerprints,
outcomes -- as JSONL.  Per-worker trails are concatenated (session ids
embed the worker pid, so they never collide); validate and replay the
result with ``python -m repro.cli audit FILE --replay``.

Performance trajectory (see README "Performance trajectory"):

* a full run writes a schema-versioned ``BENCH_<timestamp>.json`` run
  record at the repo root by default (``--bench-out FILE`` to choose the
  path, ``--no-bench-out`` to skip; selections only write when asked);
* ``--check-regressions`` compares the run against the committed
  baseline (``--baseline PATH``) and exits nonzero on gated regressions,
  so CI can hold the line;
* ``--update-baseline`` promotes the run record to be the new baseline;
* ``--history`` (or ``--history-dir DIR``) also appends the record to
  the longitudinal perf history (``benchmarks/history/``), the
  append-only log behind ``python -m repro.cli perf-history
  trend|bisect`` and the ``:trend`` shell command.
"""

from __future__ import annotations

import argparse
import io
import json
import os
import re
import shutil
import sys
import tempfile
import time
from pathlib import Path

from repro import obs
from repro.bench import experiments
from repro.cache import core as cache_mod
from repro.errors import MetricsError
from repro.hlu import audit as audit_mod
from repro.obs import baseline as baseline_mod
from repro.obs import live as live_mod
from repro.obs import metrics as metrics_mod
from repro.obs import runtime as runtime_mod

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_BASELINE = REPO_ROOT / baseline_mod.DEFAULT_BASELINE_RELPATH

RUNNERS = [
    experiments.e01_assert_linear,
    experiments.e02_combine_quadratic,
    experiments.e03_complement_exponential,
    experiments.e04_mask_blowup,
    experiments.e05_genmask_exponential,
    experiments.e06_example_315,
    experiments.e07_example_325,
    experiments.e08_inset_example,
    experiments.e09_congruence_theorem,
    experiments.e10_emulation,
    experiments.e11_wilkins_tradeoff,
    experiments.e12_hlu_equivalence,
    experiments.e13_relational_grounding,
    experiments.e14_tabular_gap,
    experiments.e15_minimal_change,
    experiments.e16_hlu_bottleneck,
    experiments.e17_template_coverage,
    experiments.a01_simplify_ablation,
    experiments.a02_mask_strategy,
    experiments.a03_backend_crossover,
    experiments.a04_wilkins_hybrid,
    experiments.a05_incremental_updates,
]

#: The sub-second correctness tier (mirrors tests/test_experiments_fast.py
#: plus the exact-output E13): deterministic counters, no timing sweeps --
#: what CI gates on.
SMOKE_IDENTS = {"E6", "E7", "E8", "E9", "E10", "E12", "E13", "E14", "E15", "E17", "A5"}


def runner_ident(runner) -> str:
    """``e01_assert_linear`` -> ``E1``; ``a04_wilkins_hybrid`` -> ``A4``."""
    match = re.match(r"([ae])(\d+)_", runner.__name__)
    if match is None:  # pragma: no cover - registry invariant
        raise ValueError(f"unrecognised runner name {runner.__name__!r}")
    return f"{match.group(1).upper()}{int(match.group(2))}"


RUNNERS_BY_IDENT = {runner_ident(runner): runner for runner in RUNNERS}


def _run_one(runner, mem: bool):
    """One experiment, optionally under tracemalloc."""
    if mem:
        with obs.track_memory() as sample:
            report = runner()
        report.memory = sample.to_json()
        return report, sample
    return runner(), None


def _run_traced(ident: str, runner, mem: bool, tracing: bool):
    """One experiment under its ``experiment.<ident>`` span, timed."""
    start = time.perf_counter()
    if tracing:
        with obs.span(f"experiment.{ident}") as exp_span:
            report, sample = _run_one(runner, mem)
            if sample is not None:
                exp_span.set(
                    mem_peak_bytes=sample.peak_bytes,
                    mem_current_bytes=sample.current_bytes,
                )
    else:
        report, sample = _run_one(runner, mem)
    elapsed = time.perf_counter() - start
    return report, sample, elapsed


def _feed_path(feed_dir: str, ident: str) -> str:
    """The per-worker telemetry feed file for one experiment."""
    return os.path.join(feed_dir, f"feed_{ident}.jsonl")


def _audit_path(audit_dir: str, ident: str) -> str:
    """The per-worker audit trail file for one experiment."""
    return os.path.join(audit_dir, f"audit_{ident}.jsonl")


def _worker_run(
    ident: str,
    mem: bool,
    tracing: bool,
    use_cache: bool,
    cache_capacity: int | None = None,
    feed_dir: str | None = None,
    feed_interval: float = 0.5,
    audit_dir: str | None = None,
) -> dict:
    """One experiment inside a ``--jobs`` worker process.

    The worker owns its own obs context and kernel cache; everything the
    parent needs to merge comes back in one picklable payload.  Seconds
    are measured here, in the worker, so the number means "time this
    experiment took" rather than "time the parent waited".

    With ``feed_dir`` set the worker also runs live telemetry: the
    registry is reset (pool processes are reused across tasks) and a
    background pump streams snapshots to this experiment's feed file,
    which the parent tails for the ``--live`` dashboard and merges into
    the ``--telemetry-out`` artifact.
    """
    runner = RUNNERS_BY_IDENT[ident]
    if use_cache:
        cache_mod.enable_cache(cache_capacity)
    if tracing:
        obs.reset()
        obs.enable()
    pump = None
    writer = None
    if feed_dir is not None:
        runtime_mod.reset()
        runtime_mod.enable()
        writer = runtime_mod.TelemetryWriter(_feed_path(feed_dir, ident), worker=ident)
        pump = runtime_mod.TelemetryPump(
            writer, feed_interval, runtime_mod.ResourceSampler()
        )
        pump.start()
    if audit_dir is not None:
        audit_mod.enable(_audit_path(audit_dir, ident))
    try:
        report, sample, elapsed = _run_traced(ident, runner, mem, tracing)
    finally:
        if audit_dir is not None:
            audit_mod.disable()
        if pump is not None:
            pump.stop(final_snapshot=True)
            runtime_mod.disable()
            writer.close()
    audit_text = None
    if audit_dir is not None:
        try:
            audit_text = Path(_audit_path(audit_dir, ident)).read_text()
        except OSError:
            audit_text = ""
    trace_text = None
    if tracing:
        obs.disable()
        from repro.obs.export import export_jsonl

        trace_text = export_jsonl(obs.tracer(), obs.counters())
    stats = cache_mod.cache_stats() if use_cache else {}
    if use_cache:
        cache_mod.disable_cache()
        cache_mod.clear_caches()
    return {
        "ident": ident,
        "report": report,
        "elapsed": elapsed,
        "peak_bytes": sample.peak_bytes if sample is not None else None,
        "trace": trace_text,
        "cache_stats": stats,
        "audit": audit_text,
    }


class _LiveFeedWriter(runtime_mod.TelemetryWriter):
    """A TelemetryWriter that also repaints the live dashboard.

    Used on the in-process (``--jobs 1``) path, where the pump thread is
    the only thing that runs between experiment steps: each streamed
    snapshot doubles as a dashboard refresh.
    """

    def __init__(self, sink, worker, display=None, model=None):
        super().__init__(sink, worker=worker)
        self._display = display
        self._model = model
        self._label = worker or "main"

    def write_snapshot(self, now: float | None = None) -> dict:
        snap = super().write_snapshot(now)
        if self._display is not None and self._model is not None:
            view = self._model.worker(self._label)
            view.snapshot = snap
            if view.status == "pending":
                view.status = "running"
            self._display.update(self._model)
        return snap


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="run_experiments",
        description="Regenerate the paper's claims (experiments E1..E17, A1..A4).",
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        metavar="EXPERIMENT",
        help="experiment idents to run (e.g. E3 A1); default: all",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="run the fast correctness tier (deterministic counters, "
        "no timing sweeps)",
    )
    parser.add_argument(
        "--trace-out",
        metavar="FILE",
        default=None,
        help="enable repro.obs and write spans + counters as JSON-lines",
    )
    parser.add_argument(
        "--profile-out",
        metavar="FILE",
        default=None,
        help="enable repro.obs and write a flamegraph view of the run: "
        "folded stacks (flamegraph.pl), or speedscope JSON if FILE ends "
        "in .json",
    )
    parser.add_argument(
        "--mem",
        action="store_true",
        help="track per-experiment memory with tracemalloc (peak/current "
        "bytes in the run record and on experiment spans; slows the run)",
    )
    parser.add_argument(
        "--cache",
        action="store_true",
        help="enable the kernel memo-cache (repro.cache) for the run; "
        "per-kernel hit/miss stats land in the run record's cache block",
    )
    parser.add_argument(
        "--cache-capacity",
        type=int,
        metavar="N",
        default=None,
        help="per-kernel LRU entry bound for --cache "
        f"(default: {cache_mod.DEFAULT_CAPACITY})",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        metavar="N",
        default=1,
        help="fan the selected experiments out over N worker processes "
        "(traces merged, cache stats summed; default: 1, in-process)",
    )
    parser.add_argument(
        "--live",
        action="store_true",
        help="enable live runtime telemetry and render an in-place "
        "dashboard on stderr (per-worker ops/s, windowed p50/p99, cache "
        "hit rate); headless environments get plain summary lines",
    )
    parser.add_argument(
        "--telemetry-out",
        metavar="FILE",
        default=None,
        help="enable live runtime telemetry and write the JSONL feed "
        "here (per-worker feeds merged; inspect with "
        "'python -m repro.cli telemetry FILE')",
    )
    parser.add_argument(
        "--telemetry-interval",
        type=float,
        metavar="SECONDS",
        default=0.5,
        help="seconds between telemetry snapshots / dashboard refreshes "
        "(default: 0.5)",
    )
    parser.add_argument(
        "--audit-out",
        metavar="FILE",
        default=None,
        help="enable the session audit trail (repro.hlu.audit) for the "
        "run and write it here as JSONL (per-worker trails concatenated; "
        "check with 'python -m repro.cli audit FILE --replay')",
    )
    parser.add_argument(
        "--bench-out",
        metavar="FILE",
        default=None,
        help="write the run record here (default for full runs: "
        "BENCH_<timestamp>.json at the repo root)",
    )
    parser.add_argument(
        "--no-bench-out",
        action="store_true",
        help="never write a run record, even for a full run",
    )
    parser.add_argument(
        "--baseline",
        metavar="FILE",
        default=str(DEFAULT_BASELINE),
        help="baseline run record for --check-regressions / --update-baseline "
        "(default: benchmarks/baselines/baseline.json)",
    )
    parser.add_argument(
        "--check-regressions",
        action="store_true",
        help="diff this run against the baseline and exit nonzero on "
        "gated regressions",
    )
    parser.add_argument(
        "--gate",
        metavar="KINDS",
        default="seconds,counter,fit",
        help="comma-separated metric kinds that can fail the gate "
        "(subset of: seconds,counter,fit)",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="promote this run's record to be the baseline",
    )
    parser.add_argument(
        "--history",
        action="store_true",
        help="append this run's record to the longitudinal perf history "
        "(benchmarks/history/; inspect with "
        "'python -m repro.cli perf-history trend')",
    )
    parser.add_argument(
        "--history-dir",
        metavar="DIR",
        default=None,
        help="history directory or .jsonl file for --history "
        "(implies --history; default: benchmarks/history/)",
    )
    options = parser.parse_args(argv)

    wanted = {name.upper() for name in options.experiments}
    if options.smoke:
        wanted |= SMOKE_IDENTS
    known = {runner_ident(runner) for runner in RUNNERS}
    unknown = sorted(wanted - known)
    if unknown:
        parser.error(
            f"unknown experiment(s): {', '.join(unknown)} "
            f"(known: E1..E17, A1..A4)"
        )
    gate = frozenset(kind.strip() for kind in options.gate.split(",") if kind.strip())
    bad_kinds = gate - set(baseline_mod.METRIC_KINDS)
    if bad_kinds:
        parser.error(
            f"unknown gate kind(s): {', '.join(sorted(bad_kinds))} "
            f"(known: {', '.join(baseline_mod.METRIC_KINDS)})"
        )
    if options.jobs < 1:
        parser.error(f"--jobs must be >= 1, got {options.jobs}")
    if options.telemetry_interval <= 0:
        parser.error(
            f"--telemetry-interval must be > 0, got {options.telemetry_interval}"
        )
    if options.cache_capacity is not None:
        if options.cache_capacity < 0:
            parser.error(
                f"--cache-capacity must be >= 0, got {options.cache_capacity}"
            )
        if not options.cache:
            parser.error("--cache-capacity requires --cache")

    tracing = options.trace_out is not None or options.profile_out is not None
    trace_handle = None
    profile_handle = None
    if options.trace_out is not None:
        try:
            trace_handle = open(options.trace_out, "w")
        except OSError as exc:
            parser.error(f"cannot write --trace-out file: {exc}")
    if options.profile_out is not None:
        try:
            profile_handle = open(options.profile_out, "w")
        except OSError as exc:
            parser.error(f"cannot write --profile-out file: {exc}")
    telemetry_handle = None
    if options.telemetry_out is not None:
        try:
            telemetry_handle = open(options.telemetry_out, "w")
        except OSError as exc:
            parser.error(f"cannot write --telemetry-out file: {exc}")
    audit_handle = None
    if options.audit_out is not None:
        try:
            audit_handle = open(options.audit_out, "w")
        except OSError as exc:
            parser.error(f"cannot write --audit-out file: {exc}")
    selected = [
        runner_ident(runner)
        for runner in RUNNERS
        if not wanted or runner_ident(runner) in wanted
    ]

    def emit(ident: str, report, elapsed: float, peak_bytes: int | None) -> int:
        print(report.render())
        timing_note = f"(ran in {elapsed:.1f}s"
        if peak_bytes is not None:
            timing_note += f", peak {peak_bytes / (1024 * 1024):.1f}MB"
        print(timing_note + ")\n")
        return 0 if report.holds else 1

    failures = 0
    results: list[tuple[object, object]] = []
    cache_kernels: dict[str, dict[str, int]] = {}
    trace_text: str | None = None
    telemetry = options.live or options.telemetry_out is not None
    telemetry_text: str | None = None
    display: live_mod.LiveDisplay | None = None
    model: live_mod.DashboardModel | None = None
    if options.live:
        model = live_mod.DashboardModel(
            title=f"run_experiments ({len(selected)} experiment(s), "
            f"--jobs {options.jobs})"
        )
        display = live_mod.LiveDisplay(sys.stderr)

    if options.jobs > 1:
        from concurrent.futures import ProcessPoolExecutor
        from concurrent.futures import wait as futures_wait

        from repro.obs.export import merge_jsonl

        trace_parts: list[str] = []
        cache_parts: list[dict[str, dict[str, int]]] = []
        audit_parts: list[str] = []
        feed_dir = tempfile.mkdtemp(prefix="repro_telemetry_") if telemetry else None
        audit_dir = (
            tempfile.mkdtemp(prefix="repro_audit_")
            if audit_handle is not None
            else None
        )
        if model is not None:
            for ident in selected:
                model.worker(ident)
        try:
            with ProcessPoolExecutor(max_workers=options.jobs) as pool:
                futures = [
                    pool.submit(
                        _worker_run,
                        ident,
                        options.mem,
                        tracing,
                        options.cache,
                        options.cache_capacity,
                        feed_dir,
                        options.telemetry_interval,
                        audit_dir,
                    )
                    for ident in selected
                ]
                if display is not None and model is not None and feed_dir is not None:
                    tailers = [
                        live_mod.FeedTailer(_feed_path(feed_dir, ident))
                        for ident in selected
                    ]
                    pending = set(futures)
                    while pending:
                        _, pending = futures_wait(
                            pending, timeout=options.telemetry_interval
                        )
                        for ident, future in zip(selected, futures):
                            view = model.worker(ident)
                            if future.done():
                                view.status = (
                                    "failed" if future.exception() else "done"
                                )
                            elif future.running():
                                view.status = "running"
                        live_mod.tail_snapshots(tailers, model)
                        display.update(model)
                for ident, future in zip(selected, futures):
                    payload = future.result()
                    results.append((payload["report"], payload["elapsed"]))
                    failures += emit(
                        ident, payload["report"], payload["elapsed"],
                        payload["peak_bytes"],
                    )
                    if payload["trace"] is not None:
                        trace_parts.append(payload["trace"])
                    if payload["cache_stats"]:
                        cache_parts.append(payload["cache_stats"])
                    if payload["audit"]:
                        audit_parts.append(payload["audit"])
            if feed_dir is not None:
                feed_texts = []
                for ident in selected:
                    try:
                        feed_texts.append(Path(_feed_path(feed_dir, ident)).read_text())
                    except OSError:
                        pass
                telemetry_text = runtime_mod.merge_feeds(feed_texts)
        finally:
            if feed_dir is not None:
                shutil.rmtree(feed_dir, ignore_errors=True)
            if audit_dir is not None:
                shutil.rmtree(audit_dir, ignore_errors=True)
        if audit_handle is not None:
            audit_handle.write("".join(audit_parts))
        if tracing:
            trace_text = merge_jsonl(trace_parts)
        cache_kernels = cache_mod.merge_stats(cache_parts)
    else:
        if options.cache:
            cache_mod.enable_cache(options.cache_capacity)
        if tracing:
            obs.reset()
            obs.enable()
        pump = None
        feed_buffer: io.StringIO | None = None
        if telemetry:
            runtime_mod.reset()
            runtime_mod.enable()
            feed_buffer = io.StringIO()
            writer = _LiveFeedWriter(
                feed_buffer, worker="main", display=display, model=model
            )
            pump = runtime_mod.TelemetryPump(
                writer, options.telemetry_interval, runtime_mod.ResourceSampler()
            )
            pump.start()
        if audit_handle is not None:
            # Stream straight into the (already truncated) output file;
            # the writer wraps the handle without taking ownership.
            audit_mod.enable(audit_handle)
        try:
            for ident in selected:
                report, sample, elapsed = _run_traced(
                    ident, RUNNERS_BY_IDENT[ident], options.mem, tracing
                )
                results.append((report, elapsed))
                failures += emit(
                    ident, report, elapsed,
                    sample.peak_bytes if sample is not None else None,
                )
        finally:
            if audit_handle is not None:
                audit_mod.disable()
            if pump is not None:
                pump.stop(final_snapshot=True)
                runtime_mod.disable()
                telemetry_text = feed_buffer.getvalue()
            if options.cache:
                cache_kernels = cache_mod.cache_stats()
                cache_mod.disable_cache()
                cache_mod.clear_caches()
            if tracing:
                obs.disable()
                from repro.obs.export import export_jsonl

                trace_text = export_jsonl(obs.tracer(), obs.counters())

    if display is not None and model is not None:
        for view in model.workers.values():
            if view.status in ("pending", "running"):
                view.status = "done"
        display.close(model)

    if telemetry_handle is not None:
        with telemetry_handle:
            telemetry_handle.write(telemetry_text or "")
        print(f"telemetry feed written to {options.telemetry_out}")

    if audit_handle is not None:
        audit_handle.close()
        print(f"audit trail written to {options.audit_out}")

    if tracing and trace_text is not None:
        if trace_handle is not None:
            with trace_handle:
                trace_handle.write(trace_text)
            print(f"trace written to {options.trace_out}")
        if profile_handle is not None:
            from repro.obs.export import spans_from_jsonl
            from repro.obs.profile import folded_stacks, speedscope_document

            spans = spans_from_jsonl(trace_text)
            with profile_handle:
                if options.profile_out.endswith(".json"):
                    json.dump(
                        speedscope_document(spans, name="run_experiments"),
                        profile_handle,
                    )
                    profile_handle.write("\n")
                else:
                    profile_handle.write(folded_stacks(spans))
            print(f"profile written to {options.profile_out}")

    record = metrics_mod.record_from_reports(
        results,
        root=REPO_ROOT,
        cache={"enabled": options.cache, "kernels": cache_kernels},
    )

    full_run = not wanted
    if options.bench_out is not None:
        bench_path: Path | None = Path(options.bench_out)
    elif full_run and not options.no_bench_out:
        bench_path = REPO_ROOT / metrics_mod.bench_filename()
    else:
        bench_path = None
    if bench_path is not None and not options.no_bench_out:
        metrics_mod.write_run_record(record, bench_path)
        print(f"run record written to {bench_path}")

    if options.update_baseline:
        promoted = baseline_mod.promote_baseline(record, options.baseline)
        print(f"baseline updated: {promoted}")

    if options.history or options.history_dir is not None:
        from repro.obs import history as history_mod

        history_dir = (
            Path(options.history_dir)
            if options.history_dir is not None
            else REPO_ROOT / history_mod.DEFAULT_HISTORY_RELPATH
        )
        entry = history_mod.append_history(
            record,
            directory=history_dir,
            label="smoke" if options.smoke else ("full" if full_run else "partial"),
        )
        print(
            f"history entry {entry.short_sha} ({entry.label}) appended to "
            f"{history_mod.history_path(history_dir)}"
        )

    regressions = 0
    if options.check_regressions and not options.update_baseline:
        try:
            base = baseline_mod.load_baseline(options.baseline)
            comparison = baseline_mod.compare(record, base)
        except MetricsError as exc:
            print(f"cannot check regressions: {exc}")
            return 2
        print(comparison.report().render())
        regressions = len(comparison.regressions(gate))
        if regressions:
            print(
                f"{regressions} gated regression(s) vs {options.baseline} "
                f"(gate: {', '.join(sorted(gate))})"
            )

    if failures:
        print(f"{failures} experiment(s) diverged from the paper's claims")
        return 1
    if regressions:
        return 2
    print("all selected experiments reproduce the paper's claimed shapes")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
