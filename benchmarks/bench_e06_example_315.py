"""E6 -- Worked Example 3.1.5: insert {A1 | A2} at the clause level."""

from benchmarks.conftest import run_report
from repro.bench.experiments import PAPER_STATE_STRS, e06_example_315
from repro.blu.clausal_impl import ClausalImplementation
from repro.hlu.programs import HLU_INSERT
from repro.logic.clauses import ClauseSet
from repro.logic.propositions import Vocabulary

VOCAB = Vocabulary.standard(5)


def test_example_315_pipeline(benchmark, vocab5):
    impl = ClausalImplementation(vocab5)
    phi = ClauseSet.from_strs(vocab5, PAPER_STATE_STRS)
    payload = ClauseSet.from_strs(vocab5, ["A1 | A2"])
    result = benchmark(impl.run, HLU_INSERT, phi, payload)
    assert result == ClauseSet.from_strs(
        vocab5, ["A1 | A2", "A4 | A5", "A3 | A4"]
    )


def test_e06_shape(benchmark):
    run_report(benchmark, e06_example_315)
