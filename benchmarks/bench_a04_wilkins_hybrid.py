"""Ablation A4: hybrid cleanup policies for the Wilkins strategy.

Section 3.3.1 observes that Wilkins' deferred masking must eventually be
paid: "to 'clean up' the knowledge base, masking of these auxiliary
symbols would be necessary".  A practical system would clean up *sometimes*
-- this ablation sweeps the policy spectrum:

* never clean (pure Wilkins): cheapest updates, queries degrade;
* clean every k updates: bounded auxiliary count, periodic mask cost;
* clean every update (eager): equivalent cost profile to Hegner's
  mask-assert, paid in a different place.

Total cost of (stream of inserts + interleaved queries) is measured per
policy, making the §3.3.1 "no superior alternative" argument quantitative.
"""

import random

import pytest

from repro.baselines.wilkins import WilkinsDatabase
from repro.hlu import language
from repro.hlu.session import IncompleteDatabase
from repro.logic.propositions import Vocabulary
from repro.workloads.generators import update_stream

VOCAB = Vocabulary.standard(12)
INSERTS = 24
QUERIES_PER_INSERT = 4
QUERY = "A1 | A2 | A3"


def payloads():
    rng = random.Random(47)
    return list(update_stream(rng, VOCAB, INSERTS, width=2))


def run_wilkins(cleanup_every: int | None) -> WilkinsDatabase:
    db = WilkinsDatabase(VOCAB)
    for step, payload in enumerate(payloads(), start=1):
        db.insert(payload)
        if cleanup_every and step % cleanup_every == 0:
            db.cleanup()
        for _ in range(QUERIES_PER_INSERT):
            db.is_certain(QUERY)
    return db


@pytest.mark.parametrize(
    "cleanup_every",
    [None, 8, 4, 1],
    ids=["never", "every-8", "every-4", "eager"],
)
def test_wilkins_cleanup_policy(benchmark, cleanup_every):
    db = benchmark(run_wilkins, cleanup_every)
    if cleanup_every == 1:
        assert db.aux_count == 0
    if cleanup_every is None:
        assert db.aux_count == 2 * INSERTS


def test_hegner_reference_workload(benchmark):
    def run():
        db = IncompleteDatabase.over(12)
        for payload in payloads():
            db.apply(language.insert(payload))
            for _ in range(QUERIES_PER_INSERT):
                db.is_certain(QUERY)
        return db

    db = benchmark(run)
    assert db.is_consistent()


def test_policies_agree_semantically(benchmark):
    """Every cleanup policy leaves the same base-letter knowledge."""

    def check():
        results = []
        for policy in (None, 4, 1):
            db = run_wilkins(policy)
            db.cleanup()
            results.append(db.state)
        return results[0] == results[1] == results[2]

    assert benchmark.pedantic(check, rounds=1, iterations=1)
