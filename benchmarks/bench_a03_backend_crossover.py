"""Ablation A3: instance vs clausal backend as the vocabulary grows.

The instance backend is exact and fast on tiny vocabularies (bit tricks
over at most 2^n worlds) but exponential in n; the clausal backend pays
resolution costs but scales with the *representation*, not the world
count.  This ablation locates the crossover, justifying the library's
default (``backend="clausal"``) and the paper's insistence that "direct
representation is impractical" (Section 0).
"""

import random

import pytest

from repro.hlu import language
from repro.hlu.session import IncompleteDatabase
from repro.workloads.generators import update_stream


def run_script(letters: int, backend: str) -> IncompleteDatabase:
    db = IncompleteDatabase.over(letters, backend=backend)
    rng = random.Random(31)
    for payload in update_stream(rng, db.vocabulary, 6, width=2):
        db.apply(language.insert(payload))
    db.is_certain("A1 | A2")
    return db


@pytest.mark.parametrize("letters", [6, 10, 14])
def test_instance_backend_scaling(benchmark, letters):
    db = benchmark(run_script, letters, "instance")
    assert db.is_consistent()


@pytest.mark.parametrize("letters", [6, 10, 14])
def test_clausal_backend_scaling(benchmark, letters):
    db = benchmark(run_script, letters, "clausal")
    assert db.is_consistent()


def test_backends_agree_at_moderate_size(benchmark):
    def check():
        return run_script(10, "instance").worlds() == run_script(
            10, "clausal"
        ).worlds()

    assert benchmark.pedantic(check, rounds=1, iterations=1)
