"""E9 -- Theorem 1.5.4: Congruence(insert[Phi]) = s--mask[Prop[Inset[Phi]]]."""

import pytest

from benchmarks.conftest import run_report
from repro.bench.experiments import e09_congruence_theorem
from repro.db.literal_base import insert_update, inset_prop_indices
from repro.db.masks import SimpleMask, congruence_of, masks_equal
from repro.logic.propositions import Vocabulary

VOCAB = Vocabulary.standard(4)


@pytest.mark.parametrize(
    "text", ["A1 | A2", "A1 <-> A2", "(A1 | A2) & (A1 | ~A2)"]
)
def test_congruence_computation(benchmark, text):
    update = insert_update(VOCAB, [text])

    def check():
        expected = SimpleMask(VOCAB, inset_prop_indices(VOCAB, [text]))
        return masks_equal(congruence_of(update), expected)

    assert benchmark(check)


def test_e09_shape(benchmark):
    run_report(benchmark, e09_congruence_theorem)
