"""E17 -- Section 4: V-table (template model) coverage and update cost."""

import pytest

from benchmarks.conftest import run_report
from repro.baselines.tables import TableVariable, VTable, representable_world_sets
from repro.bench.experiments import e17_template_coverage
from repro.relational.schema import RelationalSchema


@pytest.fixture(scope="module")
def tiny_schema():
    return RelationalSchema.build(
        constants={"thing": ["a", "b"]},
        relations={"P": [("X", "thing")]},
    )


@pytest.fixture(scope="module")
def phone_schema():
    return RelationalSchema.build(
        constants={"person": ["Jones"], "telno": [f"T{i}" for i in range(1, 9)]},
        relations={"Phone": [("N", "person"), ("T", "telno")]},
    )


def test_table_update_is_constant_time(benchmark, phone_schema):
    """Adding 'Jones has some phone' to a table is one appended row --
    contrast with the grounded route of E13."""
    x = TableVariable("x", phone_schema.algebra.named("telno"))

    def build():
        return VTable(phone_schema, [("Phone", ("Jones", x))])

    table = benchmark(build)
    assert len(table.rows) == 1


def test_table_world_enumeration(benchmark, phone_schema):
    x = TableVariable("x", phone_schema.algebra.named("telno"))
    table = VTable(phone_schema, [("Phone", ("Jones", x))])
    worlds = benchmark(table.world_set)
    assert len(worlds) == 8


@pytest.mark.parametrize("max_rows,max_variables", [(2, 1), (3, 2)])
def test_representability_enumeration_cost(benchmark, tiny_schema, max_rows, max_variables):
    reachable = benchmark(
        representable_world_sets, tiny_schema, max_rows, max_variables
    )
    assert 0 < len(reachable) < 16


def test_e17_shape(benchmark):
    run_report(benchmark, e17_template_coverage)
