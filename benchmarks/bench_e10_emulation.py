"""E10 -- BLU--C emulates BLU--I (Theorems 2.3.4(a)/2.3.6(a)/2.3.9(a))."""

import random

import pytest

from benchmarks.conftest import run_report
from repro.bench.experiments import e10_emulation
from repro.blu.clausal_impl import ClausalImplementation
from repro.blu.emulation import canonical_emulation
from repro.blu.instance_impl import InstanceImplementation
from repro.logic.propositions import Vocabulary
from repro.workloads.generators import random_clause_set

VOCAB = Vocabulary.standard(4)
CLAUSAL = ClausalImplementation(VOCAB)
INSTANCE = InstanceImplementation(VOCAB)
EMULATION = canonical_emulation(CLAUSAL, INSTANCE)


@pytest.mark.parametrize("operator", ["assert", "combine", "complement", "mask", "genmask"])
def test_operator_emulation_check_cost(benchmark, operator):
    rng = random.Random(7)
    left = random_clause_set(rng, VOCAB, 4, width=2)
    right = random_clause_set(rng, VOCAB, 4, width=2)

    def check():
        if operator in ("assert", "combine"):
            return EMULATION.check_operator(operator, left, right)
        if operator == "mask":
            return EMULATION.check_operator(operator, left, frozenset({0, 2}))
        return EMULATION.check_operator(operator, left)

    assert benchmark(check)


def test_e10_shape(benchmark):
    run_report(benchmark, e10_emulation)
