"""E11 -- Section 3.3.1: update-now vs query-later (Hegner vs Wilkins)."""

import random

import pytest

from benchmarks.conftest import run_report
from repro.baselines.wilkins import WilkinsDatabase
from repro.bench.experiments import e11_wilkins_tradeoff
from repro.hlu import language
from repro.hlu.session import IncompleteDatabase
from repro.logic.propositions import Vocabulary
from repro.workloads.generators import update_stream

VOCAB = Vocabulary.standard(12)


def payloads(count):
    rng = random.Random(5)
    return list(update_stream(rng, VOCAB, count, width=2))


@pytest.mark.parametrize("count", [8, 32])
def test_hegner_update_stream(benchmark, count):
    stream = payloads(count)

    def run():
        db = IncompleteDatabase.over(12)
        for payload in stream:
            db.apply(language.insert(payload))
        return db

    db = benchmark(run)
    assert db.is_consistent()


@pytest.mark.parametrize("count", [8, 32])
def test_wilkins_update_stream(benchmark, count):
    stream = payloads(count)

    def run():
        db = WilkinsDatabase(VOCAB)
        for payload in stream:
            db.insert(payload)
        return db

    db = benchmark(run)
    assert db.aux_count == 2 * count


@pytest.mark.parametrize("count", [8, 32])
def test_wilkins_query_after_updates(benchmark, count):
    db = WilkinsDatabase(VOCAB)
    for payload in payloads(count):
        db.insert(payload)
    benchmark(db.is_certain, "A1 | A2 | A3")


@pytest.mark.parametrize("count", [8, 32])
def test_wilkins_cleanup_cost(benchmark, count):
    stream = payloads(count)

    def build_and_cleanup():
        db = WilkinsDatabase(VOCAB)
        for payload in stream:
            db.insert(payload)
        db.cleanup()
        return db

    db = benchmark(build_and_cleanup)
    assert db.aux_count == 0


def test_e11_shape(benchmark):
    run_report(benchmark, e11_wilkins_tradeoff)
