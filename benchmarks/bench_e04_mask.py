"""E4 -- Theorem 2.3.6(b): mask worst case O(Length^(2^|P|))."""

import random

import pytest

from benchmarks.conftest import run_report
from repro.bench.experiments import _star_instance, e04_mask_blowup
from repro.blu.clausal_mask import clausal_mask
from repro.logic.propositions import Vocabulary
from repro.workloads.generators import random_clause_set


@pytest.mark.parametrize("clause_count", [16, 32, 64])
def test_star_single_letter_quadratic(benchmark, clause_count):
    state = _star_instance(clause_count)
    result = benchmark(clausal_mask, state, [0], False)
    # Full positive x negative product of the hub letter.
    assert len(result) == (clause_count // 2) ** 2


@pytest.mark.parametrize("mask_size", [1, 2, 4])
def test_dense_mask_growth_in_p(benchmark, mask_size):
    rng = random.Random(99)
    vocabulary = Vocabulary.standard(12)
    state = random_clause_set(rng, vocabulary, 40, width=3)
    result = benchmark(clausal_mask, state, list(range(mask_size)), True)
    assert not (result.prop_indices & set(range(mask_size)))


def test_e04_shape(benchmark):
    run_report(benchmark, e04_mask_blowup)
